"""Self-tuning admission vs. the best static config, under a flash crowd.

The paper's pitch is software-defined control: policy decided by the
host, on live measurements, instead of baked-in firmware heuristics.
This benchmark closes that loop end to end.  A latency-sensitive tenant
runs near (but under) saturation, then a flash crowd multiplies its
arrival rate for a third of the run.  No single static admission config
wins both phases:

* **static-loose** is optimal in the quiet phases but collapses during
  the crowd -- deep admission lets queues grow past the deadline, so the
  crowd is served *late* (wasted work: the client already gave up);
* **static-tight** keeps crowd latency bounded by shedding early, but
  at quiet load its limit sits below the natural burst concurrency, and
  the retry traffic from those needless sheds feeds on itself -- the
  quiet tail never drains (classic congestion collapse);
* **adaptive** runs loose and lets a :class:`~repro.policy.PolicyPlan`
  flip the fleet's admission limits: a *tighten* rule fires when the
  completion rate surges past the crowd threshold, and a *relax* rule
  fires when the completion rate collapses (the signature of tight
  limits strangling a quiet workload), restoring the loose config.

The policy engine runs on the simulated clock, reading the same
``repro.obs`` registry the report is built from, so the whole
comparison -- including every rule firing -- is seeded and
byte-identical across repeats (asserted below by replaying the
adaptive run).
"""

from __future__ import annotations

import json
import os

from _bench_common import emit, run_once

from repro.policy import (
    DeltaRateSignal,
    Hysteresis,
    PolicyPlan,
    Rule,
    SetAdmission,
)
from repro.qos import AdmissionConfig, QosPlan
from repro.sim.units import MS
from repro.workloads import (
    RateSchedule,
    Scenario,
    SizeDistribution,
    SloSpec,
    Spike,
    TenantSpec,
    YCSB_B,
    ZipfianKeyModel,
    run_scenario,
)

#: CI smoke runs shrink the run via this env var (simulated ms).  The
#: adaptive-wins assertions need the full phases to play out, so they
#: gate on the default length.
DURATION_MS = int(os.environ.get("POLICY_TUNING_DURATION_MS", "500"))
#: Optional path to dump the three-way comparison JSON.
JSON_PATH = os.environ.get("POLICY_TUNING_JSON", "")

KEY_SPAN = 12_000
SEED = 17

#: The two static endpoints the policy moves between.  Loose is sized
#: for quiet-phase burst concurrency; tight is the crowd-optimal limit
#: (about deadline / service-time of the admitted queue).
LOOSE = dict(max_reads=64, max_writes=32)
TIGHT = dict(max_reads=8, max_writes=4)

#: Completion-rate thresholds (requests/s, summed over gets + puts).
#: Quiet load completes ~5,500/s; the crowd pushes completions past
#: 7,000/s before queues saturate; a tight config strangling quiet
#: load collapses completions under 5,000/s.
CROWD_RPS = 7_000.0
CALM_RPS = 6_200.0
RECOVER_RPS = 6_500.0
COLLAPSE_RPS = 5_000.0


def make_scenario() -> Scenario:
    duration = DURATION_MS * MS
    web = TenantSpec(
        name="web",
        mix=YCSB_B,
        keys=ZipfianKeyModel(0, KEY_SPAN),
        sizes=SizeDistribution(fixed=16 * 1024),
        arrivals=RateSchedule(
            base_rps=5_500.0,
            spikes=(
                # Flash crowd: +50% arrivals for the middle ~third.
                Spike(
                    at_ns=duration * 7 // 20,
                    duration_ns=duration * 3 // 10,
                    multiplier=1.5,
                ),
            ),
        ),
        slo=SloSpec(deadline_ns=30 * MS),
    )
    return Scenario(
        name="policy-tuning",
        tenants=(web,),
        duration_ns=duration,
        n_nodes=2,
        n_slices=4,
        key_span=KEY_SPAN,
        seed=SEED,
        preload_keys_per_slice=32,
        capacity_scale=0.002,
    )


def make_qos(config: dict) -> QosPlan:
    """A fresh QoS plan (plans hold per-run registries; never reuse)."""
    return QosPlan(admission=AdmissionConfig(**config))


def make_policy() -> PolicyPlan:
    """Tighten on the crowd's completion surge, relax on collapse."""
    done_rate = DeltaRateSignal(("tenant.web.gets", "tenant.web.puts"))
    return PolicyPlan(
        rules=(
            Rule(
                name="tighten",
                signal=done_rate,
                hysteresis=Hysteresis(upper=CROWD_RPS, lower=CALM_RPS),
                action=SetAdmission(**TIGHT),
                cooldown_ns=50 * MS,
            ),
            Rule(
                name="relax",
                signal=done_rate,
                # Falling edge, with a two-tick dwell so a single noisy
                # window can't flap the fleet back to loose mid-crowd.
                hysteresis=Hysteresis(
                    upper=RECOVER_RPS,
                    lower=COLLAPSE_RPS,
                    direction="below",
                    for_ns=30 * MS,
                ),
                action=SetAdmission(**LOOSE),
                cooldown_ns=50 * MS,
            ),
        ),
        period_ns=20 * MS,
        seed=SEED,
    )


def run_variant(config: dict, adaptive: bool = False):
    policy = make_policy() if adaptive else None
    return run_scenario(
        make_scenario(), qos=make_qos(config), policy=policy
    )


def run_comparison():
    return {
        "static-loose": run_variant(LOOSE),
        "static-tight": run_variant(TIGHT),
        "adaptive": run_variant(LOOSE, adaptive=True),
    }


def test_policy_tuning(benchmark):
    results = run_once(benchmark, run_comparison)

    # Byte-identical determinism: the adaptive run -- engine ticks, rule
    # firings, admission flips and all -- replays to the byte.
    replay = run_variant(LOOSE, adaptive=True)
    assert results["adaptive"].to_json() == replay.to_json(), (
        "adaptive run is not deterministic across reruns"
    )

    rows = []
    for label in ("static-loose", "static-tight", "adaptive"):
        report = results[label].tenants["web"]
        rows.append([
            label,
            report.offered,
            report.good,
            report.late,
            report.shed,
            f"{report.goodput_rps:.0f}",
            f"{report.p99_ms:.2f}",
            results[label].policy_fires,
        ])
    emit(
        benchmark,
        f"Self-tuning admission vs static: {DURATION_MS} ms, flash "
        "crowd x1.5 mid-run, deadline 30 ms",
        ["config", "offered", "good", "late", "shed", "goodput rps",
         "p99 ms", "fires"],
        rows,
        comparison={
            label: json.loads(result.to_json())
            for label, result in results.items()
        },
        duration_ms=DURATION_MS,
        seed=SEED,
    )
    if JSON_PATH:
        with open(JSON_PATH, "w") as fh:
            json.dump(
                {
                    label: json.loads(result.to_json())
                    for label, result in results.items()
                },
                fh,
                indent=2,
            )

    # Sanity: identical offered load in every variant (same seed, same
    # open-loop arrivals), and the policy actually closed the loop.
    offered = {r.tenants["web"].offered for r in results.values()}
    assert len(offered) == 1, f"offered load diverged: {offered}"
    needed_fires = 2 if DURATION_MS >= 400 else 1
    assert results["adaptive"].policy_fires >= needed_fires, (
        "expected the tighten/relax loop to fire"
    )
    assert results["static-loose"].policy_fires == 0
    assert results["static-tight"].policy_fires == 0

    if DURATION_MS < 400:
        return  # shrunk smoke run: phases too short to judge tuning

    loose = results["static-loose"].tenants["web"]
    tight = results["static-tight"].tenants["web"]
    adaptive = results["adaptive"].tenants["web"]
    # The phases genuinely disagree about the right static config:
    # loose pays in deadline misses during the crowd, tight pays in
    # sheds (and the collapsed tail) at quiet load.
    assert loose.late > 5 * tight.late or loose.late >= 100, (
        f"static-loose never collapsed in the crowd: late={loose.late}"
    )
    assert tight.shed > loose.shed, (
        "static-tight never paid for its limit at quiet load"
    )
    # The headline: self-tuning strictly beats the best static config
    # on goodput, while shedding the crowd instead of serving it late.
    best_static = max(loose.good, tight.good)
    assert adaptive.good > best_static, (
        f"adaptive goodput {adaptive.good} does not beat the best "
        f"static ({best_static})"
    )
    assert adaptive.late < loose.late, (
        "adaptive should convert loose's deadline misses into sheds"
    )

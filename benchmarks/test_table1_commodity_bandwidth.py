"""Table 1: raw vs measured bandwidth of the commodity SSDs.

Paper: reads deliver 73-81% of raw bandwidth, writes 41-51%, roughly
constant from the low-end SATA drive to the high-end PCIe drive.  The
measurement procedure is sequential reads/writes in erase-block units.

Our calibrated device models land read efficiencies in the paper's
band.  Write efficiencies come out higher for the PCIe drives (67-70%
vs the paper's ~48%) because we calibrate writes against Table 4's
fresh-device numbers, and Table 1's write measurements appear to
include background-GC steady-state effects the paper does not fully
specify; the *ordering* (write efficiency well below read efficiency,
low-end worst in absolute terms) is preserved.  See EXPERIMENTS.md.
"""

from _bench_common import BENCH_SCALE, emit, run_once

from repro.analysis.bandwidth import (
    raw_read_bandwidth_mb_s,
    raw_write_bandwidth_mb_s,
)
from repro.devices import (
    build_device,
    HUAWEI_GEN3_SPEC,
    INTEL_320_SPEC,
    MEMBLAZE_Q520_SPEC,
)
from repro.sim import MS, Simulator
from repro.workloads import drive_conventional_reads, drive_conventional_writes

SPECS = [INTEL_320_SPEC, HUAWEI_GEN3_SPEC, MEMBLAZE_Q520_SPEC]


def measure_device(spec):
    erase_block = spec.geometry.block_size
    sim = Simulator()
    device = build_device("conventional", sim, spec=spec, capacity_scale=BENCH_SCALE)
    device.prefill(0.8)
    read = drive_conventional_reads(
        sim, device, request_bytes=erase_block, duration_ns=60 * MS,
        queue_depth=8, sequential=True, warmup_ns=5 * MS,
    )
    # Fresh simulator for the write phase (independent measurement).
    sim = Simulator()
    from dataclasses import replace

    write_spec = replace(spec, dram_buffer_bytes=16 << 20)
    device = build_device("conventional", sim, spec=write_spec, capacity_scale=BENCH_SCALE)
    write = drive_conventional_writes(
        sim, device, request_bytes=erase_block, duration_ns=150 * MS,
        queue_depth=8, sequential=True, warmup_ns=30 * MS,
    )
    raw_read = raw_read_bandwidth_mb_s(
        spec.n_channels,
        spec.chips_per_channel * spec.geometry.planes_per_chip,
        spec.geometry,
        spec.timing,
    )
    raw_write = raw_write_bandwidth_mb_s(
        spec.n_channels,
        spec.chips_per_channel * spec.geometry.planes_per_chip,
        spec.geometry,
        spec.timing,
    )
    if spec.link.name.startswith("SATA"):
        raw_read = min(raw_read, 300.0)
        raw_write = min(raw_write, 300.0)
    return dict(
        name=spec.name, raw_read=raw_read, raw_write=raw_write,
        read=read, write=write,
    )


def test_table1_commodity_bandwidth(benchmark, paper):
    results = run_once(benchmark, lambda: [measure_device(s) for s in SPECS])
    rows = []
    for result in results:
        rows.append(
            [
                result["name"],
                f"{result['raw_read']:.0f}/{result['raw_write']:.0f}",
                f"{result['read']:.0f}/{result['write']:.0f}",
                f"{result['read'] / result['raw_read']:.2f}",
                f"{result['write'] / result['raw_write']:.2f}",
            ]
        )
    emit(
        benchmark,
        "Table 1: raw vs measured sequential bandwidths (MB/s)",
        ["device", "raw R/W", "measured R/W", "R ratio", "W ratio"],
        rows,
    )
    by_name = {result["name"]: result for result in results}
    for result in results:
        read_ratio = result["read"] / result["raw_read"]
        write_ratio = result["write"] / result["raw_write"]
        # Paper: reads 73-81% of raw; we allow a modestly wider band.
        assert 0.60 <= read_ratio <= 0.92, result
        # Writes always deliver a smaller share of raw than reads do.
        assert write_ratio < read_ratio, result
    # Absolute ordering across the product range (Table 1's columns).
    assert (
        by_name["intel-320"]["read"]
        < by_name["huawei-gen3"]["read"]
        <= by_name["memblaze-q520"]["read"] * 1.15
    )
    # Measured reads land within ~1.6x of the paper's numbers.
    for name in by_name:
        expected_read, _ = paper.TABLE1[name]["measured"]
        assert (
            expected_read / 1.6 <= by_name[name]["read"] <= expected_read * 1.6
        ), (name, by_name[name]["read"], expected_read)

"""Figure 14: client writes plus CCDB compaction vs slice count.

Paper: clients issue synchronous KV writes sized 100 KB - 1 MB; the
storage node turns them into 8 MB patches and compaction generates
internal reads and rewrites.  SDF's total device throughput grows with
slice count and peaks around 1 GB/s at ~16 slices with a healthy share
of compaction reads.  The Gen3 delivers higher throughput at 1 slice
(per-request striping) but does not scale, and as client writes rise
its compaction share collapses (< 15% at 32 slices) -- unsorted data
piles up.
"""

import numpy as np

from _bench_common import build_server, emit, run_once

from repro.cluster import BatchSpec, KVClient, Network, run_clients
from repro.sim import MS, Simulator
from repro.workloads import FIG14_WRITE_SIZES

SLICE_COUNTS = [1, 16, 32]
DURATION_NS = 1100 * MS
WARMUP_NS = 300 * MS


def write_workload(kind: str, n_slices: int):
    sim = Simulator()
    server = build_server(sim, kind, n_slices, capacity_scale=0.06)
    network = Network(sim)
    rng = np.random.default_rng(23)
    value_bytes = int(FIG14_WRITE_SIZES.mean_estimate(rng, 200))
    clients = [
        KVClient(
            sim,
            network,
            server,
            slice_,
            BatchSpec(batch_size=1, value_bytes=value_bytes, mode="write"),
            rng=np.random.default_rng(100 + slice_.slice_id),
            name=f"w{slice_.slice_id}",
        )
        for slice_ in server.slices
    ]
    run_clients(sim, clients, DURATION_NS, warmup_ns=WARMUP_NS)
    device_stats = (
        server.system.device.stats if kind == "sdf" else server.device.stats
    )
    window = (WARMUP_NS, DURATION_NS)
    read_mb = device_stats.read_meter.mb_per_s(*window)
    write_mb = device_stats.write_meter.mb_per_s(*window)
    return read_mb, write_mb


def test_fig14_write_compaction(benchmark):
    def run():
        return {
            (kind, n): write_workload(kind, n)
            for kind in ("sdf", "gen3")
            for n in SLICE_COUNTS
        }

    results = run_once(benchmark, run)
    rows = []
    for kind in ("sdf", "gen3"):
        for n in SLICE_COUNTS:
            read_mb, write_mb = results[(kind, n)]
            total = read_mb + write_mb
            rows.append(
                [
                    f"{kind}-{n}sl",
                    write_mb,
                    read_mb,
                    total,
                    read_mb / total if total else 0.0,
                ]
            )
    emit(
        benchmark,
        "Figure 14: device throughput under client writes (MB/s)",
        ["config", "writes", "reads (compaction)", "total", "read share"],
        rows,
    )
    sdf_total = {
        n: sum(results[("sdf", n)]) for n in SLICE_COUNTS
    }
    gen3_total = {
        n: sum(results[("gen3", n)]) for n in SLICE_COUNTS
    }
    # SDF scales with slice count toward ~1 GB/s.
    assert sdf_total[16] > 3 * sdf_total[1]
    assert sdf_total[16] > 700
    assert sdf_total[32] >= 0.8 * sdf_total[16]
    # Gen3 starts higher at 1 slice but does not scale.
    assert gen3_total[1] > sdf_total[1]
    assert gen3_total[32] < 1.6 * gen3_total[1]
    # SDF keeps a healthy compaction-read share at its peak; the Gen3's
    # compaction share at 32 slices is squeezed below the SDF's.
    sdf_share_16 = results[("sdf", 16)][0] / sdf_total[16]
    gen3_share_32 = results[("gen3", 32)][0] / gen3_total[32]
    assert sdf_share_16 > 0.10
    assert gen3_share_32 < sdf_share_16 + 0.05

"""Figure 12: request size (32/128/512 KB) x slice count at batch 44.

Paper: these sizes are web pages, thumbnails and images.  As long as
requests are served in parallel at different channels, SDF turns small
and large requests alike into high throughput (large ones moderately
higher); only the 1-slice case is as slow as the Gen3.  The Gen3 is
insensitive to slice count throughout.

Our divergence: the paper's Gen3 is device-bound at every size, so its
bars stay flat; our Gen3 model is bound by per-slice request handling
at the two smaller sizes and therefore gains from extra slices there.
The SDF-vs-Gen3 comparison at 8 slices -- the figure's point -- is
preserved at every size.
"""

from _bench_common import emit, measure_kv_reads, run_once

from repro.sim import MS
from repro.workloads import FIG12_REQUEST_SIZES

SLICE_COUNTS = [1, 8]
BATCH = 44


def test_fig12_request_size(benchmark):
    def run():
        out = {}
        for kind in ("sdf", "gen3"):
            for label, nbytes in FIG12_REQUEST_SIZES.items():
                for n_slices in SLICE_COUNTS:
                    out[(kind, label, n_slices)] = measure_kv_reads(
                        kind,
                        n_slices=n_slices,
                        batch_size=BATCH,
                        value_bytes=nbytes,
                        duration_ns=150 * MS,
                        keys_per_slice=192 if nbytes < 100_000 else 96,
                    )
        return out

    results = run_once(benchmark, run)
    rows = []
    for kind in ("sdf", "gen3"):
        for n_slices in SLICE_COUNTS:
            rows.append(
                [f"{kind}-{n_slices}sl"]
                + [
                    results[(kind, label, n_slices)]
                    for label in FIG12_REQUEST_SIZES
                ]
            )
    emit(
        benchmark,
        "Figure 12: throughput (MB/s), batch 44, by request size",
        ["config"] + [f"{label}" for label in FIG12_REQUEST_SIZES],
        rows,
    )
    for label in FIG12_REQUEST_SIZES:
        # SDF scales strongly from 1 to 8 slices at every size.
        assert (
            results[("sdf", label, 8)] > 2.5 * results[("sdf", label, 1)]
        ), label
        # At 8 slices SDF matches or beats Gen3 at every request size
        # (strictly beats it at the image size, where channel bandwidth
        # rather than per-request handling dominates).
        assert (
            results[("sdf", label, 8)] >= 0.85 * results[("gen3", label, 8)]
        ), label
    assert results[("sdf", "image", 8)] > results[("gen3", "image", 8)]
    # Gen3 is device-bound (slice-insensitive) at the large image size;
    # at smaller sizes our Gen3 model is bound by per-slice request
    # handling and scales somewhat with slices, unlike the paper's
    # device-bound flat bars -- see the module docstring.
    gen_1 = results[("gen3", "image", 1)]
    gen_8 = results[("gen3", "image", 8)]
    assert abs(gen_8 - gen_1) / max(gen_1, gen_8) < 0.45
    # Larger requests give SDF moderately higher throughput.
    assert (
        results[("sdf", "image", 8)] >= results[("sdf", "web-page", 8)]
    )

"""Fleet-day scenario: every plane at once, judged per tenant.

The paper's system serves "heavy traffic from millions of users" on
shared flash, and its argument is architectural: predictable service
under skew, traffic waves and hardware faults *simultaneously*, not in
isolated microbenchmarks.  This benchmark runs the production workload
engine's fleet-day scenario over a small SDF cluster:

* three tenants -- a latency-sensitive read-mostly web tier on a
  zipfian keyspace with a diurnal wave, a write-heavy bulk tier that
  gets hit by a flash crowd, and a scan-heavy analytics tier on a
  shifting hot set;
* a crash burst on one node and a brownout on another, mid-wave;
* the QoS plane (admission control + write stalls + circuit breakers)
  and the control-plane rebalancer active throughout.

Reported per tenant, through ``repro.obs``: goodput (completed within
the tenant's deadline), p50/p99 latency, and shed counts.  The run is
seeded and byte-identical across repeats -- asserted below by running
the whole fleet day twice.
"""

from __future__ import annotations

import json
import os

from _bench_common import emit, run_once

from repro.obs import Observability
from repro.qos import (
    AdmissionConfig,
    BreakerConfig,
    QosPlan,
    WriteStallConfig,
)
from repro.sim.units import MS
from repro.workloads import (
    DiurnalWave,
    FaultBurst,
    HotSetShiftKeyModel,
    RateSchedule,
    Scenario,
    SizeDistribution,
    SloSpec,
    Spike,
    TenantSpec,
    UniformKeyModel,
    YCSB_A,
    YCSB_B,
    YCSB_E,
    ZipfianKeyModel,
    run_scenario,
)

#: CI smoke runs shrink the day via this env var (simulated ms).
DURATION_MS = int(os.environ.get("FLEET_DAY_DURATION_MS", "600"))
#: Optional path to dump the canonical per-tenant JSON report.
JSON_PATH = os.environ.get("FLEET_DAY_JSON", "")

KEY_SPAN = 60_000
SEED = 29


def make_scenario() -> Scenario:
    duration = DURATION_MS * MS
    tenants = (
        # Latency-sensitive web tier: read-mostly, zipfian-hot keys,
        # load swells and ebbs through the day.  Its keyspace covers
        # only the first third of the cluster's range -- tenants rarely
        # span a whole fleet -- which is what gives the rebalancer
        # node-level skew to chase.
        TenantSpec(
            name="web",
            mix=YCSB_B,
            keys=ZipfianKeyModel(0, KEY_SPAN // 3, theta=0.99),
            sizes=SizeDistribution(fixed=16 * 1024),
            arrivals=RateSchedule(
                base_rps=400.0,
                wave=DiurnalWave(amplitude=0.4, period_ns=duration),
            ),
            slo=SloSpec(
                deadline_ns=40 * MS,
                target_p99_ns=40 * MS,
                min_goodput_rps=150.0,
            ),
        ),
        # Bulk ingest tier: write-heavy, uniform keys, and a flash
        # crowd that triples its rate mid-day.
        TenantSpec(
            name="bulk",
            mix=YCSB_A,
            keys=UniformKeyModel(0, KEY_SPAN),
            sizes=SizeDistribution(lo=32 * 1024, hi=128 * 1024),
            arrivals=RateSchedule(
                base_rps=120.0,
                spikes=(
                    Spike(
                        at_ns=duration * 2 // 5,
                        duration_ns=duration // 5,
                        multiplier=3.0,
                    ),
                ),
            ),
            slo=SloSpec(deadline_ns=80 * MS),
        ),
        # Analytics tier: scan-heavy over a hot set that shifts.  A
        # scan's backing read is a whole 8 MB patch (~200 ms on one
        # channel), so its rate and deadline sit in patch-read units,
        # not point-read units.
        TenantSpec(
            name="analytics",
            mix=YCSB_E,
            keys=HotSetShiftKeyModel(
                0,
                KEY_SPAN,
                hot_keys=8_192,
                hot_weight=0.5,
                shift_period_ns=duration // 3,
            ),
            sizes=SizeDistribution(fixed=8 * 1024),
            arrivals=RateSchedule(base_rps=12.0),
            slo=SloSpec(deadline_ns=600 * MS),
            scan_span=128,
        ),
    )
    return Scenario(
        name="fleet-day",
        tenants=tenants,
        duration_ns=duration,
        n_nodes=3,
        n_slices=6,
        key_span=KEY_SPAN,
        seed=SEED,
        faults=(
            # One node crashes during the wave's rising edge; another
            # browns out (10x slower device) during the flash crowd.
            FaultBurst(
                node=1,
                at_ns=duration * 2 // 5,
                duration_ns=duration // 6,
                kind="crash",
            ),
            FaultBurst(
                node=2,
                at_ns=duration // 2,
                duration_ns=duration // 6,
                kind="brownout",
                multiplier=10.0,
            ),
        ),
        rebalance_every_ns=duration // 4,
        rebalance_imbalance=1.8,
    )


def make_qos() -> QosPlan:
    """A fresh QoS plan (plans hold per-run registries; never reuse)."""
    return QosPlan(
        admission=AdmissionConfig(
            max_reads=64, max_writes=32, max_scans=16
        ),
        write_stall=WriteStallConfig(),
        breaker=BreakerConfig(failure_threshold=5, reset_ns=50 * MS),
    )


def run_fleet_day():
    obs = Observability()
    result = run_scenario(make_scenario(), qos=make_qos(), obs=obs)
    return result


def test_fleet_day(benchmark):
    result = run_once(benchmark, run_fleet_day)

    # Byte-identical determinism: the same scenario + seed replayed from
    # scratch produces the same canonical report, to the byte.
    replay = run_fleet_day()
    assert result.to_json() == replay.to_json(), (
        "fleet-day scenario is not deterministic across reruns"
    )

    rows = []
    for name, report in sorted(result.tenants.items()):
        rows.append([
            name,
            report.offered,
            report.good,
            report.late,
            report.shed,
            f"{report.goodput_rps:.0f}",
            f"{report.p50_ms:.2f}",
            f"{report.p99_ms:.2f}",
            f"{report.deadline_ms:.0f}",
        ])
    emit(
        benchmark,
        f"Fleet day: {DURATION_MS} ms, 3 nodes, 3 tenants, crash + "
        "brownout bursts, rebalancer on",
        ["tenant", "offered", "good", "late", "shed", "goodput rps",
         "p50 ms", "p99 ms", "deadline ms"],
        rows,
        report=json.loads(result.to_json()),
        duration_ms=DURATION_MS,
        seed=SEED,
    )
    if JSON_PATH:
        with open(JSON_PATH, "w") as fh:
            fh.write(result.to_json())

    # Both scheduled faults fired.
    assert result.faults_fired == 2, (
        f"expected crash + brownout to fire, got {result.faults_fired}"
    )
    # The rebalancer actually moved load (the crash + skew guarantee an
    # imbalance for it to chase).
    assert result.rebalance_moves + result.migrations_completed >= 1, (
        "the rebalancer never moved a slice"
    )
    # Every tenant made progress and was measured through repro.obs.
    snapshot = result.snapshot
    for tenant in ("web", "bulk", "analytics"):
        report = result.tenants[tenant]
        assert report.offered > 0, f"{tenant}: no load offered"
        assert report.good > 0, f"{tenant}: nothing completed in time"
        latency = snapshot.get(f"tenant.{tenant}.request_ns")
        assert latency and latency["count"] > 0, (
            f"{tenant}: no per-tenant latency histogram in the registry"
        )
        assert report.p99_ms > 0.0, f"{tenant}: p99 not reported"
    # Server-side per-tenant labels flowed through the request path.
    assert any(
        key.startswith("tenant.web.get") for key in snapshot
    ), "per-tenant server-side request labels missing from obs"
    # The system drained: the clock stopped at the last completed event.
    assert result.sim_end_ns > 0

"""Headline claims (S1/S5): bandwidth, capacity and cost utilization.

* "SDF can deliver approximately 95% of the raw flash bandwidth" --
  measured write throughput vs the raw write bandwidth (reads are
  PCIe-limited below raw, exactly as in the paper).
* "provide 99% of the flash capacity for user data" vs the commodity
  50-70%.
* "increases I/O bandwidth by 300%" vs the commodity-SSD-based system
  (which realized ~50% of raw, S1).
* "reduces per-GB hardware cost by 50% on average" (20-50% depending on
  the over-provisioning displaced).
"""

from _bench_common import emit, run_once

from repro.analysis import (
    commodity_capacity,
    sdf_capacity,
    sdf_raw_bandwidths,
)
from repro.analysis.cost import cost_reduction_vs_commodity
from repro.devices import build_device
from repro.sim import MS, Simulator
from repro.workloads import drive_sdf_writes


def test_claims_capacity_cost(benchmark, paper):
    def run():
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=0.004)
        drive_sdf_writes(sim, sdf, duration_ns=900 * MS, warmup_ns=150 * MS)
        write_gb_s = sdf.link.write_meter.mb_per_s(150 * MS, 900 * MS) / 1000
        # Capacity utilization is quantized by block count, so measure
        # it on a full-geometry (704 GB) device: 2027/2048 blocks ~ 99%.
        full = build_device("sdf", Simulator(), capacity_scale=1.0)
        return write_gb_s, full.capacity_utilization

    write_gb_s, utilization = run_once(benchmark, run)
    raw_read, raw_write = sdf_raw_bandwidths()
    bandwidth_fraction = write_gb_s * 1000 / raw_write
    sdf_user = sdf_capacity().user_fraction
    commodity_low = commodity_capacity(op_ratio=0.40).user_fraction
    commodity_high = commodity_capacity(op_ratio=0.25).user_fraction
    saving_avg = cost_reduction_vs_commodity(
        sdf_capacity(), commodity_capacity(op_ratio=0.40)
    )
    saving_low = cost_reduction_vs_commodity(
        sdf_capacity(), commodity_capacity(op_ratio=0.10)
    )
    # The "300%" claim: commodity systems realized ~50% of raw bandwidth
    # in production (S1); SDF realizes ~95%+ *and* exposes channels so
    # the realized:realized ratio on the paper's workloads is ~3-4x
    # (Figure 13: 1.5 GB/s vs ~0.5 GB/s).  Here we report the
    # device-level fraction.
    rows = [
        ["raw write bandwidth (MB/s)", raw_write],
        ["measured sustained write (MB/s)", write_gb_s * 1000],
        ["fraction of raw delivered", bandwidth_fraction],
        ["SDF user capacity fraction", utilization],
        ["commodity user fraction (40% OP)", commodity_low],
        ["commodity user fraction (25% OP)", commodity_high],
        ["per-GB cost saving vs 40% OP", saving_avg],
        ["per-GB cost saving vs 10% OP", saving_low],
    ]
    emit(
        benchmark,
        "Headline claims: bandwidth/capacity/cost utilization",
        ["quantity", "value"],
        rows,
    )
    # ~95% of raw bandwidth delivered (paper's claim; our DMA meter may
    # lead the flash programs slightly).
    assert bandwidth_fraction > 0.90
    # 99% capacity for user data vs 50-70% commodity.
    assert utilization >= 0.975
    assert sdf_user >= 0.985
    assert 0.50 <= commodity_low <= 0.60
    assert 0.60 <= commodity_high <= 0.70
    # Cost: ~50% against heavy over-provisioning, 20%+ against light.
    assert 0.40 <= saving_avg <= 0.60
    assert saving_low >= 0.18

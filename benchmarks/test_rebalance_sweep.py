"""1 -> N scale-out sweep: elastic rebalancing under live traffic.

The paper's deployment premise is web-scale elasticity: capacity is
added by enrolling nodes, and data follows without downtime.  This
sweep starts every slice on one node, offers a fixed open-loop mixed
workload (below the node's saturation point, as a provisioned
production cluster runs), then lets the load-driven rebalancer spread
slices across two freshly added empty nodes *while the workload keeps
running*.

Reported (and asserted):

* **steady goodput** -- completed requests/s before any migration;
* **migration goodput** -- completed requests/s over the whole
  rebalancing window, which must stay >= 80% of steady state (online
  migration is close to transparent);
* **placement + load spread** -- the rebalancer actually moves slices
  and the original node's share of served bytes drops accordingly.

CI runs this file with ``--benchmark-json`` and uploads the result, so
the goodput ratio is tracked across commits.
"""

from __future__ import annotations

import os

import numpy as np

from _bench_common import emit, run_once

from repro.cluster import ClusterController, Network, build_sdf_server
from repro.errors import TransientFault
from repro.kv.slice import KeyRange
from repro.sim import MS, S, Simulator

VALUE = b"b" * 2048
N_SLICES = 4
SPAN = 1_000  # key range per slice
KEYS_PER_SLICE = 64
N_NODES = 3
#: Offered load (requests/s, 50/50 read/write), ~40% of one node's
#: measured closed-loop capacity -- the provisioned-headroom regime.
OFFERED_RPS = int(os.environ.get("REBALANCE_OFFERED_RPS", "400"))
N_ARRIVALS = 4  # independent arrival processes
#: Steady-state measurement window (shrunk in CI smoke via env).
STEADY_NS = int(os.environ.get("REBALANCE_STEADY_MS", "400")) * MS
#: Traffic accumulated between rebalancer passes (load watermarks).
PASS_NS = 50 * MS
#: Fixed rebalancer pass budget: every move is followed by a cooldown
#: pass, so a first-None stop would quit after a single move.
N_PASSES = 8


def build_cluster():
    sim = Simulator()
    network = Network(sim)
    ctrl = ClusterController(sim, network)
    for i in range(N_NODES):
        ctrl.add_node(
            f"n{i}",
            build_sdf_server(sim, [], capacity_scale=0.01, n_channels=4),
        )
    for i in range(N_SLICES):
        ctrl.create_slice(
            KeyRange(i * SPAN, (i + 1) * SPAN),
            on=["n0"],
            memtable_bytes=256 * 1024,
        )

    def preload():
        for i in range(N_SLICES):
            for key in range(i * SPAN, i * SPAN + KEYS_PER_SLICE):
                yield from ctrl.node("n0").handle_put(key, VALUE)

    sim.run(until=sim.process(preload()))
    sim.run(until=sim.now + 200 * MS)  # flushes + compaction settle
    return sim, ctrl


def node_bytes(ctrl):
    return {
        name: sum(
            s.bytes_read.value + s.bytes_written.value
            for s in server.slices
        )
        for name, server in ctrl.nodes.items()
    }


def sweep():
    sim, ctrl = build_cluster()
    stats = {"completed": 0, "retries": 0}
    stop = {"flag": False}

    def one_request(view, key, write):
        for _attempt in range(300):
            try:
                server, entry = view.lookup(key)
                if write:
                    yield from server.handle_put(
                        key, VALUE, epoch=entry.epoch
                    )
                else:
                    yield from server.handle_get(key, epoch=entry.epoch)
            except (TransientFault, KeyError):
                stats["retries"] += 1
                yield sim.timeout(2 * MS)
                view.refresh()
                continue
            stats["completed"] += 1
            return

    def arrivals(rng):
        """Open-loop Poisson-less arrivals at a fixed rate: the offered
        load does not back off when the cluster slows down."""
        view = ctrl.view()
        period = (S * N_ARRIVALS) // OFFERED_RPS
        while not stop["flag"]:
            key = int(rng.integers(0, N_SLICES * SPAN))
            key = (key // SPAN) * SPAN + key % KEYS_PER_SLICE
            write = bool(rng.random() < 0.5)
            sim.process(one_request(view, key, write))
            yield sim.timeout(period)

    for i in range(N_ARRIVALS):
        sim.process(arrivals(np.random.default_rng(1000 + i)))

    # -- steady state on one node --
    t0 = sim.now
    sim.run(until=t0 + STEADY_NS)
    steady_completed = stats["completed"]
    steady_goodput = steady_completed * S / STEADY_NS

    # -- rebalance while serving --
    moves = []

    def rebalance_all():
        for _ in range(N_PASSES):
            yield sim.timeout(PASS_NS)  # accumulate fresh load deltas
            # imbalance=2.5: with uniform per-slice load a 2-vs-1 slice
            # split sits exactly at ratio 2.0, so the default threshold
            # flaps on sampling noise.
            move = yield from ctrl.rebalance(imbalance=2.5)
            if move is not None:
                moves.append(move)

    mig_start = sim.now
    mig_completed0 = stats["completed"]
    sim.run(until=sim.process(rebalance_all()))
    mig_window = sim.now - mig_start
    mig_goodput = (stats["completed"] - mig_completed0) * S / mig_window

    # -- balanced steady state --
    bytes0 = node_bytes(ctrl)
    t2 = sim.now
    sim.run(until=t2 + STEADY_NS)
    stop["flag"] = True
    sim.run(until=sim.now + 50 * MS)  # drain in-flight requests
    bytes1 = node_bytes(ctrl)
    served = {n: bytes1[n] - bytes0[n] for n in bytes1}
    total_served = max(sum(served.values()), 1)
    placement = {
        name: len(server.slices) for name, server in ctrl.nodes.items()
    }
    return dict(
        steady_goodput=steady_goodput,
        mig_goodput=mig_goodput,
        mig_window_ms=mig_window / MS,
        moves=moves,
        placement=placement,
        n0_share=served["n0"] / total_served,
        retries=stats["retries"],
        migrated_mb=ctrl.bytes_migrated.value / (1 << 20),
    )


def test_scale_out_goodput_and_balance(benchmark):
    result = run_once(benchmark, sweep)
    emit(
        benchmark,
        "1 -> 3 scale-out under live mixed load",
        ["metric", "value"],
        [
            ["steady goodput (req/s)", f"{result['steady_goodput']:.0f}"],
            ["goodput during rebalance", f"{result['mig_goodput']:.0f}"],
            [
                "ratio",
                f"{result['mig_goodput'] / result['steady_goodput']:.2f}",
            ],
            ["rebalance window (ms)", f"{result['mig_window_ms']:.0f}"],
            ["moves", str(result["moves"])],
            ["final placement", str(result["placement"])],
            ["n0 share of bytes after", f"{result['n0_share']:.2f}"],
            ["redirect/stall retries", str(result["retries"])],
            ["data migrated (MB)", f"{result['migrated_mb']:.0f}"],
        ],
        goodput_ratio=result["mig_goodput"] / result["steady_goodput"],
        moves=len(result["moves"]),
    )
    # The rebalancer spread slices over the new nodes...
    assert len(result["moves"]) >= 2
    assert all(count >= 1 for count in result["placement"].values())
    # ...the original node no longer serves the whole load...
    assert result["n0_share"] < 0.75
    # ...and migration was close to transparent: goodput during the
    # window stays within 80% of steady state (the PR's acceptance bar).
    assert result["mig_goodput"] >= 0.8 * result["steady_goodput"]

"""Shared helpers for the reproduction benchmarks.

Each benchmark file regenerates one table or figure from the paper's
evaluation.  Conventions:

* simulations are scaled down in *capacity* (fewer blocks per plane)
  but never in timing, page/block sizes, channel counts or request
  sizes -- so bandwidths and latencies are directly comparable;
* each benchmark prints the same rows/series the paper reports (run
  with ``-s`` to see them) and records them in ``benchmark.extra_info``;
* each asserts the paper's *shape*: who wins, roughly by how much, and
  where curves saturate or cross.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table

#: Capacity scale used by most benchmarks: 2048 -> 16 blocks per plane.
BENCH_SCALE = 0.008


def run_once(benchmark, fn):
    """Run a deterministic simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(benchmark, title, headers, rows, **extra):
    """Print a paper-style table and stash it in the benchmark report."""
    table = format_table(headers, rows, title=title)
    print("\n" + table)
    benchmark.extra_info["table"] = table
    for key, value in extra.items():
        benchmark.extra_info[key] = value


class PAPER:
    """Reference values transcribed from the paper (for shape checks)."""

    # Table 1 (MB/s): raw and measured sequential bandwidths.
    TABLE1 = {
        "intel-320": dict(raw=(300, 300), measured=(219, 153)),
        "huawei-gen3": dict(raw=(1600, 950), measured=(1200, 460)),
        "memblaze-q520": dict(raw=(1600, 1500), measured=(1300, 620)),
    }
    # Table 4 (GB/s).
    TABLE4 = {
        "sdf": {"8k": 1.23, "16k": 1.42, "64k": 1.51, "8m": 1.59, "w8m": 0.96},
        "gen3": {"8k": 0.92, "16k": 1.02, "64k": 1.15, "8m": 1.20, "w8m": 0.67},
        "intel": {"8k": 0.17, "16k": 0.20, "64k": 0.22, "8m": 0.22, "w8m": 0.13},
    }
    # Figure 8 (ms).
    FIG8 = dict(gen3_avg=73, gen3_max=650, sdf_avg=383)
    # S3.2 architectural limits (GB/s).
    PCIE_READ = 1.61
    PCIE_WRITE = 1.40
    SDF_RAW_READ = 1.67
    SDF_RAW_WRITE = 1.01


# --- cluster experiment helpers (Figures 10-14) ----------------------------

import numpy as np

from repro.cluster import (
    BatchSpec,
    KVClient,
    Network,
    build_storage_server,
    run_clients,
)
from repro.kv.slice import Slice, partition_key_space

KEY_SPAN = 1_000_000


def make_slices(n_slices, memtable_bytes=None):
    from repro.kv.lsm import LSMTree

    return [
        Slice(
            index,
            key_range,
            lsm=(
                LSMTree(memtable_bytes=memtable_bytes)
                if memtable_bytes
                else None
            ),
        )
        for index, key_range in enumerate(
            partition_key_space(n_slices, 0, KEY_SPAN)
        )
    ]


def build_server(sim, kind, n_slices, capacity_scale=0.03,
                 memtable_bytes=None, **kwargs):
    """A storage server over any device-zoo kind.

    ``kind`` is a registered device kind ("sdf", "conventional",
    "dftl", "hybrid", "mqftl", "zoned") or one of the legacy aliases
    "gen3" (the Huawei conventional baseline) / "intel" (the Intel 320
    spec at a larger scale so a patch extent still fits).
    """
    slices = make_slices(n_slices, memtable_bytes=memtable_bytes)
    if kind == "gen3":
        kind = "conventional"
    elif kind == "intel":
        from repro.devices import INTEL_320_SPEC

        return build_storage_server(
            sim, slices, device_kind="conventional", spec=INTEL_320_SPEC,
            n_channels=INTEL_320_SPEC.n_channels,
            capacity_scale=max(capacity_scale * 4, 0.05), **kwargs
        )
    return build_storage_server(
        sim, slices, device_kind=kind, capacity_scale=capacity_scale, **kwargs
    )


def preload_keys(server, keys_per_slice, value_bytes):
    """Populate every slice; returns {slice_id: [keys]}."""
    keys = {}
    for slice_ in server.slices:
        lo = slice_.key_range.lo
        slice_keys = [lo + index for index in range(keys_per_slice)]
        server.preload(slice_, slice_keys, value_bytes)
        keys[slice_.slice_id] = slice_keys
    return keys


def measure_kv_reads(
    kind,
    n_slices,
    batch_size,
    value_bytes,
    duration_ns,
    keys_per_slice=None,
    warmup_ns=None,
    seed=11,
    target_patches_per_slice=45,
):
    """Aggregate MB/s for the paper's batched random-read workload.

    Each slice is preloaded with enough values to span roughly
    ``target_patches_per_slice`` 8 MB patches, so its data -- like the
    production repository's -- is spread over every SDF channel.
    """
    from repro.sim import Simulator

    sim = Simulator()
    if keys_per_slice is None:
        per_patch = max(1, (8 << 20) // (value_bytes + 64))
        keys_per_slice = target_patches_per_slice * per_patch
    capacity_scale = max(
        0.03, 3.0 * n_slices * keys_per_slice * value_bytes / (700e9)
    )
    server = build_server(sim, kind, n_slices, capacity_scale=capacity_scale)
    keys = preload_keys(server, keys_per_slice, value_bytes)
    network = Network(sim)
    clients = [
        KVClient(
            sim,
            network,
            server,
            slice_,
            BatchSpec(batch_size=batch_size, value_bytes=value_bytes,
                      mode="read"),
            keys=keys[slice_.slice_id],
            rng=np.random.default_rng(seed + slice_.slice_id),
            name=f"client{slice_.slice_id}",
        )
        for slice_ in server.slices
    ]
    if warmup_ns is None:
        warmup_ns = duration_ns // 5
    run_clients(sim, clients, duration_ns, warmup_ns=warmup_ns)
    # Measure at the device: client batch completions are far too coarse
    # once a batch spans a large fraction of the run.
    device_stats = (
        server.system.device.stats
        if hasattr(server, "system")
        else server.device.stats
    )
    start = warmup_ns
    return device_stats.read_meter.mb_per_s(start, duration_ns)

"""Figure 10: one slice, random 512 KB KV reads, batch size 1..44.

Paper: with a single slice the Gen3 wins at small batch sizes (245 MB/s
at batch 1 vs SDF's 38 MB/s: striping parallelizes even one request),
and SDF only catches up once the batch size approaches 32-44 so
different sub-requests land on different channels.

Our reproduction nails both batch-1 endpoints (SDF ~37, Gen3 ~250-300
MB/s) and SDF's steady ramp, but SDF's batch-44 point reaches ~40-50%
of the Gen3 rather than parity: with 44 random sub-requests over 44
channels, the maximally-loaded channel serves ~4 of them serially --
the very imbalance the paper itself flags ("the random requests cannot
be evenly distributed over the channels when the request count is only
slightly larger than the channel count").  The decisive SDF win appears
at higher concurrency (Figures 11-13).  See EXPERIMENTS.md.
"""

from _bench_common import emit, measure_kv_reads, run_once

from repro.sim import KIB, MS

BATCH_SIZES = [1, 4, 8, 16, 32, 44]
VALUE_BYTES = 512 * KIB


def test_fig10_single_slice_batch(benchmark):
    def run():
        out = {}
        for kind in ("sdf", "gen3"):
            for batch in BATCH_SIZES:
                duration = 250 * MS if batch <= 8 else 400 * MS
                out[(kind, batch)] = measure_kv_reads(
                    kind,
                    n_slices=1,
                    batch_size=batch,
                    value_bytes=VALUE_BYTES,
                    duration_ns=duration,
                )
        return out

    results = run_once(benchmark, run)
    rows = [
        [batch, results[("sdf", batch)], results[("gen3", batch)]]
        for batch in BATCH_SIZES
    ]
    emit(
        benchmark,
        "Figure 10: 1 slice, random 512 KB reads (MB/s) vs batch size",
        ["batch", "SDF", "Gen3"],
        rows,
    )
    sdf = {b: results[("sdf", b)] for b in BATCH_SIZES}
    gen3 = {b: results[("gen3", b)] for b in BATCH_SIZES}
    # Batch 1: Gen3 far ahead (paper: 245 vs 38 MB/s).
    assert gen3[1] > 3 * sdf[1]
    assert 20 <= sdf[1] <= 60
    assert 150 <= gen3[1] <= 500
    # SDF throughput rises steadily with batch size (allowing for
    # channel-collision noise between adjacent large batch sizes) ...
    assert sdf[44] > 7 * sdf[1]
    for small, large in zip(BATCH_SIZES, BATCH_SIZES[1:]):
        assert sdf[large] > sdf[small] * 0.85, (small, large)
    assert sdf[44] >= sdf[16]
    # ... closing most of the gap to the Gen3 by batch 44 (residual
    # shortfall = channel-load imbalance; see module docstring).
    assert sdf[44] >= 0.28 * gen3[44]
    # Gen3 is batch-insensitive by comparison (its parallelism is
    # per-request, not per-batch): < 5x total growth across the sweep.
    assert gen3[44] < 5 * gen3[1]

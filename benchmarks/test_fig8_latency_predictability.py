"""Figure 8: write-latency predictability on nearly-full devices.

Paper: the Huawei Gen3 serving 8 MB writes shows latencies swinging
between 7 ms and 650 ms (average 73 ms) as garbage collection and the
DRAM buffer interact; with 352 MB requests the variance drops to ~25% of
the (2.94 s) average.  SDF's erase+write sequence costs a flat ~383 ms
with "little variation".
"""

from dataclasses import replace

import numpy as np

from _bench_common import emit, run_once

from repro.devices import build_device, ConventionalSSD, HUAWEI_GEN3_SPEC
from repro.sim import MIB, MS, Simulator


def gen3_write_latencies(request_mb: int, n_requests: int):
    """Sustained writes against a nearly-full, GC-active Gen3."""
    sim = Simulator()
    spec = replace(
        HUAWEI_GEN3_SPEC.scaled(0.006),
        dram_buffer_bytes=48 << 20,  # scaled with device capacity
        parity_group_size=None,
        n_channels=8,
    )
    device = ConventionalSSD(sim, spec)
    device.prefill(1.0)
    rng = np.random.default_rng(5)
    # Drive the FTL to its GC threshold so the timed writes all contend.
    while max(
        device.ftl.free_blocks(c) for c in range(spec.n_channels)
    ) > device.ftl.gc_free_blocks + 2:
        device.ftl.write(int(rng.integers(device.user_pages)), None)

    pages = request_mb * MIB // device.page_size

    def writer():
        for index in range(n_requests):
            start = int(rng.integers(device.user_pages - pages))
            yield from device.write(start, pages)

    sim.run(until=sim.process(writer()))
    return device.stats.write_latency


def sdf_write_latencies(n_requests: int, obs=None):
    """Erase+write cycles on a full SDF, spread over its channels.

    The paper's Figure 8 latency *includes* the explicit erase performed
    immediately before each write, so we time the whole cycle.
    """
    from repro.obs import attach_device
    from repro.sim.stats import LatencyRecorder

    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=8)
    if obs is not None:
        attach_device(obs, sdf)
    sdf.prefill(1.0)
    recorder = LatencyRecorder("sdf.erase+write")

    def writer(channel):
        for block in range(n_requests // 8):
            start = sim.now
            yield from channel.write_fresh(block % channel.n_logical_blocks)
            recorder.record(sim.now - start)

    procs = [sim.process(writer(channel)) for channel in sdf.channels]
    sim.run(until=sim.all_of(procs))
    return recorder


def test_fig8_latency_predictability(benchmark, paper):
    from repro.obs import Observability

    # Metrics-only attach: snapshot callbacks never schedule simulated
    # events, so the measured latencies match an unattached run.
    obs = Observability()

    def run():
        return (
            gen3_write_latencies(8, 48),
            gen3_write_latencies(88, 6),  # scaled stand-in for 352 MB
            sdf_write_latencies(48, obs=obs),
        )

    gen3_8mb, gen3_large, sdf = run_once(benchmark, run)
    # The debugging view behind the figure: erase work and wait/busy
    # accounting per channel are visible in the metrics snapshot.
    snapshot = obs.metrics.snapshot()
    for channel in range(8):
        assert snapshot[f"ftl.ch{channel}.erases"] > 0
        assert 0.0 <= snapshot[f"channel{channel}.utilization"] <= 1.0
        assert snapshot[f"wear.ch{channel}.max_erase_count"] >= 1
        assert snapshot[f"wear.ch{channel}.spread"] >= 0
    rows = [
        [
            name,
            rec.mean / 1e6,
            rec.minimum / 1e6,
            rec.maximum / 1e6,
            rec.coefficient_of_variation,
        ]
        for name, rec in [
            ("gen3 8MB", gen3_8mb),
            ("gen3 88MB (352MB-style)", gen3_large),
            ("sdf 8MB erase+write", sdf),
        ]
    ]
    emit(
        benchmark,
        "Figure 8: write latency (ms): mean/min/max and CoV",
        ["workload", "mean", "min", "max", "CoV"],
        rows,
    )
    # Gen3 8 MB: wildly variable (paper: 7-650 ms; CoV >~ 1).
    assert gen3_8mb.maximum > 4 * gen3_8mb.minimum
    assert gen3_8mb.coefficient_of_variation > 0.4
    # Whole-device-width requests smooth the variance out.
    assert (
        gen3_large.coefficient_of_variation
        < gen3_8mb.coefficient_of_variation / 1.3
    )
    # SDF: flat ~383 ms erase+write with tiny variation.
    assert sdf.coefficient_of_variation < 0.02
    assert 0.85 * paper.FIG8["sdf_avg"] <= sdf.mean / 1e6 <= 1.15 * paper.FIG8[
        "sdf_avg"
    ]
    # And the SDF mean is *predictable*, not necessarily small: the Gen3
    # buffer often acks faster, but with 10-100x spread.
    assert sdf.maximum - sdf.minimum < 0.1 * sdf.mean

"""Ablations of the design choices DESIGN.md calls out.

Each sub-benchmark isolates one SDF design decision and shows the
trade-off the paper argues for:

1. **Write-unit size**: writes in erase-block multiples keep write
   amplification at exactly 1; sub-block striped writes re-grow it.
2. **Striping unit** (conventional SSD): 8 KB striping parallelizes a
   single request; erase-block striping does not.
3. **Erase scheduling**: background erase keeps tBERS off the write
   path; inline erase adds ~3 ms to every write.
4. **DRAM write-back buffer**: acks in ms instead of hundreds of ms --
   at the price of Figure 8's unpredictability.
5. **Placement policy** (paper future work): load-balance-aware
   placement reaches peak throughput at lower concurrency than the
   deployed round-robin hash under a skewed workload.
"""

import numpy as np

from _bench_common import emit, run_once

from repro.core import ErasePolicy, LeastLoadedPlacement
from repro.core.api import build_sdf_system
from repro.devices import build_device, ConventionalSSD, HUAWEI_GEN3_SPEC
from repro.ftl import PageFTL
from repro.nand import FlashArray, FlashGeometry, NandTiming
from repro.sim import AllOf, MS, Simulator


def wa_for_write_unit(write_pages: int) -> float:
    """Steady-state WA when the host writes aligned units of N pages."""
    geometry = FlashGeometry(
        page_size=8192, pages_per_block=32, blocks_per_plane=32,
        planes_per_chip=2,
    )
    array = FlashArray(1, 1, geometry, NandTiming())
    ftl = PageFTL(array, op_ratio=0.12, store_data=False)
    rng = np.random.default_rng(3)
    units = ftl.user_pages // write_pages
    for unit in range(units):  # fill once
        for page in range(write_pages):
            ftl.write(unit * write_pages + page, None)
    for _ in range(3 * units):  # steady-state churn, unit-aligned
        unit = int(rng.integers(units))
        for page in range(write_pages):
            ftl.write(unit * write_pages + page, None)
    return ftl.write_amplification


def single_request_latency_ms(stripe_pages: int) -> float:
    """512 KB read latency on a Gen3 variant with a given striping unit."""
    from dataclasses import replace

    sim = Simulator()
    spec = replace(HUAWEI_GEN3_SPEC, stripe_pages=stripe_pages)
    device = ConventionalSSD(sim, spec.scaled(0.008))
    device.prefill(0.5)

    def reader():
        yield from device.read(0, 64)

    sim.run(until=sim.process(reader()))
    return device.stats.read_latency.mean / 1e6


def erase_policy_write_latency(policy: ErasePolicy) -> float:
    """Mean block-layer write latency once every block has been used."""
    system = build_sdf_system(
        capacity_scale=0.004, n_channels=2, erase_policy=policy
    )
    n_blocks = system.device.ftls[0].n_logical_blocks * 2
    ids = [system.put(None) for _ in range(n_blocks)]
    for block_id in ids:
        system.delete(block_id)
    if policy is ErasePolicy.BACKGROUND:
        system.sim.run(until=system.sim.now + 500 * MS)
    # End-to-end block-layer write latency (the inline erase happens in
    # the block layer, before the device-level write op).
    start = system.sim.now
    for _ in range(6):
        system.put(None)
    return (system.sim.now - start) / 6 / 1e6


def buffer_ablation():
    """Write ack latency with and without the Gen3's DRAM buffer."""
    from dataclasses import replace

    out = {}
    for label, buffer_bytes in [("buffered", 1 << 30), ("unbuffered", 0)]:
        sim = Simulator()
        spec = replace(
            HUAWEI_GEN3_SPEC.scaled(0.008), dram_buffer_bytes=buffer_bytes
        )
        device = ConventionalSSD(sim, spec)

        def writer():
            for index in range(4):
                yield from device.write(index * 1024, 1024)  # 8 MB

        sim.run(until=sim.process(writer()))
        out[label] = device.stats.write_latency.mean / 1e6
    return out


def placement_throughput(least_loaded: bool) -> float:
    """Aggregate MB/s of 24 skewed writers over 8 channels."""
    placement = LeastLoadedPlacement() if least_loaded else None
    system = build_sdf_system(
        capacity_scale=0.008, n_channels=8, placement=placement
    )
    sim = system.sim
    rng = np.random.default_rng(9)
    # Skew: block IDs drawn zipf-style so round-robin (id % channels)
    # hammers a few channels.
    ids = [int(idx) for idx in (rng.zipf(1.3, size=600) % 64)]
    done = {"bytes": 0}
    deadline = 2_000 * MS

    def writer(worker):
        cursor = worker
        while sim.now < deadline and cursor < len(ids):
            block_id = 10_000 + worker * 1000 + ids[cursor]
            cursor += 24
            if block_id in system.block_layer:
                yield from system.block_layer.free(block_id)
            yield from system.block_layer.write(block_id, None)
            done["bytes"] += system.block_layer.block_bytes

    procs = [sim.process(writer(worker)) for worker in range(24)]
    sim.run(until=AllOf(sim, procs))
    return done["bytes"] / 1e6 / (sim.now / 1e9)


def test_ablation_design_choices(benchmark):
    def run():
        wa_full = wa_for_write_unit(64)  # 2 erase blocks (aligned)
        wa_sub = wa_for_write_unit(4)  # 1/8 of an erase block
        stripe_small = single_request_latency_ms(1)
        stripe_block = single_request_latency_ms(256)
        inline = erase_policy_write_latency(ErasePolicy.INLINE)
        background = erase_policy_write_latency(ErasePolicy.BACKGROUND)
        buffers = buffer_ablation()
        rr = placement_throughput(False)
        ll = placement_throughput(True)
        return dict(
            wa_full=wa_full, wa_sub=wa_sub,
            stripe_small=stripe_small, stripe_block=stripe_block,
            inline=inline, background=background,
            buffered=buffers["buffered"], unbuffered=buffers["unbuffered"],
            round_robin=rr, least_loaded=ll,
        )

    r = run_once(benchmark, run)
    rows = [
        ["WA, erase-block-aligned writes", r["wa_full"]],
        ["WA, sub-block (1/8) writes", r["wa_sub"]],
        ["512K read latency, 8K striping (ms)", r["stripe_small"]],
        ["512K read latency, 2M striping (ms)", r["stripe_block"]],
        ["write latency, inline erase (ms)", r["inline"]],
        ["write latency, background erase (ms)", r["background"]],
        ["8M write ack, DRAM buffer (ms)", r["buffered"]],
        ["8M write ack, no buffer (ms)", r["unbuffered"]],
        ["skewed writers, round-robin (MB/s)", r["round_robin"]],
        ["skewed writers, least-loaded (MB/s)", r["least_loaded"]],
    ]
    emit(benchmark, "Design-choice ablations", ["quantity", "value"], rows)
    # 1. Erase-block-aligned writes keep WA ~1; sub-block writes grow it.
    assert r["wa_full"] < 1.05
    assert r["wa_sub"] > 1.3
    # 2. Small striping parallelizes one request across channels.
    assert r["stripe_small"] < 0.5 * r["stripe_block"]
    # 3. Background erase keeps ~3 ms tBERS off the write path.
    assert r["inline"] - r["background"] > 2.0
    # 4. The DRAM buffer acks 8 MB writes orders of magnitude faster.
    assert r["buffered"] < 0.2 * r["unbuffered"]
    # 5. Load-aware placement beats round-robin hash under skew.
    assert r["least_loaded"] > 1.1 * r["round_robin"]

"""Figure 7: SDF throughput vs number of active channels.

Paper: with one thread per active channel issuing sequential 8 MB
requests, throughput grows almost linearly in channel count until the
PCIe limit (reads, ~1.59 GB/s) or the flash raw write bandwidth
(writes, ~0.96 GB/s) is reached.
"""

import numpy as np

from _bench_common import emit, run_once

from repro.devices import build_device
from repro.obs import Observability, attach_device
from repro.sim import MIB, MS, Simulator
from repro.workloads import drive_sdf_reads, drive_sdf_writes

READ_POINTS = [4, 8, 16, 24, 32, 40, 44]
WRITE_POINTS = [4, 16, 32, 44]


def read_throughput(n_channels: int, obs=None) -> float:
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004)
    if obs is not None:
        attach_device(obs, sdf)
    sdf.prefill(1.0)
    drive_sdf_reads(
        sim,
        sdf,
        request_bytes=2 * MIB,  # same bus-bound regime as 8 MB requests
        duration_ns=400 * MS,
        channels=range(n_channels),
        sequential=True,
        rng=np.random.default_rng(0),
        warmup_ns=60 * MS,
    )
    # Meter the page-granular DMA stream: request completions quantize
    # too coarsely near the PCIe saturation point.
    return sdf.link.read_meter.mb_per_s(60 * MS, 400 * MS)


def write_throughput(n_channels: int) -> float:
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004)
    drive_sdf_writes(
        sim,
        sdf,
        duration_ns=1100 * MS,
        channels=range(n_channels),
        warmup_ns=360 * MS,
    )
    return sdf.link.write_meter.mb_per_s(360 * MS, 1100 * MS)


def test_fig7_channel_scaling(benchmark, paper):
    # Metrics-only observability on the saturated 44-channel read run:
    # pure Python bookkeeping, no simulated events, so throughput
    # numbers are identical to an unattached run.
    obs = Observability()

    def run():
        return (
            {
                n: read_throughput(n, obs if n == 44 else None)
                for n in READ_POINTS
            },
            {n: write_throughput(n) for n in WRITE_POINTS},
        )

    reads, writes = run_once(benchmark, run)
    # Per-channel utilisation must be a true fraction for all 44
    # channels: service time only, queue wait excluded (the busy/wait
    # split), merged across concurrently-busy planes.
    snapshot = obs.metrics.snapshot()
    utilizations = [
        snapshot[f"channel{channel}.utilization"] for channel in range(44)
    ]
    assert all(0.0 <= value <= 1.0 for value in utilizations)
    # Every channel was driven, and a saturated sequential-read channel
    # spends most of its time in service.
    assert min(utilizations) > 0.5
    assert all(snapshot[f"channel{c}.ops"] > 0 for c in range(44))
    rows = [
        [n, reads.get(n, ""), writes.get(n, "")]
        for n in sorted(set(READ_POINTS) | set(WRITE_POINTS))
    ]
    emit(
        benchmark,
        "Figure 7: SDF throughput (MB/s) vs active channel count",
        ["channels", "seq read MB/s", "seq write MB/s"],
        rows,
    )
    # Reads: linear at ~38-40 MB/s per channel until the PCIe ceiling.
    per_channel = reads[4] / 4
    assert 33 <= per_channel <= 43
    for n in (8, 16, 24):
        assert reads[n] / (n * per_channel) > 0.9, n
    # Saturation: 44 channels pinned at the PCIe effective read limit.
    assert reads[44] >= 0.93 * paper.PCIE_READ * 1000
    assert reads[44] <= 1.02 * paper.PCIE_READ * 1000
    # Writes: linear at ~22-24 MB/s per channel all the way to 44
    # (the flash, not the link, is the write bottleneck).
    write_per_channel = writes[4] / 4
    assert 20 <= write_per_channel <= 25
    for n in WRITE_POINTS[1:]:
        assert writes[n] / (n * write_per_channel) > 0.9, n
    assert writes[44] >= 0.85 * paper.SDF_RAW_WRITE * 1000

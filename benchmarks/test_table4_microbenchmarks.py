"""Table 4: raw-device microbenchmark throughput.

Paper (GB/s):

    device   8K read  16K read  64K read  8M read  8M write
    SDF      1.23     1.42      1.51      1.59     0.96
    Gen3     0.92     1.02      1.15      1.20     0.67
    Intel    0.17     0.20      0.22      0.22     0.13

SDF is driven by 44 synchronous threads (one per channel); the
commodity drives by one async submitter (modeled as queue depth 32).
"""

import numpy as np

from _bench_common import BENCH_SCALE, emit, run_once

from repro.devices import (
    build_device,
    HUAWEI_GEN3_SPEC,
    INTEL_320_SPEC,
)
from repro.sim import KIB, MIB, MS, Simulator
from repro.workloads import (
    drive_conventional_reads,
    drive_conventional_writes,
    drive_sdf_reads,
    drive_sdf_writes,
)

READ_SIZES = [("8k", 8 * KIB), ("16k", 16 * KIB), ("64k", 64 * KIB),
              ("8m", 8 * MIB)]


def measure_sdf():
    results = {}
    for label, nbytes in READ_SIZES:
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=0.004)
        sdf.prefill(1.0)
        duration = 60 * MS if nbytes <= 64 * KIB else 900 * MS
        warmup = duration // 6
        request_level = drive_sdf_reads(
            sim, sdf, nbytes, duration_ns=duration,
            rng=np.random.default_rng(1),
            sequential=(nbytes == 8 * MIB),
            warmup_ns=warmup,
        )
        if nbytes == 8 * MIB:
            # Whole-request completions are too coarse at ~220 ms each;
            # meter the per-page DMA stream instead.
            results[label] = (
                sdf.link.read_meter.mb_per_s(warmup, duration) / 1000.0
            )
        else:
            results[label] = request_level / 1000.0
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004)
    drive_sdf_writes(sim, sdf, duration_ns=900 * MS, warmup_ns=150 * MS)
    results["w8m"] = (
        sdf.link.write_meter.mb_per_s(150 * MS, 900 * MS) / 1000.0
    )
    return results


def measure_conventional(spec, write_buffer_bytes=32 << 20):
    from dataclasses import replace

    results = {}
    for label, nbytes in READ_SIZES:
        sim = Simulator()
        device = build_device("conventional", sim, spec=spec, capacity_scale=BENCH_SCALE)
        device.prefill(0.8)
        duration = 40 * MS if nbytes <= 64 * KIB else 150 * MS
        results[label] = (
            drive_conventional_reads(
                sim, device, nbytes, duration_ns=duration, queue_depth=32,
                rng=np.random.default_rng(2), warmup_ns=duration // 10,
            )
            / 1000.0
        )
    sim = Simulator()
    device = build_device("conventional", sim, spec=replace(spec, dram_buffer_bytes=write_buffer_bytes),
        capacity_scale=BENCH_SCALE,
    )
    drive_conventional_writes(
        sim, device, 8 * MIB, duration_ns=400 * MS, queue_depth=8,
        warmup_ns=80 * MS,
    )
    # Meter the flash-side page stream: request completions are too
    # coarse for 8 MB requests on the slower drives.
    results["w8m"] = device.flush_meter.mb_per_s(80 * MS, 400 * MS) / 1000.0
    return results


def test_table4_microbenchmarks(benchmark, paper):
    def run():
        return {
            "sdf": measure_sdf(),
            "gen3": measure_conventional(HUAWEI_GEN3_SPEC),
            "intel": measure_conventional(INTEL_320_SPEC),
        }

    results = run_once(benchmark, run)
    columns = ["8k", "16k", "64k", "8m", "w8m"]
    rows = [
        [name] + [results[name][column] for column in columns]
        for name in ("sdf", "gen3", "intel")
    ]
    emit(
        benchmark,
        "Table 4: device throughput (GB/s) -- 8K/16K/64K/8M reads, 8M writes",
        ["device"] + columns,
        rows,
    )
    sdf, gen3, intel = results["sdf"], results["gen3"], results["intel"]
    # SDF beats the same-hardware Gen3 at every request size (the
    # paper's headline comparison), and Intel trails far behind.
    for column in columns:
        assert sdf[column] > gen3[column], column
        assert gen3[column] > 3 * intel[column], column
    # SDF read throughput grows with request size and saturates near the
    # PCIe effective limit for 8M requests (paper: 1.59 = 99% of 1.61).
    assert sdf["8k"] < sdf["16k"] < sdf["64k"] <= sdf["8m"] * 1.02
    assert sdf["8m"] >= 0.93 * paper.PCIE_READ
    # SDF 8M write lands near the raw flash write bandwidth (paper:
    # 0.96 GB/s = 94% of 1.01 raw; the DMA-side meter can lead the
    # programs by a streaming window, hence the small upper slack).
    assert 0.85 * paper.SDF_RAW_WRITE <= sdf["w8m"] <= 1.05 * paper.SDF_RAW_WRITE
    # Absolute values within ~20% of the paper's Table 4.
    for name, measured in results.items():
        for column in columns:
            expected = paper.TABLE4[name][column]
            assert expected * 0.8 <= measured[column] <= expected * 1.25, (
                name,
                column,
                measured[column],
                expected,
            )

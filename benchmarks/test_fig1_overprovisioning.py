"""Figure 1: random-write throughput vs over-provisioning ratio.

Paper (Intel 320, random 4 KB writes): ~2 MB/s at 0% OP, rising steeply
to 7%, +21% from 7% to 25%, and a further modest gain at 50%; 25% OP
delivers "more than 400%" of the 0% throughput.

We build an Intel-320-class device with 4 KiB logical pages, drive it to
write-amplification steady state functionally, then measure sustained
timed 4 KB random writes.  The throughput curve is produced by the
garbage collector: lower OP -> higher write amplification -> fewer user
writes per unit of flash program bandwidth.
"""

from dataclasses import replace

import numpy as np

from _bench_common import emit, run_once

from repro.devices import build_device, INTEL_320_SPEC
from repro.nand.geometry import FlashGeometry
from repro.sim import MS, Simulator
from repro.workloads.generators import drive_conventional_writes

#: The paper's x axis.  "0%" means no *additional* over-provisioning:
#: the drive still keeps its small intrinsic reserve (~4% here), without
#: which a page-mapped FTL cannot operate at all.
OP_POINTS = [("0%", 0.04), ("7%", 0.07), ("25%", 0.25), ("50%", 0.50)]

#: 4 KB logical pages for the 4 KB-write experiment.  Blocks are scaled
#: down (64 pages) and planes hold many of them (96), so that even the
#: "0%" point's sliver of spare space dwarfs the per-plane append
#: frontiers -- as it does at real scale (2048 blocks per plane).
SMALL_PAGE_GEOMETRY = FlashGeometry(
    page_size=4096,
    pages_per_block=64,
    blocks_per_plane=64,
    planes_per_chip=2,
)


def measure_op_point(op_ratio: float) -> float:
    sim = Simulator()
    spec = replace(
        INTEL_320_SPEC,
        geometry=SMALL_PAGE_GEOMETRY,
        n_channels=2,
        op_ratio=op_ratio,
        parity_group_size=None,
        dram_buffer_bytes=1 << 20,
        # The 320's sustained 4 KB random-write ceiling (~3k IOPS): the
        # per-op FTL/controller cost that flattens the curve at high OP.
        controller_write_ns_per_page=350_000,
    )
    device = build_device("conventional", sim, spec=spec)
    device.prefill(1.0)
    # Functional churn to write-amplification steady state.
    rng = np.random.default_rng(17)
    for _ in range(3 * device.user_pages // 2):
        device.ftl.write(int(rng.integers(device.user_pages)), None)
    return drive_conventional_writes(
        sim,
        device,
        request_bytes=4096,
        duration_ns=400 * MS,
        queue_depth=8,
        sequential=False,
        warmup_ns=50 * MS,
        rng=np.random.default_rng(3),
    )


def test_fig1_overprovisioning_sweep(benchmark):
    results = run_once(
        benchmark,
        lambda: {label: measure_op_point(ratio) for label, ratio in OP_POINTS},
    )
    rows = [[label, results[label]] for label, _ in OP_POINTS]
    emit(
        benchmark,
        "Figure 1: random 4 KB write throughput vs over-provisioning (MB/s)",
        ["OP ratio", "throughput MB/s"],
        rows,
    )
    t0, t7, t25, t50 = (results[label] for label, _ in OP_POINTS)
    # Monotonically increasing with OP.
    assert t0 < t7 < t25 <= t50 * 1.05
    # 25% OP beats 0% by several x (paper: "more than 400%").
    assert t25 > 3.0 * t0
    # 25% OP still improves on 7% (paper: ~21%; our GC model is
    # somewhat steeper between these points).
    assert t25 / t7 >= 1.1
    # Diminishing returns: each OP increase buys less than the last.
    assert t50 / t25 < t25 / t7
    assert t50 / t25 < 2.0

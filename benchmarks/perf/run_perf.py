"""Perf-regression harness for the simulation core.

Runs the paper-shaped hot scenarios in BOTH scheduling modes
(generator and timeline), checks they agree byte-for-byte on simulated
results, and reports wall-clock, processed events, events/sec and
simulated throughput.  Results land in ``BENCH_perf.json`` for the CI
perf-smoke job (see ``check_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--out BENCH_perf.json]

Scenarios:

* ``fig7_read_44``  -- 44-channel sequential-read sweep point (Figure 7)
* ``fig7_write_44`` -- 44-channel sequential-write sweep point (Figure 7)
* ``kv_write_compaction`` -- LSM put stream with flushes + compactions
  over a 4-channel SDF server (Figures 12-14 regime, scaled down)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

MODES = ("generator", "timeline")


def _fig7_point(mode: str, direction: str):
    from repro.devices import build_sdf
    from repro.sim import MIB, MS, Simulator
    from repro.workloads import drive_sdf_reads, drive_sdf_writes

    sim = Simulator()
    sdf = build_sdf(sim, capacity_scale=0.004, mode=mode)
    if direction == "read":
        sdf.prefill(1.0)
        wall0 = time.perf_counter()
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=400 * MS,
            channels=range(44),
            sequential=True,
            rng=np.random.default_rng(0),
            warmup_ns=60 * MS,
        )
        wall = time.perf_counter() - wall0
        mbps = sdf.link.read_meter.mb_per_s(60 * MS, 400 * MS)
    else:
        wall0 = time.perf_counter()
        drive_sdf_writes(
            sim,
            sdf,
            duration_ns=1100 * MS,
            channels=range(44),
            warmup_ns=360 * MS,
        )
        wall = time.perf_counter() - wall0
        mbps = sdf.link.write_meter.mb_per_s(360 * MS, 1100 * MS)
    return {
        "wall_s": wall,
        "events": sim._seq,
        "sim_end_ns": sim.now,
        "mb_per_s": mbps,
    }


def fig7_read_44(mode: str):
    return _fig7_point(mode, "read")


def fig7_write_44(mode: str):
    return _fig7_point(mode, "write")


def kv_write_compaction(mode: str):
    # The cluster builders resolve the engine mode from the environment.
    previous = os.environ.get("REPRO_SIM_MODE")
    os.environ["REPRO_SIM_MODE"] = mode
    try:
        from repro.cluster import build_sdf_server
        from repro.kv.lsm import LSMTree
        from repro.kv.slice import KeyRange, Slice
        from repro.sim import MS, Simulator

        sim = Simulator()
        lsm = LSMTree(memtable_bytes=256 * 1024)
        server = build_sdf_server(
            sim,
            [Slice(0, KeyRange(0, 1_000_000), lsm=lsm)],
            capacity_scale=0.01,
            n_channels=4,
        )
        value = b"v" * 4096
        wall0 = time.perf_counter()

        def put_stream():
            for key in range(1500):
                yield from server.handle_put(key % 500, value)

        sim.run(until=sim.process(put_stream()))
        sim.run(until=sim.now + 200 * MS)  # drain flushes + compactions
        wall = time.perf_counter() - wall0
        device = server.system.device
        return {
            "wall_s": wall,
            "events": sim._seq,
            "sim_end_ns": sim.now,
            "mb_per_s": device.stats.write_meter.mb_per_s(0, sim.now),
        }
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_MODE", None)
        else:
            os.environ["REPRO_SIM_MODE"] = previous


SCENARIOS = {
    "fig7_read_44": fig7_read_44,
    "fig7_write_44": fig7_write_44,
    "kv_write_compaction": kv_write_compaction,
}


def run_all():
    report = {}
    for name, scenario in SCENARIOS.items():
        entry = {}
        for mode in MODES:
            result = scenario(mode)
            result["events_per_s"] = (
                result["events"] / result["wall_s"] if result["wall_s"] else 0.0
            )
            entry[mode] = result
            print(
                f"{name:>22} {mode:>9}: wall={result['wall_s']:6.2f}s "
                f"events={result['events']:>8} "
                f"({result['events_per_s'] / 1e3:7.1f}k ev/s) "
                f"sim={result['mb_per_s'] / 1000:5.2f} GB/s"
            )
        gen, fast = entry["generator"], entry["timeline"]
        # The modes must agree on the *simulated* outcome exactly.
        if gen["sim_end_ns"] != fast["sim_end_ns"]:
            raise SystemExit(
                f"{name}: scheduling modes diverged "
                f"(end {gen['sim_end_ns']} != {fast['sim_end_ns']})"
            )
        if gen["mb_per_s"] != fast["mb_per_s"]:
            raise SystemExit(
                f"{name}: scheduling modes diverged "
                f"({gen['mb_per_s']} != {fast['mb_per_s']} MB/s)"
            )
        entry["speedup"] = gen["wall_s"] / fast["wall_s"]
        print(f"{name:>22}   speedup: {entry['speedup']:.2f}x")
        report[name] = entry
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[2] / "BENCH_perf.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_all()
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

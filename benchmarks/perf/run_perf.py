"""Perf-regression harness for the simulation core.

Runs the paper-shaped hot scenarios in BOTH scheduling modes
(generator and timeline), checks they agree byte-for-byte on simulated
results, and reports wall-clock, processed events, events/sec and
simulated throughput.  Results land in ``BENCH_perf.json`` for the CI
perf-smoke job (see ``check_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--out BENCH_perf.json]

Scenarios:

* ``fig7_read_44``  -- 44-channel sequential-read sweep point (Figure 7)
* ``fig7_write_44`` -- 44-channel sequential-write sweep point (Figure 7)
* ``kv_write_compaction`` -- LSM put stream with flushes + compactions
  over a 4-channel SDF server (Figures 12-14 regime, scaled down)
* ``fleet_day_qos`` -- a fleet-day scenario with observability, fault
  bursts, channel QoS admission and an active policy rule, comparing
  the forced-generator and timeline fast paths (the whole production
  stack must ride the fast path now)
* ``fleet_day_sharded`` -- the static-control-plane fleet day run
  in-process versus sharded across worker processes (byte-identical
  reports; wall-clock ratio is hardware-dependent so only event counts
  are gated)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

MODES = ("generator", "timeline")


@contextmanager
def _engine_mode(mode: str):
    """Scoped REPRO_SIM_MODE override (cluster builders read the env)."""
    previous = os.environ.get("REPRO_SIM_MODE")
    os.environ["REPRO_SIM_MODE"] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_MODE", None)
        else:
            os.environ["REPRO_SIM_MODE"] = previous


def _fig7_point(mode: str, direction: str):
    from repro.devices import build_device
    from repro.sim import MIB, MS, Simulator
    from repro.workloads import drive_sdf_reads, drive_sdf_writes

    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, mode=mode)
    if direction == "read":
        sdf.prefill(1.0)
        wall0 = time.perf_counter()
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=400 * MS,
            channels=range(44),
            sequential=True,
            rng=np.random.default_rng(0),
            warmup_ns=60 * MS,
        )
        wall = time.perf_counter() - wall0
        mbps = sdf.link.read_meter.mb_per_s(60 * MS, 400 * MS)
    else:
        wall0 = time.perf_counter()
        drive_sdf_writes(
            sim,
            sdf,
            duration_ns=1100 * MS,
            channels=range(44),
            warmup_ns=360 * MS,
        )
        wall = time.perf_counter() - wall0
        mbps = sdf.link.write_meter.mb_per_s(360 * MS, 1100 * MS)
    return {
        "wall_s": wall,
        "events": sim._seq,
        "sim_end_ns": sim.now,
        "mb_per_s": mbps,
    }


def fig7_read_44(mode: str):
    return _fig7_point(mode, "read")


def fig7_write_44(mode: str):
    return _fig7_point(mode, "write")


def kv_write_compaction(mode: str):
    with _engine_mode(mode):
        from repro.cluster import build_sdf_server
        from repro.kv.lsm import LSMTree
        from repro.kv.slice import KeyRange, Slice
        from repro.sim import MS, Simulator

        sim = Simulator()
        lsm = LSMTree(memtable_bytes=256 * 1024)
        server = build_sdf_server(
            sim,
            [Slice(0, KeyRange(0, 1_000_000), lsm=lsm)],
            capacity_scale=0.01,
            n_channels=4,
        )
        value = b"v" * 4096
        wall0 = time.perf_counter()

        def put_stream():
            for key in range(1500):
                yield from server.handle_put(key % 500, value)

        sim.run(until=sim.process(put_stream()))
        sim.run(until=sim.now + 200 * MS)  # drain flushes + compactions
        wall = time.perf_counter() - wall0
        device = server.system.device
        return {
            "wall_s": wall,
            "events": sim._seq,
            "sim_end_ns": sim.now,
            "mb_per_s": device.stats.write_meter.mb_per_s(0, sim.now),
        }


def _fleet_scenario(static_control_plane: bool):
    """A fleet-day-shaped scenario: three tenants, crash + brownout."""
    from repro.sim.units import MS
    from repro.workloads import (
        DiurnalWave,
        FaultBurst,
        RateSchedule,
        Scenario,
        SizeDistribution,
        SloSpec,
        Spike,
        TenantSpec,
        UniformKeyModel,
        YCSB_A,
        YCSB_B,
        ZipfianKeyModel,
    )

    duration = 400 * MS
    tenants = (
        TenantSpec(
            name="web",
            mix=YCSB_B,
            keys=ZipfianKeyModel(0, 20_000, theta=0.99),
            sizes=SizeDistribution(fixed=16 * 1024),
            arrivals=RateSchedule(
                base_rps=400.0,
                wave=DiurnalWave(amplitude=0.4, period_ns=duration),
            ),
            slo=SloSpec(deadline_ns=40 * MS),
        ),
        TenantSpec(
            name="bulk",
            mix=YCSB_A,
            keys=UniformKeyModel(0, 60_000),
            sizes=SizeDistribution(lo=32 * 1024, hi=256 * 1024),
            arrivals=RateSchedule(
                base_rps=240.0,
                spikes=(
                    Spike(
                        at_ns=duration * 2 // 5,
                        duration_ns=duration // 5,
                        multiplier=3.0,
                    ),
                ),
            ),
            slo=SloSpec(deadline_ns=80 * MS),
        ),
    )
    return Scenario(
        name="fleet-day-perf",
        tenants=tenants,
        duration_ns=duration,
        n_nodes=3,
        n_slices=6,
        key_span=60_000,
        seed=29,
        faults=(
            FaultBurst(
                node=1,
                at_ns=duration * 2 // 5,
                duration_ns=duration // 6,
                kind="crash",
            ),
            FaultBurst(
                node=2,
                at_ns=duration // 2,
                duration_ns=duration // 6,
                kind="brownout",
                multiplier=10.0,
            ),
        ),
        rebalance_every_ns=None if static_control_plane else duration // 4,
    )


def _fleet_qos():
    from repro.qos import (
        AdmissionConfig,
        BreakerConfig,
        ChannelQosConfig,
        QosPlan,
        WriteStallConfig,
    )
    from repro.sim.units import MS

    return QosPlan(
        channel=ChannelQosConfig(max_inflight_ops=8),
        admission=AdmissionConfig(max_reads=64, max_writes=32, max_scans=16),
        write_stall=WriteStallConfig(),
        breaker=BreakerConfig(failure_threshold=5, reset_ns=50 * MS),
    )


def _fleet_policy():
    from repro.policy import Hysteresis, MetricSignal, PolicyPlan, Rule
    from repro.policy.actions import SetAdmission
    from repro.sim.units import MS

    return PolicyPlan(
        rules=(
            Rule(
                name="tighten-on-shed",
                signal=MetricSignal("tenant.web.shed"),
                hysteresis=Hysteresis(upper=50.0, lower=10.0),
                action=SetAdmission(max_reads=32, max_writes=16),
                cooldown_ns=50 * MS,
            ),
        ),
        period_ns=20 * MS,
    )


def fleet_day_qos(mode: str):
    """Fleet day with every plane attached (obs, faults, QoS, policy):
    the full production stack must ride the timeline fast path."""
    with _engine_mode(mode):
        import gc

        from repro.obs import Observability
        from repro.workloads.scenarios import ScenarioRunner

        best = None
        # Best-of-two: the speedup on this scenario is the gated
        # acceptance number, so damp scheduler/allocator noise the way
        # benchmark suites usually do -- repeat and keep the fastest.
        for _ in range(2):
            gc.collect()
            runner = ScenarioRunner(
                _fleet_scenario(static_control_plane=False),
                qos=_fleet_qos(),
                obs=Observability(),
                policy=_fleet_policy(),
            )
            wall0 = time.perf_counter()
            result = runner.run()
            wall = time.perf_counter() - wall0
            if best is None or wall < best["wall_s"]:
                best = {
                    "wall_s": wall,
                    "events": int(runner.sim._seq),
                    "sim_end_ns": int(runner.sim.now),
                    "digest": result.to_json(),
                }
        return best


def fleet_day_sharded(mode: str):
    """Static-control-plane fleet day, in-process vs sharded workers."""
    from repro.obs import Observability
    from repro.workloads.scenarios import ScenarioRunner, run_scenario_sharded

    scenario = _fleet_scenario(static_control_plane=True)
    if mode == "inprocess":
        # Cluster build + preload count in both modes: the sharded run
        # necessarily rebuilds per shard, so the in-process side must
        # pay for its build too for the ratio to mean anything.
        wall0 = time.perf_counter()
        runner = ScenarioRunner(
            scenario, qos=_fleet_qos(), obs=Observability()
        )
        result = runner.run()
        wall = time.perf_counter() - wall0
        events = int(runner.sim._seq)
    else:
        wall0 = time.perf_counter()
        result = run_scenario_sharded(scenario, workers=3, qos=_fleet_qos())
        wall = time.perf_counter() - wall0
        events = int(result.snapshot["shard.events"])
    return {
        "wall_s": wall,
        "events": events,
        "sim_end_ns": int(result.sim_end_ns),
        "digest": result.to_json(),
    }


#: name -> (scenario callable, (slow mode, fast mode)).  The fleet
#: scenarios run first: their speedup gate is the tightest and the big
#: fig7 sweeps leave tens of millions of live objects behind, which
#: taxes every allocation made after them.
SCENARIOS = {
    "fleet_day_qos": (fleet_day_qos, MODES),
    "fleet_day_sharded": (fleet_day_sharded, ("inprocess", "sharded")),
    "fig7_read_44": (fig7_read_44, MODES),
    "fig7_write_44": (fig7_write_44, MODES),
    "kv_write_compaction": (kv_write_compaction, MODES),
}


def run_all():
    import gc

    report = {}
    for name, (scenario, modes) in SCENARIOS.items():
        entry = {"modes": list(modes)}
        for mode in modes:
            gc.collect()
            result = scenario(mode)
            result["events_per_s"] = (
                result["events"] / result["wall_s"] if result["wall_s"] else 0.0
            )
            entry[mode] = result
            throughput = (
                f"sim={result['mb_per_s'] / 1000:5.2f} GB/s"
                if "mb_per_s" in result
                else ""
            )
            print(
                f"{name:>22} {mode:>9}: wall={result['wall_s']:6.2f}s "
                f"events={result['events']:>8} "
                f"({result['events_per_s'] / 1e3:7.1f}k ev/s) {throughput}"
            )
        slow, fast = entry[modes[0]], entry[modes[1]]
        # The modes must agree on the *simulated* outcome exactly.
        if slow["sim_end_ns"] != fast["sim_end_ns"]:
            raise SystemExit(
                f"{name}: modes diverged "
                f"(end {slow['sim_end_ns']} != {fast['sim_end_ns']})"
            )
        for key in ("mb_per_s", "digest"):
            if key in slow and slow[key] != fast[key]:
                raise SystemExit(f"{name}: modes diverged on {key}")
        # Digests proved byte-identity; don't bloat the report with them.
        for mode_entry in (slow, fast):
            mode_entry.pop("digest", None)
        entry["speedup"] = slow["wall_s"] / fast["wall_s"]
        print(f"{name:>22}   speedup: {entry['speedup']:.2f}x")
        report[name] = entry
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[2] / "BENCH_perf.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_all()
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

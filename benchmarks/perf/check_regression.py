"""Compare a ``BENCH_perf.json`` report against the checked-in baseline.

Wall-clock seconds vary across machines, so the gate uses two
hardware-portable signals:

* **events** -- the number of simulated events per scenario/mode is
  deterministic; growth means the scheduler got chattier;
* **speedup** -- the generator/timeline wall-clock ratio measures the
  fast path's advantage on the *same* machine, so it transfers across
  hardware far better than absolute seconds.

Usage::

    python benchmarks/perf/check_regression.py BENCH_perf.json \
        [--baseline benchmarks/perf/baseline.json] [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(report: dict, baseline: dict, tolerance: float) -> list:
    failures = []
    for name, base_entry in baseline.items():
        entry = report.get(name)
        if entry is None:
            failures.append(f"{name}: missing from report")
            continue
        modes = base_entry.get("modes", ["generator", "timeline"])
        for mode in modes:
            base_events = base_entry[mode]["events"]
            events = entry[mode]["events"]
            if events > base_events * (1 + tolerance):
                failures.append(
                    f"{name}/{mode}: events {events} exceeds baseline "
                    f"{base_events} by more than {tolerance:.0%}"
                )
        # A baseline without a speedup opts out of the ratio gate (used
        # where the ratio is hardware-dependent, e.g. sharded workers on
        # an unknown core count); event counts are still enforced above.
        base_speedup = base_entry.get("speedup")
        if base_speedup is None:
            continue
        speedup = entry["speedup"]
        if speedup < base_speedup * (1 - tolerance):
            failures.append(
                f"{name}: speedup {speedup:.2f}x fell more than "
                f"{tolerance:.0%} below baseline {base_speedup:.2f}x"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="BENCH_perf.json produced by run_perf.py")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent / "baseline.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)
    report = json.loads(Path(args.report).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = check(report, baseline, args.tolerance)
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"perf check OK: {len(baseline)} scenarios within "
        f"{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Pytest fixtures for the benchmark suite."""

import pytest

from _bench_common import PAPER


@pytest.fixture
def paper():
    """Accessor for paper-reported reference numbers used in asserts."""
    return PAPER

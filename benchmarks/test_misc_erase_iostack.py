"""Secondary numbers from S2.3/S2.4/S3.2:

* block erase costs ~3 ms; the erase *command* can sustain tens of GB/s
  of logical throughput (paper: ~40 GB/s);
* SDF's software stack costs 2-4 us per request vs ~12.9 us through the
  kernel;
* SDF's MSI merging cuts the interrupt rate to 1/5-1/4 of IOPS.
"""

import numpy as np

from _bench_common import emit, run_once

from repro.devices import build_device
from repro.interfaces import KERNEL_IO_STACK, SDF_USER_SPACE_STACK
from repro.sim import AllOf, MS, Simulator, US
from repro.workloads import drive_sdf_reads


def erase_throughput_gb_s():
    """Erase every block of every channel as fast as possible."""
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004)
    sdf.prefill(1.0)
    erased_bytes = {"total": 0}

    def eraser(channel):
        for block in range(channel.n_logical_blocks):
            yield from channel.erase(block)
            erased_bytes["total"] += channel.logical_block_bytes

    procs = [sim.process(eraser(channel)) for channel in sdf.channels]
    sim.run(until=AllOf(sim, procs))
    return erased_bytes["total"] / (sim.now / 1e9) / 1e9, sdf


def test_misc_erase_iostack(benchmark):
    def run():
        gb_s, sdf = erase_throughput_gb_s()
        erase_mean_ms = sdf.stats.erase_latency.mean / 1e6

        # Interrupt merging under a high-IOPS read load.
        sim = Simulator()
        sdf2 = build_device("sdf", sim, capacity_scale=0.004)
        sdf2.prefill(1.0)
        drive_sdf_reads(
            sim, sdf2, 8192, duration_ns=30 * MS,
            rng=np.random.default_rng(4),
        )
        return gb_s, erase_mean_ms, sdf2.interrupts.merge_ratio

    erase_gb_s, erase_mean_ms, merge_ratio = run_once(benchmark, run)
    rows = [
        ["erase throughput (GB/s)", erase_gb_s],
        ["mean 8 MB erase latency (ms)", erase_mean_ms],
        ["SDF software stack (us/request)", SDF_USER_SPACE_STACK.total_ns / 1000],
        ["kernel software stack (us/request)", KERNEL_IO_STACK.total_ns / 1000],
        ["interrupts / completions", merge_ratio],
    ]
    emit(
        benchmark,
        "Erase command, I/O stack and interrupt-merging characteristics",
        ["quantity", "value"],
        rows,
    )
    # Paper: erasing a 2 MB block takes ~3 ms; a logical 8 MB erase hits
    # 4 planes in parallel, so ~3 ms per 8 MB -> tens of GB/s across 44
    # channels (paper: ~40 GB/s).
    assert 2.9 <= erase_mean_ms <= 3.5
    assert 40 <= erase_gb_s <= 130
    # Software stacks: 2-4 us vs ~12.9 us.
    assert 2 <= SDF_USER_SPACE_STACK.total_ns / 1000 <= 4
    assert 12 <= KERNEL_IO_STACK.total_ns / 1000 <= 14
    # MSI merging: 1/5 to 1/4 of completions raise interrupts.
    assert 0.1 <= merge_ratio <= 0.35

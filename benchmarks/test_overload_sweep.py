"""Overload sweep: offered load vs goodput with and without admission.

The paper serves "heavy traffic from millions of users" where read tail
latency is the contract (S2.4 prioritises on-demand reads precisely to
protect it).  This sweep drives one slice with an *open-loop* read
arrival process at multiples of its saturation rate and measures

* **goodput** -- requests completed within their deadline, and
* **read p99** -- tail latency over every request that completed,

once with the QoS plane's admission control attached (bounded inflight
reads + deadline shedding) and once without any protection.

Expected shape: without admission, offered load past saturation only
grows the slice queue -- every request eventually completes, but none
within its deadline, so goodput collapses toward zero and p99 grows
with the run length.  With admission, excess arrivals are shed on
arrival, the queue stays short enough that admitted requests finish in
time, and goodput plateaus at the service capacity.
"""

from __future__ import annotations

import os

import numpy as np

from _bench_common import build_server, emit, preload_keys, run_once

from repro.faults.errors import TransientFault
from repro.qos import AdmissionConfig, QosPlan, attach_server_qos
from repro.sim import AllOf, Simulator
from repro.sim.units import MS

VALUE_BYTES = 64 * 1024
DEADLINE_NS = 10 * MS
#: Offered load as multiples of the slice's measured saturation rate.
MULTIPLIERS = (0.5, 1.0, 2.0, 3.0)
#: CI smoke runs shrink the sweep via this env var.
N_REQUESTS = int(os.environ.get("OVERLOAD_SWEEP_REQUESTS", "400"))


def _build():
    sim = Simulator()
    server = build_server(sim, "sdf", 1, capacity_scale=0.02, n_channels=8)
    keys = preload_keys(server, 512, VALUE_BYTES)[0]
    return sim, server, keys


def calibrate_capacity_rps(n_workers: int = 16, per_worker: int = 25) -> float:
    """Measured closed-loop read capacity of one slice, in requests/s.

    The offered-load multipliers key off this rather than an analytic
    service time: the bottleneck mixes the serialised slice CPU with
    device reads whose channel spread depends on where compaction left
    the values, so measuring is the only honest baseline.
    """
    sim, server, keys = _build()
    rng = np.random.default_rng(17)

    def worker():
        for _ in range(per_worker):
            key = keys[int(rng.integers(0, len(keys)))]
            yield from server.handle_get(key)

    start = sim.now
    procs = [sim.process(worker()) for _ in range(n_workers)]
    sim.run(until=AllOf(sim, procs))
    return n_workers * per_worker / ((sim.now - start) / 1e9)


def run_at_rate(
    capacity_rps: float,
    multiplier: float,
    admission: bool,
    n_requests: int,
):
    """One fresh system driven open-loop at ``multiplier`` x saturation.

    Returns ``(offered_rps, goodput_rps, shed, p99_ms)``.
    """
    sim, server, keys = _build()
    # Bound inflight reads so everything admitted can finish within the
    # deadline: by Little's law the residence time at capacity is
    # inflight / capacity, held to ~45% of the deadline so that queue
    # wait plus one full service time still lands inside it.
    max_reads = max(4, int(capacity_rps * 0.45 * DEADLINE_NS / 1e9))
    if admission:
        plan = QosPlan(admission=AdmissionConfig(max_reads=max_reads))
        attach_server_qos(plan, server, name="node")
    interarrival_ns = max(1, int(1e9 / (capacity_rps * multiplier)))
    rng = np.random.default_rng(23)

    outcomes = {"good": 0, "late": 0, "shed": 0}
    latencies = []

    def one_request(key, deadline):
        start = sim.now
        try:
            yield from server.handle_get(
                key, deadline_ns=deadline if admission else None
            )
        except TransientFault:  # shed on arrival or while queued
            outcomes["shed"] += 1
            return
        latencies.append(sim.now - start)
        if sim.now <= deadline:
            outcomes["good"] += 1
        else:
            outcomes["late"] += 1

    def arrivals():
        for _ in range(n_requests):
            key = keys[int(rng.integers(0, len(keys)))]
            sim.process(one_request(key, sim.now + DEADLINE_NS))
            yield sim.timeout(interarrival_ns)

    sim.process(arrivals())
    start_ns = sim.now
    sim.run()
    assert sum(outcomes.values()) == n_requests, "stranded requests"
    elapsed_s = (sim.now - start_ns) / 1e9
    offered_rps = n_requests / (n_requests * interarrival_ns / 1e9)
    goodput_rps = outcomes["good"] / elapsed_s if elapsed_s > 0 else 0.0
    p99_ms = (
        float(np.percentile(latencies, 99)) / 1e6 if latencies else float("inf")
    )
    return offered_rps, goodput_rps, outcomes["shed"], p99_ms


def sweep(n_requests: int):
    capacity_rps = calibrate_capacity_rps()
    results = {"capacity_rps": capacity_rps}
    for admission in (True, False):
        for multiplier in MULTIPLIERS:
            results[(admission, multiplier)] = run_at_rate(
                capacity_rps, multiplier, admission, n_requests
            )
    return results


def test_overload_graceful_degradation(benchmark):
    results = run_once(benchmark, lambda: sweep(N_REQUESTS))

    rows = []
    for admission in (True, False):
        for multiplier in MULTIPLIERS:
            offered, goodput, shed, p99 = results[(admission, multiplier)]
            rows.append([
                "on" if admission else "off",
                f"{multiplier:.1f}x",
                f"{offered:.0f}",
                f"{goodput:.0f}",
                shed,
                f"{p99:.2f}",
            ])
    emit(
        benchmark,
        "Overload sweep: offered load vs goodput (single slice, "
        f"{VALUE_BYTES // 1024} KB reads, {DEADLINE_NS / 1e6:.0f} ms deadline)",
        ["admission", "offered", "offered rps", "goodput rps", "shed",
         "p99 ms"],
        rows,
        n_requests=N_REQUESTS,
        deadline_ms=DEADLINE_NS / 1e6,
        capacity_rps=results["capacity_rps"],
    )

    on = {m: results[(True, m)] for m in MULTIPLIERS}
    off = {m: results[(False, m)] for m in MULTIPLIERS}

    # With admission: goodput plateaus -- at >= 2x saturation it stays
    # within 10% of its peak, and the read tail stays within the
    # deadline (admitted requests were chosen to be able to finish).
    peak_on = max(goodput for _, goodput, _, _ in on.values())
    for multiplier in (2.0, 3.0):
        _, goodput, shed, p99 = on[multiplier]
        assert goodput >= 0.9 * peak_on, (
            f"admission-on goodput collapsed at {multiplier}x: "
            f"{goodput:.0f} rps vs peak {peak_on:.0f}"
        )
        assert p99 <= DEADLINE_NS / 1e6, (
            f"admission-on p99 unbounded at {multiplier}x: {p99:.2f} ms"
        )
        assert shed > 0, f"no shedding at {multiplier}x saturation?"

    # Without admission: past saturation the queue grows without bound,
    # within-deadline completions collapse and the tail explodes.
    peak_off = max(goodput for _, goodput, _, _ in off.values())
    _, goodput_3x, _, p99_3x = off[3.0]
    assert goodput_3x < 0.5 * peak_off, (
        f"admission-off goodput did not collapse at 3x: "
        f"{goodput_3x:.0f} rps vs peak {peak_off:.0f}"
    )
    assert p99_3x > 2 * DEADLINE_NS / 1e6, (
        f"admission-off tail did not grow at 3x: {p99_3x:.2f} ms"
    )

"""CCDB ablation across the device zoo (the redesign's acceptance run).

One CCDB-style KV workload and one fleet-day slice, replayed over every
registered device kind -- SDF, conventional page-mapped, DFTL, hybrid
log-block, multi-queue, zoned -- through the single ``build_device``
door.  Emits a per-device JSON artifact (cost/WA/predictability) and
asserts the paper's architectural claims *and* their boundary:

* the SDF (and its zoned cousin) carry no device-side write
  amplification, while every device-managed FTL pays WA > 1 under
  sustained random update load;
* the SDF's write latency spread (p99/p50) is tighter than the
  conventional baseline's, whose GC and controller queue smear the
  tail (the paper's Figure 8 claim);
* the trade is real: for small random in-place updates, a page-mapped
  device with a warm mapping cache (DFTL) beats the SDF, which must
  read-modify-write an entire 8 MB erase block.

Set ``DEVICE_ABLATION_JSON=/path.json`` to dump the artifact (the CI
``device-ablation-smoke`` job uploads it).
"""

from __future__ import annotations

import json
import os
import random

import pytest

from _bench_common import build_server, emit, preload_keys, run_once

from repro.devices import build_device, device_kinds
from repro.kv.common import PlaceholderValue
from repro.obs import Observability
from repro.obs.attach import attach_device
from repro.sim import MS, Simulator
from repro.workloads import (
    RateSchedule,
    Scenario,
    SizeDistribution,
    TenantSpec,
    UniformKeyModel,
    YCSB_A,
    run_scenario,
)

#: Every kind in the zoo; the acceptance bar is >= 5.
KINDS = ("sdf", "conventional", "dftl", "hybrid", "mqftl", "zoned")

JSON_PATH = os.environ.get("DEVICE_ABLATION_JSON", "")
#: KV puts per slice in the CCDB phase (CI smoke can shrink it).
PUTS_PER_SLICE = int(os.environ.get("DEVICE_ABLATION_PUTS", "160"))
#: Simulated fleet-day slice duration per kind (ms).
FLEET_MS = int(os.environ.get("DEVICE_ABLATION_FLEET_MS", "40"))

VALUE_BYTES = 16 * 1024
SEED = 23


def run_kv_phase(kind):
    """The CCDB-style phase: preload, then a put-heavy + read mix that
    drives memtable flushes (8 MB patch writes) and recycles extents
    until device-managed FTLs have to collect garbage."""
    sim = Simulator()
    # Small memtables so the timed puts actually flush (8 MB extent
    # writes), and a capacity scale tight enough that the cumulative
    # extent churn pushes device-managed FTLs into their GC regime.
    server = build_server(sim, kind, n_slices=2, capacity_scale=0.004,
                          n_channels=8, memtable_bytes=256 * 1024)
    device = (
        server.system.device if hasattr(server, "system") else server.device
    )
    obs = Observability()
    attach_device(obs, device)
    before = dict(device.device_metrics())
    keys = preload_keys(server, 300, VALUE_BYTES)
    rng = random.Random(SEED)

    def tenant(slice_id):
        slice_keys = keys[slice_id]
        for index in range(PUTS_PER_SLICE):
            key = slice_keys[rng.randrange(len(slice_keys))]
            yield from server.handle_put(
                key, PlaceholderValue(VALUE_BYTES), tenant="ccdb"
            )
            if index % 4 == 0:
                key = slice_keys[rng.randrange(len(slice_keys))]
                try:
                    yield from server.handle_get(key, tenant="ccdb")
                except KeyError:
                    # The read raced a compaction recycling its
                    # extent; the scenario engine treats this as a
                    # transient, so retry once and move on.
                    try:
                        yield from server.handle_get(key, tenant="ccdb")
                    except KeyError:
                        pass

    processes = [sim.process(tenant(s.slice_id)) for s in server.slices]
    sim.run(until=sim.all_of(processes))
    after = device.device_metrics()

    reads = device.stats.read_latency
    p50 = reads.quantile(0.50)
    p99 = reads.quantile(0.99)
    host = after["host_programs"] - before["host_programs"]
    moved = (after["gc_programs"] - before["gc_programs"]) + (
        after.get("map_cache_misses", 0) - before.get("map_cache_misses", 0)
    )
    return {
        "write_amplification": after["write_amplification"],
        "host_programs": host,
        "gc_programs": after["gc_programs"] - before["gc_programs"],
        "gc_runs": after["gc_runs"] - before["gc_runs"],
        "merges": after["merges"] - before["merges"],
        "erases": after["erases"] - before["erases"],
        "map_cache_hit_rate": after["map_cache_hit_rate"],
        "moved_programs": moved,
        "read_p50_ms": p50 / 1e6,
        "read_p99_ms": p99 / 1e6,
        "read_p99_over_p50": (p99 / p50) if p50 else 0.0,
        "wall_ms": sim.now / 1e6,
        "obs_wa": obs.snapshot(sim.now)[
            f"device.{kind}.write_amplification"
        ],
    }


def run_predictability_phase(kind, n_requests=32):
    """Figure-8-style: 8 MB write-latency spread on a nearly-full
    device.

    Device-managed FTLs are primed to their GC/merge threshold first
    (and get the small 48 MB DRAM buffer of the Fig. 8 setup, so write
    acks cannot hide behind DRAM), then serve random 8 MB writes whose
    latency swings with whatever relocation work each one drags in.
    The SDF and the zoned device pay a flat, explicit erase+write."""
    from dataclasses import replace

    from repro.devices import HUAWEI_GEN3_SPEC
    from repro.sim.stats import LatencyRecorder

    sim = Simulator()
    rng = random.Random(SEED)
    recorder = LatencyRecorder(f"{kind}.predictability")
    if kind in ("sdf", "zoned"):
        device = build_device(kind, sim, capacity_scale=0.004, n_channels=8)
        device.prefill(1.0)

        if kind == "zoned":

            def writer(index):
                for turn in range(n_requests // 8):
                    zone = (index + turn * 8) % device.n_zones
                    start = sim.now
                    yield from device.reset_zone(zone)
                    yield from device.write_zone(zone)
                    recorder.record(sim.now - start)

        else:

            def writer(index):
                channel = device.channels[index]
                for turn in range(n_requests // 8):
                    start = sim.now
                    yield from channel.write_fresh(
                        turn % channel.n_logical_blocks
                    )
                    recorder.record(sim.now - start)

        processes = [sim.process(writer(index)) for index in range(8)]
        sim.run(until=sim.all_of(processes))
    else:
        spec = replace(
            HUAWEI_GEN3_SPEC.scaled(0.006),
            dram_buffer_bytes=48 << 20,
            parity_group_size=None,
            n_channels=8,
        )
        device = build_device(kind, sim, spec=spec)
        device.prefill(1.0)
        ftl = device.ftl
        if hasattr(ftl, "free_blocks") and hasattr(ftl, "gc_free_blocks"):
            # Drive the FTL to its GC threshold so the timed writes
            # all contend with relocation (the hybrid's log-block pool
            # churns on its own once the device is full).
            while max(
                ftl.free_blocks(c) for c in range(spec.n_channels)
            ) > ftl.gc_free_blocks + 2:
                ftl.write(rng.randrange(device.user_pages), None)
        pages = (8 << 20) // device.page_size

        def writer():
            for _ in range(n_requests):
                start = sim.now
                lpn = rng.randrange(device.user_pages - pages)
                yield from device.write(lpn, pages)
                recorder.record(sim.now - start)

        sim.run(until=sim.process(writer()))
    p50 = recorder.quantile(0.50)
    p99 = recorder.quantile(0.99)
    return {
        "write_p50_ms": p50 / 1e6,
        "write_p99_ms": p99 / 1e6,
        "p99_over_p50": (p99 / p50) if p50 else 0.0,
        "write_cov": recorder.coefficient_of_variation,
    }


def run_small_update_phase(kind):
    """Small-random-update microbench: mean device latency for an 8 KB
    in-place update.

    Page-mapped kinds remap one page.  The SDF and the zoned device
    have no device-side map: an in-place 8 KB update is a host-driven
    read-modify-write of the whole 8 MB erase unit."""
    sim = Simulator()
    if kind in ("sdf", "zoned"):
        device = build_device(kind, sim, capacity_scale=0.01, n_channels=4)
        n_updates = 4

        def drive():
            if kind == "zoned":
                for index in range(n_updates):
                    zone = index % device.n_zones
                    if index < device.n_zones:
                        yield from device.write_zone(zone)
                    yield from device.read_zone(
                        zone, 0, device.pages_per_zone
                    )
                    yield from device.reset_zone(zone)
                    yield from device.write_zone(zone)
            else:
                for index in range(n_updates):
                    channel = device.channels[index % 4]
                    block = 0
                    if not channel.ftl.is_mapped(block):
                        yield from channel.write(block)
                    yield from channel.read(
                        block, 0, channel.pages_per_logical_block
                    )
                    yield from channel.erase(block)
                    yield from channel.write(block)

    else:
        device = build_device(kind, sim, capacity_scale=0.01, cmt_pages=64) \
            if kind == "dftl" else build_device(
                kind, sim, capacity_scale=0.01
            )
        n_updates = 256
        rng = random.Random(SEED)
        span = 512  # hot set: within one DFTL translation page

        def drive():
            for lpn in range(span):
                yield from device.write(lpn, 1)
            for _ in range(n_updates):
                yield from device.write(rng.randrange(span), 1)
            yield from device.drain()

    start = sim.now
    sim.run(until=sim.process(drive()))
    # Mean time per 8 KB update, including everything it dragged along.
    return {"small_update_ms": (sim.now - start) / n_updates / 1e6}


def make_fleet_slice(kind) -> Scenario:
    duration = FLEET_MS * MS
    return Scenario(
        name=f"fleet-slice-{kind}",
        tenants=(
            TenantSpec(
                name="mixed",
                mix=YCSB_A,
                keys=UniformKeyModel(0, 4_000),
                sizes=SizeDistribution(fixed=VALUE_BYTES),
                arrivals=RateSchedule(base_rps=300.0),
            ),
        ),
        duration_ns=duration,
        n_nodes=1,
        n_slices=2,
        key_span=4_000,
        seed=SEED,
        device_kind=kind,
        capacity_scale=0.02,
        n_channels=4,
    )


def run_fleet_phase(kind):
    result = run_scenario(make_fleet_slice(kind))
    report = result.tenants["mixed"]
    return {
        "fleet_offered": report.offered,
        "fleet_good": report.good,
        "fleet_p50_ms": report.p50_ms,
        "fleet_p99_ms": report.p99_ms,
    }


def run_ablation():
    results = {}
    for kind in KINDS:
        row = {}
        row.update(run_kv_phase(kind))
        row.update(run_predictability_phase(kind))
        row.update(run_small_update_phase(kind))
        row.update(run_fleet_phase(kind))
        results[kind] = row
    return results


def test_device_zoo_ablation(benchmark):
    assert set(KINDS) <= set(device_kinds())
    assert len(KINDS) >= 5
    results = run_once(benchmark, run_ablation)

    rows = [
        [
            kind,
            f"{row['write_amplification']:.3f}",
            row["gc_programs"] + row["merges"],
            f"{row['map_cache_hit_rate']:.3f}",
            f"{row['write_p50_ms']:.3f}",
            f"{row['write_p99_ms']:.3f}",
            f"{row['p99_over_p50']:.2f}",
            f"{row['small_update_ms']:.3f}",
            f"{row['fleet_p99_ms']:.1f}",
        ]
        for kind, row in results.items()
    ]
    emit(
        benchmark,
        "Device-zoo ablation: CCDB KV phase + small-update microbench "
        f"+ {FLEET_MS} ms fleet slice",
        ["device", "WA", "gc+merge", "map hit", "write p50 ms",
         "write p99 ms", "w p99/p50", "8K update ms", "fleet p99 ms"],
        rows,
        results=results,
    )
    if JSON_PATH:
        artifact = {
            "kinds": list(KINDS),
            "puts_per_slice": PUTS_PER_SLICE,
            "fleet_ms": FLEET_MS,
            "seed": SEED,
            "results": results,
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)

    sdf = results["sdf"]
    conventional = results["conventional"]

    # -- The paper's claim: software-defined flash does not amplify.
    assert sdf["write_amplification"] == pytest.approx(1.0)
    assert results["zoned"]["write_amplification"] == pytest.approx(1.0)
    for kind in ("conventional", "dftl", "hybrid", "mqftl"):
        assert results[kind]["write_amplification"] >= (
            sdf["write_amplification"]
        ), f"{kind} should not beat the SDF's WA"

    # Sustained random updates force device-managed FTLs to move data.
    assert (
        conventional["gc_programs"] > 0 or conventional["gc_runs"] > 0
    ), "the CCDB phase never pressured the baseline's GC"

    # -- Predictability (Figure 8): the SDF's write tail is tighter
    # than the conventional baseline's, whose GC smears write latency.
    assert sdf["p99_over_p50"] < conventional["p99_over_p50"], (
        f"SDF write p99/p50 {sdf['p99_over_p50']:.2f} should beat "
        f"conventional {conventional['p99_over_p50']:.2f}"
    )

    # -- The boundary: device-managed mapping wins small random
    # updates.  DFTL's warm cache remaps one 8 KB page; the SDF
    # read-modify-writes 8 MB.
    assert results["dftl"]["small_update_ms"] < sdf["small_update_ms"], (
        "DFTL should beat the SDF on small random in-place updates"
    )
    assert results["dftl"]["map_cache_hit_rate"] > 0.0

    # The fleet slice completed work on every backend.
    for kind, row in results.items():
        assert row["fleet_good"] > 0, f"{kind}: fleet slice did no work"
        assert row["host_programs"] > 0, f"{kind}: KV phase wrote nothing"

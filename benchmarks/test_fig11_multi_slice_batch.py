"""Figure 11: 4 and 8 slices, random 512 KB KV reads vs batch size.

Paper: with more slices SDF's exposed channels fill up -- at 8 slices x
batch 4 throughput already reaches ~1.1 GB/s, and with large batches it
approaches ~1.5 GB/s.  The Gen3 peaks around 700 MB/s and *stops
scaling* (its 4- and 8-slice curves coincide; extra concurrency can
even hurt slightly).
"""

from _bench_common import emit, measure_kv_reads, run_once

from repro.sim import KIB, MS

BATCH_SIZES = [1, 4, 16, 44]
SLICE_COUNTS = [4, 8]
VALUE_BYTES = 512 * KIB


def test_fig11_multi_slice_batch(benchmark):
    def run():
        out = {}
        for kind in ("sdf", "gen3"):
            for n_slices in SLICE_COUNTS:
                for batch in BATCH_SIZES:
                    out[(kind, n_slices, batch)] = measure_kv_reads(
                        kind,
                        n_slices=n_slices,
                        batch_size=batch,
                        value_bytes=VALUE_BYTES,
                        duration_ns=150 * MS,
                    )
        return out

    results = run_once(benchmark, run)
    rows = [
        [batch]
        + [results[(kind, n, batch)] for kind in ("sdf", "gen3")
           for n in SLICE_COUNTS]
        for batch in BATCH_SIZES
    ]
    emit(
        benchmark,
        "Figure 11: random 512 KB reads (MB/s) vs batch size",
        ["batch", "SDF 4sl", "SDF 8sl", "Gen3 4sl", "Gen3 8sl"],
        rows,
    )
    # SDF scales with batch size at both slice counts ...
    for n_slices in SLICE_COUNTS:
        assert (
            results[("sdf", n_slices, 44)]
            > 2.5 * results[("sdf", n_slices, 1)]
        )
    # ... reaching the GB/s regime at 8 slices x large batch.
    assert results[("sdf", 8, 44)] > 1000
    # More slices help SDF at moderate batch sizes (8sl > 4sl).
    assert results[("sdf", 8, 4)] > results[("sdf", 4, 4)]
    # Gen3 stops scaling -- and, as in the paper, heavy concurrency
    # actively hurts it ("the throughput actually decreases slightly
    # with higher concurrency"; our congestion model reproduces the
    # decrease from its mid-concurrency peak).
    assert results[("gen3", 8, 44)] < results[("gen3", 8, 4)]
    for batch in (16, 44):
        four = results[("gen3", 4, batch)]
        eight = results[("gen3", 8, batch)]
        assert abs(eight - four) / max(four, eight) < 0.40, batch
    # The headline crossover: SDF clearly beats Gen3 at high concurrency.
    assert results[("sdf", 8, 44)] > 1.5 * results[("gen3", 8, 44)]

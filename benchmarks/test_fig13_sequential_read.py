"""Figure 13: sequential (index-building) scans vs slice count.

Paper: each slice scans its key range with six synchronous threads.
SDF throughput scales with slice count up to ~16 slices where it peaks
around 1.5 GB/s; the Huawei Gen3 "does not scale at all"; the Intel 320
is constant at its SATA-class ceiling.

The Gen3's degradation under many concurrent striped streams is
modeled as controller scheduling congestion (per-page cost up to 2x at
high open-request counts): its low-concurrency points sit near its raw
stream ceiling (~1.1 GB/s, above the paper's flat ~550 MB/s line) and
degrade toward the paper's value as dozens of scan threads pile up.
Never-scaling -- the figure's message -- holds throughout.  See
EXPERIMENTS.md.
"""

from _bench_common import build_server, emit, preload_keys, run_once

from repro.sim import AllOf, MS, Simulator
from repro.sim.stats import ThroughputMeter
from repro.sim.units import KIB

SLICE_COUNTS = [1, 4, 16, 32]
THREADS_PER_SLICE = 6  # paper S3.3.2
PATCHES_PER_SLICE = 12


def scan_throughput(kind: str, n_slices: int, duration_ns: int) -> float:
    sim = Simulator()
    server = build_server(sim, kind, n_slices, capacity_scale=0.05)
    # Populate each slice with enough patches to scan.
    values_per_patch = 15  # ~8 MB / 512 KB, with key overhead
    preload_keys(
        server,
        keys_per_slice=PATCHES_PER_SLICE * values_per_patch,
        value_bytes=512 * KIB,
    )
    meter = ThroughputMeter("scan")
    deadline = sim.now + duration_ns

    def scanner(slice_, thread_id):
        _, runs = slice_.lsm.scan_plan(
            slice_.key_range.lo, slice_.key_range.hi
        )
        handles = [run.handle for run in runs]
        if not handles:
            return
        cursor = thread_id  # threads start staggered through the range
        while sim.now < deadline:
            handle = handles[cursor % len(handles)]
            cursor += THREADS_PER_SLICE
            patch = yield from server.handle_patch_read(handle, slice_)
            meter.record(sim.now, patch.nbytes)

    procs = [
        sim.process(scanner(slice_, thread))
        for slice_ in server.slices
        for thread in range(THREADS_PER_SLICE)
    ]
    sim.run(until=AllOf(sim, procs))
    warmup = duration_ns // 5
    return meter.bytes_in(warmup, deadline) / 1e6 / (
        (deadline - warmup) / 1e9
    )


def test_fig13_sequential_read(benchmark):
    def run():
        out = {}
        for kind in ("sdf", "gen3", "intel"):
            for n_slices in SLICE_COUNTS:
                duration = 700 * MS if kind == "sdf" else 300 * MS
                out[(kind, n_slices)] = scan_throughput(
                    kind, n_slices, duration
                )
        return out

    results = run_once(benchmark, run)
    rows = [
        [n] + [results[(kind, n)] for kind in ("sdf", "gen3", "intel")]
        for n in SLICE_COUNTS
    ]
    emit(
        benchmark,
        "Figure 13: sequential scan throughput (MB/s) vs slice count",
        ["slices", "SDF", "Gen3", "Intel 320"],
        rows,
    )
    sdf = {n: results[("sdf", n)] for n in SLICE_COUNTS}
    gen3 = {n: results[("gen3", n)] for n in SLICE_COUNTS}
    intel = {n: results[("intel", n)] for n in SLICE_COUNTS}
    # SDF scales near-linearly until its peak (~1.5 GB/s at >= 16 slices).
    assert sdf[4] > 2.5 * sdf[1]
    assert sdf[16] > 1.4 * sdf[4]
    assert sdf[16] > 1300
    assert sdf[32] >= 0.9 * sdf[16]  # saturated, not collapsing
    # Gen3: more slices never help (flat, then congestion-degraded).
    assert gen3[4] < 1.25 * gen3[1]
    assert gen3[16] <= gen3[4] * 1.05
    assert gen3[32] <= gen3[16] * 1.05
    # Intel 320: flat at its SATA-class ceiling.
    assert max(intel.values()) < 1.35 * min(intel.values())
    assert max(intel.values()) < 300
    # SDF overtakes Gen3 once concurrency is available.
    assert sdf[16] > gen3[16]
    assert sdf[1] < gen3[1]

"""Vectorized channel math must be bit-identical to the scalar paths."""

import numpy as np
import pytest

from repro.channel import vector
from repro.channel.engine import build_engines
from repro.ftl.ops import FlashOp, OpKind
from repro.nand.array import PhysicalAddress
from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY
from repro.nand.timing import NandTiming
from repro.sim import Simulator
from repro.sim.timeline import ResourceTimeline
from repro.sim.units import transfer_ns


@pytest.mark.parametrize("mb_per_s", [40.0, 270.0, 1610.0, 33.3])
def test_transfer_costs_match_scalar(mb_per_s):
    rng = np.random.default_rng(17)
    sizes = [0, 1, 2, 511, 512, 4096, 8192, 128 * 1024] + [
        int(n) for n in rng.integers(1, 4 << 20, size=500)
    ]
    expected = {n: transfer_ns(n, mb_per_s) for n in sizes}
    got = dict(vector.transfer_costs(sizes, mb_per_s))
    assert got == expected


def test_prefill_bus_costs_matches_lazy_fill():
    timing = NandTiming()
    sizes = [0, 4096, 8192, 16384, 123_457]

    class _Op:
        def __init__(self, nbytes):
            self.nbytes = nbytes

    cache = {}
    vector.prefill_bus_costs(timing, cache, [_Op(n) for n in sizes])
    assert cache == {n: timing.bus_transfer_ns(n) for n in sizes}


def test_reserve_bulk_matches_sequential_reserves():
    a, b = ResourceTimeline(free_at=500), ResourceTimeline(free_at=500)
    grants, ends = a.reserve_bulk(200, 70, 5)
    expected = [b.reserve(200, 70) for _ in range(5)]
    assert list(zip(grants.tolist(), ends.tolist())) == expected
    assert a.free_at == b.free_at


def _erase_ops(geometry, n):
    planes = geometry.planes_per_chip
    return [
        FlashOp(
            OpKind.ERASE,
            PhysicalAddress(0, index % 2, index % planes, index % 8, 0),
            0,
        )
        for index in range(n)
    ]


@pytest.mark.parametrize("n_ops", [4, 9, 24])
def test_erase_batch_matches_generator_and_per_op(n_ops):
    """The closed-form all-ERASE scheduler must finish at the same
    instant with the same counters as both the generator path and a
    per-op fast-path submission."""
    geometry = SDF_CHIP_GEOMETRY.scaled(0.01)

    def run(mode, stagger):
        sim = Simulator()
        engine = build_engines(sim, 1, geometry, MICRON_25NM_MLC, 2,
                               mode=mode)[0]
        done = {}

        def scenario():
            yield from engine.execute_batch(_erase_ops(geometry, n_ops))
            if stagger:
                yield sim.timeout(1_000)
                yield from engine.execute_batch(_erase_ops(geometry, 5))
            done["at"] = sim.now

        sim.run(until=sim.process(scenario()))
        return (
            done["at"],
            engine.ops_executed.value,
            engine.wait_ns.value,
            engine.busy_value(sim.now),
        )

    for stagger in (False, True):
        assert run("generator", stagger) == run("timeline", stagger)

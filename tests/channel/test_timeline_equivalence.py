"""No-drift suite for the timeline-reservation fast path.

The fast scheduling path (``mode="timeline"``) must produce *byte
identical* results to the generator path: same end-of-run clock, same
throughput-meter samples at the same instants, same latency samples,
same per-engine op/wait/busy accounting, same NAND wear -- across
seeds, workloads, device families, and with fault/QoS planes active.
Whenever equivalence cannot be guaranteed the device must *fall back*
to the generator path rather than drift.
"""

import numpy as np
import pytest

from repro.devices import build_device
from repro.faults import FaultPlan, attach_device_faults
from repro.ftl.ops import FlashOp, OpKind
from repro.nand.array import PhysicalAddress
from repro.obs import Observability, attach_device
from repro.qos import ChannelQosConfig, QosPlan, attach_device_qos
from repro.sim import MIB, MS, Simulator
from repro.workloads import (
    drive_conventional_reads,
    drive_conventional_writes,
    drive_sdf_reads,
    drive_sdf_writes,
)

N_CHANNELS = 4
SCALE = 0.004


def sdf_signature(sim, sdf):
    """Everything observable about a finished SDF run."""
    end = sim.now
    return {
        "end": end,
        "link_read": tuple(sdf.link.read_meter.samples),
        "link_write": tuple(sdf.link.write_meter.samples),
        "engines": tuple(
            (
                engine.ops_executed.value,
                engine.wait_ns.value,
                engine.busy_value(end),
            )
            for engine in sdf.engines
        ),
        "read_latency": tuple(sdf.stats.read_latency.samples),
        "write_latency": tuple(sdf.stats.write_latency.samples),
        "erase_latency": tuple(sdf.stats.erase_latency.samples),
        "wear": (
            sdf.array.total_reads,
            sdf.array.total_programs,
            sdf.array.total_erases,
        ),
    }


def run_sdf_reads(mode, seed, sequential):
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                    mode=mode)
    sdf.prefill(1.0)
    drive_sdf_reads(
        sim,
        sdf,
        request_bytes=2 * MIB,
        duration_ns=20 * MS,
        channels=range(N_CHANNELS),
        sequential=sequential,
        rng=np.random.default_rng(seed),
        warmup_ns=0,
    )
    return sim, sdf


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("sequential", [True, False])
def test_sdf_reads_byte_identical(seed, sequential):
    sim_g, sdf_g = run_sdf_reads("generator", seed, sequential)
    sim_t, sdf_t = run_sdf_reads("timeline", seed, sequential)
    assert sdf_t.fast_path_ok()
    assert sdf_signature(sim_g, sdf_g) == sdf_signature(sim_t, sdf_t)


@pytest.mark.parametrize("seed", [0, 7])
def test_sdf_writes_byte_identical(seed):
    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        drive_sdf_writes(
            sim,
            sdf,
            duration_ns=40 * MS,
            channels=range(N_CHANNELS),
            warmup_ns=0,
        )
        return sdf_signature(sim, sdf)

    assert run("generator") == run("timeline")


def test_sdf_mixed_ops_byte_identical():
    """Reads, writes and erases interleaved on overlapping channels."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=2, mode=mode)
        sdf.prefill(0.5)

        def reader(dev):
            for _ in range(8):
                yield from dev.read(0, 0, n_pages=32)

        def writer(dev, block):
            for _ in range(2):
                yield from dev.write_fresh(block)

        procs = [
            sim.process(reader(sdf.channels[0])),
            sim.process(writer(sdf.channels[0],
                               sdf.channels[0].n_logical_blocks - 1)),
            sim.process(reader(sdf.channels[1])),
            sim.process(writer(sdf.channels[1], 0)),
        ]
        sim.run(until=sim.all_of(procs))
        return sdf_signature(sim, sdf)

    assert run("generator") == run("timeline")


@pytest.mark.parametrize("seed", [3, 4])
def test_stall_faults_stay_fast_and_match(seed):
    """Channel STALL faults are handled natively by the fast path: the
    device must NOT fall back, and the schedule (plus the fault log)
    must stay byte-identical."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        plan = FaultPlan(seed=seed)
        for channel in range(N_CHANNELS):
            plan.add(f"ch{channel}", "stall", rate=0.05,
                     delay_ns=1_000_000)
        plan.bind_clock(sim)
        for engine in sdf.engines:
            engine.faults = plan.injector(f"ch{engine.channel}")
        if mode == "timeline":
            assert sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=20 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        return sdf_signature(sim, sdf), tuple(plan.signatures())

    sig_g, faults_g = run("generator")
    sig_t, faults_t = run("timeline")
    assert faults_g  # the plan actually fired
    assert faults_g == faults_t
    assert sig_g == sig_t


def test_full_fault_plan_forces_link_fallback_and_matches():
    """``attach_device_faults`` wires the link injector, which the fast
    path cannot model -- the device must fall back to the generator
    path in timeline mode and still produce identical results."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        plan = FaultPlan(seed=5)
        plan.add("link", "delay", rate=0.1, delay_ns=50_000)
        attach_device_faults(plan, sdf)
        assert not sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=15 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        return sdf_signature(sim, sdf), tuple(plan.signatures())

    assert run("generator") == run("timeline")


@pytest.mark.parametrize("max_inflight", [1, 2, 8])
def test_qos_plan_stays_fast_and_matches(max_inflight):
    """QoS admission slots are modeled natively by the fast path: the
    device must NOT fall back, and the schedule plus every throttle
    counter must stay byte-identical."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        plan = QosPlan(channel=ChannelQosConfig(max_inflight_ops=max_inflight))
        attach_device_qos(plan, sdf)
        if mode == "timeline":
            assert sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=15 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        qos_counters = tuple(
            (
                engine.qos.throttled.value,
                engine.qos.throttle_wait_ns.value,
            )
            for engine in sdf.engines
        )
        return sdf_signature(sim, sdf), qos_counters

    sig_g, qos_g = run("generator")
    sig_t, qos_t = run("timeline")
    assert sig_g == sig_t
    assert qos_g == qos_t
    if max_inflight == 1:
        # The bound actually bit, or the counters prove nothing.
        assert any(throttled for throttled, _ in qos_g)


def span_signature(obs):
    return tuple(
        (s.track, s.name, s.start_ns, s.end_ns, tuple(sorted(s.args.items())))
        for s in obs.trace.spans
    )


def test_tracing_stays_fast_and_matches():
    """Tracing no longer forces the generator path: spans are emitted
    from reservation intervals and must be identical -- same tracks,
    same instants, same wait args, same order."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        obs = Observability(trace=True)
        attach_device(obs, sdf)
        if mode == "timeline":
            assert sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=15 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        return sdf_signature(sim, sdf), span_signature(obs), \
            obs.metrics.snapshot()

    sig_g, spans_g, snap_g = run("generator")
    sig_t, spans_t, snap_t = run("timeline")
    assert spans_g  # tracing actually recorded something
    assert sig_g == sig_t
    assert spans_g == spans_t
    assert snap_g == snap_t


def test_nonuniform_priorities_stay_fast_and_match():
    """Non-uniform op priorities route to the priority-aware analytic
    queue instead of falling back; the reordered schedule must match
    the generator's PriorityResource byte for byte."""
    from repro.channel.engine import build_engines
    from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY

    geometry = SDF_CHIP_GEOMETRY.scaled(0.01)
    priorities = {OpKind.READ: 0, OpKind.PROGRAM: 1, OpKind.ERASE: 2}

    def ops_soup(n):
        planes = geometry.planes_per_chip
        ops = []
        for index in range(n):
            address = PhysicalAddress(0, index % 2, index % planes, 0,
                                      index % 8)
            kind = (OpKind.ERASE, OpKind.PROGRAM, OpKind.READ)[index % 3]
            nbytes = geometry.page_size if kind is not OpKind.ERASE else 0
            ops.append(FlashOp(kind, address, nbytes))
        return ops

    def run(mode, trace):
        sim = Simulator()
        engine = build_engines(sim, 1, geometry, MICRON_25NM_MLC, 2,
                               priorities=priorities, mode=mode)[0]
        obs = Observability(trace=trace) if trace else None
        if obs is not None:
            sim.obs = obs
            engine.obs = obs
        if mode == "timeline":
            assert engine.fast_ok()
        done = {}

        def scenario():
            # Two waves so later requests queue behind reordered
            # earlier ones.
            yield from engine.execute_batch(ops_soup(18))
            yield from engine.execute_batch(ops_soup(12))
            done["at"] = sim.now

        sim.run(until=sim.process(scenario()))
        spans = span_signature(obs) if obs is not None else ()
        return (
            done["at"],
            engine.ops_executed.value,
            engine.wait_ns.value,
            engine.busy_value(sim.now),
            spans,
        )

    for trace in (False, True):
        result_g = run("generator", trace)
        result_t = run("timeline", trace)
        assert result_g == result_t
        if trace:
            assert result_g[4]  # spans were actually recorded


def test_quiet_link_fault_plan_stays_fast():
    """A fault plan with no link rules (the fleet-day shape: node
    crashes only) must not kick the device off the fast path just
    because ``attach_device_faults`` wired the link injector."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        plan = FaultPlan(seed=11)
        plan.add("nand", "read_uncorrectable", rate=1e-9)
        attach_device_faults(plan, sdf)
        if mode == "timeline":
            assert sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=15 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        return sdf_signature(sim, sdf)

    assert run("generator") == run("timeline")


def test_qos_tracing_and_faults_combined_match():
    """The fleet-day configuration in miniature: QoS + tracing + a
    quiet-link fault plan with channel stalls, all on the fast path."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        obs = Observability(trace=True)
        attach_device(obs, sdf)
        qos = QosPlan(channel=ChannelQosConfig(max_inflight_ops=4))
        attach_device_qos(qos, sdf)
        plan = FaultPlan(seed=13)
        for channel in range(N_CHANNELS):
            plan.add(f"ch{channel}", "stall", rate=0.05, delay_ns=500_000)
        attach_device_faults(plan, sdf)
        if mode == "timeline":
            assert sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=15 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        return (
            sdf_signature(sim, sdf),
            span_signature(obs),
            tuple(plan.signatures()),
            obs.metrics.snapshot(),
        )

    result_g = run("generator")
    result_t = run("timeline")
    assert result_g[2]  # stalls actually fired
    assert result_g == result_t


def test_metrics_only_observability_matches():
    """Metrics-only observability (no tracing) keeps the fast path on;
    queue-depth/utilization series must match the generator path."""

    def run(mode):
        sim = Simulator()
        sdf = build_device("sdf", sim, capacity_scale=SCALE, n_channels=N_CHANNELS,
                        mode=mode)
        obs = Observability()
        attach_device(obs, sdf)
        if mode == "timeline":
            assert sdf.fast_path_ok()
        sdf.prefill(1.0)
        drive_sdf_reads(
            sim,
            sdf,
            request_bytes=2 * MIB,
            duration_ns=15 * MS,
            channels=range(N_CHANNELS),
            sequential=True,
            rng=np.random.default_rng(0),
        )
        return sdf_signature(sim, sdf), obs.metrics.snapshot()

    sig_g, snap_g = run("generator")
    sig_t, snap_t = run("timeline")
    assert sig_g == sig_t
    assert snap_g == snap_t


def conventional_signature(sim, device):
    end = sim.now
    return {
        "end": end,
        "link_read": tuple(device.link.read_meter.samples),
        "link_write": tuple(device.link.write_meter.samples),
        "flush": tuple(device.flush_meter.samples),
        "engines": tuple(
            (
                engine.ops_executed.value,
                engine.wait_ns.value,
                engine.busy_value(end),
            )
            for engine in device.engines
        ),
        "read_latency": tuple(device.stats.read_latency.samples),
        "write_latency": tuple(device.stats.write_latency.samples),
    }


@pytest.mark.parametrize("seed", [0, 1])
def test_conventional_reads_byte_identical(seed):
    def run(mode):
        sim = Simulator()
        device = build_device("conventional", sim, capacity_scale=0.01, mode=mode)
        device.prefill(0.2)
        drive_conventional_reads(
            sim,
            device,
            request_bytes=64 * 1024,
            duration_ns=10 * MS,
            queue_depth=8,
            rng=np.random.default_rng(seed),
        )
        return conventional_signature(sim, device)

    assert run("generator") == run("timeline")


def test_conventional_writes_byte_identical():
    def run(mode):
        sim = Simulator()
        device = build_device("conventional", sim, capacity_scale=0.01, mode=mode)
        drive_conventional_writes(
            sim,
            device,
            request_bytes=128 * 1024,
            duration_ns=10 * MS,
            queue_depth=8,
        )
        return conventional_signature(sim, device)

    assert run("generator") == run("timeline")


def test_execute_batch_matches_execute_all():
    """The batched fast-path completion event must finish at the same
    instant, with the same counters, as the process-per-op slow path."""
    from repro.channel.engine import build_engines
    from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY

    geometry = SDF_CHIP_GEOMETRY.scaled(0.01)

    def ops_soup(n):
        planes = geometry.planes_per_chip
        ops = []
        for index in range(n):
            address = PhysicalAddress(0, index % 2, index % planes, 0,
                                      index % 8)
            kind = (OpKind.READ, OpKind.PROGRAM, OpKind.ERASE)[index % 3]
            nbytes = geometry.page_size if kind is not OpKind.ERASE else 0
            ops.append(FlashOp(kind, address, nbytes))
        return ops

    def run(mode):
        sim = Simulator()
        engine = build_engines(sim, 1, geometry, MICRON_25NM_MLC, 2,
                               mode=mode)[0]
        done = {}

        def scenario():
            result = yield from engine.execute_batch(ops_soup(24))
            done["at"] = sim.now
            return result

        sim.run(until=sim.process(scenario()))
        return (
            done["at"],
            engine.ops_executed.value,
            engine.wait_ns.value,
            engine.busy_value(sim.now),
        )

    assert run("generator") == run("timeline")


def test_mode_validation():
    from repro.channel.engine import build_engines
    from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY

    sim = Simulator()
    with pytest.raises(ValueError):
        build_engines(sim, 1, SDF_CHIP_GEOMETRY.scaled(0.01),
                      MICRON_25NM_MLC, 2, mode="warp")


def test_env_var_selects_mode(monkeypatch):
    from repro.channel.engine import default_engine_mode

    monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
    assert default_engine_mode() == "auto"
    monkeypatch.setenv("REPRO_SIM_MODE", "generator")
    assert default_engine_mode() == "generator"
    monkeypatch.setenv("REPRO_SIM_MODE", "timeline")
    assert default_engine_mode() == "timeline"
    monkeypatch.setenv("REPRO_SIM_MODE", "bogus")
    with pytest.raises(ValueError):
        default_engine_mode()

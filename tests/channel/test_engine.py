"""Unit tests for the timed channel engine, including the pipelining
rules that reproduce the paper's per-channel bandwidth arithmetic."""

import pytest

from repro.channel import ChannelEngine, build_engines
from repro.ftl.ops import OpKind, erase_op, program_op, read_op
from repro.nand import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY
from repro.nand.array import PhysicalAddress
from repro.sim import Simulator, US
from repro.sim.units import mb_per_s

PAGE = SDF_CHIP_GEOMETRY.page_size  # 8 KiB
TIMING = MICRON_25NM_MLC


def make_engine(sim, priorities=None):
    return ChannelEngine(
        sim,
        channel=0,
        geometry=SDF_CHIP_GEOMETRY,
        timing=TIMING,
        chips_per_channel=2,
        priorities=priorities,
    )


def addr(chip=0, plane=0, block=0, page=0):
    return PhysicalAddress(0, chip, plane, block, page)


def run_ops(ops, sequential=False, priorities=None):
    sim = Simulator()
    engine = make_engine(sim, priorities)

    def proc():
        if sequential:
            yield from engine.execute_sequential(ops)
        else:
            yield from engine.execute_all(ops)

    sim.run(until=sim.process(proc()))
    return sim.now, engine


def test_single_page_read_time():
    # tR + bus transfer: 75 us + (5 us + 8 KiB / 40 MB/s = 204.8 us).
    elapsed, _ = run_ops([read_op(addr(), PAGE)])
    assert elapsed == pytest.approx(75 * US + 5 * US + 204_800, rel=0.01)


def test_single_page_program_time():
    # bus transfer + tPROG.
    elapsed, _ = run_ops([program_op(addr(), PAGE)])
    assert elapsed == pytest.approx(209_800 + 1_400_000, rel=0.01)


def test_erase_time_is_3ms():
    elapsed, _ = run_ops([erase_op(addr())])
    assert elapsed == pytest.approx(3_000_000, rel=0.01)


def test_reads_on_one_plane_pipeline_cell_and_bus():
    """N same-plane reads take ~ tR + N * bus, not N * (tR + bus):
    the next sense overlaps the previous transfer."""
    ops = [read_op(addr(page=i), PAGE) for i in range(8)]
    elapsed, _ = run_ops(ops)
    assert elapsed == pytest.approx(75 * US + 8 * 209_800, rel=0.02)


def test_programs_on_different_planes_share_bus_but_program_in_parallel():
    """4-plane programming: the bus streams 4 pages while the planes
    program concurrently -> ~ 4*bus + tPROG for the batch."""
    ops = [
        program_op(PhysicalAddress(0, chip, plane, 0, 0), PAGE)
        for chip in range(2)
        for plane in range(2)
    ]
    elapsed, _ = run_ops(ops)
    assert elapsed == pytest.approx(4 * 209_800 + 1_400_000, rel=0.02)


def test_sequential_execution_does_not_pipeline():
    ops = [read_op(addr(page=i), PAGE) for i in range(4)]
    pipelined, _ = run_ops(ops)
    serialized, _ = run_ops(ops, sequential=True)
    assert serialized == pytest.approx(4 * (75 * US + 209_800), rel=0.02)
    assert serialized > pipelined


def test_channel_write_bandwidth_matches_paper_raw():
    """Sustained 4-plane programming ~ 23 MB/s per channel -- the
    plane-limited raw write bandwidth behind the paper's 1.01 GB/s."""
    n_pages_per_plane = 32
    ops = [
        program_op(PhysicalAddress(0, chip, plane, 0, page), PAGE)
        for page in range(n_pages_per_plane)
        for chip in range(2)
        for plane in range(2)
    ]
    elapsed, _ = run_ops(ops)
    bandwidth = mb_per_s(len(ops) * PAGE, elapsed)
    assert bandwidth == pytest.approx(23.4, rel=0.05)


def test_channel_read_bandwidth_matches_paper_raw():
    """Sustained reads are bus-limited at ~ 38-39 MB/s per channel --
    44x gives the paper's 1.67-1.7 GB/s raw read bandwidth."""
    ops = [
        read_op(PhysicalAddress(0, chip, plane, 0, page), PAGE)
        for page in range(16)
        for chip in range(2)
        for plane in range(2)
    ]
    elapsed, _ = run_ops(ops)
    bandwidth = mb_per_s(len(ops) * PAGE, elapsed)
    assert bandwidth == pytest.approx(39.0, rel=0.03)


def test_erase_holds_plane_but_not_bus():
    """A read on another plane proceeds during an erase; a read on the
    erased plane waits for tBERS."""
    sim = Simulator()
    engine = make_engine(sim)
    finish_times = {}

    def run(tag, op):
        yield from engine.execute(op)
        finish_times[tag] = sim.now

    sim.process(run("erase", erase_op(addr(plane=0))))
    sim.process(run("read-other-plane", read_op(addr(plane=1), PAGE)))
    sim.process(run("read-same-plane", read_op(addr(plane=0, page=1), PAGE)))
    sim.run()
    assert finish_times["read-other-plane"] < 400 * US
    assert finish_times["read-same-plane"] > 3_000 * US


def test_priority_lets_reads_jump_erase_queue():
    """With read priority enabled, a read issued while erases are queued
    on the same plane is served before the queued erase."""
    priorities = {OpKind.READ: 0, OpKind.PROGRAM: 1, OpKind.ERASE: 2}
    sim = Simulator()
    engine = make_engine(sim, priorities)
    order = []

    def run(tag, op, delay=0):
        yield sim.timeout(delay)
        yield from engine.execute(op)
        order.append(tag)

    sim.process(run("erase-1", erase_op(addr())))  # starts immediately
    sim.process(run("erase-2", erase_op(addr()), delay=1))
    sim.process(run("read", read_op(addr(page=1), PAGE), delay=2))
    sim.run()
    assert order.index("read") < order.index("erase-2")


def test_wrong_channel_rejected():
    sim = Simulator()
    engine = make_engine(sim)
    bad = read_op(PhysicalAddress(3, 0, 0, 0, 0), PAGE)
    proc = sim.process(engine.execute(bad))
    with pytest.raises(ValueError, match="channel"):
        sim.run(until=proc)


def test_counters_track_ops():
    _, engine = run_ops(
        [read_op(addr(), PAGE), program_op(addr(plane=1), PAGE)]
    )
    assert engine.ops_executed.value == 2
    assert engine.busy_ns.value > 0


def test_build_engines_creates_independent_channels():
    sim = Simulator()
    engines = build_engines(sim, 4, SDF_CHIP_GEOMETRY, TIMING)
    assert len(engines) == 4
    assert engines[0].bus is not engines[1].bus
    assert [e.channel for e in engines] == [0, 1, 2, 3]


def test_busy_excludes_queue_wait():
    """Regression: busy_ns used to include queue wait, so 'utilisation'
    could exceed 100%.  Two reads contending for the same plane: the
    second op's wait must land in wait_ns, not busy_ns."""
    ops = [read_op(addr(page=i), PAGE) for i in range(8)]
    elapsed, engine = run_ops(ops)
    assert engine.busy_ns.value <= elapsed
    assert engine.wait_ns.value > 0
    # Old accounting summed per-op latency (wait included), far above
    # the wall clock; the union of service intervals never is.
    per_op_total = 8 * (75 * US + 209_800)
    assert engine.busy_ns.value < per_op_total


def test_utilization_is_a_fraction_under_heavy_contention():
    ops = [read_op(addr(page=i), PAGE) for i in range(32)]
    sim = Simulator()
    engine = make_engine(sim)

    def proc():
        yield from engine.execute_all(ops)

    sim.run(until=sim.process(proc()))
    assert 0.0 < engine.utilization() <= 1.0
    # Saturated single-plane pipeline: the channel is nearly always busy.
    assert engine.utilization() > 0.9


def test_utilization_counts_overlapping_planes_once():
    """Four planes programming concurrently: summed service time spans
    ~4x tPROG, but the busy *union* cannot exceed the wall clock."""
    ops = [
        program_op(PhysicalAddress(0, chip, plane, 0, 0), PAGE)
        for chip in range(2)
        for plane in range(2)
    ]
    elapsed, engine = run_ops(ops)
    assert engine.busy_ns.value <= elapsed
    assert engine.utilization(elapsed) <= 1.0


def test_idle_engine_reports_zero_utilization():
    sim = Simulator()
    engine = make_engine(sim)
    assert engine.utilization() == 0.0
    assert engine.wait_ns.value == 0

"""Regression lock on the metric-name schema policy rules key on.

Policy rules reference metrics *by name* (``MetricSignal("tenant.web.
get_ns", field="p99")``), so a rename in the emitting code would
silently sever every rule reading it.  These tests pin the load-bearing
names by driving real requests through a server and asserting the
exact names appear in the registry -- a rename now fails tier-1 loudly
instead of un-wiring deployed policies.

Locked schema:

* ``tenant.{t}.{op}_ns``   -- per-tenant request-latency histograms
* ``tenant.{t}.{op}s``     -- per-tenant request counters
* ``qos.{name}.shed_{cls}s`` / ``qos.{name}.shed_deadline``
* ``qos.{name}.tenant.{t}.shed_{cls}s`` / ``...shed_deadline``
* ``policy.{rule}.{evals,fired,suppressed_*}``
* ``cluster.membership.*`` / ``cluster.election.*`` -- the replicated
  control plane's failure-detector and leadership metrics
* ``device.{kind}.*`` -- the uniform device-zoo metric family every
  backend reports (the ablation tooling diffs kinds by these names)
"""

import pytest

from repro.errors import TransientFault
from repro.kv.common import PlaceholderValue
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.obs import Observability
from repro.qos import AdmissionConfig, QosPlan
from repro.sim import Simulator


def make_server(sim, obs, qos):
    from repro.cluster.node import build_sdf_server

    server = build_sdf_server(
        sim,
        [Slice(0, KeyRange(0, 1_000), lsm=LSMTree(memtable_bytes=64 * 1024))],
        capacity_scale=0.01,
        n_channels=4,
    )
    server.attach(obs)
    server.attach(qos, name="n0")
    qos.attach_obs(obs)
    return server


def test_tenant_request_metric_names_are_stable():
    sim = Simulator()
    obs = Observability()
    qos = QosPlan(admission=AdmissionConfig(max_reads=8, max_writes=8))
    server = make_server(sim, obs, qos)

    def drive():
        yield from server.handle_put(
            7, PlaceholderValue(1024), tenant="web"
        )
        yield from server.handle_get(7, tenant="web")

    sim.run(until=sim.process(drive()))
    names = set(obs.metrics.names())
    assert "tenant.web.put_ns" in names
    assert "tenant.web.get_ns" in names
    assert "tenant.web.puts" in names
    assert "tenant.web.gets" in names
    snap = obs.metrics.snapshot(sim.now)
    assert snap["tenant.web.puts"] == 1
    assert snap["tenant.web.gets"] == 1
    assert snap["tenant.web.get_ns"]["count"] == 1


def test_qos_shed_metric_names_are_stable():
    sim = Simulator()
    obs = Observability()
    # One admission slot: a second concurrent get is shed.
    qos = QosPlan(admission=AdmissionConfig(max_reads=1))
    server = make_server(sim, obs, qos)
    sheds = []

    def one_get():
        try:
            yield from server.handle_get(7, tenant="web")
        except TransientFault as exc:
            sheds.append(exc)

    def drive():
        sim.process(one_get())
        sim.process(one_get())
        yield sim.timeout(0)
        # Expired deadline: counted under shed_deadline.
        with pytest.raises(TransientFault):
            yield from server.handle_put(
                8, PlaceholderValue(64), deadline_ns=-1, tenant="web"
            )

    sim.run(until=sim.process(drive()))
    sim.run()
    assert len(sheds) == 1
    names = set(obs.metrics.names())
    assert "qos.n0.shed_reads" in names
    assert "qos.n0.shed_deadline" in names
    assert "qos.n0.tenant.web.shed_reads" in names
    assert "qos.n0.tenant.web.shed_deadline" in names
    snap = obs.metrics.snapshot(sim.now)
    assert snap["qos.n0.shed_reads"] == 1
    assert snap["qos.n0.tenant.web.shed_reads"] == 1
    assert snap["qos.n0.tenant.web.shed_deadline"] == 1


def test_policy_outcome_metric_names_are_stable():
    from repro.policy import (
        CallbackAction,
        Hysteresis,
        MetricSignal,
        PolicyEngine,
        PolicyPlan,
        Rule,
    )
    from repro.sim import MS

    sim = Simulator()
    obs = Observability()
    plan = PolicyPlan(
        rules=(
            Rule(
                name="tighten",
                signal=MetricSignal("load"),
                hysteresis=Hysteresis(upper=1.0, lower=0.5),
                action=CallbackAction(lambda ctx, rng: None),
            ),
        ),
        period_ns=MS,
    )
    plan.attach_obs(obs)
    engine = PolicyEngine(plan, sim, obs=obs)
    obs.metrics.gauge("load").set(5.0)
    engine.start(until_ns=3 * MS)
    sim.run()
    names = set(obs.metrics.names())
    assert "policy.tighten.evals" in names
    assert "policy.tighten.fired" in names
    assert "policy.tighten.suppressed_hysteresis" in names


def test_device_zoo_metric_names_are_stable():
    """Every registered backend publishes exactly the same metric-key
    family under its own ``device.{kind}.`` prefix -- ablation reports
    and policies diff kinds by these names."""
    from repro.devices import DEVICE_METRIC_KEYS, build_device, device_kinds
    from repro.obs.attach import attach_device

    assert DEVICE_METRIC_KEYS == (
        "write_amplification",
        "host_programs",
        "gc_programs",
        "gc_runs",
        "merges",
        "erases",
        "map_cache_hits",
        "map_cache_misses",
        "map_cache_hit_rate",
    )
    for kind in device_kinds():
        sim = Simulator()
        obs = Observability()
        params = {"capacity_scale": 0.01}
        if kind in ("sdf", "zoned"):
            params["n_channels"] = 2
        device = build_device(kind, sim, **params)
        attach_device(obs, device)
        names = set(obs.metrics.names())
        for key in DEVICE_METRIC_KEYS:
            assert f"device.{kind}.{key}" in names, (kind, key)


def test_membership_and_election_metric_names_are_stable():
    """``DeadNodeSignal`` (and any operator dashboard) keys on these
    names; a rename would silently un-wire dead-node rules."""
    from repro.cluster import (
        ClusterController,
        ControllerGroup,
        Network,
        SwimConfig,
        build_sdf_server,
    )
    from repro.sim import MS

    sim = Simulator()
    obs = Observability()
    network = Network(sim)
    ctrl = ClusterController(sim, network)
    ctrl.add_node("n0", build_sdf_server(sim, [], capacity_scale=0.01))
    group = ControllerGroup(
        sim, network, ctrl, n_replicas=3,
        swim=SwimConfig(
            period_ns=10 * MS,
            ping_timeout_ns=2 * MS,
            suspect_timeout_ns=40 * MS,
        ),
    )
    group.attach(obs)
    group.watch_nodes()

    def killer():
        yield sim.timeout(50 * MS)
        group.replica("ctl0").crash()

    sim.process(killer())
    group.start(until_ns=400 * MS)
    sim.run()
    names = set(obs.metrics.names())
    for name in (
        "cluster.membership.pings",
        "cluster.membership.ping_reqs",
        "cluster.membership.suspicions",
        "cluster.membership.refutes",
        "cluster.membership.confirms",
        "cluster.membership.rejoins",
        "cluster.membership.alive",
        "cluster.membership.suspects",
        "cluster.membership.dead",
        "cluster.election.elections",
        "cluster.election.rounds",
        "cluster.election.term",
        "cluster.election.fences",
        "cluster.election.migrations_resolved",
        "cluster.replication.records",
        "cluster.replication.failures",
    ):
        assert name in names, name
    snap = obs.metrics.snapshot(sim.now)
    assert snap["cluster.membership.dead"] == 1  # the crashed leader
    assert snap["cluster.election.term"] == 2
    assert snap["cluster.election.elections"] == 1

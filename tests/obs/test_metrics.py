"""Unit tests for the metrics registry, snapshot and text report."""

import pytest

from repro.obs import Gauge, Histogram, MetricsRegistry
from repro.sim.stats import Counter


def test_accessors_create_on_first_use_and_are_stable():
    registry = MetricsRegistry()
    counter = registry.counter("blk.writes")
    counter.add(3)
    assert registry.counter("blk.writes") is counter
    assert registry.snapshot()["blk.writes"] == 3


def test_gauge_set_and_add():
    gauge = Gauge("depth")
    gauge.set(4.0)
    gauge.add(-1.5)
    assert gauge.value == pytest.approx(2.5)


def test_histogram_summary_quantiles():
    histogram = Histogram("lat")
    for value in range(1, 101):
        histogram.record(value)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p99"] == pytest.approx(99.01)
    assert Histogram("empty").summary() == {"count": 0}


def test_time_weighted_snapshot_uses_supplied_time():
    registry = MetricsRegistry()
    signal = registry.time_weighted("queue", start_ns=0)
    signal.update(10, 4)  # 0 until t=10, then 4
    snap = registry.snapshot(20)
    assert snap["queue"] == pytest.approx((0 * 10 + 4 * 10) / 20)


def test_register_existing_counter_and_callback():
    registry = MetricsRegistry()
    external = Counter("slice.reads")
    external.add(7)
    registry.register_counter("slice0.reads", external)
    registry.register_callback("util", lambda now: 0.25 if now is None else now)
    assert registry.snapshot()["slice0.reads"] == 7
    assert registry.snapshot()["util"] == 0.25
    assert registry.snapshot(99)["util"] == 99


def test_names_cover_every_kind():
    registry = MetricsRegistry()
    registry.counter("a")
    registry.gauge("b")
    registry.histogram("c")
    registry.time_weighted("d")
    registry.register_callback("e", lambda now: 1)
    assert registry.names() == ["a", "b", "c", "d", "e"]


def test_report_renders_flat_table_with_expanded_histograms():
    registry = MetricsRegistry()
    registry.counter("blk.writes").add(2)
    registry.histogram("lat").record(5)
    report = registry.report(title="t")
    assert "blk.writes" in report
    assert "lat.p50" in report
    assert report.splitlines()[0] == "t"


def test_reset_clears_counters_and_histograms():
    registry = MetricsRegistry()
    registry.counter("a").add(5)
    registry.histogram("h").record(1)
    registry.gauge("g").set(3)
    registry.reset()
    snap = registry.snapshot()
    assert snap["a"] == 0
    assert snap["h"] == {"count": 0}
    assert snap["g"] == 3  # gauges keep their last set value

"""End-to-end tests: observability attached to real systems.

These check the acceptance properties of the subsystem: snapshot keys
exist for every channel, utilisation is a true fraction, attachment
causes zero behavioural drift, and the exported trace is well-formed.
"""

import json

import numpy as np
import pytest

from repro import build_sdf_system
from repro.ecc.model import EccModel, ReadStatus
from repro.obs import Observability, attach_device, attach_ecc
from repro.sim import MS, Simulator


def run_workload(obs=None, n_channels=4):
    system = build_sdf_system(
        capacity_scale=0.004, n_channels=n_channels, obs=obs
    )
    ids = [system.put(b"payload-%d" % index) for index in range(2 * n_channels)]
    for block_id in ids[: n_channels]:
        system.get(block_id, 0, 4096)
    system.put(b"rewrite", block_id=ids[0])
    system.delete(ids[1])
    system.sim.run(until=system.sim.now + 50 * MS)
    return system


def test_snapshot_has_keys_for_every_channel():
    obs = Observability()
    system = run_workload(obs)
    snapshot = obs.snapshot(system.sim.now)
    for channel in range(system.device.n_channels):
        for key in (
            f"channel{channel}.utilization",
            f"channel{channel}.busy_ns",
            f"channel{channel}.wait_ns",
            f"channel{channel}.ops",
            f"ftl.ch{channel}.host_programs",
            f"ftl.ch{channel}.erases",
            f"wear.ch{channel}.spread",
            f"blk.ch{channel}.erase_backlog",
        ):
            assert key in snapshot, key


def test_utilization_is_a_fraction_and_wait_is_split_out():
    obs = Observability()
    system = run_workload(obs)
    snapshot = obs.snapshot(system.sim.now)
    for channel in range(system.device.n_channels):
        utilization = snapshot[f"channel{channel}.utilization"]
        assert 0.0 <= utilization <= 1.0
    # Channel 0 streamed multiple 8 MB blocks: it was busy, and its ops
    # queued (1024 pages contend for 4 planes), so wait accumulated
    # separately instead of inflating busy time.
    assert snapshot["channel0.utilization"] > 0.1
    assert snapshot["channel0.wait_ns"] > snapshot["channel0.busy_ns"]


def test_block_layer_counters_track_rewrites_and_frees():
    obs = Observability()
    system = run_workload(obs)
    snapshot = obs.snapshot(system.sim.now)
    assert snapshot["blk.writes"] == 9
    assert snapshot["blk.rewrites"] == 1
    assert snapshot["blk.frees"] == 2  # explicit delete + rewrite-free
    assert snapshot["blk.reads"] == 4
    assert snapshot["blk.background_erases"] == 2
    assert snapshot["blk.stored_blocks"] == system.block_layer.stored_blocks


def test_attachment_causes_no_behavioural_drift():
    plain = run_workload(None)
    traced = run_workload(Observability(trace=True))
    assert plain.sim.now == traced.sim.now
    assert (
        plain.device.stats.write_latency.samples
        == traced.device.stats.write_latency.samples
    )


def test_trace_round_trip_has_op_and_resource_spans(tmp_path):
    obs = Observability(trace=True)
    run_workload(obs)
    path = tmp_path / "run.trace.json"
    obs.trace.write(path)
    events = json.loads(path.read_text())["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    tracks = {e["cat"] for e in spans}
    # Engine op spans, named-resource hold spans and block-layer spans.
    assert "ch0/ops" in tracks
    assert "ch0/bus" in tracks
    assert any(track.startswith("ch0/chip") for track in tracks)
    assert "blk/write" in tracks and "blk/read" in tracks
    names = {e["name"] for e in spans}
    assert {"read", "program", "erase", "hold", "write"} <= names
    # Every op span carries its queue wait, split from service time.
    op_spans = [e for e in spans if e["cat"] == "ch0/ops"]
    assert op_spans and all("wait_ns" in e["args"] for e in op_spans)


def test_metrics_only_attachment_records_no_spans():
    obs = Observability()  # tracing off by default
    run_workload(obs)
    assert len(obs.trace) == 0
    assert obs.trace.enabled is False


def test_server_attach_exposes_request_metrics():
    from repro.cluster import build_sdf_server
    from repro.kv.common import PlaceholderValue
    from repro.kv.slice import Slice, partition_key_space

    sim = Simulator()
    slices = [
        Slice(index, key_range)
        for index, key_range in enumerate(partition_key_space(2, 0, 1000))
    ]
    server = build_sdf_server(
        sim, slices, capacity_scale=0.004, n_channels=4
    )
    obs = Observability(trace=True)
    server.attach_obs(obs)

    def workload():
        yield from server.handle_put(5, PlaceholderValue(1024))
        yield from server.handle_put(600, PlaceholderValue(2048))
        value = yield from server.handle_get(5)
        assert value is not None
        missing = yield from server.handle_get(7)
        assert missing is None

    sim.run(until=sim.process(workload()))
    snapshot = obs.snapshot(sim.now)
    assert snapshot["server.gets"] == 2
    assert snapshot["server.puts"] == 2
    assert snapshot["slice0.reads"] == 2
    assert snapshot["slice0.writes"] == 1
    assert snapshot["slice1.writes"] == 1
    assert snapshot["server.get_ns"]["count"] == 2
    assert snapshot["server.put_ns"]["count"] == 2
    get_spans = [s for s in obs.trace.spans if s.name == "get"]
    assert len(get_spans) == 2
    assert all("wait_ns" in span.args for span in get_spans)


def test_ecc_attach_exposes_read_outcome_counters():
    # Deterministic-optimistic model (rng=None): every read is CLEAN.
    obs = Observability()
    ecc = EccModel()
    attach_ecc(obs, ecc)
    for _ in range(5):
        assert ecc.read_outcome(8192, 1000) is ReadStatus.CLEAN
    snap = obs.snapshot()
    assert snap["ecc.reads_clean"] == 5
    assert snap["ecc.reads_corrected"] == 0
    assert snap["ecc.reads_uncorrectable"] == 0


def test_ecc_attach_counts_corrections_and_failures_at_high_wear():
    # A seeded RNG across two wear levels drives all three outcomes
    # (rated endurance: mostly corrected; 2x: uncorrectable); the pull
    # metrics must always agree with the model's own tallies.
    obs = Observability()
    ecc = EccModel(rng=np.random.default_rng(42))
    attach_ecc(obs, ecc)
    n = 400
    for index in range(n):
        ecc.read_outcome(8192, 3_000 if index % 2 == 0 else 6_000)
    snap = obs.snapshot()
    assert snap["ecc.reads_clean"] == ecc.clean_reads
    assert snap["ecc.reads_corrected"] == ecc.corrected_reads
    assert snap["ecc.reads_uncorrectable"] == ecc.uncorrectable_reads
    total = (
        snap["ecc.reads_clean"]
        + snap["ecc.reads_corrected"]
        + snap["ecc.reads_uncorrectable"]
    )
    assert total == n
    assert snap["ecc.reads_corrected"] > 0
    assert snap["ecc.reads_uncorrectable"] > 0


def test_ecc_attach_is_pull_only_no_hot_path_cost():
    # The model never calls into obs on a read -- attach_ecc registers
    # callbacks over the plain attribute tallies, so an unattached model
    # has no obs coupling at all.
    ecc = EccModel()
    assert ecc.obs is None
    ecc.read_outcome(8192, 100)
    obs = Observability()
    attach_ecc(obs, ecc)
    assert ecc.obs is obs
    # Reads made *before* attachment are still visible (pull semantics).
    assert obs.snapshot()["ecc.reads_clean"] == 1

"""Unit tests for the trace collector and its Chrome-trace export."""

import json

import pytest

from repro.obs import NullTraceCollector, Span, TraceCollector


def test_complete_span_records_duration_and_args():
    trace = TraceCollector()
    span = trace.span("ch0/bus", "hold", 100, 350, wait_ns=40)
    assert span.duration_ns == 250
    assert span.args == {"wait_ns": 40}
    assert len(trace) == 1


def test_span_rejects_negative_duration():
    with pytest.raises(ValueError, match="ends"):
        Span("t", "x", 100, 50)


def test_begin_end_nesting_stack_per_track():
    trace = TraceCollector()
    trace.begin("srv/slice0", "get", 0)
    trace.begin("srv/slice0", "storage_read", 10)
    assert trace.open_depth("srv/slice0") == 2
    inner = trace.end("srv/slice0", 90)
    outer = trace.end("srv/slice0", 120)
    assert trace.open_depth("srv/slice0") == 0
    assert inner.name == "storage_read" and inner.duration_ns == 80
    assert outer.name == "get" and outer.duration_ns == 120
    # The inner span is fully contained in the outer one.
    assert outer.start_ns <= inner.start_ns
    assert inner.end_ns <= outer.end_ns


def test_end_without_open_span_raises():
    trace = TraceCollector()
    with pytest.raises(ValueError, match="no open span"):
        trace.end("nowhere", 10)


def test_chrome_trace_is_valid_json_with_metadata(tmp_path):
    trace = TraceCollector()
    trace.span("ch0/bus", "hold", 1000, 3000)
    trace.span("ch0/chip0.plane1", "hold", 0, 2000)
    trace.span("ch1/bus", "hold", 500, 700)
    trace.instant("ch0/bus", "grown-bad", 2500, block=7)
    trace.counter("ch0", "queue_depth", 1500, 3)
    path = tmp_path / "out.trace.json"
    trace.write(path)

    parsed = json.loads(path.read_text())
    events = parsed["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(spans) == 3
    # Timestamps exported in microseconds.
    hold = next(e for e in spans if e["cat"] == "ch0/bus")
    assert hold["ts"] == pytest.approx(1.0)
    assert hold["dur"] == pytest.approx(2.0)
    # Tracks sharing a "proc/" prefix share a pid; different procs don't.
    pid_of = {e["cat"]: e["pid"] for e in spans}
    assert pid_of["ch0/bus"] == next(
        e["pid"] for e in spans if e["cat"] == "ch0/chip0.plane1"
    )
    assert pid_of["ch0/bus"] != pid_of["ch1/bus"]
    # Process/thread name metadata present for Perfetto grouping.
    assert {m["name"] for m in metas} >= {"process_name", "thread_name"}
    assert any(e["ph"] == "i" for e in events)
    assert any(e["ph"] == "C" for e in events)


def test_max_events_cap_counts_dropped_spans():
    trace = TraceCollector(max_events=2)
    for index in range(5):
        trace.span("t", "s", index, index + 1)
    assert len(trace) == 2
    assert trace.dropped == 3


def test_reset_clears_everything():
    trace = TraceCollector()
    trace.span("t", "s", 0, 1)
    trace.begin("t", "open", 2)
    trace.reset()
    assert len(trace) == 0
    assert trace.open_depth("t") == 0


def test_null_collector_is_inert_but_writes_empty_trace(tmp_path):
    null = NullTraceCollector()
    assert null.enabled is False
    assert null.span("t", "s", 0, 1) is None
    assert null.begin("t", "s", 0) is None
    assert null.end("t", 1) is None
    null.instant("t", "i", 0)
    null.counter("t", "c", 0, 1)
    assert len(null) == 0
    path = tmp_path / "empty.json"
    null.write(path)
    assert json.loads(path.read_text())["traceEvents"] == []

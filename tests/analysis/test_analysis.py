"""Unit tests for the analytic models (bandwidth, capacity, cost,
reliability, reporting)."""

import pytest

from repro.analysis import (
    CapacityBreakdown,
    CostModel,
    DEFAULT_COST_MODEL,
    commodity_capacity,
    expected_fleet_uncorrectable_events,
    format_table,
    raw_read_bandwidth_mb_s,
    raw_write_bandwidth_mb_s,
    replication_loss_probability,
    sdf_capacity,
    sdf_raw_bandwidths,
)
from repro.analysis.cost import cost_reduction_vs_commodity
from repro.analysis.reliability import wear_for_target_fleet_events
from repro.ecc.model import EccModel
from repro.nand.catalog import (
    HIGH_END_CHIP_GEOMETRY,
    MICRON_34NM_MLC,
    MICRON_25NM_MLC,
    SDF_CHIP_GEOMETRY,
)


def test_sdf_raw_bandwidths_match_section_3_2():
    read, write = sdf_raw_bandwidths()
    assert read == pytest.approx(1670, rel=0.03)
    assert write == pytest.approx(1010, rel=0.05)


def test_high_end_raw_bandwidths_match_table1():
    # Memblaze Q520 class: 32 channels x 16 planes -> 1600/1500 MB/s.
    read = raw_read_bandwidth_mb_s(
        32, 16, HIGH_END_CHIP_GEOMETRY, MICRON_34NM_MLC
    )
    write = raw_write_bandwidth_mb_s(
        32, 16, HIGH_END_CHIP_GEOMETRY, MICRON_34NM_MLC
    )
    assert read == pytest.approx(1600, rel=0.08)
    assert write == pytest.approx(1500, rel=0.08)


def test_bandwidth_validation():
    with pytest.raises(ValueError):
        raw_read_bandwidth_mb_s(0, 4, SDF_CHIP_GEOMETRY, MICRON_25NM_MLC)
    with pytest.raises(ValueError):
        raw_write_bandwidth_mb_s(44, 0, SDF_CHIP_GEOMETRY, MICRON_25NM_MLC)


def test_sdf_capacity_is_99_percent():
    assert sdf_capacity().user_fraction == pytest.approx(0.99)


def test_commodity_capacity_is_50_to_70_percent():
    # The paper's typical configurations.
    low = commodity_capacity(op_ratio=0.40, parity_group_size=11)
    high = commodity_capacity(op_ratio=0.25, parity_group_size=11)
    assert 0.50 <= low.user_fraction <= 0.60
    assert 0.65 <= high.user_fraction <= 0.70


def test_capacity_breakdown_validation():
    with pytest.raises(ValueError):
        CapacityBreakdown(0.5, 0.2, 0.2, 0.2)  # sums to 1.1
    with pytest.raises(ValueError):
        CapacityBreakdown(1.2, -0.2, 0.0, 0.0)
    with pytest.raises(ValueError):
        commodity_capacity(op_ratio=1.0)
    with pytest.raises(ValueError):
        sdf_capacity(reserve_fraction=1.0)


def test_capacity_user_bytes():
    breakdown = sdf_capacity()
    assert breakdown.user_bytes(1000) == 990


def test_cost_model_basic_arithmetic():
    model = CostModel(
        flash_usd_per_raw_gb=1.0,
        controller_usd=0.0,
        dram_usd_per_gb=0.0,
        assembly_usd=0.0,
    )
    assert model.device_cost(100) == 100
    breakdown = sdf_capacity(reserve_fraction=0.0)
    assert model.usd_per_usable_gb(100, breakdown) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        model.device_cost(0)


def test_cost_reduction_matches_paper_range():
    """S2.2: 20-50% per-GB saving depending on the comparison OP."""
    light = cost_reduction_vs_commodity(
        sdf_capacity(), commodity_capacity(op_ratio=0.10)
    )
    heavy = cost_reduction_vs_commodity(
        sdf_capacity(), commodity_capacity(op_ratio=0.40)
    )
    assert 0.15 <= light <= 0.40
    assert 0.40 <= heavy <= 0.60
    assert heavy > light


def test_fleet_reliability_matches_anecdote():
    """2000+ devices, 6 months, ~1 uncorrectable event: possible with a
    young fleet and strong BCH."""
    young = expected_fleet_uncorrectable_events(
        n_devices=2000,
        months=6,
        page_reads_per_device_per_day=2e8,  # ~19k reads/s/device
        mean_pe_cycles=100,
    )
    assert young < 1.0
    worn = expected_fleet_uncorrectable_events(
        n_devices=2000,
        months=6,
        page_reads_per_device_per_day=2e8,
        mean_pe_cycles=9000,
    )
    assert worn > young


def test_wear_inversion_finds_crossover():
    wear = wear_for_target_fleet_events(
        target_events=1.0,
        n_devices=2000,
        months=6,
        page_reads_per_device_per_day=2e8,
    )
    ecc = EccModel()
    below = expected_fleet_uncorrectable_events(
        2000, 6, 2e8, max(wear - 200, 0), ecc
    )
    above = expected_fleet_uncorrectable_events(2000, 6, 2e8, wear + 200, ecc)
    assert below <= 1.0 <= above * 1.5


def test_replication_loss_probability():
    assert replication_loss_probability(1e-3, 3) == pytest.approx(1e-9)
    assert replication_loss_probability(0.0, 3) == 0.0
    with pytest.raises(ValueError):
        replication_loss_probability(1.5, 3)
    with pytest.raises(ValueError):
        replication_loss_probability(0.5, 0)


def test_reliability_validation():
    with pytest.raises(ValueError):
        expected_fleet_uncorrectable_events(0, 6, 1e8, 100)
    with pytest.raises(ValueError):
        wear_for_target_fleet_events(0, 2000, 6, 1e8)


def test_format_table_alignment():
    table = format_table(
        ["name", "mb_s"],
        [["sdf", 1590.0], ["gen3", 1200.0]],
        title="Table 4",
    )
    lines = table.splitlines()
    assert lines[0] == "Table 4"
    assert "name" in lines[1] and "mb_s" in lines[1]
    assert len(lines) == 5
    assert all(len(line) == len(lines[1]) for line in lines[2:])


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])

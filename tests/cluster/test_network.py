"""Unit tests for the NIC/switch model."""

import pytest

from repro.cluster import Network, Nic, TEN_GBE_MB_S
from repro.sim import MB, Simulator
from repro.sim.units import mb_per_s


def test_single_transfer_rate():
    sim = Simulator()
    network = Network(sim, latency_ns=0)
    a, b = Nic(sim), Nic(sim)
    sim.run(until=sim.process(network.send(a, b, 64 * MB)))
    # Cut-through switching: a single flow runs at line rate.
    assert mb_per_s(64 * MB, sim.now) == pytest.approx(
        TEN_GBE_MB_S, rel=0.02
    )


def test_switch_latency_added_once():
    sim = Simulator()
    network = Network(sim, latency_ns=50_000)
    a, b = Nic(sim), Nic(sim)
    sim.run(until=sim.process(network.send(a, b, 0)))
    assert sim.now >= 50_000


def test_concurrent_flows_share_receiver():
    sim = Simulator()
    network = Network(sim, latency_ns=0)
    server = Nic(sim, lanes=1)
    clients = [Nic(sim) for _ in range(2)]
    procs = [
        sim.process(network.send(client, server, 16 * MB))
        for client in clients
    ]
    sim.run(until=sim.all_of(procs))
    # 32 MB through one shared rx lane dominates: ~ line rate aggregate.
    aggregate = mb_per_s(32 * MB, sim.now)
    assert aggregate == pytest.approx(TEN_GBE_MB_S, rel=0.1)


def test_server_dual_nic_doubles_rx_capacity():
    def run(lanes):
        sim = Simulator()
        network = Network(sim, latency_ns=0)
        server = Nic(sim, lanes=lanes)
        clients = [Nic(sim) for _ in range(4)]
        procs = [
            sim.process(network.send(client, server, 8 * MB))
            for client in clients
        ]
        sim.run(until=sim.all_of(procs))
        return sim.now

    assert run(2) < run(1) * 0.7


def test_message_accounting():
    sim = Simulator()
    network = Network(sim)
    a, b = Nic(sim), Nic(sim)
    sim.run(until=sim.process(network.send(a, b, 1000)))
    assert network.messages == 1
    assert network.bytes_moved == 1000


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Nic(sim, mb_per_s=0)
    with pytest.raises(ValueError):
        Nic(sim, lanes=0)
    with pytest.raises(ValueError):
        Network(sim, latency_ns=-1)
    network = Network(sim)
    with pytest.raises(ValueError):
        sim.run(until=sim.process(network.send(Nic(sim), Nic(sim), -5)))

"""Unit tests for the node storage adapters in isolation."""

import pytest

from repro.cluster import ConventionalNodeStorage, SDFNodeStorage
from repro.core.api import build_sdf_system
from repro.devices import build_device, HUAWEI_GEN3_SPEC
from repro.kv import Patch, PlaceholderValue
from repro.kv.lsm import Lookup
from repro.sim import Simulator


def sdf_storage():
    system = build_sdf_system(capacity_scale=0.008, n_channels=2)
    return SDFNodeStorage(system.block_layer), system


def conventional_storage():
    sim = Simulator()
    device = build_device("conventional", sim, spec=HUAWEI_GEN3_SPEC, capacity_scale=0.008, store_data=True
    )
    return ConventionalNodeStorage(device), sim


def sample_patch(n=8, size=4096):
    return Patch([(f"k{i:02d}", PlaceholderValue(size)) for i in range(n)])


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_sdf_store_and_read_value():
    storage, system = sdf_storage()
    patch = sample_patch()
    handle = run(system.sim, storage.store_patch(patch))
    # Value of k03: offset = 3 * (3 + 4096) + 3 (its key).
    lookup = Lookup(0, handle, 3 * 4099 + 3, 4096)
    value = run(system.sim, storage.read_value(lookup, "k03"))
    assert value == PlaceholderValue(4096)


def test_sdf_read_patch_roundtrip():
    storage, system = sdf_storage()
    patch = sample_patch()
    handle = run(system.sim, storage.store_patch(patch))
    loaded = run(system.sim, storage.read_patch(handle))
    assert loaded is patch  # object storage: same patch reference


def test_sdf_free_patch_recycles_block():
    storage, system = sdf_storage()
    handle = run(system.sim, storage.store_patch(sample_patch()))
    assert system.block_layer.stored_blocks == 1
    run(system.sim, storage.free_patch(handle))
    assert system.block_layer.stored_blocks == 0


def test_sdf_functional_paths_cost_no_time():
    storage, system = sdf_storage()
    handle = storage.functional_store(sample_patch())
    assert system.sim.now == 0
    assert storage.functional_load(handle).get("k00")[0]
    storage.functional_free(handle)
    assert system.sim.now == 0


def test_sdf_oversized_patch_rejected():
    storage, system = sdf_storage()
    huge = Patch([("k", PlaceholderValue(9 << 20))])
    with pytest.raises(ValueError):
        run(system.sim, storage.store_patch(huge))


def test_conventional_store_read_free_cycle():
    storage, sim = conventional_storage()
    patch = sample_patch()
    handle = run(sim, storage.store_patch(patch))
    assert run(sim, storage.read_patch(handle)) is patch
    lookup = Lookup(0, handle, 4099 + 3, 4096)
    assert run(sim, storage.read_value(lookup, "k01")) == PlaceholderValue(4096)
    run(sim, storage.free_patch(handle))


def test_conventional_extent_reuse():
    storage, sim = conventional_storage()
    first = run(sim, storage.store_patch(sample_patch()))
    run(sim, storage.free_patch(first))
    # Keep allocating: the freed extent eventually comes back around.
    handles = [
        run(sim, storage.store_patch(sample_patch()))
        for _ in range(len(storage._free_extents))
    ]
    assert first in handles


def test_conventional_exhaustion_raises():
    storage, sim = conventional_storage()
    n = len(storage._free_extents)
    for _ in range(n):
        run(sim, storage.store_patch(sample_patch()))
    with pytest.raises(RuntimeError, match="extents"):
        run(sim, storage.store_patch(sample_patch()))


def test_conventional_missing_key_raises():
    storage, sim = conventional_storage()
    handle = run(sim, storage.store_patch(sample_patch()))
    lookup = Lookup(0, handle, 0, 10)
    with pytest.raises(KeyError):
        run(sim, storage.read_value(lookup, "absent"))

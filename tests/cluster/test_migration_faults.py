"""Migration safety under crashes (the PR's acceptance criterion): a
node fail-stops at *every* phase boundary of an online slice migration
-- source and target, parameterised -- and after recovery

* zero acknowledged writes are lost (WAL replay + the copy protocol
  cover every phase), and
* routing converges: the table names live owners, every replica's
  epoch matches its entry, and an aborted migration can be retried to
  completion.

Two-pass technique: a clean run records the simulated time of each
phase boundary through a probe on the controller's fault hook, then
each parameterised case re-runs the identical deterministic scenario
with a :class:`~repro.faults.runner.FaultRunner` crash scheduled just
inside the phase under test.
"""

import pytest

from repro.cluster import (
    MIGRATION_PHASES,
    ClusterController,
    Network,
    build_sdf_server,
)
from repro.errors import TransientFault
from repro.faults import CRASH, FaultPlan, FaultRunner
from repro.kv.slice import KeyRange
from repro.sim import MS, Simulator

VALUE = b"m" * 2048
PRELOAD = range(0, 80)  # acked before the migration starts
LIVE = range(80, 200)  # written concurrently with the migration
CRASH_DOWNTIME = 80 * MS


class Scenario:
    """One deterministic migration-under-load run."""

    def __init__(self, plan=None):
        self.sim = Simulator()
        self.network = Network(self.sim)
        self.ctrl = ClusterController(self.sim, self.network)
        for name in ("src", "dst"):
            self.ctrl.add_node(
                name,
                build_sdf_server(
                    self.sim, [], capacity_scale=0.01, n_channels=4
                ),
            )
        self.sid = self.ctrl.create_slice(
            KeyRange(0, 10_000),
            on=["src"],
            memtable_bytes=64 * 1024,
            durable_wal=True,
        )
        self.acked = set()
        self.committed = None
        if plan is not None:
            runner = FaultRunner(self.sim, plan)
            runner.bind("node:src", self.ctrl.node("src"))
            runner.bind("node:dst", self.ctrl.node("dst"))
            runner.start()

    def preload(self):
        def _fill():
            for key in PRELOAD:
                yield from self.ctrl.node("src").handle_put(key, VALUE)
                self.acked.add(key)

        self.sim.run(until=self.sim.process(_fill()))
        self.sim.run(until=self.sim.now + 50 * MS)  # flushes settle

    def writer(self):
        """Routed writes racing the migration.  Redirects on epoch
        errors and rides out node downtime with bounded retries, so
        every LIVE key is eventually acknowledged exactly like a real
        client behind the retry stack."""
        view = self.ctrl.view()
        for key in LIVE:
            for _attempt in range(200):
                try:
                    server, entry = view.lookup(key)
                    yield from server.handle_put(
                        key, VALUE, epoch=entry.epoch
                    )
                except (TransientFault, KeyError):
                    yield self.sim.timeout(5 * MS)
                    view.refresh()
                    continue
                self.acked.add(key)
                break
            else:
                raise AssertionError(f"write of {key} never acked")

    def migration_driver(self):
        try:
            yield from self.ctrl.migrate_slice(self.sid, "src", "dst")
            self.committed = True
        except TransientFault:
            self.committed = False

    def run(self):
        self.preload()
        mig = self.sim.process(self.migration_driver())
        wr = self.sim.process(self.writer())
        self.sim.run(until=wr)
        self.sim.run(until=mig)
        # Let crash recovery (downtime + WAL replay) finish.
        self.sim.run(until=self.sim.now + CRASH_DOWNTIME + 200 * MS)

    # -- post-run checks ---------------------------------------------------------------
    def verify_no_acked_loss(self):
        assert self.acked == set(PRELOAD) | set(LIVE)
        view = self.ctrl.view()

        def _read():
            lost = []
            for key in sorted(self.acked):
                server, entry = view.lookup(key)
                got = yield from server.handle_get(key, epoch=entry.epoch)
                if got != VALUE:
                    lost.append(key)
            return lost

        lost = self.sim.run(until=self.sim.process(_read()))
        assert lost == [], f"acked writes lost: {lost}"

    def verify_routing_converged(self):
        entry = self.ctrl.table.entry(self.sid)
        for name in entry.replicas:
            server = self.ctrl.node(name)
            assert server.up
            replica = self.ctrl.replica(self.sid, name)
            assert replica in server.slices
            assert not replica.importing
            assert not replica.write_blocked
            assert replica.epoch == entry.epoch
            assert server.route(0, epoch=entry.epoch) is replica


def record_boundaries():
    """Clean pass: the simulated time at which each phase begins."""
    scenario = Scenario()
    times = {}
    inner = scenario.ctrl._fault_point

    def probe(phase, slice_id):
        times[phase] = scenario.sim.now
        inner(phase, slice_id)

    scenario.ctrl._fault_point = probe
    scenario.run()
    assert scenario.committed
    assert set(times) == set(MIGRATION_PHASES)
    return times


_BOUNDARIES = {}


def boundary(phase: str) -> int:
    if not _BOUNDARIES:
        _BOUNDARIES.update(record_boundaries())
    return _BOUNDARIES[phase]


def test_clean_migration_loses_nothing():
    scenario = Scenario()
    scenario.run()
    assert scenario.committed
    assert scenario.ctrl.table.entry(scenario.sid).replicas == ("dst",)
    scenario.verify_no_acked_loss()
    scenario.verify_routing_converged()


@pytest.mark.parametrize("phase", MIGRATION_PHASES)
@pytest.mark.parametrize("who", ["src", "dst"])
def test_crash_at_phase_boundary_loses_no_acked_write(phase, who):
    at_ns = boundary(phase) + 1  # just inside the phase under test
    plan = FaultPlan(seed=9).schedule(
        f"node:{who}", CRASH, at_ns=at_ns, duration_ns=CRASH_DOWNTIME
    )
    scenario = Scenario(plan)
    scenario.run()
    assert scenario.committed is not None
    if not scenario.committed:
        # Aborted cleanly: the source is still the owner and a retry
        # completes the move.
        assert scenario.ctrl.table.entry(scenario.sid).replicas == ("src",)
        assert scenario.ctrl.migrations_aborted.value == 1
        scenario.sim.run(
            until=scenario.sim.process(
                scenario.ctrl.migrate_slice(scenario.sid, "src", "dst")
            )
        )
    assert scenario.ctrl.table.entry(scenario.sid).replicas == ("dst",)
    scenario.verify_no_acked_loss()
    scenario.verify_routing_converged()
    # The crash actually happened (the plan logged fault + recovery).
    kinds = [event.kind for event in plan.log]
    assert CRASH in kinds and "restart" in kinds

"""Integration tests: storage server + clients over SDF and Gen3."""

import numpy as np
import pytest

from repro.cluster import (
    BatchSpec,
    KVClient,
    Network,
    ReplicatedKV,
    ReplicaReadError,
    build_conventional_server,
    build_sdf_server,
    run_clients,
)
from repro.faults import READ_UNCORRECTABLE, FaultPlan
from repro.kv import PlaceholderValue
from repro.kv.slice import KeyRange, Slice, partition_key_space
from repro.sim import MS, S, Simulator


def make_slices(n, span=1_000_000):
    return [
        Slice(i, key_range)
        for i, key_range in enumerate(partition_key_space(n, 0, span))
    ]


def sdf_server(sim, n_slices=2, n_channels=4, **kwargs):
    kwargs.setdefault("capacity_scale", 0.01)
    return build_sdf_server(
        sim, make_slices(n_slices), n_channels=n_channels, **kwargs
    )


def test_route_finds_owning_slice():
    sim = Simulator()
    server = sdf_server(sim, n_slices=4)
    slice_ = server.route(600_000)
    assert slice_.owns(600_000)
    with pytest.raises(KeyError):
        server.route(10**9)


def test_put_get_roundtrip_through_server():
    sim = Simulator()
    server = sdf_server(sim)

    def scenario():
        yield from server.handle_put(5, PlaceholderValue(1024))
        value = yield from server.handle_get(5)
        return value

    value = sim.run(until=sim.process(scenario()))
    assert value == PlaceholderValue(1024)


def test_get_missing_key_returns_none():
    sim = Simulator()
    server = sdf_server(sim)

    def scenario():
        return (yield from server.handle_get(77))

    assert sim.run(until=sim.process(scenario())) is None


def test_delete_hides_key():
    sim = Simulator()
    server = sdf_server(sim)

    def scenario():
        yield from server.handle_put(5, PlaceholderValue(64))
        yield from server.handle_delete(5)
        return (yield from server.handle_get(5))

    assert sim.run(until=sim.process(scenario())) is None


def test_sustained_puts_flush_patches_to_storage():
    sim = Simulator()
    server = sdf_server(sim, n_slices=1)
    slice_ = server.slices[0]
    value = PlaceholderValue(512 * 1024)

    def writer():
        for key in range(40):  # 20 MB: >2 patches
            yield from server.handle_put(key, value)

    sim.run(until=sim.process(writer()))
    sim.run(until=sim.now + 2 * S)  # let background flushes finish
    assert slice_.lsm.flushes >= 2
    assert slice_.lsm.n_runs >= 1
    assert server.system.device.stats.write_meter.total_bytes > 0


def test_get_after_flush_costs_one_device_read():
    sim = Simulator()
    server = sdf_server(sim, n_slices=1)
    server.preload(server.slices[0], range(100), value_bytes=64 * 1024)
    device = server.system.device
    reads_before = device.stats.read_meter.n_samples

    def scenario():
        return (yield from server.handle_get(50))

    value = sim.run(until=sim.process(scenario()))
    assert value == PlaceholderValue(64 * 1024)
    assert device.stats.read_meter.n_samples == reads_before + 1


def test_preload_populates_and_compacts():
    sim = Simulator()
    server = sdf_server(sim, n_slices=1)
    slice_ = server.slices[0]
    server.preload(slice_, range(200), value_bytes=256 * 1024)  # 50 MB
    assert slice_.lsm.n_runs >= 1
    assert slice_.lsm.compactions > 0
    assert sim.now == 0  # all functional


def test_compaction_runs_in_background_under_write_load():
    sim = Simulator()
    server = sdf_server(sim, n_slices=1, n_channels=8)
    value = PlaceholderValue(1024 * 1024)

    def writer():
        for key in range(120):  # 120 MB of writes -> flushes + compactions
            yield from server.handle_put(key % 30, value)

    sim.run(until=sim.process(writer()))
    sim.run(until=sim.now + 5 * S)
    assert server.compaction_read_meter.total_bytes > 0
    assert server.compaction_write_meter.total_bytes > 0
    assert server.slices[0].lsm.compactions > 0


def test_client_read_loop_measures_throughput():
    sim = Simulator()
    server = sdf_server(sim, n_slices=1, n_channels=4)
    slice_ = server.slices[0]
    keys = list(range(64))
    server.preload(slice_, keys, value_bytes=512 * 1024)
    network = Network(sim)
    client = KVClient(
        sim,
        network,
        server,
        slice_,
        BatchSpec(batch_size=4, value_bytes=512 * 1024, mode="read"),
        keys=keys,
        rng=np.random.default_rng(1),
    )
    throughput = run_clients(sim, [client], duration_ns=300 * MS)
    assert throughput > 10.0  # MB/s; sanity floor
    assert client.requests_completed > 3
    assert len(client.latency) == client.requests_completed


def test_client_write_loop():
    sim = Simulator()
    server = sdf_server(sim, n_slices=1, n_channels=4)
    network = Network(sim)
    client = KVClient(
        sim,
        network,
        server,
        server.slices[0],
        BatchSpec(batch_size=1, value_bytes=512 * 1024, mode="write"),
        rng=np.random.default_rng(2),
    )
    throughput = run_clients(sim, [client], duration_ns=300 * MS)
    assert throughput > 5.0
    assert server.puts.value > 0


def test_conventional_server_roundtrip():
    sim = Simulator()
    server = build_conventional_server(
        sim, make_slices(1), capacity_scale=0.01
    )
    server.preload(server.slices[0], range(20), value_bytes=128 * 1024)

    def scenario():
        return (yield from server.handle_get(10))

    assert sim.run(until=sim.process(scenario())) == PlaceholderValue(
        128 * 1024
    )


def test_scan_plan_covers_requested_range_only():
    sim = Simulator()
    server = sdf_server(sim, n_slices=4)
    for slice_ in server.slices:
        lo = slice_.key_range.lo
        server.preload(slice_, range(lo, lo + 20), value_bytes=64 * 1024)
    plan = server.scan_plan(0, 250_001)
    touched = {slice_.slice_id for slice_, _, _ in plan}
    assert touched == {0, 1}  # only the first two slices overlap


def test_replication_recovers_from_injected_failures():
    sim = Simulator()
    servers = [sdf_server(sim, n_slices=1) for _ in range(4)]
    plan = FaultPlan(seed=7).add(
        "replication", READ_UNCORRECTABLE, rate=0.3
    )
    replicated = ReplicatedKV(
        sim, servers, faults=plan.injector("replication")
    )

    def scenario():
        yield from replicated.put(3, PlaceholderValue(4096))
        results = []
        for _ in range(20):
            value = yield from replicated.get(3)
            results.append(value)
        return results

    results = sim.run(until=sim.process(scenario()))
    assert all(value == PlaceholderValue(4096) for value in results)
    assert replicated.recoveries.value > 0
    assert replicated.data_loss_events.value == 0


def test_replication_total_failure_raises():
    sim = Simulator()
    servers = [sdf_server(sim, n_slices=1)]
    plan = FaultPlan(seed=1).add(
        "replication", READ_UNCORRECTABLE, rate=0.999
    )
    replicated = ReplicatedKV(
        sim, servers, faults=plan.injector("replication")
    )

    def scenario():
        yield from replicated.put(1, PlaceholderValue(16))
        return (yield from replicated.get(1))

    with pytest.raises(ReplicaReadError):
        sim.run(until=sim.process(scenario()))
    assert replicated.data_loss_events.value == 1


def test_replication_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ReplicatedKV(sim, [])
    with pytest.raises(ValueError):
        # fixed server list and a dynamic router are mutually exclusive
        ReplicatedKV(sim, [object()], router=lambda: [object()])

"""SWIM failure detection over the replicated controller group.

Suspect -> confirm timelines, refutation, the rejoin stability gate,
watched storage nodes, metric export, byte-identical determinism, and
the no-drift contract of the inactive (single-replica) group.
"""

import pytest

from repro.cluster import (
    ClusterController,
    ControllerGroup,
    Network,
    SwimConfig,
    build_sdf_server,
)
from repro.cluster.membership import (
    MEMBER_ALIVE,
    MEMBER_DEAD,
    MEMBER_SUSPECT,
)
from repro.obs import Observability
from repro.sim import MS, Simulator

FAST = SwimConfig(
    period_ns=10 * MS,
    ping_timeout_ns=2 * MS,
    ping_req_fanout=1,
    suspect_timeout_ns=40 * MS,
)


def make_group(n_replicas=3, swim=FAST, seed=0, nodes=0, obs=None):
    sim = Simulator()
    net = Network(sim)
    ctrl = ClusterController(sim, net)
    for i in range(nodes):
        ctrl.add_node(f"n{i}", build_sdf_server(sim, [], capacity_scale=0.01))
    group = ControllerGroup(
        sim, net, ctrl, n_replicas=n_replicas, swim=swim, seed=seed
    )
    if obs is not None:
        group.attach(obs)
    group.watch_nodes()
    return sim, net, ctrl, group


def at(sim, when_ns, fn):
    def _driver():
        yield sim.timeout(when_ns)
        fn()

    sim.process(_driver())


def test_crashed_replica_is_suspected_then_confirmed_dead():
    sim, _net, _ctrl, group = make_group()
    at(sim, 50 * MS, group.replica("ctl2").crash)
    group.start(until_ns=400 * MS)
    sim.run()
    for observer in ("ctl0", "ctl1"):
        assert group.detector.state(observer, "ctl2") == MEMBER_DEAD
    kinds = [e[3] for e in group.events if e[2] == "ctl2"]
    assert kinds.index("suspect") < kinds.index("confirm")
    assert group.suspicions.value >= 1
    assert group.confirms.value >= 1
    # Confirmation respects the suspicion window.
    suspect_at = next(
        e[0] for e in group.events if e[2] == "ctl2" and e[3] == "suspect"
    )
    confirm_at = next(
        e[0] for e in group.events if e[2] == "ctl2" and e[3] == "confirm"
    )
    assert confirm_at - suspect_at >= FAST.suspect_timeout_ns


def test_fast_recovery_is_refuted_without_a_confirm():
    sim, _net, _ctrl, group = make_group()
    ctl2 = group.replica("ctl2")
    at(sim, 50 * MS, ctl2.crash)
    at(sim, 70 * MS, lambda: sim.process(ctl2.restart()))
    group.start(until_ns=400 * MS)
    sim.run()
    # The outage (20 ms) sits well inside the 40 ms suspicion window:
    # nobody may confirm it dead, and every view ends alive.
    assert group.confirms.value == 0
    for observer in ("ctl0", "ctl1"):
        assert group.detector.state(observer, "ctl2") == MEMBER_ALIVE


def test_rejoin_waits_out_the_stability_window():
    sim, _net, _ctrl, group = make_group()
    ctl2 = group.replica("ctl2")
    restart_at = 300 * MS
    at(sim, 50 * MS, ctl2.crash)
    at(sim, restart_at, lambda: sim.process(ctl2.restart()))
    group.start(until_ns=900 * MS)
    sim.run()
    assert group.confirms.value >= 1
    assert group.rejoins.value >= 1
    rejoin_at = next(
        e[0] for e in group.events if e[2] == "ctl2" and e[3] == "rejoin"
    )
    # Readmission only after a full stability window of good probes.
    assert rejoin_at - restart_at >= FAST.stable_ns()
    for observer in ("ctl0", "ctl1"):
        assert group.detector.state(observer, "ctl2") == MEMBER_ALIVE


def test_watched_storage_node_death_is_confirmed():
    sim, _net, ctrl, group = make_group(nodes=2)
    assert set(group.watched) == {"n0", "n1"}
    at(sim, 50 * MS, ctrl.nodes["n1"].crash)
    group.start(until_ns=400 * MS)
    sim.run()
    assert group.detector.state(group.leader.name, "n1") == MEMBER_DEAD
    alive, _suspect, dead = group.membership_counts()
    assert dead == 1
    assert alive == 4  # 3 replicas + n0


def test_membership_metrics_export_through_observability():
    obs = Observability()
    sim, _net, ctrl, group = make_group(nodes=1, obs=obs)
    at(sim, 50 * MS, ctrl.nodes["n0"].crash)
    group.start(until_ns=400 * MS)
    sim.run()
    snap = obs.metrics.snapshot(sim.now)
    assert snap["cluster.membership.dead"] == 1
    assert snap["cluster.membership.alive"] == 3
    assert snap["cluster.membership.suspects"] == 0
    assert snap["cluster.membership.pings"] >= 1
    assert snap["cluster.membership.confirms"] >= 1
    assert snap["cluster.election.term"] == 1


def test_detection_replays_byte_identically():
    def run(seed):
        sim, net, _ctrl, group = make_group(seed=seed, nodes=1)
        at(sim, 50 * MS, group.replica("ctl2").crash)
        group.start(until_ns=500 * MS)
        sim.run()
        return (
            sim.now,
            tuple(group.events),
            group.pings.value,
            group.ping_reqs.value,
            net.messages,
            net.bytes_moved,
        )

    assert run(7) == run(7)
    # ...and the seed actually matters (different probe orders).
    assert run(7)[2:] != run(11)[2:] or run(7)[1] != run(11)[1]


def test_suspect_state_is_visible_between_miss_and_confirm():
    sim, _net, _ctrl, group = make_group()
    group.start(until_ns=400 * MS)
    seen = []

    def sampler():
        yield sim.timeout(50 * MS)
        group.replica("ctl2").crash()
        for _ in range(40):
            yield sim.timeout(5 * MS)
            seen.append(group.detector.state("ctl0", "ctl2"))

    sim.process(sampler())
    sim.run()
    assert MEMBER_SUSPECT in seen
    assert seen[-1] == MEMBER_DEAD


def test_inactive_group_wires_nothing():
    sim, net, ctrl, group = make_group(n_replicas=1, nodes=1)
    assert not group.active
    assert ctrl.group is None  # the controller stays a plain singleton
    group.start(until_ns=400 * MS)
    sim.run()
    assert sim.now == 0  # no processes were ever spawned
    assert net.messages == 0
    assert group.pings.value == 0
    assert group.events == []


def test_group_validates_shape():
    sim = Simulator()
    net = Network(sim)
    ctrl = ClusterController(sim, net)
    with pytest.raises(ValueError):
        ControllerGroup(sim, net, ctrl, n_replicas=0)
    with pytest.raises(ValueError):
        ControllerGroup(sim, net, ctrl, n_replicas=3, quorum=4)
    group = ControllerGroup(sim, net, ctrl, n_replicas=3)
    with pytest.raises(ValueError):
        group.watch("ctl0", object())  # name collides with a replica
    group.start()
    with pytest.raises(RuntimeError):
        group.start()

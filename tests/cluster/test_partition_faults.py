"""The PARTITION fault kind: scheduled link cuts in the network model.

Covers the fault-plane wiring (``FaultPlan.schedule`` + ``FaultRunner``
driving ``Network.begin_partition``/``end_partition``), symmetric and
asymmetric cuts, group cuts, overlapping cuts composing by count, and
the no-drift guarantee that an un-partitioned network is untouched.
"""

import pytest

from repro.cluster.network import (
    Network,
    NetworkPartitionedError,
    Nic,
    TEN_GBE_MB_S,
)
from repro.errors import TransientFault
from repro.faults import PARTITION, FaultPlan, FaultRunner
from repro.sim import MS, Simulator


def make_net(*names):
    sim = Simulator()
    net = Network(sim)
    nics = {name: Nic(sim, TEN_GBE_MB_S, name=name) for name in names}
    return sim, net, nics


def send_ok(sim, net, src, dst, nbytes=1024):
    """Run one send; returns True if it was delivered."""

    def _send():
        try:
            yield from net.send(src, dst, nbytes)
            return True
        except NetworkPartitionedError:
            return False

    return sim.run(until=sim.process(_send()))


def test_partition_cuts_and_heals_symmetrically():
    sim, net, nics = make_net("a", "b")
    assert send_ok(sim, net, nics["a"], nics["b"])
    net.begin_partition("a", "b")
    assert not send_ok(sim, net, nics["a"], nics["b"])
    assert not send_ok(sim, net, nics["b"], nics["a"])
    assert net.partition_drops == 2
    net.end_partition("a", "b")
    assert send_ok(sim, net, nics["a"], nics["b"])
    assert not net._cuts


def test_partition_error_is_a_transient_message_drop():
    # Retry stacks built on MessageDroppedError/TransientFault must
    # absorb a partition without new handling.
    from repro.cluster.network import MessageDroppedError

    assert issubclass(NetworkPartitionedError, MessageDroppedError)
    assert issubclass(NetworkPartitionedError, TransientFault)


def test_asymmetric_partition_cuts_one_direction():
    sim, net, nics = make_net("a", "b")
    net.begin_partition("a", "b", symmetric=False)
    assert not send_ok(sim, net, nics["a"], nics["b"])
    assert send_ok(sim, net, nics["b"], nics["a"])
    net.end_partition("a", "b", symmetric=False)
    assert send_ok(sim, net, nics["a"], nics["b"])


def test_group_partition_cuts_every_cross_pair():
    sim, net, nics = make_net("a", "b", "c", "d")
    net.begin_partition(("a", "b"), ("c", "d"))
    for src, dst in (("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")):
        assert not send_ok(sim, net, nics[src], nics[dst])
        assert not send_ok(sim, net, nics[dst], nics[src])
    # Links inside each side are untouched.
    assert send_ok(sim, net, nics["a"], nics["b"])
    assert send_ok(sim, net, nics["c"], nics["d"])
    net.end_partition(("a", "b"), ("c", "d"))
    assert send_ok(sim, net, nics["a"], nics["c"])


def test_overlapping_partitions_compose_by_count():
    sim, net, nics = make_net("a", "b", "c")
    net.begin_partition("a", ("b", "c"))
    net.begin_partition("a", "b")
    net.end_partition("a", ("b", "c"))
    # a<->b is still covered by the second cut; a<->c has healed.
    assert not send_ok(sim, net, nics["a"], nics["b"])
    assert send_ok(sim, net, nics["a"], nics["c"])
    net.end_partition("a", "b")
    assert send_ok(sim, net, nics["a"], nics["b"])


def test_partitioned_accepts_objects_with_nics():
    sim, net, nics = make_net("a", "b")

    class Boxed:
        def __init__(self, nic):
            self.nic = nic

    net.begin_partition(Boxed(nics["a"]), Boxed(nics["b"]))
    assert net.partitioned(nics["a"], nics["b"])
    assert net.partitioned(nics["b"], nics["a"])


def test_fault_runner_drives_scheduled_partition():
    sim, net, nics = make_net("a", "b")
    plan = FaultPlan(seed=3).schedule(
        "net", PARTITION, at_ns=10 * MS, duration_ns=20 * MS, a="a", b="b"
    )
    runner = FaultRunner(sim, plan)
    runner.bind("net", net)
    runner.start()
    outcomes = []

    def probe():
        for _ in range(4):
            try:
                yield from net.send(nics["a"], nics["b"], 256)
                outcomes.append((sim.now, True))
            except NetworkPartitionedError:
                outcomes.append((sim.now, False))
            yield sim.timeout(10 * MS)

    sim.run(until=sim.process(probe()))
    sim.run()
    delivered = [ok for _at, ok in outcomes]
    assert delivered == [True, False, False, True]
    kinds = [event.kind for event in plan.log]
    assert PARTITION in kinds and "partition_heal" in kinds
    assert not net._cuts


def test_fault_runner_partition_groups_split_on_comma():
    sim, net, nics = make_net("a", "b", "c")
    plan = FaultPlan(seed=3).schedule(
        "net", PARTITION, at_ns=0, duration_ns=10 * MS, a="a", b="b,c"
    )
    runner = FaultRunner(sim, plan)
    runner.bind("net", net)
    runner.start()

    def probe():
        yield sim.timeout(1 * MS)
        assert net.partitioned(nics["a"], nics["b"])
        assert net.partitioned(nics["a"], nics["c"])
        assert not net.partitioned(nics["b"], nics["c"])

    sim.run(until=sim.process(probe()))
    sim.run()
    assert not net._cuts


def test_fault_runner_partition_requires_endpoints():
    sim, net, _nics = make_net("a", "b")
    plan = FaultPlan(seed=3).schedule(
        "net", PARTITION, at_ns=0, duration_ns=MS, a="a"  # missing b=
    )
    runner = FaultRunner(sim, plan)
    runner.bind("net", net)
    runner.start()
    from repro.faults import FaultInjectionError

    with pytest.raises(FaultInjectionError):
        sim.run()


def test_unpartitioned_network_sends_are_untouched():
    # The no-drift guard: the cut check is one falsy-dict test.
    sim, net, nics = make_net("a", "b")
    net.begin_partition("a", "b")
    net.end_partition("a", "b")
    assert net._cuts == {}
    assert send_ok(sim, net, nics["a"], nics["b"])
    assert net.partition_drops == 0

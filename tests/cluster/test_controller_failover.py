"""The replicated control plane's acceptance matrix: the *leader*
fails -- crash or network partition -- at every phase boundary of an
online migration under live writes, and afterwards

* zero acknowledged writes are lost,
* routing converges at a single, quorum-agreed epoch,
* exactly one cutover happened (a deposed leader can never double-
  publish: its lease dies at the nodes, the followers, or the
  ``fence_publish`` guard inside the no-yield commit block), and
* the whole run -- SWIM probes, election, failover retry -- replays
  byte-identically from the same seeds.

Same two-pass technique as ``test_migration_faults.py``: a clean
group-enabled run records each boundary's simulated time, then each
case re-runs the identical scenario with the leader fault scheduled
just inside the phase under test.  The failover driver retries the
migration under the *new* leader once the original driver has been
fenced off, mirroring how a real control plane re-queues interrupted
work after an election.
"""

import json
import os

import pytest

from repro.cluster import (
    MIGRATION_PHASES,
    ClusterController,
    ControllerGroup,
    Network,
    SwimConfig,
    build_sdf_server,
)
from repro.cluster.membership import RECORD_COMMITTED
from repro.errors import TransientFault
from repro.faults import CRASH, PARTITION, FaultPlan, FaultRunner
from repro.kv.slice import KeyRange
from repro.sim import MS, Simulator

VALUE = b"f" * 2048
PRELOAD = range(0, 80)  # acked before the migration starts
LIVE = range(80, 200)  # written concurrently with the migration
#: Leader outage: long enough for confirm + election to finish first.
CTL_DOWNTIME = 400 * MS
SEED = 13
FAST = SwimConfig(
    period_ns=10 * MS,
    ping_timeout_ns=2 * MS,
    ping_req_fanout=1,
    suspect_timeout_ns=40 * MS,
)


class Scenario:
    """One deterministic migration-under-load run with a replicated
    (3-way) controller group driving the migration."""

    def __init__(self, plan=None, seed=SEED):
        self.sim = Simulator()
        self.network = Network(self.sim)
        self.ctrl = ClusterController(self.sim, self.network)
        for name in ("src", "dst"):
            self.ctrl.add_node(
                name,
                build_sdf_server(
                    self.sim, [], capacity_scale=0.01, n_channels=4
                ),
            )
        self.sid = self.ctrl.create_slice(
            KeyRange(0, 10_000),
            on=["src"],
            memtable_bytes=64 * 1024,
            durable_wal=True,
        )
        self.group = ControllerGroup(
            self.sim, self.network, self.ctrl,
            n_replicas=3, swim=FAST, seed=seed,
        )
        self.group.watch_nodes()
        self.acked = set()
        self.committed = None
        self.retried = False
        if plan is not None:
            runner = FaultRunner(self.sim, plan)
            runner.bind("net", self.network)
            for replica in self.group.replicas:
                runner.bind(replica.name, replica)
            runner.start()

    def preload(self):
        def _fill():
            for key in PRELOAD:
                yield from self.ctrl.node("src").handle_put(key, VALUE)
                self.acked.add(key)

        self.sim.run(until=self.sim.process(_fill()))
        self.sim.run(until=self.sim.now + 50 * MS)  # flushes settle
        self.group.start(until_ns=10_000 * MS)

    def writer(self):
        """Routed writes racing the migration and the election."""
        view = self.ctrl.view()
        for key in LIVE:
            for _attempt in range(400):
                try:
                    server, entry = view.lookup(key)
                    yield from server.handle_put(
                        key, VALUE, epoch=entry.epoch
                    )
                except (TransientFault, KeyError):
                    yield self.sim.timeout(5 * MS)
                    view.refresh()
                    continue
                self.acked.add(key)
                break
            else:
                raise AssertionError(f"write of {key} never acked")

    def migration_driver(self):
        try:
            yield from self.ctrl.migrate_slice(self.sid, "src", "dst")
            self.committed = True
        except TransientFault:
            self.committed = False

    def failover_driver(self):
        """Re-drive the migration under the new leader after the old
        driver has been fenced off -- the control plane's re-queue of
        interrupted work."""
        while self.committed is None:
            yield self.sim.timeout(10 * MS)
        if self.committed:
            return
        for _attempt in range(400):
            if self.group.leader.up and self.group.term > 1:
                try:
                    yield from self.ctrl.migrate_slice(
                        self.sid, "src", "dst"
                    )
                    self.retried = True
                    return
                except TransientFault:
                    pass
            yield self.sim.timeout(10 * MS)
        raise AssertionError("failover retry never committed")

    def run(self):
        self.preload()
        mig = self.sim.process(self.migration_driver())
        fo = self.sim.process(self.failover_driver())
        wr = self.sim.process(self.writer())
        self.sim.run(until=wr)
        self.sim.run(until=mig)
        self.sim.run(until=fo)
        # Let recovery (leader downtime, partition heal) finish.
        self.sim.run(until=self.sim.now + CTL_DOWNTIME + 200 * MS)

    # -- post-run checks ---------------------------------------------------------------
    def verify_no_acked_loss(self):
        assert self.acked == set(PRELOAD) | set(LIVE)
        view = self.ctrl.view()

        def _read():
            lost = []
            for key in sorted(self.acked):
                server, entry = view.lookup(key)
                got = yield from server.handle_get(key, epoch=entry.epoch)
                if got != VALUE:
                    lost.append(key)
            return lost

        lost = self.sim.run(until=self.sim.process(_read()))
        assert lost == [], f"acked writes lost: {lost}"

    def verify_routing_converged(self):
        entry = self.ctrl.table.entry(self.sid)
        for name in entry.replicas:
            server = self.ctrl.node(name)
            assert server.up
            replica = self.ctrl.replica(self.sid, name)
            assert replica in server.slices
            assert not replica.importing
            assert not replica.write_blocked
            assert replica.epoch == entry.epoch
            assert server.route(0, epoch=entry.epoch) is replica

    def verify_single_cutover(self):
        """Exactly one routing flip: one completed migration, the
        committed record at the winning term, and the source holds no
        leftover twin."""
        assert self.ctrl.migrations_completed.value == 1
        entry = self.ctrl.table.entry(self.sid)
        assert entry.replicas == ("dst",)
        record = self.group.records[self.sid]
        assert record.phase == RECORD_COMMITTED
        src = self.ctrl.node("src")
        assert all(s.slice_id != self.sid for s in src.slices)

    def digest(self):
        entry = self.ctrl.table.entry(self.sid)
        return (
            self.sim.now,
            tuple(self.group.events),
            self.group.term,
            self.group.leader.name,
            self.committed,
            self.retried,
            sorted(self.acked),
            entry.epoch,
            entry.replicas,
            self.network.messages,
            self.network.bytes_moved,
            self.network.partition_drops,
            self.ctrl.migrations_started.value,
            self.ctrl.migrations_completed.value,
            self.ctrl.migrations_aborted.value,
        )


def leader_fault_plan(mode: str, at_ns: int) -> FaultPlan:
    plan = FaultPlan(seed=9)
    if mode == "crash":
        plan.schedule(
            "ctl0", CRASH, at_ns=at_ns, duration_ns=CTL_DOWNTIME
        )
    else:
        # Isolate the leader from its peers but *not* from the data
        # plane: the worst case, because the deposed leader keeps
        # driving the migration until fencing stops it.
        plan.schedule(
            "net", PARTITION, at_ns=at_ns, duration_ns=CTL_DOWNTIME,
            a="ctl0", b="ctl1,ctl2",
        )
    return plan


def record_boundaries(seed=SEED):
    """Clean group-enabled pass: when each migration phase begins.
    Seed-specific -- SWIM probe traffic shares node NICs with the
    migration, so each seed has its own boundary times."""
    scenario = Scenario(seed=seed)
    times = {}
    inner = scenario.ctrl._fault_point

    def probe(phase, slice_id):
        times[phase] = scenario.sim.now
        inner(phase, slice_id)

    scenario.ctrl._fault_point = probe
    scenario.run()
    assert scenario.committed
    assert set(times) == set(MIGRATION_PHASES)
    return times


_BOUNDARIES = {}


def boundary(phase: str, seed=SEED) -> int:
    if seed not in _BOUNDARIES:
        _BOUNDARIES[seed] = record_boundaries(seed)
    return _BOUNDARIES[seed][phase]


def test_clean_migration_under_replicated_controller():
    scenario = Scenario()
    scenario.run()
    assert scenario.committed
    assert not scenario.retried
    # Quiet leadership: no election ever ran.
    assert scenario.group.term == 1
    assert scenario.group.elections.value == 0
    scenario.verify_single_cutover()
    scenario.verify_no_acked_loss()
    scenario.verify_routing_converged()


@pytest.mark.parametrize("phase", MIGRATION_PHASES)
@pytest.mark.parametrize("mode", ["crash", "partition"])
def test_leader_failure_at_phase_boundary(phase, mode):
    at_ns = boundary(phase) + 1  # just inside the phase under test
    plan = leader_fault_plan(mode, at_ns)
    scenario = Scenario(plan)
    scenario.run()
    assert scenario.committed is not None
    if not scenario.committed:
        # The original driver was fenced off pre-commit; the failover
        # driver re-ran the migration under the new leader.
        assert scenario.retried
        assert scenario.ctrl.migrations_aborted.value == 1
        assert scenario.group.term > 1
    # Either way: one cutover, nothing lost, routing converged.
    scenario.verify_single_cutover()
    scenario.verify_no_acked_loss()
    scenario.verify_routing_converged()
    kinds = [event.kind for event in plan.log]
    if mode == "crash":
        assert CRASH in kinds and "restart" in kinds
    else:
        assert PARTITION in kinds and "partition_heal" in kinds
        assert scenario.network.partition_drops > 0
        assert not scenario.network._cuts  # healed


@pytest.mark.parametrize("mode", ["crash", "partition"])
def test_leader_failure_replays_byte_identically(mode):
    at_ns = boundary("cutover") + 1

    def run():
        scenario = Scenario(leader_fault_plan(mode, at_ns))
        scenario.run()
        return scenario.digest()

    assert run() == run()


def test_deposed_leader_cannot_double_cutover():
    """The split-brain probe: the partitioned leader keeps full data-
    plane reach while the majority elects a successor, and both sides
    then race the same cutover -- the fencing stack must let exactly
    one through."""
    at_ns = boundary("catchup") + 1
    scenario = Scenario(leader_fault_plan("partition", at_ns))
    scenario.run()
    assert scenario.group.term == 2
    assert scenario.group.leader.name == "ctl1"
    scenario.verify_single_cutover()
    scenario.verify_no_acked_loss()
    scenario.verify_routing_converged()
    # The fencing left an audit trail: either the nodes rejected the
    # stale term or the publish guard fired -- never a second flip.
    assert scenario.ctrl.migrations_started.value >= 2 or (
        scenario.committed and not scenario.retried
    )


@pytest.mark.chaos
def test_chaos_leader_failure_matrix_convergence_report():
    """The CI ``controller-chaos`` job: the full leader-failure matrix
    (crash and partition at every phase boundary) at this run's
    ``CHAOS_SEED``, with a machine-readable convergence report written
    for the artifact upload when ``CONTROLLER_CHAOS_JSON`` names a
    path."""
    seed = int(os.environ.get("CHAOS_SEED", "0"))
    cases = []
    for mode in ("crash", "partition"):
        for phase in MIGRATION_PHASES:
            at_ns = boundary(phase, seed) + 1
            scenario = Scenario(leader_fault_plan(mode, at_ns), seed=seed)
            scenario.run()
            scenario.verify_single_cutover()
            scenario.verify_no_acked_loss()
            scenario.verify_routing_converged()
            entry = scenario.ctrl.table.entry(scenario.sid)
            cases.append(
                {
                    "mode": mode,
                    "phase": phase,
                    "fault_at_ns": at_ns,
                    "committed_by_original_leader": scenario.committed,
                    "failover_retry": scenario.retried,
                    "final_term": scenario.group.term,
                    "elections": scenario.group.elections.value,
                    "migrations_started":
                        scenario.ctrl.migrations_started.value,
                    "migrations_completed":
                        scenario.ctrl.migrations_completed.value,
                    "migrations_aborted":
                        scenario.ctrl.migrations_aborted.value,
                    "final_epoch": entry.epoch,
                    "final_replicas": list(entry.replicas),
                    "acked_writes": len(scenario.acked),
                    "acked_writes_lost": 0,  # verified above
                    "converged": True,  # verified above
                    "end_ns": scenario.sim.now,
                }
            )
    report = {
        "chaos_seed": seed,
        "swim": {
            "period_ns": FAST.period_ns,
            "ping_timeout_ns": FAST.ping_timeout_ns,
            "suspect_timeout_ns": FAST.suspect_timeout_ns,
        },
        "cases": cases,
    }
    out = os.environ.get("CONTROLLER_CHAOS_JSON")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    assert len(cases) == 2 * len(MIGRATION_PHASES)
    assert all(case["converged"] for case in cases)
    assert all(case["migrations_completed"] == 1 for case in cases)

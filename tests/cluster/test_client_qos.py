"""Deterministic tests for the client-side overload protections:
the total deadline budget spanning retries (``RetryPolicy.budget_ns``)
and the per-node circuit breaker on :class:`~repro.cluster.KVClient`.
"""

import numpy as np
import pytest

from repro.cluster import (
    BatchSpec,
    KVClient,
    Network,
    RequestAbandonedError,
    build_sdf_server,
)
from repro.faults import RetryPolicy
from repro.kv.slice import KeyRange, Slice
from repro.qos import BreakerState, CircuitBreaker
from repro.sim import MS, Simulator


def make_client(sim, retry=None, breaker=None):
    server = build_sdf_server(
        sim,
        [Slice(0, KeyRange(0, 1_000_000))],
        capacity_scale=0.01,
        n_channels=4,
    )
    client = KVClient(
        sim,
        Network(sim),
        server,
        server.slices[0],
        BatchSpec(batch_size=1, value_bytes=4096, mode="write"),
        rng=np.random.default_rng(5),
        retry=retry,
        breaker=breaker,
    )
    return server, client


def run_request(sim, client):
    outcome = {}

    def proc():
        try:
            yield from client.request_once()
        except RequestAbandonedError as exc:
            outcome["abandoned"] = exc
            return
        outcome["ok"] = True

    sim.run(until=sim.process(proc()))
    return outcome


def test_budget_caps_total_retry_time():
    sim = Simulator()
    # Jitter 0 for exact arithmetic: attempts at t=0 and t=2 ms fail
    # instantly against the crashed server, the next backoff lands at
    # t=6 ms past the 5 ms budget, so the request is abandoned there --
    # well before the 10-attempt budget would run out on its own.
    policy = RetryPolicy(
        timeout_ns=50 * MS,
        max_attempts=10,
        backoff_base_ns=2 * MS,
        backoff_factor=2.0,
        jitter=0.0,
        budget_ns=5 * MS,
    )
    server, client = make_client(sim, retry=policy)
    server.crash()
    outcome = run_request(sim, client)
    assert isinstance(outcome["abandoned"].__cause__, TimeoutError)
    assert "budget" in str(outcome["abandoned"].__cause__)
    # Gave up once the backoff crossed the budget (attempt time is the
    # two fast failures plus the network sends), not at attempt 10.
    assert 6 * MS <= sim.now < 7 * MS
    assert client.requests_retried == 2
    assert client.requests_completed == 0


def test_breaker_sheds_attempts_locally_after_tripping():
    sim = Simulator()
    policy = RetryPolicy(
        timeout_ns=50 * MS,
        max_attempts=6,
        backoff_base_ns=1 * MS,
        jitter=0.0,
    )
    breaker = CircuitBreaker(sim, failure_threshold=2, reset_ns=100 * MS)
    server, client = make_client(sim, retry=policy, breaker=breaker)
    server.crash()
    outcome = run_request(sim, client)
    assert "abandoned" in outcome
    # Two real failures tripped the breaker; the remaining attempts were
    # rejected locally without touching the server.
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens.value == 1
    assert client.requests_shed == 4
    assert breaker.rejections.value == 4


def test_breaker_recloses_after_cooldown_and_success():
    sim = Simulator()
    policy = RetryPolicy(timeout_ns=50 * MS, max_attempts=2, jitter=0.0)
    breaker = CircuitBreaker(sim, failure_threshold=2, reset_ns=20 * MS)
    server, client = make_client(sim, retry=policy, breaker=breaker)
    server.crash()
    assert "abandoned" in run_request(sim, client)
    assert breaker.state is BreakerState.OPEN

    def recover():
        yield from server.restart()

    sim.run(until=sim.process(recover()))
    sim.run(until=sim.now + 20 * MS)  # cooldown elapses
    outcome = run_request(sim, client)
    # The half-open probe went through and closed the breaker again.
    assert outcome.get("ok") is True
    assert breaker.state is BreakerState.CLOSED
    assert breaker.closes.value == 1
    assert client.requests_completed == 1


def test_breaker_without_retry_policy_guards_single_attempts():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, reset_ns=50 * MS)
    server, client = make_client(sim, breaker=breaker)
    server.crash()
    assert "abandoned" in run_request(sim, client)
    assert breaker.state is BreakerState.OPEN
    # While open, the single attempt is shed locally: no retries, no
    # load on the server, still a clean abandonment.
    outcome = run_request(sim, client)
    assert "abandoned" in outcome
    assert client.requests_shed == 1

"""Regression: a routed client chasing a persistently wrong routing
table must terminate within ``RetryPolicy.budget_ns`` instead of
spinning through refresh-retry cycles.

The failure shape comes from controller failover: while leadership is
being re-established a client can see ``WrongEpochError`` on every
attempt (the slice is mid-cutover, or the table it refreshes from is
itself behind).  The total-deadline budget bounds the chase.
"""

import numpy as np
import pytest

from repro.cluster import (
    BatchSpec,
    ClusterController,
    KVClient,
    Network,
    RequestAbandonedError,
    build_sdf_server,
)
from repro.cluster.client import ROUTE_RETRIES
from repro.errors import WrongEpochError
from repro.faults import RetryPolicy
from repro.kv.slice import KeyRange
from repro.sim import MS, Simulator


def make_scenario(retry=None):
    sim = Simulator()
    network = Network(sim)
    ctrl = ClusterController(sim, network)
    ctrl.add_node(
        "n0", build_sdf_server(sim, [], capacity_scale=0.01, n_channels=4)
    )
    sid = ctrl.create_slice(KeyRange(0, 1_000_000), on=["n0"])
    # Poison the route: the replica has moved past the table's epoch
    # and nothing will ever publish the new one, so every routed
    # attempt draws WrongEpochError and every refresh resolves to the
    # same stale entry.
    ctrl.replica(sid, "n0").epoch = 99
    client = KVClient(
        sim,
        network,
        ctrl.node("n0"),
        ctrl.replica(sid, "n0"),
        BatchSpec(batch_size=1, value_bytes=4096, mode="write"),
        rng=np.random.default_rng(5),
        router=ctrl.view(),
        retry=retry,
    )
    return sim, client


def run_request(sim, client):
    outcome = {}

    def proc():
        try:
            yield from client.request_once()
        except RequestAbandonedError as exc:
            outcome["abandoned"] = exc
            return
        outcome["ok"] = True

    sim.run(until=sim.process(proc()))
    return outcome


def test_budget_bounds_wrong_epoch_chase():
    sim, client = make_scenario(
        retry=RetryPolicy(budget_ns=2 * MS)
    )
    outcome = run_request(sim, client)
    assert "abandoned" in outcome
    assert "budget" in str(outcome["abandoned"])
    assert isinstance(outcome["abandoned"].__cause__, WrongEpochError)
    # Terminated at the budget -- backoffs are clipped to the remaining
    # budget, so the chase cannot overshoot by more than one attempt's
    # service time.
    assert 2 * MS <= sim.now < 3 * MS
    # It spent the budget retrying, not spinning: fewer refreshes than
    # the attempt-count bound, each separated by a real backoff.
    assert 1 <= client.requests_retried < ROUTE_RETRIES


def test_without_budget_the_attempt_bound_alone_applies():
    sim, client = make_scenario(retry=None)
    outcome = run_request(sim, client)
    assert "abandoned" in outcome
    assert "misrouted" in str(outcome["abandoned"])
    assert client.requests_retried == ROUTE_RETRIES
    assert client.requests_redirected == ROUTE_RETRIES + 1


def test_budget_longer_than_chase_changes_nothing():
    # A generous budget must not alter the historical outcome: the
    # attempt-count bound fires first, same refresh count.
    sim_a, client_a = make_scenario(retry=None)
    run_request(sim_a, client_a)
    sim_b, client_b = make_scenario(
        retry=RetryPolicy(budget_ns=10_000 * MS)
    )
    outcome = run_request(sim_b, client_b)
    assert "misrouted" in str(outcome["abandoned"])
    assert client_b.requests_retried == client_a.requests_retried
    assert sim_b.now == sim_a.now

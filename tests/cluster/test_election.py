"""Leader election and leadership fencing in the controller group.

Bully-with-quorum: the lowest-rank live replica that has confirmed the
leader dead campaigns at a fresh term; a majority of votes is required,
so a minority partition can never elect, and a deposed leader is fenced
out of routing publishes and node commands.
"""

import pytest

from repro.cluster import (
    ClusterController,
    ControllerFencedError,
    ControllerGroup,
    ControllerUnavailableError,
    Network,
    SwimConfig,
    build_sdf_server,
)
from repro.errors import WrongEpochError
from repro.obs import Observability
from repro.sim import MS, Simulator

FAST = SwimConfig(
    period_ns=10 * MS,
    ping_timeout_ns=2 * MS,
    ping_req_fanout=1,
    suspect_timeout_ns=40 * MS,
)


def make_group(n_replicas=3, seed=0, nodes=1, obs=None):
    sim = Simulator()
    net = Network(sim)
    ctrl = ClusterController(sim, net)
    for i in range(nodes):
        ctrl.add_node(f"n{i}", build_sdf_server(sim, [], capacity_scale=0.01))
    group = ControllerGroup(
        sim, net, ctrl, n_replicas=n_replicas, swim=FAST, seed=seed
    )
    if obs is not None:
        group.attach(obs)
    group.watch_nodes()
    return sim, net, ctrl, group


def at(sim, when_ns, fn):
    def _driver():
        yield sim.timeout(when_ns)
        fn()

    sim.process(_driver())


def test_leader_crash_elects_next_rank_at_higher_term():
    sim, _net, ctrl, group = make_group()
    at(sim, 50 * MS, group.replica("ctl0").crash)
    group.start(until_ns=500 * MS)
    sim.run()
    assert group.leader is group.replica("ctl1")
    assert group.term == 2
    assert group.elections.value == 1
    # The winner announced the term to its live peer...
    assert group.replica("ctl2").term == 2
    # ...and fenced the storage node.
    assert ctrl.nodes["n0"].controller_term == 2
    assert group.fences.value == 1
    kinds = [e[3] for e in group.events]
    assert "elect" in kinds


def test_minority_partition_cannot_elect():
    sim, net, _ctrl, group = make_group()
    # Cut ctl2 (a one-replica minority) away from both peers.
    at(sim, 50 * MS, lambda: net.begin_partition("ctl2", ("ctl0", "ctl1")))
    group.start(until_ns=600 * MS)
    sim.run()
    # ctl2 confirmed both peers dead -- but its own view shows no
    # quorum, so the pre-vote guard keeps it from even opening a
    # round (which would inflate its term and depose the healthy
    # leader at heal time).
    assert group.detector.state("ctl2", "ctl0") == "dead"
    assert group.election_rounds.value == 0
    assert group.elections.value == 0
    assert group.leader is group.replica("ctl0")
    assert group.term == 1


def test_partitioned_leader_is_deposed_and_fenced():
    sim, net, ctrl, group = make_group()
    lease = group.open_lease(slice_id=0)
    assert lease.replica is group.replica("ctl0") and lease.term == 1
    at(sim, 50 * MS, lambda: net.begin_partition("ctl0", ("ctl1", "ctl2")))
    group.start(until_ns=600 * MS)
    sim.run()
    # The majority side elected ctl1; the old leader is still up but
    # holds a stale term.
    assert group.leader is group.replica("ctl1")
    assert group.term == 2
    assert group.replica("ctl0").up
    # Its pre-partition lease may no longer publish routing...
    with pytest.raises(ControllerFencedError):
        group.fence_publish(lease)
    # ...and the fenced storage node rejects its commands outright.
    with pytest.raises(WrongEpochError):
        ctrl.nodes["n0"].fence_controller(lease.term)


def test_terms_are_monotonic_across_successive_failures():
    sim, _net, _ctrl, group = make_group()
    ctl0 = group.replica("ctl0")
    # ctl0 crashes (ctl1 takes term 2), rejoins as a follower, then
    # wins the next election when ctl1 dies -- at a strictly higher
    # term, even though ctl0 slept through term 2's announcement.
    at(sim, 50 * MS, ctl0.crash)
    at(sim, 300 * MS, lambda: sim.process(ctl0.restart()))
    at(sim, 600 * MS, group.replica("ctl1").crash)
    group.start(until_ns=1500 * MS)
    sim.run()
    assert group.leader is ctl0
    assert group.term == 3
    assert group.elections.value == 2


def test_lone_survivor_cannot_elect_itself():
    sim, _net, _ctrl, group = make_group()
    at(sim, 50 * MS, group.replica("ctl0").crash)
    at(sim, 400 * MS, group.replica("ctl1").crash)
    group.start(until_ns=1000 * MS)
    sim.run()
    # ctl1 won term 2 while a quorum existed; after its death the lone
    # ctl2 sees no quorum of live replicas, so it stands by instead of
    # burning election rounds it can never win.
    assert group.elections.value == 1
    assert group.election_rounds.value >= 1
    assert group.leader is group.replica("ctl1")
    assert not group.leader.up


def test_healed_leader_rejoins_as_follower():
    sim, net, _ctrl, group = make_group()
    at(sim, 50 * MS, lambda: net.begin_partition("ctl0", ("ctl1", "ctl2")))
    at(sim, 400 * MS, lambda: net.end_partition("ctl0", ("ctl1", "ctl2")))
    group.start(until_ns=1200 * MS)
    sim.run()
    # After the heal the deposed founder is readmitted (stability gate
    # allowing), but leadership stays with ctl1 -- no flap-back.
    assert group.leader is group.replica("ctl1")
    assert group.term == 2
    assert group.elections.value == 1
    assert group.detector.state("ctl1", "ctl0") == "alive"


def test_open_lease_requires_a_live_leader():
    sim, _net, _ctrl, group = make_group()
    group.replica("ctl0").crash()
    with pytest.raises(ControllerUnavailableError):
        group.open_lease(slice_id=0)


def test_election_metrics_export():
    obs = Observability()
    sim, _net, _ctrl, group = make_group(obs=obs)
    at(sim, 50 * MS, group.replica("ctl0").crash)
    group.start(until_ns=500 * MS)
    sim.run()
    snap = obs.metrics.snapshot(sim.now)
    assert snap["cluster.election.term"] == 2
    assert snap["cluster.election.elections"] == 1
    assert snap["cluster.election.rounds"] >= 1
    assert snap["cluster.election.fences"] == 1


def test_election_replays_byte_identically():
    def run():
        sim, net, _ctrl, group = make_group(seed=5)
        at(sim, 50 * MS, group.replica("ctl0").crash)
        group.start(until_ns=500 * MS)
        sim.run()
        return (
            sim.now,
            tuple(group.events),
            group.term,
            group.leader.name,
            net.messages,
            net.bytes_moved,
        )

    assert run() == run()

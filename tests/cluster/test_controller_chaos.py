"""Chaos tier: membership stability under a flapping partition.

A link that heals and re-cuts faster than the suspicion window is the
classic failure-detector torture test: without a rejoin stability gate
every heal re-admits the member and every re-cut restarts the
suspect/confirm cycle, churning membership (and potentially
leadership) at the flap frequency.  These runs cut a follower away
from its peers on a 40 ms flap cycle -- 30 ms cut, 10 ms heal, well
inside the 40 ms suspicion window -- and require:

* exactly one confirm per observer (no confirm -> rejoin -> confirm
  churn while the link flaps),
* readmission only after the link stays up for a full stability
  window, and
* leadership untouched throughout (no elections, term 1).

Driven by the CI ``CHAOS_SEED`` matrix; every run must replay
byte-identically under its seed.
"""

import os

import pytest

from repro.cluster import (
    ClusterController,
    ControllerGroup,
    Network,
    SwimConfig,
    build_sdf_server,
)
from repro.faults import PARTITION, FaultPlan, FaultRunner
from repro.sim import MS, Simulator

#: The CI chaos job sweeps this via the environment; 0 is the default
#: local seed.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

FAST = SwimConfig(
    period_ns=10 * MS,
    ping_timeout_ns=2 * MS,
    ping_req_fanout=1,
    suspect_timeout_ns=40 * MS,
)
FLAPS = 12
FLAP_PERIOD_NS = 40 * MS  # 30 ms cut + 10 ms heal, per cycle
FIRST_CUT_NS = 50 * MS


def flap_run(seed):
    """One deterministic flapping-partition run; returns its digest."""
    sim = Simulator()
    network = Network(sim)
    ctrl = ClusterController(sim, network)
    ctrl.add_node(
        "n0", build_sdf_server(sim, [], capacity_scale=0.01, n_channels=4)
    )
    group = ControllerGroup(
        sim, network, ctrl, n_replicas=3, swim=FAST, seed=seed
    )
    group.watch_nodes()
    plan = FaultPlan(seed=seed)
    for k in range(FLAPS):
        plan.schedule(
            "net",
            PARTITION,
            at_ns=FIRST_CUT_NS + k * FLAP_PERIOD_NS,
            duration_ns=30 * MS,
            a="ctl2",
            b="ctl0,ctl1",
        )
    runner = FaultRunner(sim, plan)
    runner.bind("net", network)
    runner.start()
    last_heal = FIRST_CUT_NS + (FLAPS - 1) * FLAP_PERIOD_NS + 30 * MS
    end = last_heal + 600 * MS
    group.start(until_ns=end)
    sim.run(until=end)
    sim.run()  # drain the runner's heal bookkeeping
    return sim, network, group, last_heal


@pytest.mark.chaos
def test_flapping_partition_does_not_churn_membership():
    sim, network, group, last_heal = flap_run(CHAOS_SEED)
    assert not network._cuts  # every cut healed
    assert network.partition_drops > 0  # the flaps actually bit
    for observer in ("ctl0", "ctl1"):
        about = [
            (at, kind)
            for at, obs_, subj, kind in group.events
            if obs_ == observer and subj == "ctl2"
        ]
        confirms = [at for at, kind in about if kind == "confirm"]
        rejoins = [at for at, kind in about if kind == "rejoin"]
        # One confirm when the flapping starts -- and *only* one: the
        # 10 ms heal windows never satisfy the stability gate, so the
        # member cannot oscillate back in mid-flap.
        assert len(confirms) == 1, about
        # Readmitted once, a full stability window after the *final*
        # heal: recovery-verification probing (one probe per period at
        # a recovering member) guarantees every mid-flap cut is
        # observed and resets the gate clock, so no sampling streak
        # can sneak a flapping member back in early.
        assert len(rejoins) == 1, about
        assert rejoins[0] >= last_heal + FAST.stable_ns()
        assert group.detector.state(observer, "ctl2") == "alive"
    # A flapping follower must not shake leadership.
    assert group.elections.value == 0
    assert group.term == 1
    assert group.leader.name == "ctl0"


@pytest.mark.chaos
def test_flapping_partition_replays_byte_identically():
    def digest():
        sim, network, group, _ = flap_run(CHAOS_SEED)
        return (
            sim.now,
            tuple(group.events),
            group.term,
            group.pings.value,
            group.ping_reqs.value,
            group.suspicions.value,
            group.confirms.value,
            group.rejoins.value,
            network.messages,
            network.bytes_moved,
            network.partition_drops,
        )

    assert digest() == digest()

"""Control-plane unit + integration tests: versioned routing, epoch
rejection, elastic membership, online migration, split/merge and the
load-driven rebalancer (crash-during-migration safety lives in
``test_migration_faults.py``).
"""

import pytest

from repro.cluster import (
    ClusterController,
    MigrationError,
    Network,
    RoutingView,
    SliceLocation,
    build_sdf_server,
)
from repro.errors import WrongEpochError
from repro.faults import FaultPlan
from repro.kv.slice import KeyRange
from repro.obs import Observability
from repro.qos import MigrationConfig, QosPlan
from repro.sim import MS, Simulator

VALUE = b"v" * 4096


def make_cluster(n_nodes=2, **server_kwargs):
    server_kwargs.setdefault("capacity_scale", 0.01)
    server_kwargs.setdefault("n_channels", 4)
    sim = Simulator()
    network = Network(sim)
    ctrl = ClusterController(sim, network)
    for i in range(n_nodes):
        ctrl.add_node(f"n{i}", build_sdf_server(sim, [], **server_kwargs))
    return sim, network, ctrl


def fill(sim, server, keys, value=VALUE):
    def _fill():
        for key in keys:
            yield from server.handle_put(key, value)

    sim.run(until=sim.process(_fill()))


def read_all(sim, ctrl, keys, value=VALUE):
    """Route every key through a fresh view; returns the missing count."""
    view = ctrl.view()

    def _read():
        missing = 0
        for key in keys:
            server, entry = view.lookup(key)
            got = yield from server.handle_get(key, epoch=entry.epoch)
            if got != value:
                missing += 1
        return missing

    return sim.run(until=sim.process(_read()))


# -- routing table + view ----------------------------------------------------------------


def test_routing_table_versioning_and_lookup():
    sim, network, ctrl = make_cluster(2)
    v0 = ctrl.table.version
    sid = ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    assert ctrl.table.version == v0 + 1
    entry = ctrl.table.lookup(50)
    assert entry.slice_id == sid
    assert entry.replicas == ("n0",)
    assert entry.epoch == 0
    assert 99 in entry and 100 not in entry
    with pytest.raises(KeyError):
        ctrl.table.lookup(100)


def test_create_slice_rejects_overlap_and_empty_placement():
    sim, network, ctrl = make_cluster(1)
    ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    with pytest.raises(ValueError, match="overlaps"):
        ctrl.create_slice(KeyRange(50, 150), on=["n0"])
    with pytest.raises(ValueError, match="at least one"):
        ctrl.create_slice(KeyRange(200, 300), on=[])


def test_view_is_a_stale_snapshot_until_refreshed():
    sim, network, ctrl = make_cluster(2)
    ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    view = ctrl.view()
    assert isinstance(view, RoutingView)
    assert not view.stale
    ctrl.create_slice(KeyRange(100, 200), on=["n1"])
    assert view.stale
    with pytest.raises(KeyError):
        view.lookup(150)  # the cached snapshot predates the new slice
    view.refresh()
    assert not view.stale
    server, entry = view.lookup(150)
    assert server is ctrl.node("n1")


def test_stale_epoch_stamp_is_rejected_by_the_server():
    sim, network, ctrl = make_cluster(1)
    sid = ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    server = ctrl.node("n0")
    stale = ctrl.table.entry(sid).epoch
    ctrl.replica(sid, "n0").epoch = stale + 7  # ownership moved on

    def _put():
        yield from server.handle_put(1, VALUE, epoch=stale)

    with pytest.raises(WrongEpochError):
        sim.run(until=sim.process(_put()))
    # Unstamped (legacy, un-routed) requests still work.
    fill(sim, server, [1])


# -- membership --------------------------------------------------------------------------


def test_add_node_adopts_pre_hosted_slices():
    sim = Simulator()
    network = Network(sim)
    from repro.kv.lsm import LSMTree
    from repro.kv.slice import Slice

    slice_ = Slice(7, KeyRange(0, 100), lsm=LSMTree())
    server = build_sdf_server(
        sim, [slice_], capacity_scale=0.01, n_channels=4
    )
    ctrl = ClusterController(sim, network)
    ctrl.add_node("n0", server)
    entry = ctrl.table.entry(7)
    assert entry.replicas == ("n0",)
    assert ctrl.replica(7, "n0") is slice_
    # Fresh slice ids don't collide with the adopted one.
    assert ctrl.create_slice(KeyRange(100, 200), on=["n0"]) == 8
    with pytest.raises(ValueError, match="already enrolled"):
        ctrl.add_node("n0", server)


def test_drain_then_remove_node():
    sim, network, ctrl = make_cluster(2)
    sid = ctrl.create_slice(KeyRange(0, 1000), on=["n0"])
    fill(sim, ctrl.node("n0"), range(0, 200))
    moved = sim.run(until=sim.process(ctrl.drain_node("n0")))
    assert moved == 1
    assert ctrl.table.entry(sid).replicas == ("n1",)
    assert read_all(sim, ctrl, range(0, 200)) == 0
    removed = ctrl.remove_node("n0")
    assert removed.slices == []
    assert "n0" not in ctrl.nodes


def test_remove_node_refuses_while_hosting():
    sim, network, ctrl = make_cluster(1)
    ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    with pytest.raises(MigrationError, match="drain it first"):
        ctrl.remove_node("n0")


# -- migration ---------------------------------------------------------------------------


def test_migrate_slice_moves_data_and_bumps_epoch():
    sim, network, ctrl = make_cluster(2)
    sid = ctrl.create_slice(
        KeyRange(0, 10_000), on=["n0"], memtable_bytes=64 * 1024
    )
    fill(sim, ctrl.node("n0"), range(0, 300))
    sim.run(until=sim.now + 50 * MS)  # let background flushes register runs
    old_epoch = ctrl.table.entry(sid).epoch
    sim.run(until=sim.process(ctrl.migrate_slice(sid, "n0", "n1")))
    entry = ctrl.table.entry(sid)
    assert entry.replicas == ("n1",)
    assert entry.epoch > old_epoch
    assert ctrl.replica(sid, "n1").epoch == entry.epoch
    # The source stopped hosting; the target serves every acked write.
    assert all(s.slice_id != sid for s in ctrl.node("n0").slices)
    assert read_all(sim, ctrl, range(0, 300)) == 0
    assert ctrl.migrations_completed.value == 1
    assert ctrl.bytes_migrated.value > 0


def test_migrate_slice_argument_validation():
    sim, network, ctrl = make_cluster(2)
    sid = ctrl.create_slice(KeyRange(0, 100), on=["n0", "n1"])

    def run_mig(*args):
        sim.run(until=sim.process(ctrl.migrate_slice(*args)))

    with pytest.raises(KeyError):
        run_mig(sid, "n0", "ghost")
    with pytest.raises(MigrationError, match="same node"):
        run_mig(sid, "n0", "n0")
    with pytest.raises(MigrationError, match="no replica"):
        run_mig(99, "n0", "n1")
    with pytest.raises(MigrationError, match="already has a replica"):
        run_mig(sid, "n0", "n1")


def test_migration_respects_concurrency_budget():
    sim, network, ctrl = make_cluster(3)
    ctrl.attach(
        QosPlan(
            migration=MigrationConfig(max_concurrent=1, copy_mb_per_s=1.0)
        )
    )
    a = ctrl.create_slice(
        KeyRange(0, 1000), on=["n0"], memtable_bytes=64 * 1024
    )
    b = ctrl.create_slice(KeyRange(1000, 2000), on=["n0"])
    fill(sim, ctrl.node("n0"), range(0, 100))
    mig1 = sim.process(ctrl.migrate_slice(a, "n0", "n1"))

    def second():
        yield sim.timeout(MS)  # while the paced first copy is in flight
        yield from ctrl.migrate_slice(b, "n0", "n2")

    with pytest.raises(MigrationError, match="budget"):
        sim.run(until=sim.process(second()))
    sim.run(until=mig1)  # the first migration is unaffected
    assert ctrl.table.entry(a).replicas == ("n1",)


def test_migration_copy_budget_slows_the_transfer():
    def timed(qos):
        sim, network, ctrl = make_cluster(2)
        if qos is not None:
            ctrl.attach(qos)
        sid = ctrl.create_slice(
            KeyRange(0, 10_000), on=["n0"], memtable_bytes=64 * 1024
        )
        fill(sim, ctrl.node("n0"), range(0, 200))
        sim.run(until=sim.now + 50 * MS)
        start = sim.now
        sim.run(until=sim.process(ctrl.migrate_slice(sid, "n0", "n1")))
        return sim.now - start

    unpaced = timed(None)
    # Patch stores burn a full 8 MB write unit each, so only a budget
    # well under the device bandwidth shows up in the elapsed time.
    paced = timed(QosPlan(migration=MigrationConfig(copy_mb_per_s=0.05)))
    assert paced > 2 * unpaced


def test_replica_router_tracks_migration():
    sim, network, ctrl = make_cluster(2)
    sid = ctrl.create_slice(KeyRange(0, 1000), on=["n0"])
    router = ctrl.replica_router(sid)
    assert router() == [ctrl.node("n0")]
    fill(sim, ctrl.node("n0"), range(0, 50))
    sim.run(until=sim.process(ctrl.migrate_slice(sid, "n0", "n1")))
    assert router() == [ctrl.node("n1")]


def test_routed_writes_survive_a_concurrent_migration():
    """Writers stamped with the old epoch are redirected mid-stream and
    every acknowledged write is readable afterwards."""
    sim, network, ctrl = make_cluster(2)
    sid = ctrl.create_slice(
        KeyRange(0, 10_000), on=["n0"], memtable_bytes=64 * 1024
    )
    fill(sim, ctrl.node("n0"), range(0, 100))
    sim.run(until=sim.now + 20 * MS)
    view = ctrl.view()
    acked = []

    def writer():
        for key in range(100, 400):
            for _ in range(10):  # redirect-and-retry
                server, entry = view.lookup(key)
                try:
                    yield from server.handle_put(
                        key, VALUE, epoch=entry.epoch
                    )
                except WrongEpochError:
                    yield sim.timeout(MS)
                    view.refresh()
                    continue
                acked.append(key)
                break

    mig = sim.process(ctrl.migrate_slice(sid, "n0", "n1"))
    wr = sim.process(writer())
    sim.run(until=wr)
    sim.run(until=mig)
    assert ctrl.table.entry(sid).replicas == ("n1",)
    assert len(acked) == 300  # nothing was dropped, only redirected
    assert view.refreshes >= 1
    assert read_all(sim, ctrl, range(0, 400)) == 0


# -- split / merge -----------------------------------------------------------------------


def test_split_slice_partitions_keys_and_redirects():
    sim, network, ctrl = make_cluster(1)
    sid = ctrl.create_slice(
        KeyRange(0, 1000), on=["n0"], memtable_bytes=64 * 1024
    )
    fill(sim, ctrl.node("n0"), range(0, 500))
    sim.run(until=sim.now + 50 * MS)
    stale = ctrl.table.entry(sid)
    low, high = sim.run(until=sim.process(ctrl.split_slice(sid, 300)))
    assert ctrl.table.entry(low).key_range == KeyRange(0, 300)
    assert ctrl.table.entry(high).key_range == KeyRange(300, 1000)
    assert ctrl.table.entry(low).epoch == ctrl.table.entry(high).epoch
    with pytest.raises(KeyError):
        ctrl.table.entry(sid)  # the parent is gone
    assert read_all(sim, ctrl, range(0, 500)) == 0
    # A request stamped with the parent's epoch is rejected.
    server = ctrl.node("n0")

    def stale_put():
        yield from server.handle_put(10, VALUE, epoch=stale.epoch)

    with pytest.raises(WrongEpochError):
        sim.run(until=sim.process(stale_put()))
    assert ctrl.splits.value == 1


def test_merge_slices_recombines_without_data_loss():
    sim, network, ctrl = make_cluster(1)
    sid = ctrl.create_slice(
        KeyRange(0, 1000), on=["n0"], memtable_bytes=64 * 1024
    )
    fill(sim, ctrl.node("n0"), range(0, 500))
    sim.run(until=sim.now + 50 * MS)
    low, high = sim.run(until=sim.process(ctrl.split_slice(sid, 250)))
    merged = sim.run(until=sim.process(ctrl.merge_slices(low, high)))
    assert ctrl.table.entry(merged).key_range == KeyRange(0, 1000)
    assert read_all(sim, ctrl, range(0, 500)) == 0
    assert ctrl.merges.value == 1


def test_merged_slice_survives_migration():
    sim, network, ctrl = make_cluster(2)
    sid = ctrl.create_slice(
        KeyRange(0, 1000), on=["n0"], memtable_bytes=64 * 1024
    )
    fill(sim, ctrl.node("n0"), range(0, 400))
    sim.run(until=sim.now + 50 * MS)
    low, high = sim.run(until=sim.process(ctrl.split_slice(sid, 200)))
    merged = sim.run(until=sim.process(ctrl.merge_slices(low, high)))
    sim.run(until=sim.process(ctrl.migrate_slice(merged, "n0", "n1")))
    assert ctrl.table.entry(merged).replicas == ("n1",)
    assert read_all(sim, ctrl, range(0, 400)) == 0


def test_merge_requires_matching_replica_sets():
    sim, network, ctrl = make_cluster(2)
    a = ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    b = ctrl.create_slice(KeyRange(100, 200), on=["n1"])
    with pytest.raises(MigrationError, match="same replica set"):
        sim.run(until=sim.process(ctrl.merge_slices(a, b)))


# -- rebalancer --------------------------------------------------------------------------


def test_rebalance_moves_the_hottest_slice_to_the_coldest_node():
    sim, network, ctrl = make_cluster(2)
    hot = ctrl.create_slice(KeyRange(0, 1000), on=["n0"])
    ctrl.create_slice(KeyRange(1000, 2000), on=["n0"])
    fill(sim, ctrl.node("n0"), range(0, 100))  # all load on `hot`
    move = sim.run(until=sim.process(ctrl.rebalance()))
    assert move == (hot, "n0", "n1")
    assert ctrl.table.entry(hot).replicas == ("n1",)
    assert ctrl.rebalance_moves.value == 1
    # Watermarks reset: with no fresh traffic, the next pass is a no-op.
    move = sim.run(until=sim.process(ctrl.rebalance()))
    assert move is None


def test_rebalance_balanced_cluster_is_a_no_op():
    sim, network, ctrl = make_cluster(2)
    ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    ctrl.create_slice(KeyRange(100, 200), on=["n1"])
    fill(sim, ctrl.node("n0"), range(0, 20))
    fill(sim, ctrl.node("n1"), range(100, 120))
    move = sim.run(until=sim.process(ctrl.rebalance()))
    assert move is None
    assert ctrl.migrations_started.value == 0


def test_rebalance_never_strands_a_single_slice_node():
    sim, network, ctrl = make_cluster(2)
    ctrl.create_slice(KeyRange(0, 1000), on=["n0"])  # n0's only slice
    fill(sim, ctrl.node("n0"), range(0, 100))
    move = sim.run(until=sim.process(ctrl.rebalance()))
    assert move is None  # a node's last slice never moves


# -- plane wiring ------------------------------------------------------------------------


def test_controller_attach_obs_exports_metrics():
    sim, network, ctrl = make_cluster(2)
    obs = Observability()
    assert ctrl.attach(obs) is ctrl
    sid = ctrl.create_slice(KeyRange(0, 1000), on=["n0"])
    fill(sim, ctrl.node("n0"), range(0, 50))
    sim.run(until=sim.process(ctrl.migrate_slice(sid, "n0", "n1")))
    snap = obs.snapshot(sim.now)
    assert snap["cluster.migrations_completed"] == 1
    assert snap["cluster.routing_version"] == ctrl.table.version
    assert snap["cluster.nodes"] == 2
    assert snap["cluster.bytes_migrated"] > 0


def test_controller_attach_fault_plan_arms_abort_points():
    from repro.cluster import MIGRATION_ABORT, MIGRATION_SITE
    from repro.errors import TransientFault

    sim, network, ctrl = make_cluster(2)
    plan = FaultPlan(seed=3).add(
        MIGRATION_SITE, MIGRATION_ABORT, at_op=1, where={"phase": "copy"}
    )
    ctrl.attach(plan)
    sid = ctrl.create_slice(KeyRange(0, 1000), on=["n0"])
    fill(sim, ctrl.node("n0"), range(0, 50))
    with pytest.raises(TransientFault):
        sim.run(until=sim.process(ctrl.migrate_slice(sid, "n0", "n1")))
    assert ctrl.migrations_aborted.value == 1
    # Aborted cleanly: source still serves, routing unchanged.
    assert ctrl.table.entry(sid).replicas == ("n0",)
    assert read_all(sim, ctrl, range(0, 50)) == 0


def test_controller_attach_rejects_unknown_plane():
    sim, network, ctrl = make_cluster(1)
    with pytest.raises(TypeError, match="don't know how to attach"):
        ctrl.attach(object())


# -- no-drift ----------------------------------------------------------------------------


def test_idle_control_plane_is_byte_identical_no_drift():
    """Enrolling nodes and publishing routes must not perturb the data
    path: a workload run under an idle controller is byte-identical
    (timeline, metrics, trace) to the same run without one."""
    import json

    from repro.kv.lsm import LSMTree
    from repro.kv.slice import Slice

    def run_workload(with_controller: bool):
        sim = Simulator()
        obs = Observability(trace=True)
        slice_ = Slice(
            0, KeyRange(0, 1_000_000), lsm=LSMTree(memtable_bytes=128 * 1024)
        )
        server = build_sdf_server(
            sim, [slice_], capacity_scale=0.01, n_channels=4
        )
        network = Network(sim)
        server.system.attach(obs)
        server.attach(obs)
        if with_controller:
            ctrl = ClusterController(sim, network)
            ctrl.add_node("n0", server)  # adopts + publishes the slice

        def scenario():
            for key in range(40):
                yield from server.handle_put(key, VALUE)
            for key in range(40):
                got = yield from server.handle_get(key)
                assert got == VALUE

        sim.run(until=sim.process(scenario()))
        sim.run(until=sim.now + 50 * MS)
        trace = json.dumps(obs.trace.chrome_trace(), sort_keys=True)
        return sim.now, obs.snapshot(sim.now), trace

    bare = run_workload(False)
    ruled = run_workload(True)
    assert ruled[0] == bare[0]
    assert ruled[1] == bare[1]
    assert ruled[2] == bare[2]

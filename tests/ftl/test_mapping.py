"""Unit tests for PageMapping and BlockMapping."""

import pytest

from repro.ftl import BlockMapping, PageMapping


@pytest.fixture
def pmap():
    # 16 logical pages over 8 blocks x 4 pages = 32 physical pages.
    return PageMapping(n_lpns=16, n_ppns=32, pages_per_block=4)


def test_unmapped_lookup_returns_none(pmap):
    assert pmap.lookup(0) is None
    assert pmap.reverse(0) is None
    assert not pmap.is_valid(0)


def test_map_and_lookup_roundtrip(pmap):
    assert pmap.map(3, 10) is None
    assert pmap.lookup(3) == 10
    assert pmap.reverse(10) == 3
    assert pmap.is_valid(10)
    assert pmap.valid_count(10 // 4) == 1
    assert pmap.mapped_lpns == 1


def test_remap_invalidates_old_ppn(pmap):
    pmap.map(3, 10)
    old = pmap.map(3, 20)
    assert old == 10
    assert not pmap.is_valid(10)
    assert pmap.reverse(10) is None
    assert pmap.valid_count(2) == 0
    assert pmap.valid_count(5) == 1


def test_map_to_occupied_ppn_rejected(pmap):
    pmap.map(1, 9)
    with pytest.raises(ValueError, match="already holds"):
        pmap.map(2, 9)


def test_unmap_trim(pmap):
    pmap.map(5, 12)
    assert pmap.unmap(5) == 12
    assert pmap.lookup(5) is None
    assert not pmap.is_valid(12)
    assert pmap.unmap(5) is None  # idempotent


def test_valid_lpns_in_block(pmap):
    pmap.map(0, 4)  # block 1
    pmap.map(1, 5)  # block 1
    pmap.map(2, 9)  # block 2
    assert pmap.valid_lpns_in_block(1) == [(4, 0), (5, 1)]
    assert pmap.valid_lpns_in_block(0) == []


def test_note_block_erased_requires_no_valid_pages(pmap):
    pmap.map(0, 4)
    with pytest.raises(ValueError, match="valid pages"):
        pmap.note_block_erased(1)
    pmap.unmap(0)
    pmap.note_block_erased(1)
    # After the reset the block can be reused.
    pmap.map(7, 4)
    assert pmap.reverse(4) == 7


def test_valid_counts_view_is_readonly(pmap):
    view = pmap.valid_counts
    with pytest.raises(ValueError):
        view[0] = 5


def test_page_mapping_validation():
    with pytest.raises(ValueError):
        PageMapping(n_lpns=0, n_ppns=32, pages_per_block=4)
    with pytest.raises(ValueError):
        PageMapping(n_lpns=4, n_ppns=30, pages_per_block=4)


def test_block_mapping_lifecycle():
    bmap = BlockMapping(n_logical_blocks=8)
    assert bmap.lookup(3) is None
    bmap.map(3, (10, 11, 12, 13))
    assert bmap.lookup(3) == (10, 11, 12, 13)
    assert bmap.is_mapped(3)
    assert bmap.mapped_count == 1
    assert bmap.unmap(3) == (10, 11, 12, 13)
    assert not bmap.is_mapped(3)


def test_block_mapping_double_map_rejected():
    bmap = BlockMapping(4)
    bmap.map(0, (1,))
    with pytest.raises(ValueError, match="erase first"):
        bmap.map(0, (2,))


def test_block_mapping_unmap_of_unmapped_rejected():
    bmap = BlockMapping(4)
    with pytest.raises(KeyError):
        bmap.unmap(2)


def test_block_mapping_bounds():
    bmap = BlockMapping(4)
    with pytest.raises(IndexError):
        bmap.lookup(4)
    with pytest.raises(IndexError):
        bmap.map(-1, (0,))
    with pytest.raises(ValueError):
        BlockMapping(0)

"""Unit tests for FreeBlockPool, StaticWearLeveler, BadBlockManager, GC."""

import numpy as np
import pytest

from repro.ftl import (
    BadBlockManager,
    FreeBlockPool,
    GreedyGarbageCollector,
    StaticWearLeveler,
)


def test_pool_allocates_min_wear_first():
    pool = FreeBlockPool([1, 2, 3])
    first = pool.allocate()
    pool.release(first)  # erase count 1 now
    # The next two allocations must be the never-erased blocks.
    second = pool.allocate()
    third = pool.allocate()
    assert {second, third} == {1, 2, 3} - {first}
    assert pool.allocate() == first  # the worn one comes last


def test_pool_membership_and_len():
    pool = FreeBlockPool([5, 6])
    assert len(pool) == 2 and 5 in pool
    block = pool.allocate()
    assert len(pool) == 1 and block not in pool


def test_pool_exhaustion_raises():
    pool = FreeBlockPool([1])
    pool.allocate()
    with pytest.raises(IndexError):
        pool.allocate()


def test_pool_double_release_rejected():
    pool = FreeBlockPool([1])
    with pytest.raises(ValueError):
        pool.release(1)


def test_pool_release_without_erase_keeps_count():
    pool = FreeBlockPool([1])
    block = pool.allocate()
    pool.release(block, erased=False)
    assert pool.erase_count(block) == 0


def test_pool_retire_removes_block():
    pool = FreeBlockPool([1, 2])
    pool.retire(1)
    assert len(pool) == 1
    assert pool.allocate() == 2


def test_pool_external_erase_accounting():
    pool = FreeBlockPool([1])
    block = pool.allocate()
    pool.note_external_erase(block)
    pool.note_external_erase(block)
    pool.release(block, erased=False)
    assert pool.erase_count(block) == 2
    with pytest.raises(ValueError):
        pool.note_external_erase(block)  # it is free now


def test_pool_wear_spread():
    pool = FreeBlockPool([1, 2])
    block = pool.allocate()
    pool.release(block)  # that block now has one more erase than the other
    assert pool.wear_spread() == 1
    assert pool.min_free_erase_count == 0


def test_pool_wear_stays_balanced_over_many_cycles():
    """Allocate-release churn must keep erase counts within 1 of each
    other -- the dynamic-wear-leveling guarantee."""
    pool = FreeBlockPool(range(10))
    for _ in range(500):
        block = pool.allocate()
        pool.release(block)
    assert pool.wear_spread() <= 1


def test_bad_block_manager():
    bbm = BadBlockManager(factory_bad=[3, 7])
    assert bbm.is_bad(3) and not bbm.is_bad(4)
    bbm.mark_grown_bad(4)
    assert bbm.is_bad(4)
    assert bbm.factory_bad == [3, 7]
    assert bbm.grown_bad == [4]
    assert bbm.n_bad == 3
    assert bbm.usable(range(8)) == [0, 1, 2, 5, 6]
    with pytest.raises(ValueError):
        bbm.mark_grown_bad(3)


def test_greedy_gc_picks_fewest_valid():
    gc = GreedyGarbageCollector()
    valid = np.array([5, 0, 3, 9, 1], dtype=np.int32)
    assert gc.select_victim(valid, [0, 2, 3, 4]) == 4
    assert gc.select_victim(valid, [0, 3]) == 0
    assert gc.select_victim(valid, []) is None
    assert gc.victims_selected == 2


def test_static_wear_leveler_threshold():
    swl = StaticWearLeveler(threshold=10)
    counts = {1: 0, 2: 5, 3: 20}
    victim = swl.pick_victim(counts.get, [1, 2, 3], max_erase_count=20)
    assert victim == 1  # coldest block, spread 20 >= 10
    assert swl.migrations_triggered == 1
    # Below threshold: no migration.
    assert swl.pick_victim(counts.get, [2, 3], max_erase_count=12) is None
    assert swl.pick_victim(counts.get, [], max_erase_count=100) is None
    with pytest.raises(ValueError):
        StaticWearLeveler(threshold=0)

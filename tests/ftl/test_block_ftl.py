"""Unit tests for the SDF per-channel block FTL."""

import numpy as np
import pytest

from repro.ftl import ChannelBlockFTL, EraseBeforeWriteError, OpKind
from repro.ftl.page_ftl import OutOfSpaceError
from repro.nand import FlashArray, FlashGeometry, NandTiming

TINY = FlashGeometry(
    page_size=512, pages_per_block=4, blocks_per_plane=8, planes_per_chip=2
)


def make_channel(blocks_per_plane=8, reserve=0.0, **array_kwargs):
    geometry = FlashGeometry(
        page_size=512,
        pages_per_block=4,
        blocks_per_plane=blocks_per_plane,
        planes_per_chip=2,
    )
    array = FlashArray(
        channels=1,
        chips_per_channel=2,
        geometry=geometry,
        timing=NandTiming(),
        **array_kwargs,
    )
    return ChannelBlockFTL(array, channel=0, reserve_fraction=reserve)


def full_block_payload(ftl, tag):
    return [(tag, index) for index in range(ftl.pages_per_logical_block)]


def test_geometry_of_logical_block():
    ftl = make_channel()
    # 2 chips x 2 planes = 4 planes; 4 pages per block -> 16 pages, 8 KiB.
    assert ftl.n_planes == 4
    assert ftl.pages_per_logical_block == 16
    assert ftl.logical_block_bytes == 16 * 512
    assert ftl.capacity_bytes == ftl.n_logical_blocks * 16 * 512


def test_write_read_roundtrip_full_block():
    ftl = make_channel()
    payload = full_block_payload(ftl, "A")
    ftl.write(0, payload)
    data, ops = ftl.read(0, 0, ftl.pages_per_logical_block)
    assert data == payload
    assert all(op.kind is OpKind.READ for op in ops)


def test_striping_is_two_mb_per_plane():
    """Logical page i lands on plane i // pages_per_block (2 MB stripes),
    and the payload read back at each offset matches."""
    ftl = make_channel()
    payload = full_block_payload(ftl, "S")
    ops = ftl.write(0, payload)
    pages_per_block = 4
    placed = {}
    for op in ops:
        plane_index = op.address.chip * 2 + op.address.plane  # planes_per_chip=2
        logical_index = plane_index * pages_per_block + op.address.page
        placed[logical_index] = op
    assert sorted(placed) == list(range(ftl.pages_per_logical_block))
    # Execution order is plane-interleaved so the shared bus keeps all
    # planes busy: the first n_planes ops hit page 0 of each plane.
    first_wave = ops[: ftl.n_planes]
    assert {op.address.page for op in first_wave} == {0}
    assert len({(op.address.chip, op.address.plane) for op in first_wave}) == 4
    data, _ = ftl.read(0, 0, ftl.pages_per_logical_block)
    assert data == payload


def test_partial_write_rejected():
    ftl = make_channel()
    with pytest.raises(ValueError, match="full logical block"):
        ftl.write(0, [None] * 3)


def test_rewrite_without_erase_rejected():
    ftl = make_channel()
    ftl.write(0, full_block_payload(ftl, "A"))
    with pytest.raises(EraseBeforeWriteError):
        ftl.write(0, full_block_payload(ftl, "B"))


def test_erase_then_rewrite():
    ftl = make_channel()
    ftl.write(0, full_block_payload(ftl, "A"))
    ops = ftl.erase(0)
    assert len(ops) == ftl.n_planes
    assert all(op.kind is OpKind.ERASE for op in ops)
    assert not ftl.is_mapped(0)
    ftl.write(0, full_block_payload(ftl, "B"))
    assert ftl.read(0, 0, 1)[0] == [("B", 0)]


def test_erase_of_unmapped_block_rejected():
    ftl = make_channel()
    with pytest.raises(KeyError):
        ftl.erase(0)


def test_read_of_unmapped_block_returns_nones():
    ftl = make_channel()
    data, ops = ftl.read(3, 0, 4)
    assert data == [None] * 4 and ops == []


def test_read_bounds():
    ftl = make_channel()
    with pytest.raises(IndexError):
        ftl.read(0, 16, 1)
    with pytest.raises(IndexError):
        ftl.read(0, 15, 2)
    with pytest.raises(ValueError):
        ftl.read(0, 0, 0)


def test_small_read_unit():
    """8 KB (one page) reads work against an 8 MB write unit -- the
    asymmetric interface of S2."""
    ftl = make_channel()
    payload = full_block_payload(ftl, "R")
    ftl.write(1, payload)
    for offset in range(ftl.pages_per_logical_block):
        data, ops = ftl.read(1, offset, 1)
        assert data == [payload[offset]]
        assert len(ops) == 1


def test_write_amplification_is_exactly_one():
    ftl = make_channel()
    for cycle in range(30):
        block = cycle % ftl.n_logical_blocks
        if ftl.is_mapped(block):
            ftl.erase(block)
        ftl.write(block, full_block_payload(ftl, cycle))
    assert ftl.write_amplification == 1.0
    # Host programs == physical programs: no hidden writes anywhere.
    assert ftl.host_programs == ftl.array.total_programs


def test_out_of_space_when_all_blocks_mapped_without_erase():
    ftl = make_channel(blocks_per_plane=4, reserve=0.0)
    for block in range(ftl.n_logical_blocks):
        ftl.write(block, full_block_payload(ftl, block))
    # All logical blocks mapped; pools exhausted (reserve 0) -> next
    # write must be to an unmapped block, but none remain unmapped.
    with pytest.raises((OutOfSpaceError, EraseBeforeWriteError)):
        ftl.write(0, full_block_payload(ftl, "again"))


def test_reserve_fraction_reduces_exposed_capacity():
    none = make_channel(blocks_per_plane=100, reserve=0.0)
    one_percent = make_channel(blocks_per_plane=100, reserve=0.01)
    assert one_percent.n_logical_blocks == 99
    assert none.n_logical_blocks == 100


def test_dynamic_wear_leveling_balances_erases():
    ftl = make_channel(blocks_per_plane=8)
    # Hammer a small set of logical blocks; DWL must spread the wear
    # over every physical block.
    for cycle in range(100):
        block = cycle % 2
        if ftl.is_mapped(block):
            ftl.erase(block)
        ftl.write(block, full_block_payload(ftl, cycle))
    assert ftl.wear_spread() <= 2


def test_factory_bad_blocks_are_skipped():
    rng = np.random.default_rng(21)
    ftl = make_channel(
        blocks_per_plane=16, rng=rng, factory_bad_rate=0.2
    )
    assert ftl.n_logical_blocks < 16
    for block in range(ftl.n_logical_blocks):
        ftl.write(block, full_block_payload(ftl, block))  # must not touch bad blocks


def test_grown_bad_blocks_retired_on_erase():
    rng = np.random.default_rng(2)
    ftl = make_channel(blocks_per_plane=8, reserve=0.25, rng=rng, endurance=5)
    wrote = 0
    for cycle in range(200):
        block = cycle % ftl.n_logical_blocks
        try:
            if ftl.is_mapped(block):
                ftl.erase(block)
            ftl.write(block, None if False else full_block_payload(ftl, cycle))
            wrote += 1
        except OutOfSpaceError:
            break
    assert ftl.grown_bad_blocks() > 0
    assert wrote > 30  # the reserve kept the channel serviceable for a while


def test_channel_bounds_checked():
    array = FlashArray(1, 1, TINY, NandTiming())
    with pytest.raises(IndexError):
        ChannelBlockFTL(array, channel=1)
    with pytest.raises(ValueError):
        ChannelBlockFTL(array, channel=0, reserve_fraction=1.0)

"""Unit tests for the conventional page-mapped FTL."""

import pytest

from repro.ftl import OpKind, OutOfSpaceError, PageFTL
from repro.nand import FlashArray, FlashGeometry, NandTiming

TINY = FlashGeometry(
    page_size=512, pages_per_block=4, blocks_per_plane=8, planes_per_chip=2
)


def make_ftl(channels=2, op_ratio=0.25, **kwargs):
    array = FlashArray(
        channels=channels,
        chips_per_channel=1,
        geometry=TINY,
        timing=NandTiming(),
    )
    return PageFTL(array, op_ratio=op_ratio, **kwargs)


def test_capacity_reflects_overprovisioning():
    full = make_ftl(op_ratio=0.0)
    quarter = make_ftl(op_ratio=0.25)
    assert quarter.user_pages == int(full.user_pages * 0.75)
    assert quarter.user_bytes == quarter.user_pages * TINY.page_size


def test_write_then_read_roundtrip():
    ftl = make_ftl()
    ftl.write(0, b"page-zero")
    ftl.write(1, b"page-one")
    assert ftl.read(0)[0] == b"page-zero"
    assert ftl.read(1)[0] == b"page-one"


def test_overwrite_returns_new_data():
    ftl = make_ftl()
    ftl.write(5, "v1")
    ftl.write(5, "v2")
    assert ftl.read(5)[0] == "v2"


def test_unwritten_read_returns_none_and_no_ops():
    ftl = make_ftl()
    data, ops = ftl.read(7)
    assert data is None and ops == []


def test_write_reports_program_op_on_striped_channel():
    ftl = make_ftl(channels=2)
    ops0 = ftl.write(0, "a")
    ops1 = ftl.write(1, "b")
    assert ops0[-1].kind is OpKind.PROGRAM
    assert ops0[-1].channel == ftl.channel_of_lpn(0)
    assert ops1[-1].channel == ftl.channel_of_lpn(1)
    assert ops0[-1].channel != ops1[-1].channel  # 1-page striping


def test_stripe_pages_groups_consecutive_lpns():
    ftl = make_ftl(channels=2, stripe_pages=4)
    channels = {ftl.channel_of_lpn(lpn) for lpn in range(4)}
    assert len(channels) == 1
    assert ftl.channel_of_lpn(4) != ftl.channel_of_lpn(3)


def test_lpn_bounds_checked():
    ftl = make_ftl()
    with pytest.raises(IndexError):
        ftl.write(ftl.user_pages, "x")
    with pytest.raises(IndexError):
        ftl.read(-1)


def test_gc_reclaims_overwritten_space():
    """Overwriting the same small working set forever must not run out
    of space -- GC reclaims invalidated pages."""
    ftl = make_ftl(channels=1, op_ratio=0.25)
    for round_number in range(20):
        for lpn in range(8):
            ftl.write(lpn, (round_number, lpn))
    assert ftl.gc_runs > 0
    assert ftl.erases > 0
    for lpn in range(8):
        assert ftl.read(lpn)[0] == (19, lpn)


def test_write_amplification_one_for_sequential_single_pass():
    ftl = make_ftl(channels=1, op_ratio=0.25)
    for lpn in range(ftl.user_pages // 2):
        ftl.write(lpn, None)
    assert ftl.write_amplification == 1.0


def test_write_amplification_grows_with_random_overwrites():
    import numpy as np

    rng = np.random.default_rng(5)
    ftl = make_ftl(channels=1, op_ratio=0.25)
    # Fill completely, then randomly overwrite 4x the capacity.
    for lpn in range(ftl.user_pages):
        ftl.write(lpn, None)
    for _ in range(4 * ftl.user_pages):
        ftl.write(int(rng.integers(ftl.user_pages)), None)
    assert ftl.write_amplification > 1.2


def test_lower_op_ratio_means_higher_write_amplification():
    import numpy as np

    # A slightly larger toy device so that 10% OP is still several
    # blocks' worth of spare space.
    geometry = FlashGeometry(
        page_size=512, pages_per_block=8, blocks_per_plane=32,
        planes_per_chip=2,
    )

    def steady_wa(op_ratio):
        rng = np.random.default_rng(9)
        array = FlashArray(1, 1, geometry, NandTiming())
        ftl = PageFTL(array, op_ratio=op_ratio, store_data=False)
        for lpn in range(ftl.user_pages):
            ftl.write(lpn, None)
        for _ in range(6 * ftl.user_pages):
            ftl.write(int(rng.integers(ftl.user_pages)), None)
        return ftl.write_amplification

    assert steady_wa(0.1) > steady_wa(0.4)


def test_data_survives_gc():
    import numpy as np

    rng = np.random.default_rng(13)
    ftl = make_ftl(channels=1, op_ratio=0.25)
    shadow = {}
    for step in range(6 * ftl.user_pages):
        lpn = int(rng.integers(ftl.user_pages))
        ftl.write(lpn, ("v", step))
        shadow[lpn] = ("v", step)
    for lpn, expected in shadow.items():
        assert ftl.read(lpn)[0] == expected


def test_trim_frees_pages():
    ftl = make_ftl(channels=1)
    ftl.write(0, "x")
    ftl.trim(0)
    assert ftl.read(0)[0] is None


def test_out_of_space_without_gc_candidates():
    """A pathological config (0% OP, all pages valid) must fail loudly,
    not loop forever."""
    ftl = make_ftl(channels=1, op_ratio=0.0, gc_free_blocks=1)
    with pytest.raises(OutOfSpaceError):
        for lpn in range(ftl.user_pages):
            ftl.write(lpn, None)
        # Everything valid; overwriting forces GC with nothing to reclaim
        # beyond a single block's slack -- eventually space runs out.
        for _ in range(10):
            for lpn in range(ftl.user_pages):
                ftl.write(lpn, None)


def test_parity_channels_reduce_capacity_and_emit_parity_ops():
    plain = make_ftl(channels=4, op_ratio=0.0)
    protected = make_ftl(channels=4, op_ratio=0.0, parity_group_size=4)
    assert protected.user_pages == plain.user_pages * 3 // 4
    for lpn in range(6):
        protected.write(lpn, None)
    assert protected.parity_programs == 2  # one per 3 data programs
    assert protected.write_amplification > 1.0


def test_parity_ops_land_on_parity_channels():
    ftl = make_ftl(channels=4, op_ratio=0.0, parity_group_size=4)
    ops = []
    for lpn in range(3):
        ops.extend(ftl.write(lpn, None))
    parity_ops = [op for op in ops if op.internal and op.kind is OpKind.PROGRAM]
    assert len(parity_ops) == 1
    assert parity_ops[0].channel == 3  # last channel of the group


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        make_ftl(op_ratio=1.0)
    with pytest.raises(ValueError):
        make_ftl(stripe_pages=0)
    with pytest.raises(ValueError):
        make_ftl(parity_group_size=1)
    with pytest.raises(ValueError):
        make_ftl(gc_free_blocks=0)

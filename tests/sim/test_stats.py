"""Unit tests for measurement helpers."""

import pytest

from repro.sim import (
    Counter,
    LatencyRecorder,
    MS,
    S,
    ThroughputMeter,
    TimeWeighted,
    US,
)
from repro.sim.stats import percentile
from repro.sim.units import mb_per_s, transfer_ns


def test_counter_basic():
    counter = Counter("ops")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0
    with pytest.raises(ValueError):
        counter.add(-1)


def test_throughput_meter_simple_rate():
    meter = ThroughputMeter()
    # 100 MB moved over exactly one second.
    for i in range(1, 11):
        meter.record(i * S // 10, 10_000_000)
    assert meter.mb_per_s(0, S) == pytest.approx(100.0)
    assert meter.gb_per_s(0, S) == pytest.approx(0.1)
    assert meter.total_bytes == 100_000_000
    assert meter.n_samples == 10


def test_throughput_meter_window_excludes_warmup():
    meter = ThroughputMeter()
    meter.record(10 * MS, 1_000_000)  # warmup burst
    meter.record(1 * S + 500 * MS, 50_000_000)
    # Window covering only the second sample.
    assert meter.mb_per_s(1 * S, 2 * S) == pytest.approx(50.0)


def test_throughput_meter_empty_and_degenerate():
    meter = ThroughputMeter()
    assert meter.mb_per_s() == 0.0
    meter.record(5, 100)
    assert meter.mb_per_s() == 0.0  # single instant, zero-width window
    with pytest.raises(ValueError):
        meter.record(6, -1)


def test_latency_recorder_statistics():
    rec = LatencyRecorder()
    for value in [10, 20, 30, 40]:
        rec.record(value)
    assert rec.mean == pytest.approx(25.0)
    assert rec.minimum == 10
    assert rec.maximum == 40
    assert rec.quantile(0.5) == pytest.approx(25.0)
    assert len(rec) == 4
    assert rec.stdev == pytest.approx(12.909944, rel=1e-6)
    assert rec.coefficient_of_variation == pytest.approx(0.51639, rel=1e-4)


def test_latency_recorder_empty_and_validation():
    rec = LatencyRecorder()
    assert rec.mean == 0.0 and rec.stdev == 0.0
    assert rec.coefficient_of_variation == 0.0
    with pytest.raises(ValueError):
        rec.record(-5)


def test_percentile_interpolation():
    values = [1, 2, 3, 4]
    assert percentile(values, 0.0) == 1
    assert percentile(values, 1.0) == 4
    assert percentile(values, 0.5) == pytest.approx(2.5)
    assert percentile([7], 0.9) == 7
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_time_weighted_average():
    queue_depth = TimeWeighted(initial=0, start_ns=0)
    queue_depth.update(10, 4)  # depth 0 for 10ns
    queue_depth.update(30, 2)  # depth 4 for 20ns
    # depth 2 for 10ns -> (0*10 + 4*20 + 2*10) / 40 = 2.5
    assert queue_depth.average(40) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        queue_depth.update(5, 1)


def test_time_weighted_deferred_shifts_match_event_order():
    """shift/shift_at integrate the same area as eager event-time
    updates -- the fast path's event-free queue-depth accounting."""
    eager = TimeWeighted()
    lazy = TimeWeighted()
    # Two queued ops: requests at 10 and 20, grants at 30 and 50.
    for t, v in ((10, 1), (20, 2), (30, 1), (50, 0)):
        eager.update(t, v)
    lazy.shift(10, 1)
    lazy.shift_at(30, -1)
    lazy.shift(20, 1)  # before the pending grant; nothing settles yet
    lazy.shift_at(50, -1)
    assert lazy.horizon == 50 and eager.horizon == 50
    assert lazy.average(60) == eager.average(60)
    assert lazy.value == eager.value == 0


def test_time_weighted_deferred_settle_is_timestamp_ordered():
    lazy = TimeWeighted()
    lazy.shift(0, 3)
    lazy.shift_at(40, -1)
    lazy.shift_at(20, -1)  # queued out of order; settles by timestamp
    # Reads fold only changes at/before the read instant.
    assert lazy.average(30) == pytest.approx((3 * 20 + 2 * 10) / 30)
    # A later absolute update folds the remaining change first.
    lazy.update(50, 7)
    assert lazy.value == 7
    assert lazy.average(50) == pytest.approx(
        (3 * 20 + 2 * 20 + 1 * 10) / 50
    )


def test_transfer_ns_and_mb_per_s_roundtrip():
    nbytes = 8 * 1024 * 1024
    elapsed = transfer_ns(nbytes, 100.0)  # 8 MiB at 100 MB/s
    assert mb_per_s(nbytes, elapsed) == pytest.approx(100.0, rel=1e-6)
    assert transfer_ns(0, 100.0) == 0
    assert transfer_ns(1, 1e9) >= 1  # never rounds to zero


def test_time_units_are_consistent():
    assert US == 1_000 and MS == 1_000_000 and S == 1_000_000_000


def test_throughput_meter_default_window_includes_earliest_sample():
    """Regression: mb_per_s() used the half-open (t0, t1] window even
    when t0 defaulted to the earliest sample, silently dropping it."""
    meter = ThroughputMeter()
    meter.record(1 * S, 10_000_000)
    meter.record(2 * S, 10_000_000)
    # 20 MB over the 1 s between first and last sample: both count.
    assert meter.mb_per_s() == pytest.approx(20.0)


def test_throughput_meter_explicit_window_stays_half_open():
    """Explicit windows keep the (t0, t1] convention so adjacent
    windows never double-count a sample on the boundary."""
    meter = ThroughputMeter()
    meter.record(1 * S, 10_000_000)
    meter.record(2 * S, 30_000_000)
    assert meter.bytes_in(1 * S, 2 * S) == 30_000_000
    assert meter.bytes_in(0, 1 * S) == 10_000_000
    assert meter.bytes_in(1 * S, 2 * S, include_start=True) == 40_000_000
    assert meter.mb_per_s(1 * S, 2 * S) == pytest.approx(30.0)

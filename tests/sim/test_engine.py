"""Unit tests for the discrete-event engine and event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    MS,
    Simulator,
    Timeout,
    US,
)
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5 * US)
    sim.run()
    assert sim.now == 5 * US


def test_run_until_time_stops_exactly():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(10)
        fired.append(sim.now)
        yield sim.timeout(10)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=15)
    assert fired == [10]
    assert sim.now == 15
    sim.run(until=25)
    assert fired == [10, 20]


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=100)
    with pytest.raises(ValueError):
        sim.run(until=50)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_events_at_same_time_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def make(name):
        def proc():
            yield sim.timeout(10)
            order.append(name)

        return proc

    for name in "abc":
        sim.process(make(name)())
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = Event(sim)
    got = []

    def proc():
        got.append((yield ev))

    sim.process(proc())
    ev.succeed("payload", delay=3)
    sim.run()
    assert got == ["payload"]
    assert sim.now == 3


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("nope"))


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_failed_event_raises_in_waiting_process():
    sim = Simulator()
    ev = Event(sim)
    caught = []

    def proc():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(proc())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_stops_simulation():
    sim = Simulator()
    ev = Event(sim)
    ev.fail(ValueError("nobody is listening"))
    with pytest.raises(ValueError, match="nobody is listening"):
        sim.run()


def test_yield_on_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(42)
    sim.run()
    got = []

    def proc():
        got.append((yield ev))

    sim.process(proc())
    sim.run()
    assert got == [42]


def test_process_return_value_propagates():
    sim = Simulator()

    def inner():
        yield sim.timeout(7)
        return "inner-result"

    def outer(results):
        value = yield sim.process(inner())
        results.append(value)

    results = []
    sim.process(outer(results))
    sim.run()
    assert results == ["inner-result"]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def inner():
        yield sim.timeout(1)
        raise KeyError("inner-bug")

    def outer(caught):
        try:
            yield sim.process(inner())
        except KeyError as exc:
            caught.append(exc.args[0])

    caught = []
    sim.process(outer(caught))
    sim.run()
    assert caught == ["inner-bug"]


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    with pytest.raises(RuntimeError, match="may only yield Events"):
        sim.run(until=proc)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(4)
        return "done"

    assert sim.run(until=sim.process(proc())) == "done"
    assert sim.now == 4


def test_run_until_never_triggered_event_detects_deadlock():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(until=ev)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_interrupt_wakes_process_with_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1 * MS)
            log.append("slept-full")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, sim.now))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10 * US)
        proc.interrupt("urgent")

    sim.process(interrupter())
    sim.run()
    assert log == [("interrupted", "urgent", 10 * US)]


def test_interrupt_completed_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_all_of_collects_values_in_order():
    sim = Simulator()
    timeouts = [sim.timeout(30, "c"), sim.timeout(10, "a"), sim.timeout(20, "b")]
    result = sim.run(until=AllOf(sim, timeouts))
    assert result == ["c", "a", "b"]
    assert sim.now == 30


def test_any_of_returns_first_value():
    sim = Simulator()
    events = [sim.timeout(30, "slow"), sim.timeout(10, "fast")]
    result = sim.run(until=AnyOf(sim, events))
    assert result == "fast"
    assert sim.now == 10


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    result = sim.run(until=AllOf(sim, []))
    assert result == []


def test_all_of_fails_if_any_event_fails():
    sim = Simulator()
    good = sim.timeout(5)
    bad = Event(sim)
    bad.fail(RuntimeError("broken"), delay=1)
    cond = AllOf(sim, [good, bad])
    with pytest.raises(RuntimeError, match="broken"):
        sim.run(until=cond)


def test_condition_rejects_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        AllOf(sim_a, [Timeout(sim_b, 1)])


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(25)
    sim.timeout(10)
    assert sim.peek() == 10


def test_many_interleaved_processes_deterministic():
    def run_once():
        sim = Simulator()
        trace = []

        def worker(wid, period):
            for _ in range(5):
                yield sim.timeout(period)
                trace.append((sim.now, wid))

        for wid, period in enumerate([7, 11, 13]):
            sim.process(worker(wid, period))
        sim.run()
        return trace

    assert run_once() == run_once()

"""Unit tests for the fast-path scheduling primitives."""

import pytest

from repro.sim import Simulator
from repro.sim.timeline import BusyUnion, ResourceTimeline


class TestResourceTimeline:
    def test_immediate_grant(self):
        tl = ResourceTimeline()
        grant, end = tl.reserve(100, 50)
        assert (grant, end) == (100, 150)
        assert tl.free_at == 150

    def test_queued_grant_starts_at_free(self):
        tl = ResourceTimeline()
        tl.reserve(100, 50)
        grant, end = tl.reserve(120, 30)
        assert (grant, end) == (150, 180)

    def test_idle_gap_grants_at_request(self):
        tl = ResourceTimeline()
        tl.reserve(0, 10)
        grant, end = tl.reserve(500, 10)
        assert (grant, end) == (500, 510)

    def test_reserve_and_call_fires_at_end(self):
        sim = Simulator()
        tl = ResourceTimeline()
        fired = []
        tl.reserve_and_call(sim, 50, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [50]

    def test_chained_reservations_fire_in_order(self):
        sim = Simulator()
        tl = ResourceTimeline()
        fired = []
        # Three same-instant requests on one capacity-1 resource: FIFO
        # service, back to back, each end callback at its own instant.
        for index in range(3):
            tl.reserve_and_call(sim, 10, lambda i=index: fired.append((i, sim.now)))
        sim.run()
        assert fired == [(0, 10), (1, 20), (2, 30)]

    def test_callback_may_reserve_further(self):
        sim = Simulator()
        tl = ResourceTimeline()
        fired = []

        def second():
            fired.append(("second", sim.now))

        def first():
            fired.append(("first", sim.now))
            tl.reserve_and_call(sim, 5, second)

        tl.reserve_and_call(sim, 10, first)
        sim.run()
        assert fired == [("first", 10), ("second", 15)]

    def test_queued_after_plain_reserve_uses_relay(self):
        sim = Simulator()
        tl = ResourceTimeline()
        fired = []
        tl.reserve(0, 100)  # no end event to chain from
        grant, end = tl.reserve_and_call(sim, 10, lambda: fired.append(sim.now))
        assert (grant, end) == (100, 110)
        sim.run()
        assert fired == [110]


class TestBusyUnion:
    def test_disjoint_intervals_sum(self):
        union = BusyUnion()
        union.add(0, 10)
        union.add(20, 30)
        assert union.closed_through(50) == 20

    def test_touching_intervals_stay_separate_but_sum(self):
        union = BusyUnion()
        union.add(0, 10)
        union.add(10, 20)
        # Touching (not overlapping) intervals close independently.
        assert union.closed_through(10) == 10
        assert union.closed_through(20) == 20

    def test_overlap_merges(self):
        union = BusyUnion()
        union.add(0, 10)
        union.add(5, 15)
        # Merged interval [0, 15) is still open at t=10.
        assert union.closed_through(10) == 0
        assert union.closed_through(15) == 15

    def test_out_of_order_adds_fold_correctly(self):
        union = BusyUnion()
        union.add(100, 200)
        union.add(0, 50)
        union.add(150, 250)  # overlaps the first
        assert union.closed_through(99) == 50
        assert union.closed_through(250) == 200

    def test_busy_through_counts_open_interval(self):
        union = BusyUnion()
        union.add(0, 100)
        assert union.busy_through(40) == 40
        assert union.busy_through(100) == 100

    def test_contained_interval_absorbed(self):
        union = BusyUnion()
        union.add(0, 100)
        union.add(20, 30)
        assert union.closed_through(100) == 100

    def test_zero_length_interval_ignored(self):
        union = BusyUnion()
        union.add(5, 5)
        assert union.closed_through(10) == 0


class TestPooledEvents:
    def test_hold_recycles_timeouts(self):
        sim = Simulator()
        log = []

        def proc():
            for _ in range(5):
                yield sim.hold(10)
            log.append(sim.now)

        sim.run(until=sim.process(proc()))
        assert log == [50]
        assert len(sim._timeout_pool) >= 1

    def test_schedule_call_order_is_fifo_within_instant(self):
        sim = Simulator()
        fired = []
        for index in range(4):
            sim._schedule_call(lambda i=index: fired.append(i), 10)
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_phase_pool_recycles(self):
        sim = Simulator()
        tl = ResourceTimeline()
        for _ in range(50):
            tl.reserve_and_call(sim, 7, lambda: None)
        sim.run()
        assert sim._phase_pool
        assert len(sim._phase_pool) <= 1024

"""Unit tests for Resource / PriorityResource / Store / Container."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Simulator, Store


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(wid):
        with res.request() as req:
            yield req
            start = sim.now
            yield sim.timeout(10)
            spans.append((wid, start, sim.now))

    for wid in range(3):
        sim.process(worker(wid))
    sim.run()
    assert spans == [(0, 0, 10), (1, 10, 20), (2, 20, 30)]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(wid):
        with res.request() as req:
            yield req
            yield sim.timeout(10)
            done.append((wid, sim.now))

    for wid in range(4):
        sim.process(worker(wid))
    sim.run()
    assert [t for _, t in done] == [10, 10, 20, 20]


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_release_of_waiting_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, 1)
    holder = res.request()
    waiter = res.request()
    sim.run()
    assert holder.processed and not waiter.triggered
    res.release(waiter)  # cancel while queued
    res.release(holder)
    sim.run()
    assert res.count == 0


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, 1)
    first = res.request()
    res.request()
    res.request()
    sim.run()
    assert res.count == 1
    assert res.queue_length == 2
    res.release(first)
    sim.run()
    assert res.count == 1
    assert res.queue_length == 1


def test_acquire_helper_holds_for_duration():
    sim = Simulator()
    res = Resource(sim, 1)
    trace = []

    def worker(wid):
        yield from res.acquire(5)
        trace.append((wid, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert trace == [("a", 5), ("b", 10)]


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, 1)
    order = []

    def worker(name, priority, arrive):
        yield sim.timeout(arrive)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield sim.timeout(100)

    # "hold" grabs the resource first; others queue and are served by priority.
    sim.process(worker("hold", 0, 0))
    sim.process(worker("low", 5, 1))
    sim.process(worker("high", 1, 2))
    sim.process(worker("mid", 3, 3))
    sim.run()
    assert order == ["hold", "high", "mid", "low"]


def test_priority_resource_fifo_within_same_priority():
    sim = Simulator()
    res = PriorityResource(sim, 1)
    order = []

    def worker(name, arrive):
        yield sim.timeout(arrive)
        with res.request(priority=2) as req:
            yield req
            order.append(name)
            yield sim.timeout(10)

    for idx, name in enumerate(["first", "second", "third"]):
        sim.process(worker(name, idx))
    sim.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_cancel_queued_request():
    sim = Simulator()
    res = PriorityResource(sim, 1)
    hold = res.request(priority=0)
    queued = res.request(priority=1)
    sim.run()
    res.release(queued)
    res.release(hold)
    sim.run()
    assert res.count == 0 and res.queue_length == 0


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in "xyz":
            yield store.put(item)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        item = yield store.get()
        times.append((item, sim.now))

    def producer():
        yield sim.timeout(50)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [("late", 50)]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(30)
        item = yield store.get()
        log.append((f"got-{item}", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0) in log
    assert ("put-b", 30) in log


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_container_levels_and_blocking():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)
    log = []

    def filler():
        yield tank.put(60)
        log.append(("filled-60", sim.now, tank.level))
        yield sim.timeout(10)
        yield tank.put(60)  # would overflow: waits for the drain
        log.append(("filled-120", sim.now, tank.level))

    def drainer():
        yield sim.timeout(25)
        yield tank.get(40)
        log.append(("drained-40", sim.now))

    sim.process(filler())
    sim.process(drainer())
    sim.run()
    assert log[0] == ("filled-60", 0, 60)
    assert log[1] == ("drained-40", 25)
    assert log[2] == ("filled-120", 25, 80)


def test_container_get_blocks_until_available():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=0)
    done = []

    def getter():
        yield tank.get(5)
        done.append(sim.now)

    def putter():
        yield sim.timeout(7)
        yield tank.put(5)

    sim.process(getter())
    sim.process(putter())
    sim.run()
    assert done == [7]


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=10, init=11)
    tank = Container(sim, capacity=10)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(11)

"""Unit and property tests for FlashArray addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand import FlashArray, FlashGeometry, NandTiming, PhysicalAddress

GEO = FlashGeometry(
    page_size=512, pages_per_block=4, blocks_per_plane=8, planes_per_chip=2
)


def make_array(channels=3, chips=2):
    return FlashArray(channels, chips, GEO, NandTiming())


def test_shape_accounting():
    array = make_array()
    assert array.planes_per_channel == 4
    assert array.n_planes == 12
    assert array.blocks_per_channel == 32
    assert array.n_blocks == 96
    assert array.n_pages == 96 * 4
    assert array.raw_bytes == 96 * 4 * 512


def test_ppn_roundtrip_exhaustive_small():
    array = make_array(channels=2, chips=1)
    seen = set()
    for channel in range(2):
        for chip in range(1):
            for plane in range(GEO.planes_per_chip):
                for block in range(GEO.blocks_per_plane):
                    for page in range(GEO.pages_per_block):
                        addr = PhysicalAddress(channel, chip, plane, block, page)
                        ppn = array.ppn(addr)
                        assert array.unpack_ppn(ppn) == addr
                        seen.add(ppn)
    assert seen == set(range(array.n_pages))  # bijective, dense


@given(
    channel=st.integers(0, 2),
    chip=st.integers(0, 1),
    plane=st.integers(0, 1),
    block=st.integers(0, 7),
    page=st.integers(0, 3),
)
@settings(max_examples=100, deadline=None)
def test_ppn_roundtrip_property(channel, chip, plane, block, page):
    array = make_array()
    addr = PhysicalAddress(channel, chip, plane, block, page)
    assert array.unpack_ppn(array.ppn(addr)) == addr
    flat = array.flat_block(addr)
    assert array.unpack_block(flat) == addr.with_page(0)


def test_operations_route_to_right_chip():
    array = make_array()
    addr = PhysicalAddress(2, 1, 0, 3, 0)
    array.program_page(addr, "payload")
    assert array.read_page(addr) == "payload"
    assert array.chip_at(2, 1).programs == 1
    assert array.chip_at(0, 0).programs == 0
    array.erase_block(addr)
    assert array.erase_count(addr) == 1
    assert array.total_reads == 1
    assert array.total_programs == 1
    assert array.total_erases == 1


def test_with_page_helper():
    addr = PhysicalAddress(1, 0, 1, 5)
    assert addr.page == 0
    moved = addr.with_page(3)
    assert moved.page == 3 and moved.block == 5 and moved.channel == 1


def test_validation():
    with pytest.raises(ValueError):
        FlashArray(0, 1, GEO, NandTiming())
    with pytest.raises(ValueError):
        FlashArray(1, 0, GEO, NandTiming())

"""Property-based tests of the NAND block state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand import Block, BlockState, ProgramError

PAGES = 8


@st.composite
def operation_sequences(draw):
    """Random sequences of program/erase/read operations."""
    n_ops = draw(st.integers(min_value=0, max_value=60))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["program", "erase", "read"]))
        page = draw(st.integers(min_value=0, max_value=PAGES - 1))
        ops.append((kind, page))
    return ops


@given(operation_sequences())
@settings(max_examples=200, deadline=None)
def test_block_invariants_hold_under_any_op_sequence(ops):
    """Whatever sequence of operations runs, the block's invariants hold:

    * reads below the write pointer return the last value programmed
      since the most recent erase; reads at/above it return None;
    * programs succeed iff they target exactly the write pointer;
    * the write pointer never exceeds the page count and never moves
      backwards except via erase.
    """
    block = Block(index=0, pages_per_block=PAGES)
    shadow = {}  # page -> payload, since last erase
    erase_epoch = 0

    for kind, page in ops:
        if kind == "program":
            expected_ok = page == block.write_pointer and page < PAGES
            try:
                block.program(page, (erase_epoch, page))
                assert expected_ok
                shadow[page] = (erase_epoch, page)
            except ProgramError:
                assert not expected_ok
        elif kind == "erase":
            block.erase()
            shadow.clear()
            erase_epoch += 1
        else:
            value = block.read(page)
            assert value == shadow.get(page)

        assert 0 <= block.write_pointer <= PAGES
        assert block.write_pointer == len(shadow) or set(shadow) == set(
            range(block.write_pointer)
        )
        expected_state = (
            BlockState.FREE
            if block.write_pointer == 0
            else BlockState.FULL
            if block.write_pointer == PAGES
            else BlockState.OPEN
        )
        assert block.state is expected_state


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_erase_count_equals_number_of_erases(n_erases):
    block = Block(index=0, pages_per_block=4)
    for _ in range(n_erases):
        block.program(0, "x")
        block.erase()
    assert block.erase_count == n_erases

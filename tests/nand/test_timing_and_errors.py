"""Unit tests for NAND timing math and the bit-error model."""

import math

import pytest

from repro.nand import (
    MICRON_25NM_MLC,
    NandTiming,
    RawBitErrorModel,
    SDF_CHIP_GEOMETRY,
    page_failure_probability,
)
from repro.nand.errors import codeword_failure_probability


def test_timing_validation():
    with pytest.raises(ValueError):
        NandTiming(t_read_ns=0)
    with pytest.raises(ValueError):
        NandTiming(bus_mb_per_s=0)
    with pytest.raises(ValueError):
        NandTiming(bus_overhead_ns=-1)


def test_bus_transfer_includes_overhead():
    timing = NandTiming(bus_mb_per_s=40.0, bus_overhead_ns=5_000)
    assert timing.bus_transfer_ns(0) == 5_000
    # 8 KiB at 40 MB/s = 204.8 us + 5 us overhead.
    assert timing.bus_transfer_ns(8192) == pytest.approx(209_800, abs=5)


def test_plane_bandwidths_match_datasheet_math():
    timing = MICRON_25NM_MLC
    page = SDF_CHIP_GEOMETRY.page_size
    # 8 KiB / 75 us ~ 109 MB/s cell-read bandwidth.
    assert timing.plane_read_mb_per_s(page) == pytest.approx(109.2, rel=0.01)
    # 8 KiB / 1.4 ms ~ 5.85 MB/s program bandwidth.
    assert timing.plane_program_mb_per_s(page) == pytest.approx(5.85, rel=0.01)


def test_sdf_raw_write_bandwidth_reproduces_paper():
    """Paper S3.2: SDF aggregate raw write bandwidth ~ 1.01 GB/s.

    44 channels x 4 planes x plane program bandwidth.
    """
    per_plane = MICRON_25NM_MLC.plane_program_mb_per_s(
        SDF_CHIP_GEOMETRY.page_size
    )
    aggregate = 44 * 4 * per_plane
    assert aggregate == pytest.approx(1010, rel=0.05)


def test_sdf_raw_read_bandwidth_reproduces_paper():
    """Paper S3.2: SDF aggregate raw read bandwidth ~ 1.67 GB/s.

    Reads are channel-bus-limited: 44 channels x effective bus rate.
    """
    page = SDF_CHIP_GEOMETRY.page_size
    per_channel = page / (MICRON_25NM_MLC.bus_transfer_ns(page) / 1e9) / 1e6
    aggregate = 44 * per_channel
    assert aggregate == pytest.approx(1670, rel=0.05)


def test_timing_scaled_override():
    fast = MICRON_25NM_MLC.scaled(t_prog_ns=700_000)
    assert fast.t_prog_ns == 700_000
    assert fast.t_read_ns == MICRON_25NM_MLC.t_read_ns


def test_rber_grows_with_wear():
    model = RawBitErrorModel()
    fresh = model.rber(0)
    mid = model.rber(model.endurance // 2)
    worn = model.rber(model.endurance)
    assert fresh < mid < worn
    assert worn == pytest.approx(fresh * model.growth, rel=1e-9)


def test_rber_saturates_at_half():
    model = RawBitErrorModel(base_rber=0.01, growth=1e9, endurance=10)
    assert model.rber(1000) == 0.5


def test_rber_validation():
    with pytest.raises(ValueError):
        RawBitErrorModel(base_rber=0)
    with pytest.raises(ValueError):
        RawBitErrorModel(growth=0.5)
    with pytest.raises(ValueError):
        RawBitErrorModel(endurance=0)
    with pytest.raises(ValueError):
        RawBitErrorModel().rber(-1)


def test_codeword_failure_edge_cases():
    assert codeword_failure_probability(4096, 0.0, 40) == 0.0
    assert codeword_failure_probability(4096, 1.0, 40) == 1.0
    # t >= n means nothing can fail.
    assert codeword_failure_probability(8, 0.9, 8) == 0.0
    with pytest.raises(ValueError):
        codeword_failure_probability(0, 0.1, 1)
    with pytest.raises(ValueError):
        codeword_failure_probability(10, 0.1, -1)


def test_codeword_failure_matches_direct_binomial():
    # Small case checked against an explicit binomial computation.
    n, p, t = 20, 0.1, 2
    direct = sum(
        math.comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(t + 1, n + 1)
    )
    assert codeword_failure_probability(n, p, t) == pytest.approx(direct)


def test_page_failure_increases_with_rber_and_decreases_with_t():
    weak = page_failure_probability(8192, 1e-4, t=8)
    strong = page_failure_probability(8192, 1e-4, t=40)
    worse_media = page_failure_probability(8192, 1e-3, t=8)
    assert strong < weak < worse_media


def test_page_failure_negligible_for_fresh_flash_with_strong_bch():
    """Sanity-check the paper's reliability experience: with t=40 BCH per
    512 B sector and fresh-flash RBER, uncorrectable pages are (much)
    rarer than 1e-15 -- consistent with one event in 6 months x 2000+
    devices."""
    model = RawBitErrorModel()
    p = page_failure_probability(8192, model.rber(0), t=40)
    assert p < 1e-15


def test_page_failure_validation():
    with pytest.raises(ValueError):
        page_failure_probability(0, 1e-4, 8)
    with pytest.raises(ValueError):
        page_failure_probability(8192, 1e-4, 8, codeword_bytes=0)

"""Unit tests for the NAND chip/plane/block/page state machines."""

import numpy as np
import pytest

from repro.nand import (
    Block,
    BlockState,
    FlashChip,
    FlashGeometry,
    PageState,
    ProgramError,
    WearOutError,
)

SMALL = FlashGeometry(
    page_size=512, pages_per_block=4, blocks_per_plane=8, planes_per_chip=2
)


@pytest.fixture
def chip():
    return FlashChip(geometry=SMALL)


def test_geometry_derived_sizes():
    geo = FlashGeometry(
        page_size=8192, pages_per_block=256, blocks_per_plane=2048,
        planes_per_chip=2,
    )
    assert geo.block_size == 2 * 1024 * 1024
    assert geo.plane_size == 4 * 1024 * 1024 * 1024
    assert geo.chip_size == 8 * 1024 * 1024 * 1024
    assert geo.blocks_per_chip == 4096
    assert geo.pages_per_chip == 4096 * 256


def test_geometry_validation():
    with pytest.raises(ValueError):
        FlashGeometry(page_size=0)
    with pytest.raises(ValueError):
        FlashGeometry(pages_per_block=-1)


def test_geometry_scaled_shrinks_blocks_only():
    geo = FlashGeometry()
    small = geo.scaled(0.01)
    assert small.page_size == geo.page_size
    assert small.pages_per_block == geo.pages_per_block
    assert small.blocks_per_plane == max(1, int(geo.blocks_per_plane * 0.01))


def test_program_then_read_roundtrip(chip):
    chip.program_page(0, 0, 0, b"hello")
    assert chip.read_page(0, 0, 0) == b"hello"


def test_erased_page_reads_none(chip):
    assert chip.read_page(0, 0, 0) is None
    assert chip.block(0, 0).page(0).state is PageState.ERASED


def test_program_must_be_sequential(chip):
    chip.program_page(0, 0, 0, "a")
    with pytest.raises(ProgramError, match="sequential"):
        chip.program_page(0, 0, 2, "c")


def test_reprogram_without_erase_rejected(chip):
    chip.program_page(0, 0, 0, "a")
    with pytest.raises(ProgramError):
        chip.program_page(0, 0, 0, "a2")


def test_erase_resets_block(chip):
    for page in range(SMALL.pages_per_block):
        chip.program_page(0, 1, page, f"p{page}")
    assert chip.block(0, 1).state is BlockState.FULL
    chip.erase_block(0, 1)
    blk = chip.block(0, 1)
    assert blk.state is BlockState.FREE
    assert blk.erase_count == 1
    assert chip.read_page(0, 1, 0) is None
    chip.program_page(0, 1, 0, "again")
    assert chip.read_page(0, 1, 0) == "again"


def test_block_state_transitions(chip):
    blk = chip.block(1, 3)
    assert blk.state is BlockState.FREE
    chip.program_page(1, 3, 0, "x")
    assert blk.state is BlockState.OPEN
    for page in range(1, SMALL.pages_per_block):
        chip.program_page(1, 3, page, "x")
    assert blk.state is BlockState.FULL


def test_write_pointer_tracks_frontier(chip):
    blk = chip.block(0, 0)
    assert blk.write_pointer == 0
    chip.program_page(0, 0, 0, "x")
    chip.program_page(0, 0, 1, "y")
    assert blk.write_pointer == 2


def test_out_of_range_addresses_rejected(chip):
    with pytest.raises(IndexError):
        chip.read_page(0, SMALL.blocks_per_plane, 0)
    with pytest.raises(IndexError):
        chip.read_page(0, 0, SMALL.pages_per_block)
    with pytest.raises(IndexError):
        chip.plane(5)


def test_operation_counters(chip):
    chip.program_page(0, 0, 0, "a")
    chip.read_page(0, 0, 0)
    chip.read_page(0, 0, 1)
    chip.erase_block(0, 0)
    assert chip.programs == 1
    assert chip.reads == 2
    assert chip.erases == 1


def test_planes_are_independent(chip):
    chip.program_page(0, 0, 0, "plane0")
    chip.program_page(1, 0, 0, "plane1")
    assert chip.read_page(0, 0, 0) == "plane0"
    assert chip.read_page(1, 0, 0) == "plane1"


def test_factory_bad_blocks_marked(chip):
    rng = np.random.default_rng(7)
    chip = FlashChip(geometry=SMALL, rng=rng, factory_bad_rate=0.5)
    n_bad = sum(
        chip.is_bad(plane, block)
        for plane in range(SMALL.planes_per_chip)
        for block in range(SMALL.blocks_per_plane)
    )
    assert 0 < n_bad < SMALL.blocks_per_chip


def test_bad_block_operations_rejected():
    chip = FlashChip(geometry=SMALL)
    chip.block(0, 0).mark_bad()
    with pytest.raises(WearOutError):
        chip.program_page(0, 0, 0, "x")
    with pytest.raises(WearOutError):
        chip.read_page(0, 0, 0)
    with pytest.raises(WearOutError):
        chip.erase_block(0, 0)
    assert chip.block(0, 0).state is BlockState.BAD


def test_endurance_wears_out_blocks():
    rng = np.random.default_rng(3)
    chip = FlashChip(geometry=SMALL, rng=rng, endurance=10)
    worn = False
    for _ in range(40):
        try:
            chip.erase_block(0, 0)
        except WearOutError:  # pragma: no cover - not expected here
            break
        if chip.is_bad(0, 0):
            worn = True
            break
    assert worn, "block should wear out well before 4x endurance"
    assert chip.block(0, 0).erase_count > 10


def test_infinite_endurance_by_default(chip):
    for _ in range(1000):
        chip.erase_block(0, 0)
    assert not chip.is_bad(0, 0)
    assert chip.block(0, 0).erase_count == 1000


def test_stochastic_config_requires_rng():
    with pytest.raises(ValueError, match="rng"):
        FlashChip(geometry=SMALL, factory_bad_rate=0.1)


def test_erase_count_accounting(chip):
    chip.erase_block(0, 0)
    chip.erase_block(0, 0)
    chip.erase_block(1, 2)
    assert chip.max_erase_count() == 2
    assert chip.total_erase_count() == 3


def test_lazy_block_materialization(chip):
    assert chip.plane(0).touched_blocks == 0
    chip.read_page(0, 3, 0)
    assert chip.plane(0).touched_blocks == 1


def test_validation_of_chip_parameters():
    with pytest.raises(ValueError):
        FlashChip(geometry=SMALL, factory_bad_rate=1.5)
    with pytest.raises(ValueError):
        FlashChip(geometry=SMALL, endurance=0)


def test_block_standalone_api():
    blk = Block(index=5, pages_per_block=2)
    blk.program(0, "a")
    blk.program(1, "b")
    assert blk.state is BlockState.FULL
    assert blk.read(1) == "b"
    blk.erase()
    assert blk.read(1) is None

"""Scenario-level no-drift contract for the policy plane.

Every plane in the repo honours the same rule: attaching an *empty*
plan is byte-identical to attaching nothing.  This extends the contract
to the scenario engine -- a fleet-day run with a no-op
:class:`PolicyPlan` threaded all the way through ``run_scenario`` must
produce the identical :meth:`ScenarioResult.to_json`, including with
the QoS and fault planes active alongside.
"""

import json

from repro.policy import PolicyPlan
from repro.qos import AdmissionConfig, QosPlan
from repro.sim.units import MS
from repro.workloads import (
    FaultBurst,
    RateSchedule,
    Scenario,
    SizeDistribution,
    SloSpec,
    TenantSpec,
    YCSB_B,
    ZipfianKeyModel,
    run_scenario,
)

SPAN = 4_000


def tiny_scenario(**overrides):
    tenant = TenantSpec(
        name="web",
        mix=YCSB_B,
        keys=ZipfianKeyModel(0, SPAN),
        sizes=SizeDistribution(fixed=8 * 1024),
        arrivals=RateSchedule(base_rps=150.0),
        slo=SloSpec(deadline_ns=50 * MS),
    )
    settings = dict(
        name="tiny-policy",
        tenants=(tenant,),
        duration_ns=60 * MS,
        n_nodes=2,
        n_slices=4,
        key_span=SPAN,
        seed=5,
        preload_keys_per_slice=16,
    )
    settings.update(overrides)
    return Scenario(**settings)


def test_empty_policy_plan_is_byte_identical_to_none():
    scenario = tiny_scenario()
    without = run_scenario(scenario)
    with_empty = run_scenario(scenario, policy=PolicyPlan())
    assert without.to_json() == with_empty.to_json()
    assert with_empty.policy_fires == 0


def test_empty_policy_plan_no_drift_with_all_planes_active():
    scenario = tiny_scenario(
        faults=(FaultBurst(node=1, at_ns=20 * MS, duration_ns=10 * MS),),
        rebalance_every_ns=20 * MS,
    )

    def qos():
        return QosPlan(admission=AdmissionConfig(max_reads=32, max_writes=16))

    without = run_scenario(scenario, qos=qos())
    with_empty = run_scenario(scenario, qos=qos(), policy=PolicyPlan())
    assert without.to_json() == with_empty.to_json()
    # The full registry snapshot agrees too, not just the summary.
    assert without.snapshot == with_empty.snapshot
    assert without.sim_end_ns == with_empty.sim_end_ns


def test_policy_fires_surface_in_the_result_json():
    payload = json.loads(run_scenario(tiny_scenario()).to_json())
    assert payload["policy_fires"] == 0

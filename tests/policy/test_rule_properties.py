"""Hypothesis property suite for the hysteresis/cooldown automaton.

The no-flap contract, verified against *arbitrary* metric streams:

* no two fires of one rule ever land inside its cooldown window;
* a signal oscillating strictly inside the hysteresis band never fires;
* after a fire, a second fire requires the signal to first re-arm the
  rule by crossing all the way through the band;
* no fire happens before the condition has been raised continuously for
  the dwell (``for_ns``);
* ``direction="below"`` is an exact mirror of ``direction="above"``.

The automaton is a pure state machine (no simulator, no registry), so
these properties cover every stream the engine could ever feed it.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.policy import (
    FIRED,
    OUTCOMES,
    PENDING,
    SUPPRESSED_BUSY,
    Hysteresis,
    RuleState,
)


@st.composite
def bands(draw, direction=None):
    lower = draw(st.integers(-50, 50))
    width = draw(st.integers(0, 40))
    return Hysteresis(
        upper=float(lower + width),
        lower=float(lower),
        for_ns=draw(st.integers(0, 30)),
        direction=direction
        or draw(st.sampled_from(["above", "below"])),
    )


#: (dt >= 1, value) observation streams; values span the band range.
streams = st.lists(
    st.tuples(st.integers(1, 25), st.integers(-120, 120)),
    min_size=1,
    max_size=60,
)


def walk(state, stream, blocked=lambda i: False):
    """Drive one automaton through a stream; returns (outcomes, fire_times)."""
    now = 0
    outcomes = []
    fire_times = []
    for index, (dt, value) in enumerate(stream):
        now += dt
        outcome = state.observe(now, float(value), blocked=blocked(index))
        assert outcome in OUTCOMES
        outcomes.append(outcome)
        if outcome == FIRED:
            fire_times.append(now)
    return outcomes, fire_times


@given(band=bands(), cooldown=st.integers(0, 60), stream=streams)
@settings(max_examples=200, deadline=None)
def test_no_two_fires_inside_a_cooldown_window(band, cooldown, stream):
    state = RuleState(band, cooldown_ns=cooldown)
    _, fire_times = walk(state, stream)
    for earlier, later in zip(fire_times, fire_times[1:]):
        assert later - earlier >= cooldown
    assert state.fires == len(fire_times)


@given(band=bands(), cooldown=st.integers(0, 60), stream=streams)
@settings(max_examples=200, deadline=None)
def test_oscillation_inside_the_band_never_fires(band, cooldown, stream):
    if band.upper == band.lower:
        return  # empty open band: nothing can be strictly inside it
    state = RuleState(band, cooldown_ns=cooldown)
    # Project every value strictly into (lower, upper).
    inside = [
        (dt, band.lower + (band.upper - band.lower) * (value % 97 + 1) / 99.0)
        for dt, value in stream
    ]
    now = 0
    for dt, value in inside:
        now += dt
        assert band.lower < value < band.upper
        assert state.observe(now, value) != FIRED
    assert state.fires == 0


@given(band=bands(), stream=streams)
@settings(max_examples=200, deadline=None)
def test_refire_requires_rearming_through_the_band(band, stream):
    state = RuleState(band, cooldown_ns=0)
    now = 0
    rearmed_since_fire = True  # armed at birth
    for dt, value in stream:
        now += dt
        outcome = state.observe(now, float(value))
        if outcome == FIRED:
            assert rearmed_since_fire, (
                "fired without the signal re-arming through the band first"
            )
            rearmed_since_fire = False
        if band.rearms(float(value)):
            rearmed_since_fire = True


@given(band=bands(), stream=streams)
@settings(max_examples=200, deadline=None)
def test_no_fire_before_the_dwell_elapses(band, stream):
    state = RuleState(band, cooldown_ns=0)
    now = 0
    raised_since = None
    for dt, value in stream:
        now += dt
        outcome = state.observe(now, float(value))
        if band.raised(float(value)):
            if raised_since is None:
                raised_since = now
            if now - raised_since < band.for_ns:
                assert outcome != FIRED
        else:
            raised_since = None
        if outcome == FIRED:
            raised_since = None  # the automaton resets its dwell clock


@given(band=bands(), cooldown=st.integers(0, 60), stream=streams)
@settings(max_examples=200, deadline=None)
def test_blocked_observation_never_fires(band, cooldown, stream):
    state = RuleState(band, cooldown_ns=cooldown)
    outcomes, fire_times = walk(state, stream, blocked=lambda i: True)
    assert not fire_times
    assert FIRED not in outcomes
    # A blocked would-fire is reported as such, neither disarming the
    # rule nor consuming the cooldown.
    if SUPPRESSED_BUSY in outcomes:
        assert state.armed
        assert state.last_fire_ns is None


@given(band=bands(direction="above"), cooldown=st.integers(0, 60), stream=streams)
@settings(max_examples=200, deadline=None)
def test_below_direction_mirrors_above(band, cooldown, stream):
    mirrored = Hysteresis(
        upper=-band.lower,
        lower=-band.upper,
        for_ns=band.for_ns,
        direction="below",
    )
    above = RuleState(band, cooldown_ns=cooldown)
    below = RuleState(mirrored, cooldown_ns=cooldown)
    above_outcomes, _ = walk(above, stream)
    below_outcomes, _ = walk(below, [(dt, -v) for dt, v in stream])
    assert above_outcomes == below_outcomes


@given(band=bands(), cooldown=st.integers(0, 60), stream=streams)
@settings(max_examples=100, deadline=None)
def test_automaton_is_deterministic(band, cooldown, stream):
    first = walk(RuleState(band, cooldown_ns=cooldown), stream)
    second = walk(RuleState(band, cooldown_ns=cooldown), stream)
    assert first == second


def test_pending_only_with_dwell():
    state = RuleState(Hysteresis(upper=10.0, lower=5.0, for_ns=10))
    assert state.observe(0, 20.0) == PENDING
    assert state.observe(5, 20.0) == PENDING
    assert state.observe(10, 20.0) == FIRED


def test_hysteresis_validation():
    with pytest.raises(ValueError):
        Hysteresis(upper=1.0, lower=2.0)
    with pytest.raises(ValueError):
        Hysteresis(upper=1.0, lower=0.0, for_ns=-1)
    with pytest.raises(ValueError):
        Hysteresis(upper=1.0, lower=0.0, direction="sideways")
    with pytest.raises(ValueError):
        RuleState(Hysteresis(upper=1.0, lower=0.0), cooldown_ns=-1)

"""Engine units: sim-clock evaluation, firing, actuators, determinism.

The property suite (`test_rule_properties.py`) owns the automaton; these
tests own everything around it -- the tick loop, signal reads through
the registry, action application (synchronous and simulated-time), the
busy latch, observability emission, plan validation and the attach
surfaces.
"""

import pytest

from repro.obs import Observability
from repro.policy import (
    CallbackAction,
    FIRED,
    Hysteresis,
    MetricSignal,
    DeltaRateSignal,
    PaceMigrations,
    PolicyEngine,
    PolicyPlan,
    Rule,
    ScaleAdmission,
    SetAdmission,
    SUPPRESSED_BUSY,
    SUPPRESSED_COOLDOWN,
)
from repro.qos import AdmissionConfig, QosPlan
from repro.sim import MS, Simulator


def engine_over_gauge(rules, script, obs=None, period_ns=MS, seed=0,
                      until_ns=40 * MS):
    """Run rules against a scripted ``load`` gauge; returns the engine.

    ``script`` maps tick times (ns) to gauge values; between entries the
    gauge holds its last value.
    """
    sim = Simulator()
    obs = obs if obs is not None else Observability()
    plan = PolicyPlan(rules=tuple(rules), period_ns=period_ns, seed=seed)
    plan.attach_obs(obs)
    engine = PolicyEngine(plan, sim, obs=obs)

    def scripted():
        for at_ns in sorted(script):
            delay = at_ns - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            obs.metrics.gauge("load").set(script[at_ns])

    sim.process(scripted())
    engine.start(until_ns=until_ns)
    sim.run()
    return engine


def load_rule(action=None, **overrides):
    settings = dict(
        name="hot",
        signal=MetricSignal("load"),
        hysteresis=Hysteresis(upper=10.0, lower=4.0),
        action=action if action is not None else CallbackAction(
            lambda ctx, rng: "noted"
        ),
        cooldown_ns=0,
    )
    settings.update(overrides)
    return Rule(**settings)


# --- evaluation & firing ----------------------------------------------------


def test_rule_fires_when_the_signal_crosses_the_band():
    hits = []
    engine = engine_over_gauge(
        [load_rule(action=CallbackAction(
            lambda ctx, rng: hits.append(ctx.now)))],
        script={0: 0.0, 5 * MS: 20.0, 10 * MS: 0.0},
    )
    assert engine.total_fires == 1
    assert hits and hits[0] == engine.fire_log[0][0]
    # Fired once, re-armed when the load fell through the band, idled.
    counts = engine.outcome_counts["hot"]
    assert counts[FIRED] == 1


def test_cooldown_and_hysteresis_surface_in_obs_counters():
    obs = Observability()
    engine = engine_over_gauge(
        [load_rule(cooldown_ns=50 * MS)],
        # Raised, then re-armed, then raised again inside the cooldown.
        script={0: 20.0, 6 * MS: 0.0, 12 * MS: 20.0},
        obs=obs,
    )
    assert engine.total_fires == 1
    counts = engine.outcome_counts["hot"]
    assert counts[SUPPRESSED_COOLDOWN] >= 1
    snap = obs.metrics.snapshot()
    assert snap["policy.hot.fired"] == 1
    assert snap["policy.hot.suppressed_cooldown"] == counts[
        SUPPRESSED_COOLDOWN
    ]
    assert snap["policy.hot.evals"] == engine.evaluations


def test_trace_events_record_fires():
    obs = Observability(trace=True)
    engine_over_gauge(
        [load_rule()], script={0: 0.0, 5 * MS: 20.0}, obs=obs
    )
    names = [name for _track, name, _ts, _args in obs.trace._instants]
    assert "hot:fired" in names


def test_generator_action_sets_the_busy_latch():
    sim_holder = {}

    def slow_action(ctx, rng):
        sim_holder["t0"] = ctx.sim.now

        def _work():
            yield ctx.sim.timeout(10 * MS)

        return _work()

    engine = engine_over_gauge(
        [load_rule(action=CallbackAction(slow_action))],
        # Stays raised for the whole run: the first fire's action runs
        # 10 ms, during which re-fires must be busy-suppressed (the
        # signal never re-arms, so there is exactly one fire).
        script={0: 20.0},
    )
    assert engine.total_fires == 1
    assert engine.outcome_counts["hot"].get(SUPPRESSED_BUSY, 0) == 0
    # (hysteresis suppression, not busy: the rule disarmed on fire)

    # Force the busy path: a band with lower == upper re-arms on every
    # sub-threshold dip; keep the signal pinned at the threshold.
    engine = engine_over_gauge(
        [
            load_rule(
                action=CallbackAction(slow_action),
                hysteresis=Hysteresis(upper=10.0, lower=10.0),
            )
        ],
        script={0: 20.0, 2 * MS: 5.0, 3 * MS: 20.0},
    )
    assert engine.outcome_counts["hot"].get(SUPPRESSED_BUSY, 0) >= 1
    assert engine.total_fires >= 1


# --- determinism ------------------------------------------------------------


def test_engine_replays_byte_identically():
    def run_once():
        draws = []
        engine = engine_over_gauge(
            [
                load_rule(
                    action=CallbackAction(
                        lambda ctx, rng: draws.append(
                            (ctx.now, float(rng.random()))
                        )
                    ),
                    hysteresis=Hysteresis(upper=10.0, lower=4.0),
                )
            ],
            script={0: 0.0, 5 * MS: 20.0, 10 * MS: 0.0, 15 * MS: 20.0},
            seed=77,
        )
        return engine.fire_log, engine.outcome_counts, draws

    assert run_once() == run_once()


def test_per_rule_rng_streams_are_independent():
    """Adding a rule must not shift an existing rule's RNG stream."""
    draws = {}

    def recorder(name):
        return CallbackAction(
            lambda ctx, rng, name=name: draws.setdefault(name, []).append(
                float(rng.random())
            )
        )

    script = {0: 0.0, 5 * MS: 20.0, 10 * MS: 0.0, 15 * MS: 20.0}
    engine_over_gauge([load_rule(action=recorder("solo"))], script=script)
    solo = draws.pop("solo")
    engine_over_gauge(
        [
            load_rule(name="hot", action=recorder("hot")),
            load_rule(name="other", action=recorder("other")),
        ],
        script=script,
    )
    assert draws["hot"] == solo  # same index, same seed -> same stream


# --- actuators --------------------------------------------------------------


def small_cluster(sim, qos):
    from repro.cluster.control import ClusterController
    from repro.cluster.network import Network
    from repro.cluster.node import build_sdf_server
    from repro.kv.slice import KeyRange

    ctrl = ClusterController(sim, Network(sim))
    for index in range(2):
        server = build_sdf_server(
            sim, [], capacity_scale=0.01, n_channels=4
        )
        name = f"n{index}"
        ctrl.add_node(name, server)
        server.attach(qos, name=name)
    ctrl.create_slice(KeyRange(0, 100), on=["n0"])
    ctrl.create_slice(KeyRange(100, 200), on=["n1"])
    return ctrl


def test_set_and_scale_admission_retune_every_node():
    sim = Simulator()
    qos = QosPlan(admission=AdmissionConfig(max_reads=32, max_writes=16))
    ctrl = small_cluster(sim, qos)
    plan = PolicyPlan(rules=(load_rule(),))
    ctrl.attach(plan)
    engine = PolicyEngine(plan, sim)

    SetAdmission(max_reads=8, max_writes=4).apply(engine.ctx, None)
    for node in ctrl.nodes.values():
        assert node.qos.config.max_reads == 8
        assert node.qos.config.max_writes == 4

    ScaleAdmission(read=2.0, write=0.5).apply(engine.ctx, None)
    for node in ctrl.nodes.values():
        assert node.qos.config.max_reads == 16
        assert node.qos.config.max_writes == 2

    # Clamps: floor and ceiling bound the scaled limits.
    ScaleAdmission(write=0.001, read=1e9, ceiling=64).apply(engine.ctx, None)
    for node in ctrl.nodes.values():
        assert node.qos.config.max_writes == 1
        assert node.qos.config.max_reads == 64


def test_pace_migrations_rebudgets_the_controller():
    sim = Simulator()
    qos = QosPlan(admission=AdmissionConfig(max_reads=32))
    ctrl = small_cluster(sim, qos)
    plan = PolicyPlan(rules=(load_rule(),))
    ctrl.attach(plan)
    engine = PolicyEngine(plan, sim)
    PaceMigrations(copy_mb_per_s=50.0, max_concurrent=1).apply(
        engine.ctx, None
    )
    assert ctrl.migration_budget.copy_mb_per_s == 50.0
    assert ctrl.migration_budget.max_concurrent == 1


def test_scale_admission_validation():
    with pytest.raises(ValueError):
        ScaleAdmission(read=0.0)
    with pytest.raises(ValueError):
        ScaleAdmission(floor=10, ceiling=5)


# --- signals ----------------------------------------------------------------


def test_metric_signal_reads_histogram_fields_and_defaults():
    sim = Simulator()
    obs = Observability()
    plan = PolicyPlan(rules=(load_rule(),))
    plan.attach_obs(obs)
    engine = PolicyEngine(plan, sim, obs=obs)
    obs.metrics.histogram("lat").record(100)
    obs.metrics.histogram("lat").record(300)
    assert MetricSignal("lat", field="max").read(engine.ctx) == 300.0
    assert MetricSignal("missing", default=7.0).read(engine.ctx) == 7.0
    with pytest.raises(ValueError):
        MetricSignal("lat").read(engine.ctx)  # histogram needs field=
    obs.metrics.counter("a").add(2)
    obs.metrics.counter("b").add(3)
    assert MetricSignal(("a", "b")).read(engine.ctx) == 5.0
    assert MetricSignal(("a", "b"), reduce="max").read(engine.ctx) == 3.0


def test_delta_rate_signal_windows_per_tick():
    sim = Simulator()
    obs = Observability()
    plan = PolicyPlan(
        rules=(
            load_rule(
                name="shed-rate",
                signal=DeltaRateSignal("sheds"),
                hysteresis=Hysteresis(upper=1000.0, lower=100.0),
            ),
        ),
        period_ns=MS,
    )
    plan.attach_obs(obs)
    engine = PolicyEngine(plan, sim, obs=obs)
    signal = DeltaRateSignal("sheds")
    engine.ctx._advance(0, 0)
    assert signal.read(engine.ctx) == 0.0  # first tick: no window yet
    obs.metrics.counter("sheds").add(10)
    engine.ctx._advance(MS, MS)
    # 10 events in 1 ms -> 10_000 events/s.
    assert signal.read(engine.ctx) == pytest.approx(10_000.0)
    engine.ctx._advance(2 * MS, MS)
    assert signal.read(engine.ctx) == 0.0  # no growth this tick


def test_peek_never_creates_metrics():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("exists").add(1)
    before = registry.names()
    assert registry.peek("exists") == 1
    assert registry.peek("not-there") is None
    assert registry.peek("not-there", default=3.5) == 3.5
    assert registry.names() == before


# --- plan validation & attach surfaces --------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError):
        PolicyPlan(rules=(load_rule(), load_rule()))  # duplicate names
    with pytest.raises(ValueError):
        PolicyPlan(period_ns=0)
    with pytest.raises(ValueError):
        load_rule(name="bad.name")
    with pytest.raises(ValueError):
        load_rule(name="")
    with pytest.raises(ValueError):
        load_rule(cooldown_ns=-1)
    assert PolicyPlan().empty
    assert not PolicyPlan(rules=(load_rule(),)).empty


def test_attach_dispatch_reaches_every_surface():
    from repro import build_sdf_system
    from repro.cluster.node import build_sdf_server

    plan = PolicyPlan(rules=(load_rule(),))
    system = build_sdf_system(capacity_scale=0.005, n_channels=4)
    assert system.attach(plan) is system
    assert plan._systems == [system]

    sim = Simulator()
    server = build_sdf_server(sim, [], capacity_scale=0.005, n_channels=4)
    assert server.attach(plan, name="n7") is server
    assert plan._servers["n7"] is server

    qos = QosPlan(admission=AdmissionConfig(max_reads=8))
    ctrl = small_cluster(Simulator(), qos)
    assert ctrl.attach(plan) is ctrl
    assert plan._controller is ctrl

    with pytest.raises(TypeError, match="don't know how to attach"):
        system.attach(object())


def test_engine_start_guards():
    sim = Simulator()
    engine = PolicyEngine(PolicyPlan(), sim)
    engine.start()
    with pytest.raises(RuntimeError):
        engine.start()
    # An empty plan scheduled nothing: the sim has no events.
    sim.run()
    assert sim.now == 0
    assert engine.evaluations == 0

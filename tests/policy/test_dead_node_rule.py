"""End-to-end: a SWIM-confirmed node death drives a policy rule.

The chain under test spans three planes: the controller group's
failure detector confirms a watched storage node dead, the
``cluster.membership.dead`` gauge rises through observability, a
:class:`~repro.policy.signals.DeadNodeSignal` rule crosses its band,
and :class:`~repro.policy.actions.TriggerRebalance` re-spreads load
across the survivors.
"""

from repro.cluster import (
    ClusterController,
    ControllerGroup,
    Network,
    SwimConfig,
    build_sdf_server,
)
from repro.kv.slice import KeyRange
from repro.obs import Observability
from repro.policy import (
    DeadNodeSignal,
    Hysteresis,
    PolicyEngine,
    PolicyPlan,
    Rule,
    TriggerRebalance,
)
from repro.sim import MS, Simulator

VALUE = b"p" * 4096
FAST = SwimConfig(
    period_ns=10 * MS,
    ping_timeout_ns=2 * MS,
    ping_req_fanout=1,
    suspect_timeout_ns=40 * MS,
)


def dead_node_rule():
    return Rule(
        name="dead_node",
        signal=DeadNodeSignal(),
        hysteresis=Hysteresis(upper=1.0, lower=0.5),
        action=TriggerRebalance(imbalance=1.5),
        cooldown_ns=10_000 * MS,  # one shot per death in this run
    )


def make_scenario():
    sim = Simulator()
    network = Network(sim)
    ctrl = ClusterController(sim, network)
    obs = Observability()
    for name in ("n0", "n1", "n2"):
        ctrl.add_node(
            name,
            build_sdf_server(sim, [], capacity_scale=0.01, n_channels=4),
        )
    # Two hot slices on n0, one quiet one on n1, n2 empty and cold --
    # after n1 dies, the only useful move is n0 -> n2.
    sids = [
        ctrl.create_slice(KeyRange(0, 1_000), on=["n0"]),
        ctrl.create_slice(KeyRange(1_000, 2_000), on=["n0"]),
        ctrl.create_slice(KeyRange(2_000, 3_000), on=["n1"]),
    ]
    group = ControllerGroup(
        sim, network, ctrl, n_replicas=3, swim=FAST, seed=3
    )
    group.attach(obs)
    group.watch_nodes()
    plan = PolicyPlan(rules=(dead_node_rule(),), period_ns=10 * MS)
    plan.attach_obs(obs)
    ctrl.attach(plan)
    engine = PolicyEngine(plan, sim, obs=obs)
    return sim, ctrl, group, obs, engine, sids


def load(sim, ctrl):
    def _fill():
        for key in range(0, 60):
            yield from ctrl.node("n0").handle_put(key, VALUE)
        for key in range(1_000, 1_030):
            yield from ctrl.node("n0").handle_put(key, VALUE)
        for key in range(2_000, 2_005):
            yield from ctrl.node("n1").handle_put(key, VALUE)

    sim.run(until=sim.process(_fill()))


def test_confirmed_node_death_triggers_rebalance():
    sim, ctrl, group, obs, engine, sids = make_scenario()
    load(sim, ctrl)
    group.start(until_ns=1_000 * MS)
    engine.start(until_ns=1_000 * MS)

    def killer():
        yield sim.timeout(100 * MS)
        ctrl.nodes["n1"].crash()

    sim.process(killer())
    sim.run(until=1_000 * MS)
    # The detector confirmed the death...
    assert group.detector.state(group.leader.name, "n1") == "dead"
    assert group.membership_counts()[2] == 1
    # ...the rule fired on the gauge...
    snap = obs.metrics.snapshot(sim.now)
    assert snap["cluster.membership.dead"] == 1
    assert snap["policy.dead_node.fired"] == 1
    # ...and the rebalance moved one of the hot node's slices to the
    # cold survivor (never to the dead node).
    assert ctrl.rebalance_moves.value == 1
    moved = [
        entry for entry in ctrl.table.entries()
        if entry.replicas == ("n2",)
    ]
    assert len(moved) == 1
    assert moved[0].slice_id in sids[:2]


def test_rule_stays_idle_while_everyone_lives():
    sim, ctrl, group, obs, engine, _sids = make_scenario()
    load(sim, ctrl)
    group.start(until_ns=500 * MS)
    engine.start(until_ns=500 * MS)
    sim.run(until=500 * MS)
    snap = obs.metrics.snapshot(sim.now)
    assert snap["cluster.membership.dead"] == 0
    assert snap.get("policy.dead_node.fired", 0) == 0
    assert ctrl.rebalance_moves.value == 0


def test_signal_reads_default_without_a_group():
    # No controller group attached: the gauge never exists and the
    # signal reads its harmless default, so the rule can ship in every
    # deployment's rulebook.
    sim = Simulator()
    obs = Observability()
    plan = PolicyPlan(rules=(dead_node_rule(),), period_ns=10 * MS)
    plan.attach_obs(obs)
    engine = PolicyEngine(plan, sim, obs=obs)
    engine.start(until_ns=100 * MS)
    sim.run()
    snap = obs.metrics.snapshot(sim.now)
    assert snap.get("policy.dead_node.fired", 0) == 0

"""Chaos tier for the policy plane: the engine stays live and correct
while the cluster it steers crashes and browns out underneath it.

A three-node cluster with durable WALs runs a bursty write stream while
two rules (tighten admission on write-rate spikes, relax on lulls) fire
throughout.  Mid-run, one node fail-stops and another browns out via
scheduled FaultBursts.  The contracts:

* **zero acked-write loss** -- every write acknowledged to the driver is
  readable after the faults heal, including writes acked just before
  the crash (durable-WAL replay covers them);
* **rules keep firing** -- the fire log shows activity both before the
  crash and after the restart; the engine never wedges on a dead node;
* **determinism** -- two runs under the same ``CHAOS_SEED`` produce the
  identical fire log, acked-write model and fault signatures.

The unmarked test is the tier-1 smoke; the ``chaos``-marked ones run
the same harness longer under the CI seed matrix (``CHAOS_SEED``).
"""

import os

import numpy as np
import pytest

from repro.cluster.control import ClusterController
from repro.cluster.network import Network
from repro.cluster.node import build_sdf_server
from repro.errors import TransientFault
from repro.faults import BROWNOUT, CRASH, FaultPlan, FaultRunner
from repro.kv.slice import KeyRange
from repro.obs import Observability
from repro.policy import (
    DeltaRateSignal,
    Hysteresis,
    PolicyEngine,
    PolicyPlan,
    Rule,
    ScaleAdmission,
    SetAdmission,
)
from repro.qos import AdmissionConfig, QosPlan
from repro.sim import MS, S, Simulator

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

SPAN = 3_000
CRASH_AT_NS = 30 * MS
CRASH_NS = 20 * MS
BROWNOUT_AT_NS = 80 * MS
BROWNOUT_NS = 30 * MS
#: Bursty writes: BURST_NS on, BURST_NS off, so the acked-write rate
#: oscillates through the rules' hysteresis bands all run long.
BURST_NS = 15 * MS
OPS_PER_BURST = 30
MAX_ATTEMPTS = 8


def make_rules():
    """Tighten on write-rate spikes, relax on lulls."""
    acked_rate = DeltaRateSignal("chaos.acked")
    return (
        Rule(
            name="tighten",
            signal=acked_rate,
            # Raised above 400 acked/s; re-armed once the burst ends.
            hysteresis=Hysteresis(upper=400.0, lower=100.0),
            action=ScaleAdmission(write=0.5, read=0.5, floor=4),
            cooldown_ns=10 * MS,
        ),
        Rule(
            name="relax",
            signal=acked_rate,
            # Falling-edge mirror: fire when the rate drops to ~zero.
            hysteresis=Hysteresis(
                upper=400.0, lower=50.0, direction="below"
            ),
            action=SetAdmission(max_reads=64, max_writes=64),
            cooldown_ns=10 * MS,
        ),
    )


def run_policy_chaos(seed, n_bursts=4):
    """One seeded crash+brownout run; returns everything asserts need."""
    sim = Simulator()
    obs = Observability()
    plan = FaultPlan(seed=seed)
    qos = QosPlan(admission=AdmissionConfig(max_reads=64, max_writes=64))
    policy = PolicyPlan(rules=make_rules(), period_ns=5 * MS, seed=seed)
    ctrl = ClusterController(sim, Network(sim))
    ctrl.attach(obs)
    ctrl.attach(plan)
    ctrl.attach(qos)
    ctrl.attach(policy)
    policy.attach_obs(obs)
    runner = FaultRunner(sim, plan)
    for index in range(3):
        name = f"n{index}"
        server = build_sdf_server(
            sim, [], capacity_scale=0.01, n_channels=4
        )
        ctrl.add_node(name, server)
        server.attach(obs)
        server.attach(plan, name=name)
        server.attach(qos, name=name)
        server.attach(policy, name=name)
        runner.bind(name, server)
    for index in range(3):
        ctrl.create_slice(
            KeyRange(index * SPAN // 3, (index + 1) * SPAN // 3),
            on=[f"n{index}"],
            memtable_bytes=64 * 1024,
            enable_wal=True,
            durable_wal=True,
        )
    plan.schedule("n1", CRASH, at_ns=CRASH_AT_NS, duration_ns=CRASH_NS)
    plan.schedule(
        "n2",
        BROWNOUT,
        at_ns=BROWNOUT_AT_NS,
        duration_ns=BROWNOUT_NS,
        multiplier=20.0,
    )
    runner.start()
    engine = PolicyEngine(policy, sim, obs=obs)
    duration_ns = n_bursts * 2 * BURST_NS + BROWNOUT_AT_NS + BROWNOUT_NS
    engine.start(until_ns=duration_ns)

    model = {}  # key -> last *acknowledged* value
    rng = np.random.default_rng(seed)
    metrics = obs.metrics

    def one_put(key, value):
        """Bounded-retry put; records the ack into the model."""
        view = ctrl.view()
        for attempt in range(MAX_ATTEMPTS):
            if attempt > 0:
                backoff = (2 * MS) << (attempt - 1)
                yield sim.timeout(int(backoff * (1.0 + rng.random())))
                view.refresh()
            try:
                server, entry = view.lookup(key)
                yield from server.handle_put(
                    key, value, epoch=entry.epoch
                )
            except (TransientFault, KeyError):
                continue
            model[key] = value
            metrics.counter("chaos.acked").add(1)
            return

    def driver():
        seq = 0
        for burst in range(n_bursts):
            burst_start = sim.now
            for op in range(OPS_PER_BURST):
                key = (burst * 17 + op * 97) % SPAN
                value = f"{key}:{seq}".encode().ljust(512, b".")
                seq += 1
                sim.process(one_put(key, value))
                gap = BURST_NS // OPS_PER_BURST
                yield sim.timeout(gap)
            idle = 2 * BURST_NS - (sim.now - burst_start)
            if idle > 0:
                yield sim.timeout(idle)

    sim.run(until=sim.process(driver()))
    # Drain: retries, WAL replay, the brownout window, engine ticks.
    sim.run(until=max(sim.now, duration_ns) + S)
    sim.run()

    final = {}

    def verify():
        view = ctrl.view()
        for key in sorted(model):
            server, entry = view.lookup(key)
            final[key] = yield from server.handle_get(
                key, epoch=entry.epoch
            )

    sim.run(until=sim.process(verify()))
    digest = (
        sim.now,
        tuple(engine.fire_log),
        tuple(sorted(model.items())),
        tuple(sorted(final.items())),
        tuple(plan.signatures()),
    )
    return {
        "sim": sim,
        "obs": obs,
        "plan": plan,
        "engine": engine,
        "ctrl": ctrl,
        "model": model,
        "final": final,
        "digest": digest,
    }


def _assert_invariants(run):
    # Zero acknowledged-write loss across crash + WAL replay + brownout.
    assert run["final"] == run["model"]
    assert len(run["model"]) > 0
    # Both faults ran their course.
    plan = run["plan"]
    assert plan.fault_count("n1", CRASH) == 1
    assert plan.fault_count("n2", BROWNOUT) == 1
    servers = run["ctrl"].nodes
    assert servers["n1"].up and servers["n1"].restarts == 1
    assert servers["n2"].slowdown == 1.0
    # Rules fired on both sides of the crash window: the engine never
    # wedged on the dead node.
    engine = run["engine"]
    fire_times = [at for at, _name in engine.fire_log]
    assert any(at < CRASH_AT_NS for at in fire_times)
    assert any(at > CRASH_AT_NS + CRASH_NS for at in fire_times)
    # Both directions of the control loop ran.
    assert engine.fires("tighten") >= 1
    assert engine.fires("relax") >= 1


def test_policy_chaos_smoke_zero_acked_write_loss():
    run = run_policy_chaos(seed=11, n_bursts=4)
    _assert_invariants(run)
    # The engine's own activity surfaced through repro.obs.
    snap = run["obs"].metrics.snapshot(run["sim"].now)
    assert snap["policy.tighten.fired"] == run["engine"].fires("tighten")
    assert snap["policy.relax.fired"] == run["engine"].fires("relax")


@pytest.mark.chaos
def test_chaos_tier_policy_seeded_run():
    run = run_policy_chaos(seed=CHAOS_SEED, n_bursts=8)
    _assert_invariants(run)


@pytest.mark.chaos
def test_chaos_tier_policy_determinism_under_seed():
    a = run_policy_chaos(seed=CHAOS_SEED, n_bursts=6)
    b = run_policy_chaos(seed=CHAOS_SEED, n_bursts=6)
    assert a["digest"] == b["digest"]

"""Sanity checks on the device catalog against Tables 1-3."""

import pytest

from repro.analysis.bandwidth import (
    raw_read_bandwidth_mb_s,
    raw_write_bandwidth_mb_s,
)
from repro.devices import (
    build_device,
    HUAWEI_GEN3_SPEC,
    INTEL_320_SPEC,
    MEMBLAZE_Q520_SPEC,
)
from repro.devices.catalog import sdf_spec
from repro.sim import Simulator
from repro.sim.units import GIB


def planes(spec):
    return spec.chips_per_channel * spec.geometry.planes_per_chip


def test_sdf_matches_table3():
    spec = sdf_spec()
    assert spec["n_channels"] == 44
    assert spec["chips_per_channel"] == 2
    geo = spec["geometry"]
    assert geo.page_size == 8 * 1024  # 8 KB page
    assert geo.block_size == 2 * 1024 * 1024  # 2 MB block
    assert geo.chip_size == 8 * GIB  # 8 GB chip
    # 16 GB per channel, 704 GB per device.
    assert 2 * geo.chip_size == 16 * GIB
    assert 44 * 2 * geo.chip_size == 704 * GIB


def test_full_scale_sdf_capacity_and_channels():
    sdf = build_device("sdf", Simulator(), capacity_scale=1.0)
    assert sdf.raw_bytes == 704 * GIB
    assert sdf.n_channels == 44
    assert sdf.capacity_utilization == pytest.approx(0.99, abs=0.002)
    assert sdf.ftls[0].pages_per_logical_block == 1024  # 8 MB / 8 KB
    assert sdf.ftls[0].logical_block_bytes == 8 * 1024 * 1024


def test_huawei_gen3_is_sdf_hardware_with_conventional_firmware():
    # "The Huawei Gen3 ... structure is the same as that of SDF."
    spec = HUAWEI_GEN3_SPEC
    sdf = sdf_spec()
    assert spec.n_channels == sdf["n_channels"]
    assert spec.chips_per_channel == sdf["chips_per_channel"]
    assert spec.geometry == sdf["geometry"]
    assert spec.timing == sdf["timing"]
    # ... but conventional features on top.
    assert spec.op_ratio == 0.25
    assert spec.stripe_pages == 1  # 8 KB striping
    assert spec.parity_group_size == 11
    assert spec.dram_buffer_bytes == 1 << 30


def test_intel_320_shape():
    spec = INTEL_320_SPEC
    assert spec.n_channels == 10
    assert planes(spec) == 4
    assert spec.link.name.startswith("SATA")
    # 160 GB raw.
    raw = spec.n_channels * spec.chips_per_channel * spec.geometry.chip_size
    assert raw == 160 * GIB


def test_memblaze_shape_matches_table1():
    spec = MEMBLAZE_Q520_SPEC
    assert spec.n_channels == 32
    assert planes(spec) == 16
    read = raw_read_bandwidth_mb_s(
        spec.n_channels, planes(spec), spec.geometry, spec.timing
    )
    write = raw_write_bandwidth_mb_s(
        spec.n_channels, planes(spec), spec.geometry, spec.timing
    )
    assert read == pytest.approx(1600, rel=0.08)
    assert write == pytest.approx(1500, rel=0.08)


def test_gen3_raw_bandwidths_match_table1():
    spec = HUAWEI_GEN3_SPEC
    read = raw_read_bandwidth_mb_s(
        spec.n_channels, planes(spec), spec.geometry, spec.timing
    )
    write = raw_write_bandwidth_mb_s(
        spec.n_channels, planes(spec), spec.geometry, spec.timing
    )
    # Table 1: 1600/950 (our bus model gives slightly more on reads).
    assert read == pytest.approx(1650, rel=0.06)
    assert write == pytest.approx(990, rel=0.06)

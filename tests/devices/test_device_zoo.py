"""The pluggable device zoo: one protocol, one factory, six backends.

Locks the API-redesign contract:

* every registered kind satisfies :class:`~repro.devices.DeviceModel`
  and reports the full ``DEVICE_METRIC_KEYS`` family;
* ``build_device("sdf", ...)`` is *identical* to what the legacy
  ``build_sdf`` builds (same construction path, same behaviour);
* same seed -> byte-identical DeviceStats and obs counters, per kind;
* backend-specific semantics: DFTL's bounded map cache, the hybrid
  FTL's merges, the zoned state machine, MQ parallelism.
"""

import random
import warnings

import pytest

from repro.devices import (
    DEVICE_METRIC_KEYS,
    DeviceModel,
    DeviceSpec,
    ZoneStateError,
    build_device,
    device_kinds,
    register_device,
)
from repro.errors import ConfigError
from repro.obs import Observability
from repro.obs.attach import attach_device
from repro.sim import Simulator

ALL_KINDS = ("conventional", "dftl", "hybrid", "mqftl", "sdf", "zoned")
SCALE = 0.01


def _stats_tuple(stats):
    """The byte-comparable projection of a DeviceStats."""
    return (
        len(stats.read_latency),
        len(stats.write_latency),
        len(stats.erase_latency),
        stats.read_meter.total_bytes,
        stats.write_meter.total_bytes,
        stats.requests.value,
    )


def small_device(kind, sim=None, **params):
    params.setdefault("capacity_scale", SCALE)
    if kind in ("sdf", "zoned"):
        params.setdefault("n_channels", 4)
    return build_device(kind, sim, **params)


# ---------------------------------------------------------------------------
# Registry and protocol.
# ---------------------------------------------------------------------------


def test_registry_lists_all_six_kinds():
    assert device_kinds() == ALL_KINDS


def test_unknown_kind_raises_config_error_naming_known_kinds():
    with pytest.raises(ConfigError, match="sdf"):
        build_device("nvme-of", Simulator())


def test_reregistering_a_kind_raises():
    with pytest.raises(ConfigError, match="already registered"):

        @register_device("sdf")
        def clash(sim):  # pragma: no cover - never called
            return None


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_every_kind_satisfies_the_device_protocol(kind):
    device = small_device(kind)
    assert isinstance(device, DeviceModel)
    assert device.kind == kind
    assert device.page_size > 0
    assert 0 < device.user_bytes <= device.raw_bytes
    assert 0 < device.capacity_utilization <= 1.0


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_every_kind_reports_the_full_metric_family(kind):
    metrics = small_device(kind).device_metrics()
    assert set(metrics) == set(DEVICE_METRIC_KEYS)
    assert metrics["write_amplification"] >= 1.0


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_attach_registers_device_metrics_under_kind_prefix(kind):
    sim = Simulator()
    device = small_device(kind, sim)
    obs = Observability()
    attach_device(obs, device)
    names = set(obs.metrics.names())
    for key in DEVICE_METRIC_KEYS:
        assert f"device.{kind}.{key}" in names
    snap = obs.snapshot(sim.now)
    assert snap[f"device.{kind}.write_amplification"] == pytest.approx(1.0)


def test_device_spec_is_declarative_and_buildable():
    spec = DeviceSpec("dftl", {"capacity_scale": SCALE, "cmt_pages": 8})
    device = spec.build()
    assert device.kind == "dftl"
    assert device.ftl.cmt_pages == 8
    wider = spec.with_params(cmt_pages=16)
    assert wider.build().ftl.cmt_pages == 16
    assert spec.params["cmt_pages"] == 8  # original untouched
    with pytest.raises(ConfigError):
        DeviceSpec("no-such-kind")


def test_build_device_sdf_matches_legacy_build_sdf():
    """The redesign is a pure re-plumbing: the factory's "sdf" path and
    the deprecated shim construct equal devices and replay identically."""
    from repro.devices import build_sdf

    def run(builder_is_legacy):
        sim = Simulator()
        if builder_is_legacy:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                device = build_sdf(sim, capacity_scale=SCALE, n_channels=4)
        else:
            device = build_device(
                "sdf", sim, capacity_scale=SCALE, n_channels=4
            )

        def drive():
            for block in range(6):
                channel = device.channels[block % 4]
                yield from channel.write(block // 4)
                yield from channel.read(block // 4, 0, 2)

        sim.run(until=sim.process(drive()))
        return (sim.now, device.raw_bytes, device.user_bytes) + _stats_tuple(
            device.stats
        )

    assert run(True) == run(False)


# ---------------------------------------------------------------------------
# Determinism: same seed -> byte-identical stats and obs counters.
# ---------------------------------------------------------------------------


def _exercise(kind, seed, mode=None):
    sim = Simulator()
    params = {}
    if mode is not None:
        params["mode"] = mode
    device = small_device(kind, sim, **params)
    obs = Observability()
    attach_device(obs, device)
    rng = random.Random(seed)

    if kind in ("sdf", "zoned"):

        def drive():
            if kind == "zoned":
                for _ in range(8):
                    zone = rng.randrange(device.n_zones)
                    yield from device.reset_zone(zone)
                    yield from device.write_zone(zone)
                    yield from device.read_zone(zone, 0, 4)
            else:
                for _ in range(8):
                    channel = device.channels[rng.randrange(4)]
                    block = rng.randrange(4)
                    if channel.ftl.is_mapped(block):
                        yield from channel.erase(block)
                    yield from channel.write(block)
                    yield from channel.read(block, 0, 4)

    else:

        def drive():
            span = device.user_pages // 2
            for _ in range(64):
                yield from device.write(rng.randrange(span), 1)
            for _ in range(32):
                yield from device.read(rng.randrange(span), 1)
            yield from device.drain()

    sim.run(until=sim.process(drive()))
    snap = obs.snapshot(sim.now)
    scalar_counters = tuple(
        sorted((k, v) for k, v in snap.items() if not isinstance(v, dict))
    )
    return (
        (sim.now,)
        + _stats_tuple(device.stats)
        + (tuple(sorted(device.device_metrics().items())), scalar_counters)
    )


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_same_seed_runs_are_byte_identical(kind):
    assert _exercise(kind, seed=3) == _exercise(kind, seed=3)


@pytest.mark.parametrize("kind", ("sdf", "zoned"))
def test_generator_and_timeline_modes_agree(kind):
    """The two execution engines must tell the same story for the
    timeline-eligible kinds (DESIGN.md section 11 eligibility table)."""
    gen = _exercise(kind, seed=5, mode="generator")
    fast = _exercise(kind, seed=5, mode="timeline")
    assert gen == fast


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_empty_config_does_not_drift(kind):
    """Building + attaching obs with zero I/O must leave every counter
    at zero -- construction itself must not fabricate traffic."""
    sim = Simulator()
    device = small_device(kind, sim)
    obs = Observability()
    attach_device(obs, device)
    sim.run()
    assert sim.now == 0
    stats = device.stats
    assert stats.requests.value == 0
    assert _stats_tuple(stats) == (0, 0, 0, 0, 0, 0)
    metrics = device.device_metrics()
    assert metrics["host_programs"] == 0
    assert metrics["gc_programs"] == 0
    assert metrics["erases"] == 0
    assert metrics["write_amplification"] == 1.0
    assert metrics["map_cache_hit_rate"] == 1.0


# ---------------------------------------------------------------------------
# Backend semantics.
# ---------------------------------------------------------------------------


def test_dftl_cache_misses_cost_translation_reads():
    sim = Simulator()
    device = small_device("dftl", sim, cmt_pages=2)
    rng = random.Random(0)

    def drive():
        for _ in range(200):
            yield from device.write(rng.randrange(device.user_pages), 1)
        yield from device.drain()

    sim.run(until=sim.process(drive()))
    m = device.device_metrics()
    assert m["map_cache_misses"] > 0
    assert m["map_cache_hit_rate"] < 1.0
    # Translation traffic folds into WA: misses imply WA > 1 even
    # before GC kicks in.
    assert m["write_amplification"] > 1.0
    assert device.ftl.translation_reads == m["map_cache_misses"]


def test_dftl_hot_working_set_hits_the_cache():
    sim = Simulator()
    device = small_device("dftl", sim, cmt_pages=64)

    def drive():
        for rep in range(4):
            for lpn in range(64):  # one translation page's span
                yield from device.write(lpn, 1)
        yield from device.drain()

    sim.run(until=sim.process(drive()))
    m = device.device_metrics()
    assert m["map_cache_hit_rate"] > 0.99
    assert m["map_cache_misses"] == 1  # the single cold fill


def test_hybrid_updates_flow_through_log_blocks_and_merge():
    from dataclasses import replace

    from repro.devices import HUAWEI_GEN3_SPEC

    spec = replace(HUAWEI_GEN3_SPEC, n_channels=2, parity_group_size=2)
    sim = Simulator()
    device = build_device(
        "hybrid", sim, spec=spec, capacity_scale=0.002,
        store_data=True, log_blocks_per_channel=2,
    )
    ppb = device.array.geometry.pages_per_block
    span = 4 * ppb
    expected = {}
    rng = random.Random(7)

    def drive():
        for lpn in range(span):
            expected[lpn] = ("v0", lpn)
            yield from device.write(lpn, 1, data=expected[lpn])
        for i in range(3 * span):
            lpn = rng.randrange(span)
            expected[lpn] = ("v", i)
            yield from device.write(lpn, 1, data=expected[lpn])
        yield from device.drain()

    sim.run(until=sim.process(drive()))
    ftl = device.ftl
    assert ftl.merges > 0
    assert ftl.write_amplification > 1.0
    # Merge cost shows up in the uniform metric family.
    m = device.device_metrics()
    assert m["merges"] == ftl.merges
    assert m["gc_programs"] == ftl.merge_programs
    # Data survives the merges.
    for lpn, want in expected.items():
        got, _ = ftl.read(lpn)
        assert got == want


def test_hybrid_sequential_streams_switch_merge_cheaply():
    from dataclasses import replace

    from repro.devices import HUAWEI_GEN3_SPEC

    spec = replace(HUAWEI_GEN3_SPEC, n_channels=2, parity_group_size=2)
    sim = Simulator()
    device = build_device(
        "hybrid", sim, spec=spec, capacity_scale=0.002,
        log_blocks_per_channel=1,
    )
    span = 4 * device.array.geometry.pages_per_block

    def drive():
        for rep in range(2):
            for lpn in range(span):
                yield from device.write(lpn, 1)
        yield from device.drain()

    sim.run(until=sim.process(drive()))
    ftl = device.ftl
    assert ftl.switch_merges > 0
    assert ftl.full_merges == 0  # sequential never pays the full merge
    assert ftl.write_amplification == pytest.approx(1.0)


def test_zoned_state_machine_enforces_reset_before_rewrite():
    sim = Simulator()
    device = small_device("zoned", sim)

    def drive():
        yield from device.write_zone(1)
        assert device.zone_is_full(1)
        with pytest.raises(ZoneStateError):
            yield from device.write_zone(1)
        yield from device.reset_zone(1)
        assert not device.zone_is_full(1)
        yield from device.write_zone(1)
        payload = yield from device.read_zone(1, 0, 1)
        assert len(payload) == 1

    sim.run(until=sim.process(drive()))
    assert device.zone_resets == 1
    assert device.device_metrics()["write_amplification"] == 1.0


def test_zoned_device_has_no_device_side_gc():
    """The defining property: device metrics can never show GC."""
    sim = Simulator()
    device = small_device("zoned", sim)

    def drive():
        for zone in range(8):
            yield from device.write_zone(zone)
        for zone in range(8):
            yield from device.reset_zone(zone)
            yield from device.write_zone(zone)

    sim.run(until=sim.process(drive()))
    m = device.device_metrics()
    assert m["gc_programs"] == 0
    assert m["gc_runs"] == 0
    assert m["write_amplification"] == 1.0
    assert device.zone_resets == 8  # every erase was host-commanded
    assert m["erases"] > 0
    # A zone spans several physical blocks; resets account for them all.
    assert m["erases"] % device.zone_resets == 0


def test_mqftl_parallel_streams_beat_the_single_controller():
    """Four LPN streams on four different channels: the per-channel
    queues overlap controller work the shared controller serializes."""

    def run(kind):
        sim = Simulator()
        device = small_device(kind)
        sim = device.sim
        stripe = device.ftl.stripe_pages * device.spec.n_channels

        def stream(channel):
            # Consecutive writes within one channel's stripe column.
            for i in range(64):
                yield from device.write(channel + i * stripe, 1)

        for channel in range(4):
            sim.process(stream(channel))
        sim.run()
        return sim.now

    assert run("mqftl") < run("conventional")


def test_mqftl_single_stream_matches_baseline_ftl_state():
    """With no concurrency the MQ split changes timing only; the FTL
    underneath is the byte-identical page-mapped baseline."""
    results = {}
    for kind in ("mqftl", "conventional"):
        sim = Simulator()
        device = small_device(kind)
        sim = device.sim

        def drive():
            for lpn in range(128):
                yield from device.write(lpn, 1)
            yield from device.drain()

        sim.run(until=sim.process(drive()))
        ftl = device.ftl
        results[kind] = (ftl.user_programs, ftl.gc_programs, ftl.erases)
    assert results["mqftl"] == results["conventional"]

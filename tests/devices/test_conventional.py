"""Unit/integration tests for the conventional-SSD baseline."""

import pytest

from repro.devices import (
    build_device,
    ConventionalSSD,
    HUAWEI_GEN3_SPEC,
    INTEL_320_SPEC,
)
from repro.sim import MS, Simulator, US
from repro.sim.units import mb_per_s

SCALE = 0.004  # 8 blocks per plane: tiny device, same timing behaviour


def gen3(sim, **kwargs):
    return build_device("conventional", sim, spec=HUAWEI_GEN3_SPEC, capacity_scale=SCALE, **kwargs)


def test_spec_scaling_touches_only_capacity():
    scaled = HUAWEI_GEN3_SPEC.scaled(0.01)
    assert scaled.geometry.page_size == HUAWEI_GEN3_SPEC.geometry.page_size
    assert scaled.geometry.blocks_per_plane < HUAWEI_GEN3_SPEC.geometry.blocks_per_plane
    assert scaled.timing == HUAWEI_GEN3_SPEC.timing


def test_capacity_reflects_op_and_parity():
    sim = Simulator()
    device = gen3(sim)
    # 4/44 channels are parity; 25% OP on the rest.
    expected = device.raw_bytes * (40 / 44) * 0.75
    assert device.user_bytes == pytest.approx(expected, rel=0.01)
    assert device.capacity_utilization == pytest.approx(0.68, abs=0.02)


def test_write_then_read_roundtrip():
    sim = Simulator()
    device = gen3(sim, store_data=True)

    def scenario():
        yield from device.write(0, 2, data="payload")
        yield from device.drain()
        return (yield from device.read(0, 2))

    data = sim.run(until=sim.process(scenario()))
    assert data == ["payload", "payload"]


def test_buffered_write_completes_fast_when_buffer_empty():
    """The Huawei Gen3's DRAM buffer: an 8 MB write is acknowledged in
    milliseconds (wire + buffering), not the ~360 ms flash takes."""
    sim = Simulator()
    device = gen3(sim)
    n_pages = (8 << 20) // device.page_size

    def scenario():
        yield from device.write(0, n_pages)

    sim.run(until=sim.process(scenario()))
    assert device.stats.write_latency.mean < 40 * MS


def test_unbuffered_write_waits_for_flash():
    sim = Simulator()
    spec = HUAWEI_GEN3_SPEC.scaled(SCALE)
    from dataclasses import replace

    device = ConventionalSSD(sim, replace(spec, dram_buffer_bytes=0))

    def scenario():
        yield from device.write(0, 4)

    sim.run(until=sim.process(scenario()))
    # 4 pages, unbuffered: at least one full tPROG (1.4 ms).
    assert device.stats.write_latency.mean > 1 * MS


def test_read_envelope_matches_table4_calibration():
    """Single-request read latency fits r + n*c + flash + wire, which is
    what makes the Gen3's Table 4 size sweep come out right."""
    sim = Simulator()
    device = gen3(sim)
    device.prefill(0.2)
    spec = device.spec
    latencies = {}

    def scenario():
        for n_pages in (1, 8):
            start = sim.now
            yield from device.read(0, n_pages)
            latencies[n_pages] = sim.now - start

    sim.run(until=sim.process(scenario()))
    # Controller cost should appear in the delta between 8- and 1-page reads.
    delta = latencies[8] - latencies[1]
    assert delta >= 7 * spec.controller_read_ns_per_page


def test_gc_interference_creates_write_latency_variance():
    """On a nearly-full device, sustained writes hit GC and the
    (unbuffered) write latency spread widens -- Figure 8's mechanism."""
    from dataclasses import replace

    sim = Simulator()
    spec = replace(
        HUAWEI_GEN3_SPEC.scaled(0.004),
        dram_buffer_bytes=0,
        n_channels=4,
        parity_group_size=None,
    )
    device = ConventionalSSD(sim, spec)
    device.prefill(1.0)
    # Functionally churn random overwrites until every channel sits at
    # the GC threshold, so the *timed* writes below all contend with GC.
    import numpy as np

    rng = np.random.default_rng(3)
    while max(
        device.ftl.free_blocks(c) for c in range(spec.n_channels)
    ) > device.ftl.gc_free_blocks:
        device.ftl.write(int(rng.integers(device.user_pages)), None)

    def writer():
        for burst in range(60):
            lpn = int(rng.integers(device.user_pages))
            yield from device.write(lpn, 4)

    sim.run(until=sim.process(writer()))
    rec = device.stats.write_latency
    timed_gc_runs = device.ftl.gc_runs
    assert timed_gc_runs > 0
    assert rec.maximum > 2 * rec.minimum  # spiky, not uniform


def test_striping_spreads_a_large_read_across_channels():
    sim = Simulator()
    device = gen3(sim)
    device.prefill(0.1)

    def scenario():
        yield from device.read(0, 64)  # 512 KB

    sim.run(until=sim.process(scenario()))
    busy_channels = sum(
        1 for engine in device.engines if engine.ops_executed.value > 0
    )
    assert busy_channels >= 30  # 64 pages over 40 data channels


def test_sequential_read_throughput_near_1_2_gb_per_s():
    """Table 4 / Table 1: Gen3 streams large reads at ~1.2 GB/s."""
    sim = Simulator()
    device = gen3(sim)
    device.prefill(0.5)
    n_requests, pages_per_request = 6, 1024  # 6 x 8 MB

    def reader():
        lpn = 0
        for _ in range(n_requests):
            yield from device.read(lpn, pages_per_request)
            lpn += pages_per_request

    sim.run(until=sim.process(reader()))
    total = n_requests * pages_per_request * device.page_size
    assert mb_per_s(total, sim.now) == pytest.approx(1200, rel=0.08)


def test_intel_320_read_stream_is_sata_class():
    sim = Simulator()
    device = build_device("conventional", sim, spec=INTEL_320_SPEC, capacity_scale=0.01)
    device.prefill(0.3)

    def reader():
        for request in range(4):
            yield from device.read(request * 256, 256)  # 2 MB requests

    sim.run(until=sim.process(reader()))
    total = 4 * 256 * device.page_size
    bandwidth = mb_per_s(total, sim.now)
    assert 150 < bandwidth < 240


def test_validation():
    sim = Simulator()
    device = gen3(sim)

    def bad_read():
        yield from device.read(0, 0)

    with pytest.raises(ValueError):
        sim.run(until=sim.process(bad_read()))
    with pytest.raises(ValueError):
        device.prefill(-0.1)

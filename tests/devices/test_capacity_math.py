"""Regression lock on the scaled-capacity round-trip math.

``capacity_scale`` flows ``blocks_per_plane * factor`` through a float
multiply, and downstream every FTL derives user-page counts the same
way.  Plain ``int()`` truncation turns exactly-representable products
like ``1000 * 0.007 == 6.999...`` into an off-by-one block (and then an
off-by-one *patch extent* a node storage adapter trips over), while
plain ``round()`` would inflate genuinely fractional products.  The
:func:`~repro.nand.geometry.scaled_count` helper floors with a relative
epsilon; these tests pin its behaviour and the prefill round-trips that
exposed the bug.
"""

import pytest

from repro.devices import build_device
from repro.nand.geometry import FlashGeometry, scaled_count
from repro.sim import Simulator


class TestScaledCount:
    def test_near_integral_products_round_to_nearest(self):
        # The motivating case: 1000 * 0.007 = 6.999999999999999.
        assert scaled_count(1000 * 0.007) == 7
        assert scaled_count(2048 * 0.01) == 20  # 20.48 floors
        assert scaled_count(0.29 * 100) == 29  # 28.999999999999996

    def test_fractional_products_still_floor(self):
        assert scaled_count(14.336) == 14
        assert scaled_count(20.48) == 20
        assert scaled_count(6.5) == 6
        assert scaled_count(0.9) == 0

    def test_exact_values_are_identity(self):
        for value in (0, 1, 7, 2048, 10**9):
            assert scaled_count(float(value)) == value

    def test_relative_epsilon_holds_at_large_magnitudes(self):
        # 62_914_560 * (1 - 0.25): float error here is ~1e-8 absolute,
        # far beyond an absolute epsilon but within the relative one.
        pages = 62_914_560
        assert scaled_count(pages * (1.0 - 0.25)) == 47_185_920

    def test_sweep_against_exact_integer_math(self):
        """Across a dense factor grid, the scaled count never deviates
        from exact fraction arithmetic by more than the floor rule."""
        from fractions import Fraction

        for blocks in (512, 1000, 2048, 4096):
            for milli in range(1, 200):
                factor = milli / 1000.0
                exact = Fraction(blocks) * Fraction(factor)
                got = scaled_count(blocks * factor)
                want = int(exact)  # Fraction floors exactly
                # Allow the round-up only when the float product sits
                # within relative 1e-9 of the next integer.
                assert got in (want, want + 1)
                if got == want + 1:
                    assert abs(blocks * factor - got) <= 1e-9 * got


class TestGeometryScaling:
    def test_scaled_geometry_uses_round_to_nearest_floor(self):
        geometry = FlashGeometry(blocks_per_plane=1000)
        assert geometry.scaled(0.007).blocks_per_plane == 7
        assert geometry.scaled(0.0072).blocks_per_plane == 7
        assert geometry.scaled(0.01).blocks_per_plane == 10

    def test_scaled_never_drops_to_zero_blocks(self):
        geometry = FlashGeometry(blocks_per_plane=1000)
        assert geometry.scaled(1e-6).blocks_per_plane == 1


class TestPrefillRoundTrip:
    @pytest.mark.parametrize("kind", ("conventional", "dftl", "hybrid"))
    def test_full_prefill_fills_exactly_user_pages(self, kind):
        device = build_device(kind, Simulator(), capacity_scale=0.007)
        written = device.prefill(1.0)
        assert written == device.user_pages

    def test_sdf_full_prefill_fills_every_logical_block(self):
        device = build_device(
            "sdf", Simulator(), capacity_scale=0.007, n_channels=4
        )
        written = device.prefill(1.0)
        assert written == sum(ftl.n_logical_blocks for ftl in device.ftls)
        assert written * device.ftls[0].logical_block_bytes == device.user_bytes

    def test_zoned_full_prefill_fills_every_zone(self):
        device = build_device(
            "zoned", Simulator(), capacity_scale=0.007, n_channels=4
        )
        written = device.prefill(1.0)
        assert written == device.n_zones
        assert all(device.zone_is_full(z) for z in range(device.n_zones))

    def test_awkward_capacity_factor_keeps_extent_math_consistent(self):
        """The original failure mode: a capacity factor whose float
        product truncates low made ``user_pages`` disagree with what
        prefill could actually write."""
        for factor in (0.007, 0.009, 0.011, 0.013, 0.021):
            device = build_device(
                "conventional", Simulator(), capacity_scale=factor
            )
            assert device.prefill(1.0) == device.user_pages
            # And the half-fill is the floor of the same product.
            device2 = build_device(
                "conventional", Simulator(), capacity_scale=factor
            )
            assert device2.prefill(0.5) == scaled_count(
                device2.user_pages * 0.5
            )

"""Unit/integration tests for the SDF device model."""

import pytest

from repro.devices import build_device
from repro.ftl import EraseBeforeWriteError
from repro.sim import MS, Simulator, US
from repro.sim.units import mb_per_s


def small_sdf(sim, n_channels=4, capacity_scale=0.004):
    # 0.004 * 2048 = 8 blocks per plane: tiny but fully functional.
    return build_device("sdf", sim, capacity_scale=capacity_scale, n_channels=n_channels)


def test_channel_devices_are_exposed_individually():
    sim = Simulator()
    sdf = small_sdf(sim)
    assert len(sdf.channels) == 4
    assert sdf.channels[2].channel == 2
    assert "sda2" in repr(sdf.channels[2])


def test_capacity_is_99_percent_of_raw():
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.05, n_channels=44)
    assert sdf.capacity_utilization == pytest.approx(0.99, abs=0.011)


def test_asymmetric_interface_write_read_roundtrip():
    sim = Simulator()
    sdf = small_sdf(sim)
    channel = sdf.channels[0]
    pages = [f"page-{i}" for i in range(channel.pages_per_logical_block)]

    def scenario():
        yield from channel.write(3, pages)
        first = yield from channel.read(3, 0, 1)
        middle = yield from channel.read(3, 5, 2)
        return first, middle

    first, middle = sim.run(until=sim.process(scenario()))
    assert first == ["page-0"]
    assert middle == ["page-5", "page-6"]


def test_write_requires_erase_between_rewrites():
    sim = Simulator()
    sdf = small_sdf(sim)
    channel = sdf.channels[0]

    def scenario():
        yield from channel.write(0)
        yield from channel.write(0)

    with pytest.raises(EraseBeforeWriteError):
        sim.run(until=sim.process(scenario()))


def test_erase_then_write_fresh_cycle():
    sim = Simulator()
    sdf = small_sdf(sim)
    channel = sdf.channels[0]

    def scenario():
        yield from channel.write(0)
        yield from channel.erase(0)
        yield from channel.write(0)
        yield from channel.write_fresh(0)  # erase+write in one call

    sim.run(until=sim.process(scenario()))
    assert sdf.stats.erase_latency.samples  # explicit erases recorded


def test_single_8k_read_latency_is_about_290_us():
    """Paper arithmetic: tR (75) + bus (210) + PCIe + software ~ 290 us.

    44 channels at this latency = the 1.23 GB/s of Table 4."""
    sim = Simulator()
    sdf = small_sdf(sim)
    channel = sdf.channels[0]

    def scenario():
        yield from channel.write(0)
        sdf.stats.reset()
        yield from channel.read(0, 0, 1)

    sim.run(until=sim.process(scenario()))
    latency = sdf.stats.read_latency.mean
    assert 270 * US < latency < 320 * US


def test_8mb_erase_plus_write_latency_is_about_380_ms():
    """Figure 8: SDF erase+write of one 8 MB block ~ 383 ms."""
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=1)
    channel = sdf.channels[0]

    def scenario():
        yield from channel.write(0)
        start = sim.now
        yield from channel.erase(0)
        yield from channel.write(0)
        return sim.now - start

    latency = sim.run(until=sim.process(scenario()))
    assert 340 * MS < latency < 420 * MS


def test_erase_latency_is_about_3ms():
    sim = Simulator()
    sdf = small_sdf(sim)
    channel = sdf.channels[0]

    def scenario():
        yield from channel.write(0)
        sdf.stats.reset()
        yield from channel.erase(0)

    sim.run(until=sim.process(scenario()))
    assert sdf.stats.erase_latency.mean == pytest.approx(3 * MS, rel=0.1)


def test_channels_serve_requests_independently():
    """Two channels serve one 8 KB read each in the same wall-clock time
    one channel takes for one -- the core scaling property."""

    def run(n_channels):
        sim = Simulator()
        sdf = small_sdf(sim, n_channels=n_channels)

        def reader(channel):
            yield from channel.write(0)
            yield from channel.read(0, 0, 1)

        procs = [
            sim.process(reader(sdf.channels[i])) for i in range(n_channels)
        ]
        sim.run(until=sim.all_of(procs))
        return sim.now

    assert run(2) == pytest.approx(run(1), rel=0.02)


def test_per_channel_write_bandwidth_near_raw():
    """One channel's sustained 8 MB writes land near the 23 MB/s raw
    plane-limited bandwidth (94% of raw across the device = Table 4)."""
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=1)
    channel = sdf.channels[0]
    n_blocks = 4

    def writer():
        for block in range(n_blocks):
            yield from channel.write(block)

    sim.run(until=sim.process(writer()))
    bandwidth = mb_per_s(n_blocks * channel.logical_block_bytes, sim.now)
    assert bandwidth == pytest.approx(23.0, rel=0.07)


def test_prefill_marks_blocks_without_simulated_time():
    sim = Simulator()
    sdf = small_sdf(sim)
    written = sdf.prefill(0.5)
    assert written > 0
    assert sim.now == 0
    assert sdf.ftls[0].is_mapped(0)


def test_prefill_validation():
    sim = Simulator()
    sdf = small_sdf(sim)
    with pytest.raises(ValueError):
        sdf.prefill(1.5)

"""Property-based tests for :class:`repro.faults.RetryPolicy`.

``backoff_ns`` is the one piece of the retry machinery whose contract is
numeric rather than behavioural, so it gets the hypothesis treatment:
for any valid policy and any attempt number the sleep must be
non-negative, never exceed the hard cap, and stay inside the +/-jitter
envelope of the un-jittered exponential schedule.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.faults import RetryPolicy

MS = 1_000_000


@st.composite
def policies(draw):
    return RetryPolicy(
        timeout_ns=draw(st.integers(1, 500 * MS)),
        max_attempts=draw(st.integers(1, 10)),
        backoff_base_ns=draw(st.integers(1, 20 * MS)),
        backoff_factor=draw(
            st.floats(1.0, 8.0, allow_nan=False, allow_infinity=False)
        ),
        backoff_max_ns=draw(st.integers(1, 200 * MS)),
        jitter=draw(st.floats(0.0, 0.999, allow_nan=False)),
    )


@given(policy=policies(), attempt=st.integers(0, 30), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_backoff_capped_nonnegative_and_within_jitter_envelope(
    policy, attempt, seed
):
    rng = np.random.default_rng(seed)
    sleep_ns = policy.backoff_ns(attempt, rng=rng)

    # Hard invariants: an int, never negative, never past the cap --
    # jitter included (the cap is applied after jitter).
    assert isinstance(sleep_ns, int)
    assert sleep_ns >= 0
    assert sleep_ns <= policy.backoff_max_ns

    # The jittered sleep stays inside +/-jitter of the un-jittered
    # exponential schedule (then clamped to the same cap).  The +1
    # absorbs the int() truncation.
    ideal = min(
        policy.backoff_max_ns,
        policy.backoff_base_ns * policy.backoff_factor**attempt,
    )
    low = (1.0 - policy.jitter) * ideal
    high = min(policy.backoff_max_ns, (1.0 + policy.jitter) * ideal)
    assert sleep_ns <= high + 1
    assert sleep_ns >= int(low) - 1


@given(policy=policies(), attempt=st.integers(0, 30))
@settings(max_examples=100, deadline=None)
def test_backoff_without_rng_is_deterministic_and_monotone(policy, attempt):
    # No RNG: exact un-jittered schedule, repeatable call to call.
    first = policy.backoff_ns(attempt)
    assert first == policy.backoff_ns(attempt)
    assert first == min(
        policy.backoff_max_ns,
        int(
            min(
                policy.backoff_max_ns,
                policy.backoff_base_ns * policy.backoff_factor**attempt,
            )
        ),
    )
    # Monotone in the attempt number until the cap flattens it.
    assert policy.backoff_ns(attempt + 1) >= first or first == policy.backoff_max_ns

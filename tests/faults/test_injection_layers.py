"""Per-layer injection tests: each instrumented layer consumes its
faults the way the paper's host-software recovery story says it should.

chip program/erase failure -> FTL bad-block remap; uncorrectable read ->
propagates to the host; channel stall / link delay -> extra latency;
link & network drop -> transient errors the client retries; node crash ->
WAL replay restores every acknowledged write.
"""

import numpy as np
import pytest

from repro.cluster import (
    BatchSpec,
    KVClient,
    MessageDroppedError,
    Network,
    NodeDownError,
    build_sdf_server,
)
from repro.channel.engine import ChannelEngine
from repro.faults import (
    DELAY,
    DROP,
    ERASE_FAIL,
    PROGRAM_FAIL,
    READ_UNCORRECTABLE,
    STALL,
    FaultPlan,
    RetryPolicy,
    attach_network_faults,
)
from repro.ftl.block_ftl import ChannelBlockFTL
from repro.ftl.ops import read_op
from repro.interfaces.link import (
    HostLink,
    LinkDropError,
    PCIE_1_1_X8,
)
from repro.kv import PlaceholderValue
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.nand.array import FlashArray, PhysicalAddress
from repro.nand.chip import ProgramFailError, UncorrectableReadError
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim import MS, S, Simulator

SMALL_GEO = FlashGeometry(
    page_size=512, pages_per_block=4, blocks_per_plane=8, planes_per_chip=2
)


def small_array():
    return FlashArray(1, 2, SMALL_GEO, NandTiming())


def stripe(ftl, tag="p"):
    return [f"{tag}{i}".encode() for i in range(ftl.pages_per_logical_block)]


# -- NAND chip ---------------------------------------------------------------------------
def test_uncorrectable_read_raises_transient_error():
    array = small_array()
    plan = FaultPlan()
    plan.add("nand", READ_UNCORRECTABLE, at_op=2)
    for chip in array.chips[0]:
        chip.faults = plan.injector("nand")
    addr = PhysicalAddress(0, 0, 0, 0, 0)
    array.program_page(addr, b"x")
    assert array.read_page(addr) == b"x"  # first read clean
    with pytest.raises(UncorrectableReadError):
        array.read_page(addr)
    assert plan.fault_count("nand", READ_UNCORRECTABLE) == 1
    assert array.read_page(addr) == b"x"  # data itself is intact


def test_program_fail_marks_block_bad_and_raises():
    array = small_array()
    plan = FaultPlan()
    plan.add("nand", PROGRAM_FAIL, at_op=1)
    array.chips[0][0].faults = plan.injector("nand")
    addr = PhysicalAddress(0, 0, 0, 3, 0)
    with pytest.raises(ProgramFailError):
        array.program_page(addr, b"x")
    assert array.is_bad(addr)


# -- FTL recovery ------------------------------------------------------------------------
def test_ftl_remaps_program_failure_and_data_survives():
    array = small_array()
    ftl = ChannelBlockFTL(array, channel=0, reserve_fraction=0.2)
    plan = FaultPlan()
    # Fail a mid-stripe program (opportunity 6 of 16) so already
    # programmed pages of that plane must be replayed onto the spare.
    plan.add("nand", PROGRAM_FAIL, at_op=6)
    for chip in array.chips[0]:
        chip.faults = plan.injector("nand")
    ftl.faults = plan.injector("ftl.ch0")
    pages = stripe(ftl)
    ftl.write(0, pages)
    assert ftl.program_remaps == 1
    assert ftl.grown_bad_blocks() == 1
    got, _ops = ftl.read(0, 0, ftl.pages_per_logical_block)
    assert got == pages
    assert plan.recovery_count("ftl.ch0", "program_remap") == 1


def test_ftl_second_program_failure_on_same_stripe_propagates():
    array = small_array()
    ftl = ChannelBlockFTL(array, channel=0, reserve_fraction=0.2)
    plan = FaultPlan()
    # Both rules reach opportunity 3 on the same stripe: the first kills
    # the original program, the second (which did not see the firing
    # opportunity) kills the replacement-block retry.
    plan.add("nand", PROGRAM_FAIL, at_op=3)
    plan.add("nand", PROGRAM_FAIL, at_op=3)
    for chip in array.chips[0]:
        chip.faults = plan.injector("nand")
    with pytest.raises(ProgramFailError):
        ftl.write(0, stripe(ftl))


def test_ftl_erase_failure_retires_block_via_bbm():
    array = small_array()
    ftl = ChannelBlockFTL(array, channel=0, reserve_fraction=0.2)
    plan = FaultPlan()
    plan.add("nand", ERASE_FAIL, at_op=1)
    for chip in array.chips[0]:
        chip.faults = plan.injector("nand")
    pages = stripe(ftl)
    ftl.write(0, pages)
    free_before = ftl.free_logical_blocks()
    ftl.erase(0)
    assert ftl.grown_bad_blocks() == 1
    assert plan.fault_count("nand", ERASE_FAIL) == 1
    # The stripe still rewrites fine on the surviving free blocks.
    ftl.write(0, stripe(ftl, "q"))
    got, _ = ftl.read(0, 0, 1)
    assert got == [b"q0"]
    assert ftl.free_logical_blocks() <= free_before


# -- channel engine -----------------------------------------------------------------------
def _timed_read(plan=None):
    sim = Simulator()
    engine = ChannelEngine(sim, 0, SMALL_GEO, NandTiming(), chips_per_channel=2)
    if plan is not None:
        plan.bind_clock(sim)
        engine.faults = plan.injector("ch0")
    op = read_op(PhysicalAddress(0, 0, 0, 0, 0), SMALL_GEO.page_size)
    sim.run(until=sim.process(engine.execute(op)))
    return sim.now


def test_channel_stall_adds_exactly_the_injected_latency():
    baseline = _timed_read()
    plan = FaultPlan()
    plan.add("ch0", STALL, at_op=1, delay_ns=5 * MS)
    assert _timed_read(plan) == baseline + 5 * MS


# -- host link ----------------------------------------------------------------------------
def test_link_drop_raises_and_delay_slows():
    sim = Simulator()
    link = HostLink(sim, PCIE_1_1_X8)
    plan = FaultPlan()
    plan.bind_clock(sim)
    plan.add("link", DROP, at_op=1)
    # The dropped transfer aborts before its delay check, so the delay
    # rule's first opportunity is the retransfer.
    plan.add("link", DELAY, at_op=1, delay_ns=3 * MS)
    link.faults = plan.injector("link")

    def scenario():
        with pytest.raises(LinkDropError):
            yield from link.transfer("read", 4096)
        start = sim.now
        yield from link.transfer("read", 4096)
        return sim.now - start

    with_fault = sim.run(until=sim.process(scenario()))

    sim2 = Simulator()
    link2 = HostLink(sim2, PCIE_1_1_X8)

    def clean():
        start = sim2.now
        yield from link2.transfer("read", 4096)
        return sim2.now - start

    clean_ns = sim2.run(until=sim2.process(clean()))
    assert with_fault == clean_ns + 3 * MS
    assert plan.fault_count("link", DROP) == 1


# -- network + client retry ----------------------------------------------------------------
def test_network_drop_is_retried_by_the_client():
    sim = Simulator()
    slice_ = Slice(0, KeyRange(0, 1_000_000))
    server = build_sdf_server(sim, [slice_], capacity_scale=0.01, n_channels=4)
    network = Network(sim)
    plan = FaultPlan()
    plan.add("net", DROP, at_op=1)
    attach_network_faults(plan, network)
    client = KVClient(
        sim,
        network,
        server,
        slice_,
        BatchSpec(batch_size=1, value_bytes=16 * 1024, mode="write"),
        retry=RetryPolicy(timeout_ns=200 * MS, max_attempts=4),
        rng=np.random.default_rng(0),
    )

    def scenario():
        yield from client.request_once()

    sim.run(until=sim.process(scenario()))
    assert network.drops == 1
    assert client.requests_retried == 1
    assert client.requests_completed == 1


def test_network_drop_without_retry_policy_propagates():
    sim = Simulator()
    network = Network(sim)
    plan = FaultPlan()
    plan.add("net", DROP, at_op=1)
    attach_network_faults(plan, network)
    from repro.cluster.network import Nic

    src, dst = Nic(sim, name="a"), Nic(sim, name="b")

    def scenario():
        with pytest.raises(MessageDroppedError):
            yield from network.send(src, dst, 1024)
        yield from network.send(src, dst, 1024)  # second try goes through

    sim.run(until=sim.process(scenario()))
    assert network.messages == 1 and network.drops == 1


# -- node crash + WAL replay ----------------------------------------------------------------
def durable_server(sim, memtable_bytes=64 * 1024):
    lsm = LSMTree(memtable_bytes=memtable_bytes, durable_wal=True)
    slice_ = Slice(0, KeyRange(0, 1_000_000), lsm=lsm)
    return build_sdf_server(sim, [slice_], capacity_scale=0.01, n_channels=4)


def test_node_crash_then_wal_replay_restores_acked_writes():
    sim = Simulator()
    server = durable_server(sim)
    values = {key: f"v{key}".encode().ljust(4096, b".") for key in range(40)}

    def scenario():
        for key, value in values.items():
            yield from server.handle_put(key, value)
        lost = server.crash()
        assert not server.up
        with pytest.raises(NodeDownError):
            yield from server.handle_get(0)
        replayed = yield from server.restart()
        # every record still protected by the durable WAL came back
        assert replayed > 0 or lost == 0
        for key, value in values.items():
            got = yield from server.handle_get(key)
            assert got == value

    sim.run(until=sim.process(scenario()))
    assert server.crashes == 1 and server.restarts == 1


def test_crash_mid_request_is_a_transient_fault():
    sim = Simulator()
    server = durable_server(sim)

    def scenario():
        yield from server.handle_put(1, b"x" * 1024)
        proc = sim.process(server.handle_get(1))
        yield sim.timeout(10_000)  # crash while the get is queued on CPU
        server.crash()
        with pytest.raises(NodeDownError):
            yield proc
        yield from server.restart()
        got = yield from server.handle_get(1)
        assert got == b"x" * 1024

    sim.run(until=sim.process(scenario()))


def test_in_flight_flush_from_dead_epoch_is_discarded():
    sim = Simulator()
    server = durable_server(sim, memtable_bytes=32 * 1024)
    slice_ = server.slices[0]
    value = b"z" * 8192

    def scenario():
        # Enough puts to freeze patches and spawn background flushes.
        for key in range(16):
            yield from server.handle_put(key, value)
        server.crash()  # while flushes are still in flight
        yield from server.restart()
        for key in range(16):
            got = yield from server.handle_get(key)
            assert got == value

    sim.run(until=sim.process(scenario()))
    sim.run(until=sim.now + 2 * S)  # orphan flushes finish harmlessly
    # No patch is registered twice and nothing pending leaks.
    assert slice_.lsm.memtable is not None  # server is alive and consistent
    assert server.up

"""No-drift regression: attaching an *empty* FaultPlan must leave a run
byte-identical to one with no plan at all -- same simulated timeline,
same metrics snapshot, same Chrome trace JSON.  This is the contract
that lets the fault plane ride along in every build unconfigured.
"""

import json

from repro.cluster import Network, Nic, build_sdf_server
from repro.faults import (
    FaultPlan,
    FaultRunner,
    attach_network_faults,
    attach_server_faults,
)
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.obs import Observability
from repro.sim import MS, Simulator


def run_workload(with_empty_plan: bool):
    sim = Simulator()
    obs = Observability(trace=True)
    lsm = LSMTree(memtable_bytes=128 * 1024, durable_wal=True)
    server = build_sdf_server(
        sim,
        [Slice(0, KeyRange(0, 1_000_000), lsm=lsm)],
        capacity_scale=0.01,
        n_channels=4,
    )
    network = Network(sim)
    server.system.attach(obs)
    server.attach(obs)
    plan = None
    if with_empty_plan:
        plan = FaultPlan(seed=2024)
        attach_server_faults(plan, server, site="node0")
        attach_network_faults(plan, network)
        plan.attach_obs(obs)
        FaultRunner(sim, plan).start()  # empty schedule: spawns nothing
    client = Nic(sim, name="client")
    value = b"drift" * 1024  # 5 KB

    def scenario():
        for key in range(30):
            yield from network.send(client, server.nic, 4096)
            yield from server.handle_put(key, value)
        for key in range(30):
            got = yield from server.handle_get(key)
            assert got == value
            yield from network.send(server.nic, client, len(value))

    sim.run(until=sim.process(scenario()))
    sim.run(until=sim.now + 100 * MS)  # drain background flushes
    trace_json = json.dumps(obs.trace.chrome_trace(), sort_keys=True)
    snapshot = obs.snapshot(sim.now)
    return sim.now, trace_json, snapshot, plan


def test_empty_plan_run_is_byte_identical_to_no_plan_run():
    bare_now, bare_trace, bare_snap, _ = run_workload(False)
    plan_now, plan_trace, plan_snap, plan = run_workload(True)
    assert plan.log == []  # the empty plan never fired anything
    assert plan_now == bare_now
    assert plan_snap == bare_snap
    assert plan_trace == bare_trace  # byte-identical Chrome trace


def test_empty_plan_makes_no_rng_draws():
    # An empty plan has no rule states at all, so no generator is ever
    # instantiated -- the determinism guarantee cannot be eroded by
    # rule-table misses.
    plan = FaultPlan(seed=5)
    inj = plan.injector("anywhere")
    for _ in range(100):
        assert inj.fires("anything", key=1) is None
        assert inj.delay_ns("anything") == 0
    assert plan._states == {} and plan.log == []

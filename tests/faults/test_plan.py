"""Unit tests for the fault plane: rules, scheduling, determinism."""

import numpy as np
import pytest

from repro.faults import (
    CRASH,
    DELAY,
    NULL_INJECTOR,
    READ_UNCORRECTABLE,
    STALL,
    FaultInjectionError,
    FaultPlan,
    FaultRunner,
    RetryPolicy,
)
from repro.obs import Observability
from repro.sim import MS, Simulator


# -- rule validation -----------------------------------------------------------------
def test_rule_validation_rejects_bad_parameters():
    plan = FaultPlan()
    with pytest.raises(FaultInjectionError):
        plan.add("s", "k", rate=1.5)
    with pytest.raises(FaultInjectionError):
        plan.add("s", "k", rate=-0.1)
    with pytest.raises(FaultInjectionError):
        plan.add("s", "k", at_op=0)
    with pytest.raises(FaultInjectionError):
        plan.add("s", "k")  # no trigger at all
    with pytest.raises(FaultInjectionError):
        plan.add("s", "k", rate=0.5, count=0)
    with pytest.raises(FaultInjectionError):
        plan.schedule("s", CRASH, at_ns=-1)
    with pytest.raises(FaultInjectionError):
        plan.schedule("s", CRASH, at_ns=0, duration_ns=-5)


def test_add_and_schedule_chain_fluently():
    plan = (
        FaultPlan(seed=3)
        .add("a", "k", rate=0.5)
        .schedule("b", CRASH, at_ns=10)
    )
    assert plan.sites() == ["a", "b"]


# -- deterministic (at_op / count) rules -------------------------------------------
def test_at_op_fires_on_exact_opportunity_then_never_again():
    plan = FaultPlan()
    plan.add("s", "k", at_op=3)
    inj = plan.injector("s")
    hits = [inj.fires("k") is not None for _ in range(6)]
    assert hits == [False, False, True, False, False, False]
    assert plan.fault_count("s", "k") == 1


def test_count_caps_probabilistic_fires():
    plan = FaultPlan(seed=1)
    plan.add("s", "k", rate=1.0, count=2)
    inj = plan.injector("s")
    hits = sum(inj.fires("k") is not None for _ in range(10))
    assert hits == 2


def test_where_filter_matches_context():
    plan = FaultPlan()
    plan.add("s", "k", at_op=1, where={"plane": 1})
    inj = plan.injector("s")
    assert inj.fires("k", plane=0) is None
    assert inj.fires("k", plane=1) is not None
    # the miss on plane 0 did not consume the opportunity
    assert plan.fault_count("s", "k") == 1


def test_time_windows_take_effect_once_a_clock_is_bound():
    sim = Simulator()
    plan = FaultPlan()
    plan.add("s", "k", rate=1.0, after_ns=5 * MS, before_ns=10 * MS)
    plan.bind_clock(sim)
    inj = plan.injector("s")

    def scenario():
        assert inj.fires("k") is None  # before the window
        yield sim.timeout(6 * MS)
        assert inj.fires("k") is not None  # inside
        yield sim.timeout(10 * MS)
        assert inj.fires("k") is None  # past it

    sim.run(until=sim.process(scenario()))
    assert [e.at_ns for e in plan.log] == [6 * MS]


# -- determinism -----------------------------------------------------------------------
def _firing_pattern(seed, n=200, rate=0.3):
    plan = FaultPlan(seed=seed)
    plan.add("s", "k", rate=rate)
    inj = plan.injector("s")
    return [inj.fires("k") is not None for _ in range(n)]


def test_same_seed_same_fault_sequence():
    assert _firing_pattern(42) == _firing_pattern(42)


def test_different_seed_different_fault_sequence():
    assert _firing_pattern(1) != _firing_pattern(2)


def test_rule_streams_independent_across_sites():
    # Adding rules at *other* sites must not shift this site's draws.
    alone = FaultPlan(seed=7)
    alone.add("a", "k", rate=0.5)
    crowded = FaultPlan(seed=7)
    crowded.add("x", "k", rate=0.5)
    crowded.add("a", "k", rate=0.5)
    crowded.add("z", "k", rate=0.5)
    pattern = lambda plan: [
        plan.injector("a").fires("k") is not None for _ in range(100)
    ]
    assert pattern(alone) == pattern(crowded)


def test_same_seed_identical_sim_timeline():
    def run(seed):
        sim = Simulator()
        plan = FaultPlan(seed=seed)
        plan.add("s", STALL, rate=0.4, delay_ns=2 * MS)
        plan.bind_clock(sim)
        inj = plan.injector("s")

        def worker():
            for _ in range(50):
                yield sim.timeout(1 * MS + inj.delay_ns(STALL))

        sim.run(until=sim.process(worker()))
        return sim.now, plan.signatures()

    assert run(9) == run(9)


# -- delay rules -------------------------------------------------------------------------
def test_delay_rules_sum_and_log_one_event():
    plan = FaultPlan()
    plan.add("s", DELAY, at_op=1, delay_ns=3)
    plan.add("s", DELAY, at_op=1, delay_ns=4)
    inj = plan.injector("s")
    assert inj.delay_ns(DELAY) == 7
    assert inj.delay_ns(DELAY) == 0  # both rules spent
    assert plan.fault_count("s", DELAY) == 1
    assert plan.log[0].ctx["delay_ns"] == 7


# -- the no-op default ---------------------------------------------------------------------
def test_unconfigured_site_makes_no_draws_and_no_log():
    plan = FaultPlan(seed=0)
    plan.add("other", "k", rate=1.0)
    inj = plan.injector("quiet")
    assert inj.fires("k") is None
    assert inj.delay_ns("k") == 0
    assert plan.log == []


def test_null_injector_is_inert():
    assert NULL_INJECTOR.fires("k", x=1) is None
    assert NULL_INJECTOR.delay_ns("k") == 0
    assert NULL_INJECTOR.inject("k") is None
    assert NULL_INJECTOR.note("r") is None


# -- logging / obs -------------------------------------------------------------------------
def test_inject_and_note_count_separately():
    plan = FaultPlan()
    inj = plan.injector("s")
    inj.inject(CRASH, node=1)
    inj.note("restart", node=1)
    assert plan.fault_count("s", CRASH) == 1
    assert plan.recovery_count("s", "restart") == 1
    assert plan.fault_count() == 1 and plan.recovery_count() == 1
    sigs = plan.signatures()
    assert sigs[0] == ("s", CRASH, None, False, (("node", 1),))
    assert sigs[1] == ("s", "restart", None, True, (("node", 1),))


def test_fired_faults_emit_obs_counters_and_trace_instants():
    obs = Observability(trace=True)
    plan = FaultPlan()
    plan.add("s", READ_UNCORRECTABLE, at_op=1)
    plan.attach_obs(obs)
    plan.injector("s").fires(READ_UNCORRECTABLE, page=9)
    plan.injector("s").note("remap", page=9)
    snap = obs.snapshot()
    assert snap["faults.s.read_uncorrectable"] == 1
    assert snap["recovery.s.remap"] == 1
    names = [ev.get("name") for ev in obs.trace.chrome_trace()["traceEvents"]]
    assert "read_uncorrectable" in names
    assert "recover:remap" in names


# -- scheduling and the runner ---------------------------------------------------------------
def test_scheduled_for_returns_time_order():
    plan = FaultPlan()
    plan.schedule("n", CRASH, at_ns=20)
    plan.schedule("n", CRASH, at_ns=5)
    assert [f.at_ns for f in plan.scheduled_for("n")] == [5, 20]
    assert plan.scheduled_for("unknown") == []


class _CrashDummy:
    """Minimal crash/restart target for runner tests."""

    def __init__(self, sim):
        self.sim = sim
        self.up = True
        self.crash_at = None
        self.restart_at = None
        self.restored = False

    def crash(self):
        self.up = False
        self.crash_at = self.sim.now

    def restart(self):
        yield self.sim.timeout(1 * MS)
        self.up = True
        self.restart_at = self.sim.now


def test_runner_drives_crash_and_restart():
    sim = Simulator()
    plan = FaultPlan()
    plan.schedule("n", CRASH, at_ns=10 * MS, duration_ns=5 * MS, node=0)
    runner = FaultRunner(sim, plan)
    target = _CrashDummy(sim)

    def restore():
        target.restored = True
        yield sim.timeout(0)

    runner.bind("n", target, on_restore=restore)
    runner.start()
    sim.run(until=30 * MS)
    assert target.crash_at == 10 * MS
    assert target.restart_at == 16 * MS  # 10 crash + 5 down + 1 restart
    assert target.restored
    assert plan.fault_count("n", CRASH) == 1
    assert plan.recovery_count("n", "restart") == 1


def test_runner_never_recovers_when_duration_is_none():
    sim = Simulator()
    plan = FaultPlan()
    plan.schedule("n", CRASH, at_ns=1 * MS, duration_ns=None)
    runner = FaultRunner(sim, plan)
    target = _CrashDummy(sim)
    runner.bind("n", target)
    runner.start()
    sim.run(until=50 * MS)
    assert not target.up
    assert target.restart_at is None


def test_runner_rejects_unbound_scheduled_site_and_double_start():
    sim = Simulator()
    plan = FaultPlan()
    plan.schedule("typo", CRASH, at_ns=0)
    runner = FaultRunner(sim, plan)
    with pytest.raises(FaultInjectionError):
        runner.start()
    plan2 = FaultPlan()
    runner2 = FaultRunner(sim, plan2)
    runner2.start()
    with pytest.raises(FaultInjectionError):
        runner2.start()


# -- retry policy --------------------------------------------------------------------------
def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        backoff_base_ns=10, backoff_factor=2.0, backoff_max_ns=50, jitter=0.0
    )
    assert [policy.backoff_ns(k) for k in range(4)] == [10, 20, 40, 50]


def test_backoff_jitter_stays_within_bounds():
    policy = RetryPolicy(backoff_base_ns=1000, jitter=0.2)
    rng = np.random.default_rng(0)
    for attempt in range(5):
        base = policy.backoff_ns(attempt)
        jittered = policy.backoff_ns(attempt, rng)
        assert 0.8 * base - 1 <= jittered <= 1.2 * base + 1


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_ns=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)

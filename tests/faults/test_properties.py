"""Property-based chaos: under any random fault schedule with at least
one surviving replica, every acknowledged write remains readable and no
read ever returns a stale value.

Style follows ``tests/kv/test_lsm_properties.py``: hypothesis drives the
schedule (crash time/duration/replica, uncorrectable-read rate, op mix),
a plain dict models the acknowledged state, and every read is checked
against the model the moment it completes.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.cluster import ReplicatedKV, build_sdf_server
from repro.faults import (
    CRASH,
    READ_UNCORRECTABLE,
    FaultPlan,
    FaultRunner,
    RetryPolicy,
    attach_server_faults,
)
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.sim import MS, Simulator

KEYS = [k * 97 for k in range(10)]


def make_replica(sim):
    lsm = LSMTree(memtable_bytes=64 * 1024, durable_wal=True)
    return build_sdf_server(
        sim,
        [Slice(0, KeyRange(0, 1_000_000), lsm=lsm)],
        capacity_scale=0.01,
        n_channels=4,
    )


@st.composite
def fault_schedules(draw):
    return {
        "seed": draw(st.integers(0, 10_000)),
        "crash_replica": draw(st.integers(0, 1)),
        "crash_at_ms": draw(st.integers(2, 30)),
        "crash_duration_ms": draw(st.integers(2, 20)),
        "unc_rate": draw(st.sampled_from([0.0, 0.05, 0.2])),
        "chip_unc": draw(st.booleans()),
        # (is_put, key index) -- reads of never-written keys check misses
        "ops": draw(
            st.lists(
                st.tuples(st.booleans(), st.integers(0, len(KEYS) - 1)),
                min_size=8,
                max_size=32,
            )
        ),
    }


@given(case=fault_schedules())
@settings(max_examples=15, deadline=None)
def test_acked_writes_survive_any_schedule_with_a_surviving_replica(case):
    sim = Simulator()
    servers = [make_replica(sim) for _ in range(2)]
    plan = FaultPlan(seed=case["seed"])
    # Capped rules can never exhaust a whole retry budget: at most one
    # replication-level and one chip-level uncorrectable fire per run.
    if case["unc_rate"] > 0.0:
        plan.add("replication", READ_UNCORRECTABLE, rate=case["unc_rate"], count=1)
    if case["chip_unc"]:
        plan.add("node0.nand", READ_UNCORRECTABLE, rate=0.02, count=1)
    plan.schedule(
        f"node{case['crash_replica']}",
        CRASH,
        at_ns=case["crash_at_ms"] * MS,
        duration_ns=case["crash_duration_ms"] * MS,
    )
    for index, server in enumerate(servers):
        attach_server_faults(plan, server, site=f"node{index}")
    kv = ReplicatedKV(
        sim,
        servers,
        faults=plan.injector("replication"),
        retry=RetryPolicy(timeout_ns=30 * MS, max_attempts=4),
        rng=np.random.default_rng(case["seed"]),
    )
    runner = FaultRunner(sim, plan)
    for index, server in enumerate(servers):
        runner.bind(f"node{index}", server, on_restore=lambda i=index: kv.heal(i))
    runner.start()

    model = {}

    def driver():
        seq = 0
        for is_put, key_index in case["ops"]:
            key = KEYS[key_index]
            if is_put:
                value = f"{key}:{seq}".encode().ljust(2048, b".")
                seq += 1
                yield from kv.put(key, value)
                model[key] = value  # acknowledged
            else:
                got = yield from kv.get(key)
                # never stale, never torn: exactly the last acked value
                assert got == model.get(key)

    sim.run(until=sim.process(driver()))
    # Let the crash window close and the heal finish, whatever the phase.
    grace = (case["crash_at_ms"] + case["crash_duration_ms"] + 150) * MS
    if sim.now < grace:
        sim.run(until=grace)

    def verify():
        for key, value in model.items():
            got = yield from kv.get(key)
            assert got == value

    sim.run(until=sim.process(verify()))
    assert kv.behind_count() == 0  # the healed replica owes nothing
    assert kv.data_loss_events.value == 0

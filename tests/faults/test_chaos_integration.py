"""End-to-end chaos: node crash + chip program/erase failures + message
drops + link delays during a mixed read/write workload over a replicated
cluster.

The unmarked tests are the tier-1 smoke: a short seeded run must finish
with zero acknowledged-write losses, log fault *and* recovery events
into the plan and the obs trace, and replay bit-identically under the
same seed.  The ``chaos``-marked tests run the same harness longer and
are driven by the CI seed matrix via ``CHAOS_SEED``.
"""

import os

import numpy as np
import pytest

from repro.analysis.reliability import (
    expected_fleet_uncorrectable_events,
    wear_for_target_fleet_events,
)
from repro.cluster import (
    BatchSpec,
    KVClient,
    Network,
    ReplicatedKV,
    build_sdf_server,
)
from repro.faults import (
    CRASH,
    DELAY,
    DROP,
    ERASE_FAIL,
    PROGRAM_FAIL,
    READ_UNCORRECTABLE,
    FaultPlan,
    FaultRunner,
    RetryPolicy,
    attach_network_faults,
    attach_server_faults,
)
from repro.kv.compaction import TieredCompactionPolicy
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.obs import Observability, attach_server
from repro.sim import MS, S, Simulator

#: The CI chaos job sweeps this via the environment; 0 is the default
#: local seed.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

KEYS = [k * 31 for k in range(24)]
CLIENT_RANGE = KeyRange(1_000_000, 2_000_000)


def _replica(sim, with_client_slice=False):
    slices = [
        Slice(
            0,
            KeyRange(0, 1_000_000),
            lsm=LSMTree(
                # Small memtable: even the short smoke run freezes
                # several patches, so compaction frees blocks and the
                # background eraser gives the ERASE_FAIL rule its shot.
                memtable_bytes=32 * 1024,
                durable_wal=True,
                policy=TieredCompactionPolicy(fanout=2),
            ),
        )
    ]
    if with_client_slice:
        slices.append(
            Slice(1, CLIENT_RANGE, lsm=LSMTree(memtable_bytes=64 * 1024))
        )
    return build_sdf_server(sim, slices, capacity_scale=0.01, n_channels=4)


def run_chaos(seed, n_ops=120, client_requests=10):
    """One seeded chaos run.  Returns everything the asserts need."""
    sim = Simulator()
    obs = Observability(trace=True)
    plan = FaultPlan(seed=seed)
    # replica 0 carries an extra slice fed by a network client, so the
    # workload mixes replicated traffic with client request traffic.
    servers = [_replica(sim, with_client_slice=(i == 0)) for i in range(3)]
    for index, server in enumerate(servers):
        attach_server_faults(plan, server, site=f"node{index}")
    attach_server(obs, servers[1])  # the replica that will crash
    plan.attach_obs(obs)

    network = Network(sim)
    attach_network_faults(plan, network)

    # The schedule: a mid-run crash, deterministic chip failures on
    # replica 0, sporadic uncorrectable reads on replica 2, network
    # drops and host-link latency spikes.
    plan.schedule("node1", CRASH, at_ns=10 * MS, duration_ns=15 * MS)
    plan.add("node0.nand", PROGRAM_FAIL, at_op=4)
    plan.add("node0.nand", ERASE_FAIL, at_op=1)
    plan.add("node2.nand", READ_UNCORRECTABLE, rate=0.01, count=2)
    plan.add("net", DROP, at_op=2)
    plan.add("net", DROP, rate=0.02, count=3)
    plan.add("node0.link", DELAY, rate=0.05, count=5, delay_ns=1 * MS)

    kv = ReplicatedKV(
        sim,
        servers,
        faults=plan.injector("replication"),
        retry=RetryPolicy(timeout_ns=40 * MS, max_attempts=5),
        rng=np.random.default_rng(seed),
    )
    runner = FaultRunner(sim, plan)
    for index, server in enumerate(servers):
        runner.bind(f"node{index}", server, on_restore=lambda i=index: kv.heal(i))
    runner.start()

    client = KVClient(
        sim,
        network,
        servers[0],
        servers[0].slices[1],
        BatchSpec(batch_size=1, value_bytes=16 * 1024, mode="write"),
        rng=np.random.default_rng(seed + 1),
        retry=RetryPolicy(timeout_ns=100 * MS, max_attempts=6),
    )

    model = {}
    rng = np.random.default_rng(seed)

    def driver():
        seq = 0
        for _ in range(n_ops):
            key = KEYS[int(rng.integers(0, len(KEYS)))]
            if rng.random() < 0.6 or key not in model:
                value = f"{key}:{seq}".encode().ljust(4096, b".")
                seq += 1
                yield from kv.put(key, value)
                model[key] = value
            else:
                got = yield from kv.get(key)
                assert got == model[key], f"stale read of {key}"

    def client_loop():
        for _ in range(client_requests):
            yield from client.request_once()

    driver_proc = sim.process(driver())
    client_proc = sim.process(client_loop())
    sim.run(until=driver_proc)
    sim.run(until=client_proc)
    # Close out the crash window, the heal, and background flush/compact.
    sim.run(until=max(sim.now, 40 * MS) + 1 * S)

    final = {}

    def verify():
        for key in sorted(model):
            final[key] = yield from kv.get(key)

    sim.run(until=sim.process(verify()))
    digest = (
        sim.now,
        tuple(sorted(model.items())),
        tuple(sorted(final.items())),
        tuple(plan.signatures()),
    )
    return {
        "sim": sim,
        "plan": plan,
        "obs": obs,
        "kv": kv,
        "client": client,
        "network": network,
        "servers": servers,
        "model": model,
        "final": final,
        "digest": digest,
    }


def _assert_invariants(run):
    model, final = run["model"], run["final"]
    # Zero acknowledged-write losses, no stale reads.
    assert final == model
    assert run["kv"].data_loss_events.value == 0
    assert run["kv"].behind_count() == 0
    # The crash/restart cycle actually happened and healed.
    plan = run["plan"]
    assert plan.fault_count("node1", CRASH) == 1
    assert plan.recovery_count("node1", "restart") == 1
    assert run["servers"][1].crashes == 1
    assert run["servers"][1].restarts == 1
    # Chip faults fired and were absorbed by the FTL.
    assert plan.fault_count("node0.nand", PROGRAM_FAIL) == 1
    assert plan.fault_count("node0.nand", ERASE_FAIL) == 1
    device = run["servers"][0].system.device
    assert sum(ftl.program_remaps for ftl in device.ftls) == 1
    assert sum(ftl.grown_bad_blocks() for ftl in device.ftls) >= 2
    # Dropped messages were retried by the client, not surfaced.
    assert run["network"].drops >= 1
    assert run["client"].requests_retried >= 1
    assert run["client"].requests_completed > 0


def test_chaos_smoke_zero_acked_write_loss():
    run = run_chaos(seed=7, n_ops=80, client_requests=8)
    _assert_invariants(run)
    # Fault and recovery events surfaced through repro.obs as well.
    snap = run["obs"].snapshot(run["sim"].now)
    assert snap["faults.node1.crash"] == 1
    assert snap["recovery.node1.restart"] == 1
    assert snap["server.crashes"] == 1 and snap["server.restarts"] == 1
    names = {
        ev.get("name")
        for ev in run["obs"].trace.chrome_trace()["traceEvents"]
    }
    assert "crash" in names and "recover:restart" in names
    assert "wal_replay" in names


def test_chaos_smoke_same_seed_identical_final_state():
    a = run_chaos(seed=3, n_ops=60, client_requests=6)
    b = run_chaos(seed=3, n_ops=60, client_requests=6)
    assert a["digest"] == b["digest"]


@pytest.mark.chaos
def test_chaos_tier_seeded_run():
    run = run_chaos(seed=CHAOS_SEED, n_ops=400, client_requests=30)
    _assert_invariants(run)


@pytest.mark.chaos
def test_chaos_tier_determinism_under_seed():
    a = run_chaos(seed=CHAOS_SEED, n_ops=250, client_requests=20)
    b = run_chaos(seed=CHAOS_SEED, n_ops=250, client_requests=20)
    assert a["digest"] == b["digest"]


# -- the paper's reliability claim (EXPERIMENTS.md) -----------------------------------
def test_paper_fleet_uncorrectable_claim_is_reachable():
    """S2.2: one uncorrectable error in six months over 2000 SDFs.

    The analytic model must admit a wear level at which the fleet
    expectation is ~1 event -- and below that wear the expectation must
    fall, so a production fleet at or under rated endurance sees at
    most the paper's single event (the inverted wear lands just above
    rated endurance: ~1.2x, with <=0.4 expected events at endurance).
    """
    reads_per_day = 2.0e8  # ~2300 page reads/s/device, read-heavy fleet
    wear = wear_for_target_fleet_events(
        1.0, n_devices=2000, months=6.0,
        page_reads_per_device_per_day=reads_per_day,
    )
    events = expected_fleet_uncorrectable_events(
        2000, 6.0, reads_per_day, wear
    )
    assert 0.5 <= events <= 2.0
    # Half that wear must give a clearly safer fleet (monotonicity).
    assert (
        expected_fleet_uncorrectable_events(2000, 6.0, reads_per_day, wear // 2)
        < events
    )

"""No-drift regression for the QoS plane: attaching an *empty*
:class:`~repro.qos.QosPlan` must leave a run byte-identical to one with
no plan at all -- same simulated timeline, same metrics snapshot, same
Chrome trace JSON.  Mirrors ``tests/faults/test_no_drift.py``; this is
the contract that lets overload protection ride along in every build
unconfigured.
"""

import json

from repro.cluster import Network, Nic, build_sdf_server
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.obs import Observability
from repro.qos import (
    ChannelQosConfig,
    QosPlan,
    WriteStallConfig,
    attach_server_qos,
)
from repro.sim import MS, Simulator


def run_workload(with_empty_plan: bool):
    sim = Simulator()
    obs = Observability(trace=True)
    lsm = LSMTree(memtable_bytes=128 * 1024, durable_wal=True)
    server = build_sdf_server(
        sim,
        [Slice(0, KeyRange(0, 1_000_000), lsm=lsm)],
        capacity_scale=0.01,
        n_channels=4,
    )
    network = Network(sim)
    server.system.attach(obs)
    server.attach(obs)
    plan = None
    if with_empty_plan:
        # Sub-configs whose every knob is None count as empty too.
        plan = QosPlan(
            channel=ChannelQosConfig(),
            write_stall=WriteStallConfig(),
        )
        assert plan.empty
        attach_server_qos(plan, server, name="node0")
        server.system.attach(plan)
        plan.attach_obs(obs)
    client = Nic(sim, name="client")
    value = b"drift" * 1024  # 5 KB

    def scenario():
        for key in range(30):
            yield from network.send(client, server.nic, 4096)
            yield from server.handle_put(key, value)
        for key in range(30):
            got = yield from server.handle_get(key)
            assert got == value
            yield from network.send(server.nic, client, len(value))

    sim.run(until=sim.process(scenario()))
    sim.run(until=sim.now + 100 * MS)  # drain background flushes
    trace_json = json.dumps(obs.trace.chrome_trace(), sort_keys=True)
    snapshot = obs.snapshot(sim.now)
    return sim.now, trace_json, snapshot, (plan, server)


def test_empty_plan_run_is_byte_identical_to_no_plan_run():
    bare_now, bare_trace, bare_snap, _ = run_workload(False)
    plan_now, plan_trace, plan_snap, (plan, server) = run_workload(True)
    # The empty plan wired nothing: no live states, no server hook, no
    # engine/block-layer hooks.
    assert plan._states == []
    assert server.qos is None
    assert server.storage.block_layer.qos is None
    assert all(
        engine.qos is None
        for engine in server.storage.block_layer.device.engines
    )
    assert plan_now == bare_now
    assert plan_snap == bare_snap
    assert plan_trace == bare_trace  # byte-identical Chrome trace


def test_empty_plan_registers_no_metrics():
    # Even a late attach_obs on an empty plan must not touch the
    # registry -- there are no states to bind.
    obs = Observability()
    plan = QosPlan()
    plan.attach_obs(obs)
    assert obs.metrics.names() == []

"""Unit tests for the QoS primitives: admission control, write-stall
gating, the circuit breaker automaton, and the device-layer limiters.
Everything here is deterministic -- no RNG, no real system build.
"""

import pytest

from repro.faults.errors import TransientFault
from repro.qos import (
    AdmissionConfig,
    AdmissionController,
    BlockWriteLimiter,
    BreakerState,
    ChannelQosState,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    RequestSheddedError,
    WriteStallConfig,
)
from repro.sim import MS, Simulator


# -- admission ------------------------------------------------------------------------


def test_admission_sheds_class_over_its_limit():
    sim = Simulator()
    ctl = AdmissionController(sim, AdmissionConfig(max_reads=2))
    ctl.try_admit("read", None)
    ctl.try_admit("read", None)
    with pytest.raises(RequestSheddedError):
        ctl.try_admit("read", None)
    assert ctl.shed["read"].value == 1
    # Classes are independent: writes are unlimited here.
    for _ in range(10):
        ctl.try_admit("write", None)
    # A release frees a read slot again.
    ctl.release("read")
    ctl.try_admit("read", None)
    assert ctl.inflight == {"read": 2, "write": 10, "scan": 0}


def test_admission_sheds_expired_deadline_on_arrival():
    sim = Simulator()
    ctl = AdmissionController(sim, AdmissionConfig())
    sim.run(until=sim.now + 5 * MS)
    with pytest.raises(DeadlineExceededError):
        ctl.try_admit("read", 2 * MS)  # passed 3 ms ago
    assert ctl.deadline_sheds.value == 1
    assert ctl.inflight["read"] == 0  # never admitted
    # A live deadline admits normally.
    ctl.try_admit("read", sim.now + 1)


def test_admission_expired_respects_shed_expired_flag():
    sim = Simulator()
    lax = AdmissionController(sim, AdmissionConfig(shed_expired=False))
    sim.run(until=sim.now + 5 * MS)
    lax.try_admit("read", 1 * MS)  # expired but not shed
    assert lax.expired(1 * MS) is False
    strict = AdmissionController(sim, AdmissionConfig())
    assert strict.expired(1 * MS) is True
    assert strict.expired(None) is False
    assert strict.expired(sim.now) is False  # exactly on time is on time


def test_shed_errors_are_transient_faults():
    # The retry/failover machinery catches TransientFault; sheds must
    # flow through it like dropped messages.
    for exc in (RequestSheddedError, DeadlineExceededError, CircuitOpenError):
        assert issubclass(exc, TransientFault)


# -- write stalls ---------------------------------------------------------------------


class FakeSlice:
    """A slice whose LSM pressure is set directly by the test."""

    def __init__(self, sim, pressure="ok"):
        self.sim = sim
        self.pressure = pressure

    def write_pressure(self, config):
        return self.pressure


def run_gate(sim, ctl, slice_, deadline_ns=None):
    outcome = {}

    def proc():
        try:
            yield from ctl.write_stall_gate(slice_, deadline_ns)
        except DeadlineExceededError:
            outcome["shed"] = True
            return
        outcome["done_at"] = sim.now

    sim.run(until=sim.process(proc()))
    return outcome


def test_write_stall_gate_is_noop_when_ok():
    sim = Simulator()
    ctl = AdmissionController(sim, stall=WriteStallConfig(stall_pending_patches=4))
    outcome = run_gate(sim, ctl, FakeSlice(sim, "ok"))
    assert outcome["done_at"] == 0  # no simulated time consumed
    assert ctl.write_stalls.value == 0


def test_write_stall_delays_one_interval():
    sim = Simulator()
    cfg = WriteStallConfig(stall_pending_patches=4, stall_delay_ns=3 * MS)
    ctl = AdmissionController(sim, stall=cfg)
    outcome = run_gate(sim, ctl, FakeSlice(sim, "stall"))
    assert outcome["done_at"] == 3 * MS
    assert ctl.write_stalls.value == 1
    assert ctl.write_stops.value == 0


def test_write_stop_blocks_until_pressure_drops():
    sim = Simulator()
    cfg = WriteStallConfig(stop_pending_patches=8, stall_delay_ns=1 * MS)
    ctl = AdmissionController(sim, stall=cfg)
    slice_ = FakeSlice(sim, "stop")

    def relieve():
        yield sim.timeout(int(2.5 * MS))
        slice_.pressure = "ok"

    sim.process(relieve())
    outcome = run_gate(sim, ctl, slice_)
    # Polled at 1, 2, 3 ms; pressure dropped at 2.5 ms -> released at 3.
    assert outcome["done_at"] == 3 * MS
    assert ctl.write_stops.value == 3


def test_write_stop_sheds_when_deadline_passes_while_blocked():
    sim = Simulator()
    cfg = WriteStallConfig(stop_pending_patches=8, stall_delay_ns=1 * MS)
    ctl = AdmissionController(sim, stall=cfg)
    outcome = run_gate(sim, ctl, FakeSlice(sim, "stop"), deadline_ns=4 * MS)
    assert outcome.get("shed") is True
    assert ctl.deadline_sheds.value == 1
    assert sim.now == 5 * MS  # shed on the first poll past the deadline


# -- circuit breaker ------------------------------------------------------------------


def test_breaker_trips_after_consecutive_failures_only():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=3, reset_ns=10 * MS)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the streak
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens.value == 1


def test_breaker_open_rejects_then_probes_then_recloses():
    sim = Simulator()
    breaker = CircuitBreaker(
        sim, failure_threshold=1, reset_ns=10 * MS, half_open_successes=2
    )
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow() is False
    assert breaker.rejections.value == 1
    sim.run(until=sim.now + 10 * MS)
    assert breaker.allow() is True  # cooldown elapsed -> half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success()
    assert breaker.state is BreakerState.HALF_OPEN  # needs 2 successes
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.closes.value == 1
    states = [(frm.value, to.value) for _, frm, to in breaker.transitions]
    assert states == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]


def test_breaker_half_open_failure_retrips_for_full_cooldown():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, reset_ns=10 * MS)
    breaker.record_failure()
    sim.run(until=sim.now + 10 * MS)
    assert breaker.allow() is True  # probe
    breaker.record_failure()  # probe failed
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens.value == 2
    sim.run(until=sim.now + 9 * MS)
    assert breaker.allow() is False  # new cooldown started at the re-trip


# -- device-layer limiters ------------------------------------------------------------


def test_channel_qos_bounds_concurrent_inner_execution():
    sim = Simulator()
    state = ChannelQosState(sim, channel=0, max_inflight=2)
    live = {"now": 0, "max": 0}

    def inner():
        live["now"] += 1
        live["max"] = max(live["max"], live["now"])
        yield sim.timeout(1 * MS)
        live["now"] -= 1

    procs = [sim.process(state.admitted(inner())) for _ in range(6)]
    sim.run()
    assert all(p.triggered for p in procs)
    assert live["max"] == 2  # never more than the bound inside
    assert live["now"] == 0
    # 6 ops over 2 slots of 1 ms each -> 3 serial waves.
    assert sim.now == 3 * MS
    assert state.throttled.value == 4  # all but the first wave waited
    assert state.throttle_wait_ns.value == 2 * (1 * MS) + 2 * (2 * MS)


def test_block_write_limiter_is_per_channel():
    sim = Simulator()
    limiter = BlockWriteLimiter(sim, n_channels=2, max_inflight=1)
    order = []

    def writer(tag, channel, hold_ns):
        slot = yield from limiter.acquire(channel)
        order.append((tag, sim.now))
        yield sim.timeout(hold_ns)
        limiter.release(channel, slot)

    sim.process(writer("a0", 0, 2 * MS))
    sim.process(writer("b0", 0, 1 * MS))  # same channel: waits for a0
    sim.process(writer("c1", 1, 1 * MS))  # other channel: immediate
    sim.run()
    assert order == [("a0", 0), ("c1", 0), ("b0", 2 * MS)]
    assert limiter.write_throttled.value == 1
    assert limiter.write_throttle_wait_ns.value == 2 * MS

"""Chaos tier for the QoS plane: a replica browns out (every CPU charge
x200) mid-workload while clients run circuit breakers and a total retry
budget.  The breaker must trip -- converting the brownout from a
retry-amplified stampede into fast local failure -- the behind ledger
must cover writes the sick replica missed, and after the brownout ends
and the heal runs, **zero acknowledged writes may be lost**.

The unmarked test is the tier-1 smoke; the ``chaos``-marked ones run the
same harness longer under the CI seed matrix (``CHAOS_SEED``).
"""

import os

import numpy as np
import pytest

from repro.cluster import ReplicatedKV, build_sdf_server
from repro.faults import (
    BROWNOUT,
    FaultPlan,
    FaultRunner,
    RetryPolicy,
    attach_server_faults,
)
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.obs import Observability, attach_server
from repro.qos import BreakerState, CircuitBreaker
from repro.sim import MS, S, Simulator

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

KEYS = [k * 53 for k in range(20)]

#: Brownout geometry: starts a few ops into the run and lasts long
#: enough for the breaker to trip, probe once while the node is still
#: sick, re-trip, and finally reclose against the healed node.
BROWNOUT_AT_NS = 5 * MS
BROWNOUT_NS = 120 * MS
MULTIPLIER = 200.0
#: Client think time between ops, so the workload spans the whole
#: brownout-and-recovery timeline instead of racing past it.
THINK_NS = 2 * MS


def _replica(sim):
    lsm = LSMTree(memtable_bytes=64 * 1024, durable_wal=True)
    return build_sdf_server(
        sim,
        [Slice(0, KeyRange(0, 1_000_000), lsm=lsm)],
        capacity_scale=0.01,
        n_channels=4,
    )


def run_brownout_chaos(seed, n_ops=60):
    """One seeded brownout run.  Returns everything the asserts need."""
    sim = Simulator()
    obs = Observability(trace=True)
    plan = FaultPlan(seed=seed)
    servers = [_replica(sim) for _ in range(3)]
    for index, server in enumerate(servers):
        attach_server_faults(plan, server, site=f"node{index}")
    attach_server(obs, servers[1])  # the replica that browns out
    plan.attach_obs(obs)

    plan.schedule(
        "node1",
        BROWNOUT,
        at_ns=BROWNOUT_AT_NS,
        duration_ns=BROWNOUT_NS,
        multiplier=MULTIPLIER,
    )

    # Per-attempt timeout far above the healthy put tail (~0.2 ms
    # for 1 KB values -- small enough that the replicas' correlated
    # memtable freezes never stall a put) yet well under the browned-out
    # service time (~200 us CPU x 200 = ~40 ms), so only the sick node
    # fails; the breaker needs 3 in a row, then cools down for 40 ms.
    breakers = [
        CircuitBreaker(
            sim, failure_threshold=3, reset_ns=40 * MS, name=f"node{i}"
        )
        for i in range(3)
    ]
    for breaker in breakers:
        breaker.bind_obs(obs)
    kv = ReplicatedKV(
        sim,
        servers,
        faults=plan.injector("replication"),
        retry=RetryPolicy(timeout_ns=15 * MS, max_attempts=5),
        rng=np.random.default_rng(seed),
        breakers=breakers,
    )
    runner = FaultRunner(sim, plan)
    for index, server in enumerate(servers):
        runner.bind(f"node{index}", server, on_restore=lambda i=index: kv.heal(i))
    runner.start()

    model = {}
    rng = np.random.default_rng(seed)

    def driver():
        seq = 0
        for _ in range(n_ops):
            key = KEYS[int(rng.integers(0, len(KEYS)))]
            if rng.random() < 0.6 or key not in model:
                value = f"{key}:{seq}".encode().ljust(1024, b".")
                seq += 1
                yield from kv.put(key, value)
                model[key] = value
            else:
                got = yield from kv.get(key)
                assert got == model[key], f"stale read of {key}"
            yield sim.timeout(THINK_NS)

    sim.run(until=sim.process(driver()))
    # Let the brownout window close, the heal land, stragglers drain.
    sim.run(until=max(sim.now, BROWNOUT_AT_NS + BROWNOUT_NS) + 1 * S)
    # Writes issued between the mid-run heal and the breaker reclosing
    # were debited to the ledger; a final resync clears that debt (the
    # operator-driven "catch the node back up" step).
    sim.run(until=sim.process(kv.heal(1)))

    final = {}

    def verify():
        for key in sorted(model):
            final[key] = yield from kv.get(key)

    sim.run(until=sim.process(verify()))
    digest = (
        sim.now,
        tuple(sorted(model.items())),
        tuple(sorted(final.items())),
        tuple(plan.signatures()),
        tuple(
            (b.opens.value, b.closes.value, b.rejections.value)
            for b in breakers
        ),
    )
    return {
        "sim": sim,
        "plan": plan,
        "obs": obs,
        "kv": kv,
        "servers": servers,
        "breakers": breakers,
        "model": model,
        "final": final,
        "digest": digest,
    }


def _assert_invariants(run):
    # Zero acknowledged-write losses, no stale reads, ledger healed.
    assert run["final"] == run["model"]
    assert run["kv"].data_loss_events.value == 0
    assert run["kv"].behind_count() == 0
    # The brownout actually ran its course on node 1.
    plan = run["plan"]
    assert plan.fault_count("node1", BROWNOUT) == 1
    assert plan.recovery_count("node1", "brownout_end") == 1
    assert run["servers"][1].slowdown == 1.0  # restored
    # The breaker for the sick node tripped and shed load locally;
    # the healthy nodes' breakers never moved.
    sick = run["breakers"][1]
    assert sick.opens.value >= 1
    assert sick.rejections.value >= 1
    assert run["breakers"][0].opens.value == 0
    assert run["breakers"][2].opens.value == 0
    # With traffic continuing after the heal, the probe succeeded and
    # the breaker closed again.
    assert sick.state is BreakerState.CLOSED
    assert sick.closes.value >= 1


def test_brownout_breaker_smoke_zero_acked_write_loss():
    run = run_brownout_chaos(seed=11, n_ops=60)
    _assert_invariants(run)
    # The brownout and breaker activity surfaced through repro.obs.
    snap = run["obs"].snapshot(run["sim"].now)
    assert snap["faults.node1.brownout"] == 1
    assert snap["server.brownouts"] == 1
    assert snap["qos.node1.opens"] >= 1
    assert snap["qos.node1.state"] == 0  # closed again


@pytest.mark.chaos
def test_chaos_tier_brownout_breaker_seeded_run():
    run = run_brownout_chaos(seed=CHAOS_SEED, n_ops=250)
    _assert_invariants(run)


@pytest.mark.chaos
def test_chaos_tier_brownout_determinism_under_seed():
    a = run_brownout_chaos(seed=CHAOS_SEED, n_ops=150)
    b = run_brownout_chaos(seed=CHAOS_SEED, n_ops=150)
    assert a["digest"] == b["digest"]

"""Unit tests for arrival schedules and tenant declarations."""

import numpy as np
import pytest

from repro.sim.units import MS
from repro.workloads import (
    ArrivalStats,
    DiurnalWave,
    OpenLoopArrivals,
    OpMix,
    RateSchedule,
    SizeDistribution,
    SloSpec,
    Spike,
    TenantSpec,
    UniformKeyModel,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_E,
)

SECOND = 1_000_000_000


# --- rate schedules --------------------------------------------------------


def test_diurnal_wave_swings_around_base():
    wave = DiurnalWave(amplitude=0.5, period_ns=SECOND)
    assert wave.multiplier(0) == pytest.approx(1.0)
    assert wave.multiplier(SECOND // 4) == pytest.approx(1.5)
    assert wave.multiplier(3 * SECOND // 4) == pytest.approx(0.5)


def test_spike_window():
    spike = Spike(at_ns=100, duration_ns=50, multiplier=4.0)
    assert not spike.active(99)
    assert spike.active(100) and spike.active(149)
    assert not spike.active(150)


def test_rate_at_composes_wave_and_spike():
    schedule = RateSchedule(
        base_rps=100.0,
        wave=DiurnalWave(amplitude=0.5, period_ns=SECOND),
        spikes=(Spike(at_ns=0, duration_ns=SECOND, multiplier=2.0),),
    )
    assert schedule.rate_at(SECOND // 4) == pytest.approx(300.0)
    assert schedule.peak_rate() >= max(
        schedule.rate_at(t) for t in range(0, SECOND, SECOND // 50)
    )


def test_rate_schedule_validation():
    with pytest.raises(ValueError):
        RateSchedule(base_rps=0.0)
    with pytest.raises(ValueError):
        DiurnalWave(amplitude=1.5)
    with pytest.raises(ValueError):
        Spike(at_ns=-1, duration_ns=10)
    with pytest.raises(ValueError):
        Spike(at_ns=0, duration_ns=0)


# --- open-loop arrivals ----------------------------------------------------


def test_poisson_arrivals_are_ascending_and_bounded():
    schedule = RateSchedule(base_rps=500.0)
    arrivals = OpenLoopArrivals(schedule)
    times = list(arrivals.times(np.random.default_rng(1), 0, SECOND))
    assert times == sorted(times)
    assert all(0 <= t < SECOND for t in times)
    # ~500 expected; Poisson keeps it well within +-40%.
    assert 300 < len(times) < 700


def test_poisson_arrivals_deterministic_per_seed():
    schedule = RateSchedule(
        base_rps=200.0, wave=DiurnalWave(amplitude=0.3, period_ns=SECOND)
    )
    arrivals = OpenLoopArrivals(schedule)
    first = list(arrivals.times(np.random.default_rng(7), 0, SECOND))
    second = list(arrivals.times(np.random.default_rng(7), 0, SECOND))
    third = list(arrivals.times(np.random.default_rng(8), 0, SECOND))
    assert first == second
    assert first != third


def test_spike_visibly_raises_arrival_density():
    spike = Spike(
        at_ns=SECOND // 2, duration_ns=SECOND // 4, multiplier=5.0
    )
    schedule = RateSchedule(base_rps=200.0, spikes=(spike,))
    arrivals = OpenLoopArrivals(schedule)
    stats = ArrivalStats(bucket_ns=SECOND // 4)
    for t in arrivals.times(np.random.default_rng(3), 0, SECOND):
        stats.record(t)
    # Bucket 2 holds the flash crowd: ~5x the surrounding buckets.
    assert stats.counts[2] > 2.5 * max(stats.counts[0], stats.counts[1])


def test_paced_arrivals_are_exact():
    schedule = RateSchedule(base_rps=1000.0)  # 1 ms apart
    arrivals = OpenLoopArrivals(schedule, poisson=False)
    times = list(arrivals.times(np.random.default_rng(0), 0, 10 * MS))
    assert times == [i * MS for i in range(10)]


def test_empty_window_yields_nothing():
    arrivals = OpenLoopArrivals(RateSchedule(base_rps=100.0))
    assert list(arrivals.times(np.random.default_rng(0), 50, 50)) == []


# --- op mixes and tenants --------------------------------------------------


def test_op_mix_normalises():
    mix = OpMix(read=2.0, write=1.0, scan=1.0)
    assert mix.read == pytest.approx(0.5)
    assert mix.write == pytest.approx(0.25)
    assert mix.scan == pytest.approx(0.25)
    assert mix.ratio("read") == mix.read


def test_op_mix_sample_ratios_within_tolerance():
    mix = OpMix(read=0.7, write=0.2, scan=0.1)
    rng = np.random.default_rng(11)
    draws = [mix.sample(rng) for _ in range(5_000)]
    for kind in ("read", "write", "scan"):
        fraction = draws.count(kind) / len(draws)
        assert abs(fraction - mix.ratio(kind)) < 0.03


def test_ycsb_presets():
    assert YCSB_A.read == pytest.approx(0.5)
    assert YCSB_B.read == pytest.approx(0.95)
    assert YCSB_C.read == pytest.approx(1.0)
    assert YCSB_E.scan == pytest.approx(0.95)


def test_op_mix_validation():
    with pytest.raises(ValueError):
        OpMix(read=0.0, write=0.0, scan=0.0)
    with pytest.raises(ValueError):
        OpMix(read=-1.0, write=2.0)
    with pytest.raises(ValueError):
        OpMix().ratio("delete")


def test_slo_and_tenant_validation():
    with pytest.raises(ValueError):
        SloSpec(deadline_ns=0)
    with pytest.raises(ValueError):
        SloSpec(target_p99_ns=0)
    with pytest.raises(ValueError):
        SloSpec(min_goodput_rps=0.0)
    good = dict(
        mix=YCSB_B,
        keys=UniformKeyModel(0, 100),
        sizes=SizeDistribution(fixed=1024),
        arrivals=RateSchedule(base_rps=10.0),
    )
    tenant = TenantSpec(name="web", **good)
    assert tenant.slo.deadline_ns > 0
    with pytest.raises(ValueError):
        TenantSpec(name="", **good)
    with pytest.raises(ValueError):
        TenantSpec(name="a.b", **good)
    with pytest.raises(ValueError):
        TenantSpec(name="a/b", **good)
    with pytest.raises(ValueError):
        TenantSpec(name="web", scan_span=0, **good)

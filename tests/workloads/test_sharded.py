"""Sharded scenario execution: byte-identical to in-process, any workers.

The contract under test (see :mod:`repro.sim.shard` and
:func:`repro.workloads.scenarios.run_scenario_sharded`): with a static
control plane, a fleet scenario factors into one independent
sub-simulation per node, and the merged ``ScenarioResult.to_json`` is
byte-identical to the in-process run for *any* worker count -- including
real forked workers racing to fill the result queue.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.attach import Observability
from repro.qos import AdmissionConfig, BreakerConfig, ChannelQosConfig, QosPlan
from repro.sim.shard import SealedHorizonMerger, ShardError, run_sharded
from repro.sim.units import MS
from repro.workloads import FaultBurst, run_scenario, run_scenario_sharded
from repro.workloads.scenarios import ScenarioRunner

from tests.workloads.test_scenarios import tiny_scenario, tiny_tenant


def _qos():
    return QosPlan(
        channel=ChannelQosConfig(max_inflight_ops=8),
        admission=AdmissionConfig(max_reads=32, max_writes=16),
        breaker=BreakerConfig(failure_threshold=4, reset_ns=20 * MS),
    )


# --- the headline guarantee -------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_byte_identical_to_in_process(workers):
    """Real forked workers, two tenants, faults and QoS: the merged
    report must be byte-identical to the in-process run."""
    scenario = tiny_scenario(
        tenants=(tiny_tenant("web"), tiny_tenant("bulk", rps=40.0)),
        faults=(
            FaultBurst(node=1, at_ns=20 * MS, duration_ns=10 * MS),
            FaultBurst(node=0, at_ns=25 * MS, duration_ns=5 * MS),
        ),
    )
    base = run_scenario(scenario, qos=_qos())
    sharded = run_scenario(scenario, qos=_qos(), shard_workers=workers)
    assert sharded.to_json() == base.to_json()


def test_sharded_merged_fault_log_matches_chronology():
    """With tie-free timestamps the merged fault log reproduces the
    in-process chronology exactly; with ties it is still deterministic
    (ordered by node) and the same multiset of events."""
    # Distinct fire and recovery instants: no cross-node ties.
    scenario = tiny_scenario(
        faults=(
            FaultBurst(node=1, at_ns=20 * MS, duration_ns=10 * MS),
            FaultBurst(node=0, at_ns=25 * MS, duration_ns=7 * MS),
        ),
    )
    runner = ScenarioRunner(scenario, obs=Observability())
    runner.run()
    merged = run_scenario_sharded(scenario, 2).snapshot["faults.merged_log"]
    assert merged == [tuple(s) for s in runner.plan.signatures()]

    # Simultaneous recoveries: cross-shard ties have no causal order, so
    # the merger breaks them by stream -- deterministically.
    tied = tiny_scenario(
        faults=(
            FaultBurst(node=1, at_ns=20 * MS, duration_ns=10 * MS),
            FaultBurst(node=0, at_ns=25 * MS, duration_ns=5 * MS),
        ),
    )
    logs = [
        run_scenario_sharded(tied, workers).snapshot["faults.merged_log"]
        for workers in (1, 2)
    ]
    assert logs[0] == logs[1]
    times = [event[2] for event in logs[0]]
    assert times == sorted(times)


def test_sharded_rejects_dynamic_control_plane():
    from repro.policy import Hysteresis, PolicyPlan, Rule
    from repro.policy.actions import SetAdmission
    from repro.policy.signals import MetricSignal

    with pytest.raises(ConfigError):
        run_scenario_sharded(tiny_scenario(rebalance_every_ns=20 * MS), 2)

    active = PolicyPlan(
        rules=(
            Rule(
                name="tighten",
                signal=MetricSignal("qos.n0.shed_reads"),
                hysteresis=Hysteresis(upper=1.0, lower=0.0),
                action=SetAdmission(max_reads=1, max_writes=1),
            ),
        )
    )
    with pytest.raises(ConfigError):
        run_scenario_sharded(tiny_scenario(), 2, policy=active)
    # An *empty* plan is the documented no-op and stays eligible.
    result = run_scenario_sharded(tiny_scenario(), 2, policy=PolicyPlan())
    assert result.tenants["web"].offered > 0


def test_only_node_validation():
    with pytest.raises(ConfigError):
        ScenarioRunner(tiny_scenario(), only_node=9)


# --- worker-count invariance as a property ----------------------------------


@st.composite
def _shard_configs(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=3))
    n_slices = draw(st.integers(min_value=n_nodes, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rps = draw(st.sampled_from([40.0, 90.0]))
    with_fault = draw(st.booleans())
    faults = (
        (FaultBurst(node=n_nodes - 1, at_ns=10 * MS, duration_ns=8 * MS),)
        if with_fault
        else ()
    )
    return dict(
        n_nodes=n_nodes,
        n_slices=n_slices,
        seed=seed,
        duration_ns=30 * MS,
        tenants=(tiny_tenant(rps=rps),),
        faults=faults,
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=_shard_configs(), workers=st.integers(min_value=1, max_value=5))
def test_worker_count_never_changes_observables(config, workers):
    """Property: for any eligible scenario, the worker count used to run
    the shards never changes a single observable byte."""
    scenario = tiny_scenario(**config)
    # Inline single-worker run as the canonical merged result; the drawn
    # worker count (with real processes when > 1) must reproduce it.
    canonical = run_scenario_sharded(scenario, 1)
    probed = run_scenario_sharded(scenario, workers)
    assert probed.to_json() == canonical.to_json()
    assert (
        probed.snapshot["faults.merged_log"]
        == canonical.snapshot["faults.merged_log"]
    )


# --- the runtime pieces in isolation ----------------------------------------


def test_run_sharded_orders_results_and_surfaces_failures():
    tasks = [lambda value=value: value * value for value in range(7)]
    assert run_sharded(tasks, 3) == [v * v for v in range(7)]
    assert run_sharded(tasks, 3, inline=True) == [v * v for v in range(7)]

    def boom():
        raise RuntimeError("shard exploded")

    with pytest.raises(ShardError, match="shard exploded"):
        run_sharded([lambda: 1, boom, lambda: 3], 2)


def test_sealed_horizon_merger_releases_only_sealed_prefix():
    merger = SealedHorizonMerger(2)
    merger.push(0, 5, "a")
    merger.push(1, 3, "b")
    merger.advance(0, 10)
    assert merger.release() == []  # stream 1 could still push at 0
    merger.advance(1, 6)
    assert merger.release() == ["b", "a"]
    merger.push(1, 6, "c")
    with pytest.raises(ValueError):
        merger.push(0, 4, "late")  # behind stream 0's watermark
    assert merger.drain() == ["c"]

"""Scenario engine tests: validation, determinism, plane integration.

The full fleet-day lives in ``benchmarks/test_fleet_day.py``; these are
the tier-1 guarantees: a scenario validates its shape, runs the same
twice, and reports per-tenant outcomes through the metrics registry.
"""

import json

import pytest

from repro.qos import AdmissionConfig, BreakerConfig, QosPlan
from repro.sim.units import MS
from repro.workloads import (
    FaultBurst,
    RateSchedule,
    Scenario,
    SizeDistribution,
    SloSpec,
    TenantSpec,
    UniformKeyModel,
    YCSB_B,
    ZipfianKeyModel,
    run_scenario,
)

SPAN = 4_000


def tiny_tenant(name="web", rps=150.0, **slo):
    return TenantSpec(
        name=name,
        mix=YCSB_B,
        keys=ZipfianKeyModel(0, SPAN),
        sizes=SizeDistribution(fixed=8 * 1024),
        arrivals=RateSchedule(base_rps=rps),
        slo=SloSpec(deadline_ns=50 * MS, **slo),
    )


def tiny_scenario(**overrides):
    settings = dict(
        name="tiny",
        tenants=(tiny_tenant(),),
        duration_ns=60 * MS,
        n_nodes=2,
        n_slices=4,
        key_span=SPAN,
        seed=5,
        preload_keys_per_slice=16,
    )
    settings.update(overrides)
    return Scenario(**settings)


# --- validation ------------------------------------------------------------


def test_scenario_validation():
    with pytest.raises(ValueError):
        tiny_scenario(tenants=())
    with pytest.raises(ValueError):
        tiny_scenario(tenants=(tiny_tenant(), tiny_tenant()))
    with pytest.raises(ValueError):
        tiny_scenario(key_span=2)  # fewer keys than slices
    with pytest.raises(ValueError):
        tiny_scenario(duration_ns=0)
    with pytest.raises(ValueError):
        tiny_scenario(faults=(FaultBurst(node=9, at_ns=0, duration_ns=1),))
    oversized = TenantSpec(
        name="big",
        mix=YCSB_B,
        keys=UniformKeyModel(0, SPAN * 2),
        sizes=SizeDistribution(fixed=1024),
        arrivals=RateSchedule(base_rps=1.0),
    )
    with pytest.raises(ValueError):
        tiny_scenario(tenants=(oversized,))


def test_fault_burst_validation():
    with pytest.raises(ValueError):
        FaultBurst(node=-1, at_ns=0, duration_ns=1)
    with pytest.raises(ValueError):
        FaultBurst(node=0, at_ns=0, duration_ns=0)
    with pytest.raises(ValueError):
        FaultBurst(node=0, at_ns=0, duration_ns=1, kind="meteor")


# --- runs ------------------------------------------------------------------


def test_scenario_runs_and_reports_through_obs():
    result = run_scenario(tiny_scenario())
    report = result.tenants["web"]
    assert report.offered > 0
    assert report.good > 0
    assert report.good + report.late + report.shed == report.offered
    # The report is assembled from the registry: the same numbers are
    # visible to any metrics consumer.
    assert result.snapshot["tenant.web.good"] == report.good
    assert result.snapshot["tenant.web.request_ns"]["count"] > 0
    # Server-side per-tenant request labels were recorded too.
    assert any(key.startswith("tenant.web.get") for key in result.snapshot)
    # The clock stops at the last drained event (which may precede
    # duration_ns when in-flight work finishes early).
    assert result.sim_end_ns > 0


def test_scenario_is_byte_identical_across_runs():
    scenario = tiny_scenario(
        tenants=(tiny_tenant("web"), tiny_tenant("bulk", rps=40.0)),
        faults=(FaultBurst(node=1, at_ns=20 * MS, duration_ns=10 * MS),),
        rebalance_every_ns=20 * MS,
    )

    def qos():
        return QosPlan(
            admission=AdmissionConfig(max_reads=32, max_writes=16),
            breaker=BreakerConfig(failure_threshold=4, reset_ns=20 * MS),
        )

    first = run_scenario(scenario, qos=qos())
    second = run_scenario(scenario, qos=qos())
    assert first.to_json() == second.to_json()
    payload = json.loads(first.to_json())
    assert set(payload["tenants"]) == {"web", "bulk"}


def test_fault_burst_fires_and_requests_survive():
    scenario = tiny_scenario(
        faults=(FaultBurst(node=0, at_ns=15 * MS, duration_ns=10 * MS),),
    )
    result = run_scenario(scenario)
    assert result.faults_fired == 1
    report = result.tenants["web"]
    # The crash costs retries (or sheds), but the run completes and
    # most requests still land.
    assert report.good > 0
    assert report.offered == report.good + report.late + report.shed


def test_slo_annotations():
    scenario = tiny_scenario(
        tenants=(
            tiny_tenant(
                # Absurdly lax targets: both verdicts must come back ok.
                target_p99_ns=10_000 * MS,
                min_goodput_rps=0.001,
            ),
        ),
    )
    result = run_scenario(scenario)
    report = result.tenants["web"]
    assert report.p99_slo_ok is True
    assert report.goodput_slo_ok is True
    # Undeclared targets stay unjudged.
    plain = run_scenario(tiny_scenario())
    assert plain.tenants["web"].p99_slo_ok is None
    assert plain.tenants["web"].goodput_slo_ok is None

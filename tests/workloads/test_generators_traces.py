"""Tests for the device drivers and trace replay."""

import numpy as np
import pytest

from repro.devices import build_device, HUAWEI_GEN3_SPEC
from repro.sim import MS, Simulator
from repro.workloads import (
    Trace,
    TraceEvent,
    drive_conventional_reads,
    drive_sdf_reads,
    drive_sdf_writes,
    replay_on_sdf,
)


def test_sdf_read_driver_reports_per_channel_bandwidth():
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=2)
    sdf.prefill(1.0)
    mb_s = drive_sdf_reads(
        sim, sdf, request_bytes=8192, duration_ns=100 * MS,
        rng=np.random.default_rng(0),
    )
    # Two channels of ~28 MB/s each (the Table 4 arithmetic).
    assert mb_s == pytest.approx(2 * 28.0, rel=0.15)


def test_sdf_read_driver_requires_prefill():
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=1)
    with pytest.raises(RuntimeError, match="prefill"):
        drive_sdf_reads(sim, sdf, 8192, duration_ns=10 * MS)


def test_sdf_write_driver_cycles_blocks():
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=1)
    mb_s = drive_sdf_writes(sim, sdf, duration_ns=800 * MS)
    assert mb_s == pytest.approx(22.0, rel=0.15)  # erase+write ~ 22 MB/s


def test_conventional_read_driver():
    sim = Simulator()
    device = build_device("conventional", sim, spec=HUAWEI_GEN3_SPEC, capacity_scale=0.004)
    device.prefill(0.5)
    mb_s = drive_conventional_reads(
        sim, device, request_bytes=64 * 1024, duration_ns=50 * MS,
        queue_depth=16,
    )
    assert 800 < mb_s < 1400  # near the 1.15-1.2 GB/s envelope


def test_trace_validation_and_ordering():
    trace = Trace()
    trace.append(TraceEvent(0, "read", 0, 0))
    trace.append(TraceEvent(10, "write", 0, 1))
    with pytest.raises(ValueError):
        trace.append(TraceEvent(5, "read", 0, 0))
    with pytest.raises(ValueError):
        TraceEvent(0, "explode", 0, 0)
    with pytest.raises(ValueError):
        TraceEvent(-1, "read", 0, 0)
    assert len(trace) == 2
    assert trace.duration_ns() == 10


def test_trace_scaling():
    trace = Trace([TraceEvent(1000, "read", 0, 0)])
    assert trace.scaled(0.5).events[0].at_ns == 500
    with pytest.raises(ValueError):
        trace.scaled(0)


def test_replay_open_loop_issues_at_timestamps():
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=2)
    sdf.prefill(1.0)
    trace = Trace(
        [
            TraceEvent(0, "read", 0, 0, 0, 1),
            TraceEvent(5 * MS, "read", 1, 0, 0, 1),
            TraceEvent(6 * MS, "erase", 0, 0),
        ]
    )
    latencies = replay_on_sdf(sim, sdf, trace, open_loop=True)
    assert len(latencies) == 3
    assert sim.now >= 6 * MS


def test_replay_closed_loop_serializes_per_channel():
    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=1)
    sdf.prefill(1.0)
    trace = Trace(
        [
            TraceEvent(0, "read", 0, 0, 0, 1),
            TraceEvent(0, "read", 0, 1, 0, 1),
            TraceEvent(0, "write", 0, 2),
        ]
    )
    latencies = replay_on_sdf(sim, sdf, trace, open_loop=False)
    assert len(latencies) == 3

"""Unit tests for size distributions and key-popularity models."""

import itertools
from collections import Counter

import numpy as np
import pytest

from repro.workloads import (
    FIG12_REQUEST_SIZES,
    FIG14_WRITE_SIZES,
    HotSetShiftKeyModel,
    SizeDistribution,
    UniformKeyModel,
    ZipfianKeyModel,
    sequential_keys,
    uniform_keys,
    zipfian_keys,
)


def test_fig12_sizes_match_paper():
    assert FIG12_REQUEST_SIZES["web-page"] == 32 * 1024
    assert FIG12_REQUEST_SIZES["thumbnail"] == 128 * 1024
    assert FIG12_REQUEST_SIZES["image"] == 512 * 1024


def test_fixed_distribution():
    dist = SizeDistribution(fixed=4096)
    rng = np.random.default_rng(0)
    assert all(dist.sample(rng) == 4096 for _ in range(10))


def test_choice_distribution_respects_weights():
    dist = SizeDistribution(choices=[100, 200], weights=[9, 1])
    rng = np.random.default_rng(1)
    samples = [dist.sample(rng) for _ in range(500)]
    assert samples.count(100) > samples.count(200) * 3


def test_log_uniform_distribution_bounds():
    rng = np.random.default_rng(2)
    samples = [FIG14_WRITE_SIZES.sample(rng) for _ in range(500)]
    assert all(100 * 1024 * 0.99 <= s <= 1024 * 1024 * 1.01 for s in samples)
    # Log-uniform: the geometric middle is well represented.
    assert min(samples) < 200 * 1024 and max(samples) > 700 * 1024


def test_distribution_validation():
    with pytest.raises(ValueError):
        SizeDistribution()
    with pytest.raises(ValueError):
        SizeDistribution(fixed=100, lo=1, hi=2)
    with pytest.raises(ValueError):
        SizeDistribution(fixed=0)
    with pytest.raises(ValueError):
        SizeDistribution(choices=[])
    with pytest.raises(ValueError):
        SizeDistribution(choices=[1, 2], weights=[1])
    with pytest.raises(ValueError):
        SizeDistribution(lo=10, hi=5)


def test_mean_estimate_is_sane():
    dist = SizeDistribution(fixed=1000)
    assert dist.mean_estimate(np.random.default_rng(0), n=10) == 1000


def test_sequential_keys():
    assert list(sequential_keys(3, 7)) == [3, 4, 5, 6]
    with pytest.raises(ValueError):
        sequential_keys(5, 5)


def test_uniform_keys_stay_in_range():
    rng = np.random.default_rng(3)
    keys = list(itertools.islice(uniform_keys(10, 20, rng), 200))
    assert all(10 <= key < 20 for key in keys)
    assert len(set(keys)) > 5


def test_zipfian_keys_are_skewed():
    rng = np.random.default_rng(4)
    keys = list(itertools.islice(zipfian_keys(0, 1000, rng), 3000))
    assert all(0 <= key < 1000 for key in keys)
    counts = sorted(
        (keys.count(key) for key in set(keys)), reverse=True
    )
    # The hottest key dwarfs the median key.
    assert counts[0] > 10 * max(1, counts[len(counts) // 2])


def test_zipfian_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        next(zipfian_keys(5, 5, rng))
    with pytest.raises(ValueError):
        next(zipfian_keys(0, 10, rng, theta=3.0))


# --- log-uniform boundary clamp (regression) -------------------------------


class _StubUniform:
    """An rng whose ``uniform`` draws exactly the requested value."""

    def __init__(self, value):
        self.value = value

    def uniform(self, lo, hi):
        return self.value


def test_log_uniform_boundary_draw_stays_in_bounds():
    # exp(log(1000)) rounds to 999.999...; int() then truncates BELOW
    # the declared lower bound.  The clamp keeps the sample in range.
    dist = SizeDistribution(lo=1000, hi=2000)
    assert int(np.exp(np.log(1000.0))) < 1000  # the failure mechanism
    assert dist.sample(_StubUniform(np.log(1000.0))) == 1000
    assert dist.sample(_StubUniform(np.log(2000.0))) <= 2000


def test_log_uniform_never_escapes_bounds_statistically():
    dist = SizeDistribution(lo=100, hi=101)  # tight range: boundary-heavy
    rng = np.random.default_rng(9)
    assert all(100 <= dist.sample(rng) <= 101 for _ in range(2000))


# --- key-popularity models -------------------------------------------------


def test_uniform_model_covers_range():
    model = UniformKeyModel(100, 200)
    rng = np.random.default_rng(5)
    keys = [model.sample(rng) for _ in range(500)]
    assert all(100 <= key < 200 for key in keys)
    assert len(set(keys)) > 60


def test_zipfian_spreads_hot_keys_over_full_range():
    # Regression: the old generator mapped rank r to key lo + r, so on a
    # large range every key landed in the first max_rank keys (a ~10k
    # prefix -- one slice of a production keyspace).  The affine rank
    # permutation must scatter hot ranks across the whole range.
    span = 1_000_000
    model = ZipfianKeyModel(0, span)
    rng = np.random.default_rng(6)
    keys = [model.sample(rng) for _ in range(2_000)]
    assert all(0 <= key < span for key in keys)
    assert max(keys) > span // 2, "keys confined to a prefix"
    assert min(keys) < span // 2
    # At least half the distinct keys live outside any 10k prefix.
    outside = sum(1 for key in set(keys) if key >= 10_000)
    assert outside > len(set(keys)) // 2


def test_zipfian_rank_ordering_survives_permutation():
    model = ZipfianKeyModel(0, 1_000_000, theta=0.99)
    rng = np.random.default_rng(7)
    counts = Counter(model.sample(rng) for _ in range(20_000))
    # rank_key exposes the rank -> key map; the hottest ranks must
    # dominate even though their keys are scattered.
    assert counts[model.rank_key(0)] > counts[model.rank_key(100)] > 0
    top = {model.rank_key(rank) for rank in range(10)}
    top_hits = sum(counts[key] for key in top)
    assert top_hits > 0.2 * sum(counts.values())


def test_zipfian_rank_key_is_a_bijection():
    model = ZipfianKeyModel(10, 130)  # span 120: even, composite
    keys = {model.rank_key(rank) for rank in range(120)}
    assert len(keys) == 120
    assert all(10 <= key < 130 for key in keys)


class _StubRandom:
    """An rng whose ``random`` draws exactly the given value."""

    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


def test_zipfian_clamp_at_cdf_edge():
    # Regression: cdf[-1] can round below 1.0; a draw landing in
    # (cdf[-1], 1) made searchsorted return n_ranks, indexing one off
    # the end.  The clamp maps it to the last rank instead.
    model = ZipfianKeyModel(0, 1_000_000)
    draw = 1.0 - 2 ** -53  # the largest double below 1.0
    key = model.sample(_StubRandom(draw))
    assert key == model.rank_key(model.n_ranks - 1)


def test_zipfian_small_range_unchanged():
    # Span below max_rank: every key is a rank; still in range/skewed.
    model = ZipfianKeyModel(0, 100)
    assert model.n_ranks == 100
    rng = np.random.default_rng(8)
    keys = [model.sample(rng) for _ in range(2_000)]
    assert all(0 <= key < 100 for key in keys)


def test_hot_set_shift_concentrates_and_moves():
    model = HotSetShiftKeyModel(
        0, 100_000, hot_keys=1_000, hot_weight=0.9, shift_period_ns=1_000
    )
    rng = np.random.default_rng(10)
    window0 = model.hot_window(0)
    in_window = sum(
        1
        for _ in range(2_000)
        if window0[0] <= model.sample(rng, now_ns=0) < window0[1]
    )
    assert in_window > 1_600  # ~90% of traffic in a 1% window
    # After one period the window has moved on (and no longer overlaps).
    window1 = model.hot_window(1_000)
    assert window1 != window0
    assert window1[0] >= window0[1] or window1[1] <= window0[0]


def test_hot_set_static_when_period_zero():
    model = HotSetShiftKeyModel(0, 10_000, shift_period_ns=0)
    assert model.hot_window(0) == model.hot_window(10**12)


def test_key_models_are_deterministic():
    span = 1_000_000
    for make in (
        lambda: UniformKeyModel(0, span),
        lambda: ZipfianKeyModel(0, span),
        lambda: HotSetShiftKeyModel(0, span, shift_period_ns=7),
    ):
        first = [
            make().sample(np.random.default_rng(42), now_ns=i)
            for i in range(50)
        ]
        second = [
            make().sample(np.random.default_rng(42), now_ns=i)
            for i in range(50)
        ]
        assert first == second


def test_sizes_are_deterministic():
    dist = SizeDistribution(lo=1024, hi=65536)
    first = [dist.sample(np.random.default_rng(3)) for _ in range(100)]
    second = [dist.sample(np.random.default_rng(3)) for _ in range(100)]
    assert first == second


def test_model_validation():
    with pytest.raises(ValueError):
        UniformKeyModel(5, 5)
    with pytest.raises(ValueError):
        ZipfianKeyModel(0, 10, theta=2.5)
    with pytest.raises(ValueError):
        ZipfianKeyModel(0, 10, max_rank=0)
    with pytest.raises(ValueError):
        HotSetShiftKeyModel(0, 10, hot_keys=11)
    with pytest.raises(ValueError):
        HotSetShiftKeyModel(0, 10, hot_weight=1.5)
    with pytest.raises(ValueError):
        HotSetShiftKeyModel(0, 10, shift_period_ns=-1)

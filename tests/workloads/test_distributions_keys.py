"""Unit tests for size distributions and key generators."""

import itertools

import numpy as np
import pytest

from repro.workloads import (
    FIG12_REQUEST_SIZES,
    FIG14_WRITE_SIZES,
    SizeDistribution,
    sequential_keys,
    uniform_keys,
    zipfian_keys,
)


def test_fig12_sizes_match_paper():
    assert FIG12_REQUEST_SIZES["web-page"] == 32 * 1024
    assert FIG12_REQUEST_SIZES["thumbnail"] == 128 * 1024
    assert FIG12_REQUEST_SIZES["image"] == 512 * 1024


def test_fixed_distribution():
    dist = SizeDistribution(fixed=4096)
    rng = np.random.default_rng(0)
    assert all(dist.sample(rng) == 4096 for _ in range(10))


def test_choice_distribution_respects_weights():
    dist = SizeDistribution(choices=[100, 200], weights=[9, 1])
    rng = np.random.default_rng(1)
    samples = [dist.sample(rng) for _ in range(500)]
    assert samples.count(100) > samples.count(200) * 3


def test_log_uniform_distribution_bounds():
    rng = np.random.default_rng(2)
    samples = [FIG14_WRITE_SIZES.sample(rng) for _ in range(500)]
    assert all(100 * 1024 * 0.99 <= s <= 1024 * 1024 * 1.01 for s in samples)
    # Log-uniform: the geometric middle is well represented.
    assert min(samples) < 200 * 1024 and max(samples) > 700 * 1024


def test_distribution_validation():
    with pytest.raises(ValueError):
        SizeDistribution()
    with pytest.raises(ValueError):
        SizeDistribution(fixed=100, lo=1, hi=2)
    with pytest.raises(ValueError):
        SizeDistribution(fixed=0)
    with pytest.raises(ValueError):
        SizeDistribution(choices=[])
    with pytest.raises(ValueError):
        SizeDistribution(choices=[1, 2], weights=[1])
    with pytest.raises(ValueError):
        SizeDistribution(lo=10, hi=5)


def test_mean_estimate_is_sane():
    dist = SizeDistribution(fixed=1000)
    assert dist.mean_estimate(np.random.default_rng(0), n=10) == 1000


def test_sequential_keys():
    assert list(sequential_keys(3, 7)) == [3, 4, 5, 6]
    with pytest.raises(ValueError):
        sequential_keys(5, 5)


def test_uniform_keys_stay_in_range():
    rng = np.random.default_rng(3)
    keys = list(itertools.islice(uniform_keys(10, 20, rng), 200))
    assert all(10 <= key < 20 for key in keys)
    assert len(set(keys)) > 5


def test_zipfian_keys_are_skewed():
    rng = np.random.default_rng(4)
    keys = list(itertools.islice(zipfian_keys(0, 1000, rng), 3000))
    assert all(0 <= key < 1000 for key in keys)
    counts = sorted(
        (keys.count(key) for key in set(keys)), reverse=True
    )
    # The hottest key dwarfs the median key.
    assert counts[0] > 10 * max(1, counts[len(counts) // 2])


def test_zipfian_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        next(zipfian_keys(5, 5, rng))
    with pytest.raises(ValueError):
        next(zipfian_keys(0, 10, rng, theta=3.0))

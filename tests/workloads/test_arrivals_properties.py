"""Hypothesis properties for open-loop arrivals under spiky schedules.

The example-based tests (`test_arrivals_tenants.py`) check shapes the
benchmarks rely on; these pin the *contract* for arbitrary schedules:

* arrival timestamps are strictly monotone integers inside the window
  (the scenario drivers assume this -- a duplicate timestamp would
  collapse two requests into one simulator event ordering);
* the instantaneous rate never exceeds :meth:`RateSchedule.peak_rate`
  (the Lewis-Shedler thinning envelope must dominate the rate, or the
  sampled process is not the scheduled one);
* the same (schedule, seed, window) always replays the identical
  sequence.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.sim.units import MS
from repro.workloads import (
    DiurnalWave,
    OpenLoopArrivals,
    RateSchedule,
    Spike,
)


@st.composite
def schedules(draw):
    base = draw(
        st.one_of(
            st.floats(0.5, 5_000.0, allow_nan=False),
            # Extreme rates: mean gaps of a few ns stress the integer
            # truncation that used to break strict monotonicity.
            st.floats(1e7, 5e8, allow_nan=False),
        )
    )
    wave = None
    if draw(st.booleans()):
        wave = DiurnalWave(
            amplitude=draw(st.floats(0.0, 0.9)),
            period_ns=draw(st.integers(1_000, 10**9)),
            phase=draw(st.floats(0.0, 1.0)),
        )
    spikes = draw(
        st.lists(
            st.builds(
                Spike,
                at_ns=st.integers(0, 50 * MS),
                duration_ns=st.integers(1, 20 * MS),
                multiplier=st.floats(0.1, 8.0),
            ),
            max_size=3,
        )
    )
    return RateSchedule(base_rps=base, wave=wave, spikes=tuple(spikes))


windows = st.tuples(st.integers(0, MS), st.integers(1, 50_000)).map(
    lambda pair: (pair[0], pair[0] + pair[1])
)


@given(
    schedule=schedules(),
    window=windows,
    seed=st.integers(0, 2**31),
    poisson=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_times_are_strictly_monotone_ints_inside_the_window(
    schedule, window, seed, poisson
):
    start_ns, end_ns = window
    arrivals = OpenLoopArrivals(schedule, poisson=poisson)
    times = list(
        arrivals.times(np.random.default_rng(seed), start_ns, end_ns)
    )
    for at in times:
        assert isinstance(at, int)
        assert start_ns <= at < end_ns
    for earlier, later in zip(times, times[1:]):
        assert later > earlier, "arrival times must be strictly ascending"


@given(
    schedule=schedules(),
    t_ns=st.integers(0, 10**9),
)
@settings(max_examples=200, deadline=None)
def test_rate_never_exceeds_the_schedule_peak(schedule, t_ns):
    assert schedule.rate_at(t_ns) <= schedule.peak_rate() * (1 + 1e-12)


@given(
    schedule=schedules(),
    window=windows,
    seed=st.integers(0, 2**31),
    poisson=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_same_inputs_replay_the_identical_sequence(
    schedule, window, seed, poisson
):
    start_ns, end_ns = window
    arrivals = OpenLoopArrivals(schedule, poisson=poisson)
    first = list(
        arrivals.times(np.random.default_rng(seed), start_ns, end_ns)
    )
    second = list(
        arrivals.times(np.random.default_rng(seed), start_ns, end_ns)
    )
    assert first == second


def test_spike_multiplies_arrivals_inside_its_window():
    """Example anchor: a 4x flash crowd lands ~4x the arrivals."""
    schedule = RateSchedule(
        base_rps=20_000.0,
        spikes=(Spike(at_ns=10 * MS, duration_ns=10 * MS, multiplier=4.0),),
    )
    times = list(
        OpenLoopArrivals(schedule).times(
            np.random.default_rng(3), 0, 30 * MS
        )
    )
    quiet = sum(1 for t in times if t < 10 * MS)
    crowd = sum(1 for t in times if 10 * MS <= t < 20 * MS)
    assert crowd > 2.5 * quiet

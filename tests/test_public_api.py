"""Export-drift guard for the public API surface.

Every ``repro`` package declares ``__all__``; these tests pin the
contract: every declared name resolves, nothing private is exported,
and every public (non-module) attribute a package's ``__init__``
pulls in is declared -- so adding an import without extending
``__all__`` (or vice versa) fails tier-1 instead of silently widening
or narrowing the API.
"""

import importlib
import pkgutil
from types import ModuleType

import pytest

import repro


def all_packages():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.ispkg:
            names.append(info.name)
    return sorted(names)


PACKAGES = all_packages()


@pytest.mark.parametrize("name", PACKAGES)
def test_package_declares_all(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    exported = module.__all__
    assert len(exported) == len(set(exported)), f"{name}: duplicate exports"
    for symbol in exported:
        assert not symbol.startswith("_") or symbol == "__version__", (
            f"{name} exports private name {symbol}"
        )
        assert hasattr(module, symbol), (
            f"{name}.__all__ names {symbol!r} but it does not resolve"
        )


@pytest.mark.parametrize("name", PACKAGES)
def test_no_undeclared_public_attributes(name):
    """Anything a package ``__init__`` binds publicly must be in
    ``__all__`` (submodules exempt: they are import side-effects)."""
    module = importlib.import_module(name)
    public = {
        attr
        for attr, obj in vars(module).items()
        if not attr.startswith("_") and not isinstance(obj, ModuleType)
    }
    undeclared = public - set(module.__all__)
    assert not undeclared, f"{name}: public but not in __all__: {undeclared}"


def test_star_import_matches_all():
    namespace = {}
    exec("from repro import *", namespace)
    got = {key for key in namespace if not key.startswith("__")}
    assert got == {n for n in repro.__all__ if not n.startswith("__")}


def test_top_level_exposes_the_error_hierarchy():
    from repro import (
        ClusterError,
        PermanentFault,
        ReproError,
        TransientFault,
        WrongEpochError,
    )

    assert issubclass(TransientFault, ReproError)
    assert issubclass(PermanentFault, ReproError)
    assert issubclass(ClusterError, ReproError)
    assert issubclass(WrongEpochError, TransientFault)
    assert issubclass(WrongEpochError, ClusterError)

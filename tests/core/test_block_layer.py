"""Unit tests for the user-space block layer and the public facade."""

import pytest

from repro import build_sdf_system
from repro.core import ErasePolicy, LeastLoadedPlacement, RoundRobinPlacement
from repro.core.block_layer import BlockNotFoundError
from repro.sim import MS


def small_system(**kwargs):
    kwargs.setdefault("capacity_scale", 0.004)
    kwargs.setdefault("n_channels", 4)
    return build_sdf_system(**kwargs)


def test_allocate_ids_are_unique_and_sequential():
    system = small_system()
    ids = [system.block_layer.allocate_id() for _ in range(5)]
    assert ids == [0, 1, 2, 3, 4]


def test_put_get_roundtrip_bytes():
    system = small_system()
    payload = bytes(range(256)) * 100
    block_id = system.put(payload)
    assert system.get(block_id, 0, len(payload)) == payload


def test_get_with_offset_crossing_pages():
    system = small_system()
    page = system.block_layer.page_size
    payload = b"A" * page + b"B" * page + b"C" * page
    block_id = system.put(payload)
    window = system.get(block_id, page - 3, 6)
    assert window == b"AAABBB"


def test_consecutive_ids_round_robin_over_channels():
    system = small_system()
    for _ in range(8):
        system.put(None)
    channels = [
        system.block_layer.location_of(block_id).channel
        for block_id in range(8)
    ]
    assert channels == [0, 1, 2, 3, 0, 1, 2, 3]


def test_least_loaded_placement_spreads_blocks():
    system = small_system(placement=LeastLoadedPlacement())
    for _ in range(8):
        system.put(None)
    channels = [
        system.block_layer.location_of(block_id).channel
        for block_id in range(8)
    ]
    assert sorted(set(channels)) == [0, 1, 2, 3]
    assert all(channels.count(c) == 2 for c in range(4))


def test_rewrite_same_id_frees_old_block():
    system = small_system()
    block_id = system.put(b"first")
    first_location = system.block_layer.location_of(block_id)
    system.put(b"second", block_id=block_id)
    assert system.get(block_id, 0, 6) == b"second"
    assert system.block_layer.stored_blocks == 1
    # The freed block is erased in the background and reused eventually.
    assert first_location is not None


def test_free_then_read_raises():
    system = small_system()
    block_id = system.put(b"data")
    system.delete(block_id)
    with pytest.raises(BlockNotFoundError):
        system.get(block_id)
    with pytest.raises(BlockNotFoundError):
        system.delete(block_id)


def test_background_erase_returns_blocks_to_ready_pool():
    system = small_system(n_channels=1)
    layer = system.block_layer
    n_blocks = system.device.ftls[0].n_logical_blocks
    # Fill the whole channel, then free everything.
    ids = [system.put(None) for _ in range(n_blocks)]
    for block_id in ids:
        system.delete(block_id)
    system.sim.run(until=system.sim.now + 500 * MS)
    assert layer.background_erases == n_blocks
    # And the channel is fully writable again.
    for _ in range(n_blocks):
        system.put(None)


def test_write_blocks_until_background_erase_frees_space():
    """When every block is dirty, a write waits for the eraser rather
    than failing."""
    system = small_system(n_channels=1)
    n_blocks = system.device.ftls[0].n_logical_blocks
    ids = [system.put(None) for _ in range(n_blocks)]
    for block_id in ids:
        system.delete(block_id)
    # Immediately write again: must succeed after erases complete.
    block_id = system.put(b"after-erase")
    assert system.get(block_id, 0, 11) == b"after-erase"


def test_inline_erase_policy_pays_erase_on_write_path():
    system = small_system(n_channels=1, erase_policy=ErasePolicy.INLINE)
    n_blocks = system.device.ftls[0].n_logical_blocks
    ids = [system.put(None) for _ in range(n_blocks)]
    for block_id in ids:
        system.run(system.block_layer.free(block_id))
    erases_before = system.device.stats.erase_latency
    n_before = len(erases_before)
    system.put(None)  # must erase inline
    assert len(system.device.stats.erase_latency) == n_before + 1


def test_oversized_payload_rejected():
    system = small_system()
    too_big = b"x" * (system.block_layer.block_bytes + 1)
    with pytest.raises(ValueError, match="exceeds"):
        system.put(too_big)


def test_bad_page_list_rejected():
    system = small_system()
    with pytest.raises(ValueError, match="page list"):
        system.put(None, block_id=None) if False else system.run(
            system.block_layer.write(0, ["just-one-page"])
        )


def test_read_range_validation():
    system = small_system()
    block_id = system.put(b"abc")
    with pytest.raises(ValueError):
        system.get(block_id, -1, 2)
    with pytest.raises(ValueError):
        system.get(block_id, 0, system.block_layer.block_bytes + 1)
    assert system.get(block_id, 5, 0) == b""


def test_placeholder_write_reads_back_as_payload_list():
    system = small_system()
    block_id = system.put(None)
    result = system.get(block_id, 0, system.block_layer.page_size)
    assert result == [None]


def test_round_robin_and_least_loaded_choose_valid_channels():
    rr = RoundRobinPlacement()
    assert rr.choose(7, [0, 0, 0, 0]) == 3
    ll = LeastLoadedPlacement()
    assert ll.choose(0, [2, 0, 1]) == 1


def test_facade_repr_mentions_state():
    system = small_system()
    system.put(b"x")
    assert "stored_blocks=1" in repr(system)


def test_functional_read_validates_range_like_read():
    """Regression: functional_read skipped the offset/nbytes validation
    that read() enforces, silently returning truncated/empty bytes."""
    system = small_system()
    block_id = system.put(b"abc")
    layer = system.block_layer
    functional = layer.functional_read(block_id, 0, 3)
    assert functional == b"abc"
    with pytest.raises(ValueError, match="outside the block"):
        layer.functional_read(block_id, -1, 2)
    with pytest.raises(ValueError, match="outside the block"):
        layer.functional_read(block_id, 0, layer.block_bytes + 1)
    with pytest.raises(ValueError, match="outside the block"):
        layer.functional_read(block_id, layer.block_bytes + 10)
    assert layer.functional_read(block_id, 5, 0) == b""


def test_functional_and_timed_reads_agree_on_edges():
    system = small_system()
    page = system.block_layer.page_size
    payload = b"X" * page + b"Y" * page
    block_id = system.put(payload)
    for offset, nbytes in [(0, 1), (page - 1, 2), (page, page), (0, 2 * page)]:
        assert system.block_layer.functional_read(
            block_id, offset, nbytes
        ) == system.get(block_id, offset, nbytes)


def test_rewrite_in_flight_write_lands_consistently():
    """A rewrite issued while the freed block's background erase is
    still in flight must not corrupt the ID map: the final read sees
    the new data and exactly one location stays mapped."""
    system = small_system(n_channels=1)
    layer = system.block_layer
    sim = system.sim
    block_id = system.put(b"generation-0")
    results = {}

    def rewriter():
        # Free + rewrite back-to-back: the freed block is still queued
        # for its 3 ms erase while the new write streams pages.
        yield from layer.write(block_id, b"generation-1")
        results["after_first"] = sim.now
        yield from layer.write(block_id, b"generation-2")

    sim.run(until=sim.process(rewriter()))
    sim.run(until=sim.now + 50 * MS)  # drain background erases
    assert system.get(block_id, 0, 12) == b"generation-2"
    assert layer.stored_blocks == 1
    assert layer.background_erases == 2
    # Every freed block returned to the ready pool; nothing leaked.
    n_blocks = system.device.ftls[0].n_logical_blocks
    assert len(layer._ready[0]) == n_blocks - 1

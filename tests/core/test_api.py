"""Coverage for the public :class:`~repro.core.api.SDFSystem` facade:
synchronous conveniences, the unified ``attach`` dispatch, builder
kwargs, and the conventional-SSD baseline builder.
"""

import pytest

from repro import (
    SDFSystem,
    build_conventional_ssd,
    build_sdf_system,
)
from repro.core.block_layer import BlockNotFoundError
from repro.devices.catalog import HUAWEI_GEN3_SPEC
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.qos import QosPlan
from repro.sim import Simulator


def small_system(**kwargs):
    kwargs.setdefault("capacity_scale", 0.004)
    kwargs.setdefault("n_channels", 4)
    return build_sdf_system(**kwargs)


# -- facade conveniences -----------------------------------------------------------------


def test_put_get_delete_roundtrip():
    system = small_system()
    data = b"eight megabytes of web pages..." * 10
    block_id = system.put(data)
    assert system.get(block_id, 0, len(data)) == data
    assert system.get(block_id, 7, 9) == data[7:16]
    before = system.sim.now
    system.delete(block_id)
    assert system.sim.now >= before  # delete consumed simulated time
    with pytest.raises(BlockNotFoundError):
        system.get(block_id, 0, 1)


def test_put_with_explicit_block_id_reuses_it():
    system = small_system()
    block_id = system.block_layer.allocate_id()
    assert system.put(b"x" * 100, block_id=block_id) == block_id
    assert system.get(block_id, 0, 100) == b"x" * 100


def test_run_drives_a_generator_to_completion():
    system = small_system()

    def op():
        block_id = system.block_layer.allocate_id()
        yield from system.block_layer.write(block_id, b"y" * 64)
        return block_id

    block_id = system.run(op())
    assert system.get(block_id, 0, 64) == b"y" * 64


def test_repr_mentions_channels_and_clock():
    system = small_system()
    text = repr(system)
    assert "channels=4" in text and "now=" in text


# -- builder -----------------------------------------------------------------------------


def test_build_reuses_a_caller_simulator():
    sim = Simulator()
    system = small_system(sim=sim)
    assert system.sim is sim
    assert isinstance(system, SDFSystem)


def test_build_conventional_ssd_baseline():
    device = build_conventional_ssd(capacity_scale=0.004)
    assert device.spec.name == HUAWEI_GEN3_SPEC.name  # scaled copy
    assert device.sim.now == 0


# -- unified attach ----------------------------------------------------------------------


def test_attach_observability_registers_device_metrics():
    obs = Observability()
    system = small_system(obs=obs)
    system.put(b"z" * 4096)
    snapshot = obs.snapshot(system.sim.now)
    assert snapshot["blk.writes"] == 1
    assert any(key.startswith("channel") for key in snapshot)


def test_attach_returns_self_and_chains():
    system = small_system()
    obs = Observability()
    plan = FaultPlan(seed=1)
    assert system.attach(obs).attach(plan) is system


def test_attach_qos_plan():
    from repro.qos.config import ChannelQosConfig

    system = small_system(
        qos=QosPlan(channel=ChannelQosConfig(max_inflight_ops=4))
    )
    data = b"q" * 4096
    block_id = system.put(data)  # bounded admission still serves
    assert system.get(block_id, 0, len(data)) == data


def test_build_binds_plans_to_obs():
    obs = Observability()
    plan = FaultPlan(seed=2)
    system = small_system(obs=obs, faults=plan)
    assert plan.obs is obs
    assert isinstance(system, SDFSystem)


def test_attach_unknown_plane_raises_type_error():
    system = small_system()
    with pytest.raises(TypeError, match="don't know how to attach"):
        system.attach(42)

"""Unit tests for placement/erase scheduling policies."""

import pytest

from repro.core import (
    ErasePolicy,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    read_priority_priorities,
)
from repro.ftl.ops import OpKind


def test_round_robin_is_modular():
    policy = RoundRobinPlacement()
    loads = [0] * 44
    assert [policy.choose(i, loads) for i in range(5)] == [0, 1, 2, 3, 4]
    assert policy.choose(44, loads) == 0
    assert policy.choose(45, loads) == 1


def test_round_robin_ignores_load():
    policy = RoundRobinPlacement()
    assert policy.choose(0, [100, 0, 0]) == 0  # hash wins, even if loaded


def test_least_loaded_prefers_idle_channels():
    policy = LeastLoadedPlacement()
    assert policy.choose(0, [3, 1, 2]) == 1
    assert policy.choose(1, [3, 0, 0]) in (1, 2)


def test_least_loaded_rotates_ties():
    policy = LeastLoadedPlacement()
    picks = [policy.choose(i, [0, 0, 0, 0]) for i in range(8)]
    # All channels used, none starved.
    assert sorted(set(picks)) == [0, 1, 2, 3]


def test_least_loaded_idle_burst_spreads_evenly():
    # A burst of placements onto an idle device must spread perfectly:
    # the rotating tie-break visits every channel before reusing one.
    policy = LeastLoadedPlacement()
    loads = [0] * 8
    picks = [policy.choose(i, loads) for i in range(24)]
    assert picks == list(range(8)) * 3
    counts = {channel: picks.count(channel) for channel in range(8)}
    assert set(counts.values()) == {3}


def test_least_loaded_fixed_sequence_is_stable():
    # Deterministic regression: one skewed load sequence, one exact
    # answer.  Any change to tie-breaking or rotation shows up here.
    policy = LeastLoadedPlacement()
    sequence = [
        ([2, 0, 1, 0], 1),  # first idle channel after rotation start
        ([2, 1, 1, 0], 3),  # unique minimum
        ([2, 1, 1, 1], 1),  # tie at 1: rotation resumes past channel 3
        ([2, 2, 1, 1], 2),  # tie at 1: rotation continues from 2
        ([2, 2, 2, 1], 3),  # unique minimum again
        ([2, 2, 2, 2], 0),  # full tie: wraps to channel 0
    ]
    got = [policy.choose(i, loads) for i, (loads, _) in enumerate(sequence)]
    assert got == [expected for _, expected in sequence]


def test_read_priority_ordering():
    priorities = read_priority_priorities()
    assert priorities[OpKind.READ] < priorities[OpKind.PROGRAM]
    assert priorities[OpKind.PROGRAM] < priorities[OpKind.ERASE]


def test_erase_policy_values():
    assert ErasePolicy.BACKGROUND.value == "background"
    assert ErasePolicy.INLINE.value == "inline"
    assert ErasePolicy("inline") is ErasePolicy.INLINE


def test_erase_policy_docstring_and_member_docs():
    """Regression: the class docstring sat between the `#:` comment and
    BACKGROUND, detaching the member documentation."""
    assert ErasePolicy.__doc__.startswith("When freed blocks get erased")
    assert list(ErasePolicy) == [ErasePolicy.BACKGROUND, ErasePolicy.INLINE]

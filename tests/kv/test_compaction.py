"""Unit tests for merge-sort compaction."""

import pytest

from repro.kv import (
    CompactionTask,
    Patch,
    TOMBSTONE,
    TieredCompactionPolicy,
    merge_patches,
)


def test_merge_disjoint_patches():
    merged = merge_patches(
        [Patch([("c", b"3"), ("d", b"4")]), Patch([("a", b"1"), ("b", b"2")])]
    )
    assert [k for k, _ in merged.items()] == ["a", "b", "c", "d"]


def test_merge_newest_wins_on_duplicates():
    newer = Patch([("k", b"new"), ("x", b"1")])
    older = Patch([("k", b"old"), ("y", b"2")])
    merged = merge_patches([newer, older])
    assert merged.get("k") == (True, b"new")
    assert len(merged) == 3


def test_merge_three_way_precedence():
    p0 = Patch([("k", b"v0")])  # newest
    p1 = Patch([("k", b"v1")])
    p2 = Patch([("k", b"v2"), ("z", b"zz")])  # oldest
    merged = merge_patches([p0, p1, p2])
    assert merged.get("k") == (True, b"v0")
    assert merged.get("z") == (True, b"zz")


def test_merge_keeps_tombstones_by_default():
    merged = merge_patches(
        [Patch([("k", TOMBSTONE)]), Patch([("k", b"old")])]
    )
    assert merged.get("k") == (True, TOMBSTONE)


def test_merge_drops_tombstones_when_asked():
    merged = merge_patches(
        [Patch([("a", b"1"), ("k", TOMBSTONE)]), Patch([("k", b"old")])],
        drop_tombstones=True,
    )
    assert merged.get("k") == (False, None)
    assert merged.get("a") == (True, b"1")


def test_merge_empty_input_rejected():
    with pytest.raises(ValueError):
        merge_patches([])


def test_merge_of_empty_patches():
    merged = merge_patches([Patch([]), Patch([("a", b"1")])])
    assert len(merged) == 1


def test_policy_plans_when_fanout_reached():
    policy = TieredCompactionPolicy(fanout=3, max_levels=3)
    assert policy.plan([[1, 2], [], []]) is None
    task = policy.plan([[3, 2, 1], [], []])
    assert task == CompactionTask(level=0, run_ids=(3, 2, 1))
    assert policy.output_level(task) == 1


def test_policy_final_level_threshold_is_doubled():
    policy = TieredCompactionPolicy(fanout=2, max_levels=2)
    # Final level (1) needs fanout*2 = 4 runs before re-merging.
    assert policy.plan([[], [1, 2, 3]]) is None
    task = policy.plan([[], [4, 3, 2, 1]])
    assert task.level == 1
    assert policy.output_level(task) == 1  # stays on the final level


def test_policy_validation():
    with pytest.raises(ValueError):
        TieredCompactionPolicy(fanout=1)
    with pytest.raises(ValueError):
        TieredCompactionPolicy(max_levels=0)


def test_policy_skips_unshrinkable_final_level_merge():
    """A final level full of already-full patches must not be re-merged
    forever: the output would be exactly as many write units as the
    input (the infinite-churn guard)."""
    policy = TieredCompactionPolicy(
        fanout=2, max_levels=2, max_patch_bytes=100
    )
    full_runs = [1, 2, 3, 4]
    run_bytes = {run_id: 100 for run_id in full_runs}  # all full
    assert policy.plan([[], full_runs], run_bytes) is None
    # If the runs are half-empty, merging shrinks them: plan it.
    half = {run_id: 50 for run_id in full_runs}
    task = policy.plan([[], full_runs], half)
    assert task is not None and task.level == 1


def test_policy_without_sizes_behaves_as_before():
    policy = TieredCompactionPolicy(fanout=2, max_levels=2)
    assert policy.plan([[], [4, 3, 2, 1]]) is not None


def test_policy_validation_max_patch_bytes():
    with pytest.raises(ValueError):
        TieredCompactionPolicy(max_patch_bytes=0)

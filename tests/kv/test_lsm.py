"""Unit tests for the LSM tree state machine."""

import pytest

from repro.kv import LSMTree, MemoryPatchStore, TieredCompactionPolicy
from repro.kv.common import PlaceholderValue


def small_tree(**kwargs):
    kwargs.setdefault("memtable_bytes", 64)
    kwargs.setdefault("policy", TieredCompactionPolicy(fanout=2, max_levels=2))
    return LSMTree(**kwargs)


def drive(tree, backend, frozen):
    """Store a frozen patch and register it (what a driver does)."""
    if frozen is not None:
        handle = backend.store(frozen.patch)
        tree.register_patch(frozen, handle)


def compact_fully(tree, backend, max_patch_bytes=8 << 20):
    from repro.kv.compaction import split_patch

    while True:
        task = tree.pick_compaction()
        if task is None:
            return
        patches = [backend.load(h) for h in tree.run_handles(task)]
        merged = tree.merge_for_task(task, patches)
        parts = split_patch(merged, max_patch_bytes)
        new_handles = [backend.store(part) for part in parts]
        for handle in tree.apply_compaction(task, parts, new_handles):
            backend.free(handle)


def lookup_value(tree, backend, key):
    kind, payload = tree.get(key)
    if kind == "value":
        return payload
    if kind == "miss":
        return None
    found, value = backend.load(payload.handle).get(key)
    assert found
    return value


def test_get_from_memtable():
    tree = small_tree()
    assert tree.put("k", b"v") is None
    assert tree.get("k") == ("value", b"v")


def test_get_miss():
    tree = small_tree()
    assert tree.get("nope") == ("miss", None)


def test_put_returns_frozen_patch_when_container_full():
    tree = small_tree(memtable_bytes=16)
    assert tree.put("a", b"12345678") is None  # 9 bytes
    frozen = tree.put("b", b"12345678")  # would overflow -> freeze
    assert frozen is not None
    assert list(frozen.patch.keys()) == ["a"]
    assert tree.n_pending == 1
    assert tree.flushes == 1


def test_pending_patch_still_readable():
    tree = small_tree(memtable_bytes=16)
    tree.put("a", b"12345678")
    frozen = tree.put("b", b"12345678")
    assert frozen is not None
    assert tree.get("a") == ("value", b"12345678")  # from pending


def test_register_patch_moves_reads_to_lookup():
    tree = small_tree(memtable_bytes=16)
    backend = MemoryPatchStore()
    tree.put("a", b"12345678")
    drive(tree, backend, tree.put("b", b"12345678"))
    kind, lookup = tree.get("a")
    assert kind == "lookup"
    assert lookup.size == 8
    assert lookup_value(tree, backend, "a") == b"12345678"


def test_register_unknown_patch_rejected():
    tree = small_tree()
    backend = MemoryPatchStore()
    tree.put("a", b"1")
    frozen = tree.flush()
    drive(tree, backend, frozen)
    with pytest.raises(ValueError):
        tree.register_patch(frozen, 99)


def test_flush_on_empty_returns_none():
    tree = small_tree()
    assert tree.flush() is None


def test_wal_protects_unflushed_data():
    tree = small_tree(memtable_bytes=1024)
    tree.put("a", b"1")
    tree.delete("b")
    from repro.kv import MemTable

    rebuilt = MemTable(1024)
    tree.wal.replay(rebuilt)
    assert rebuilt.get("a") == (True, b"1")
    assert len(tree.wal) == 2


def test_wal_truncated_at_freeze():
    tree = small_tree(memtable_bytes=16)
    tree.put("a", b"12345678")
    tree.put("b", b"12345678")  # freezes "a"
    assert tree.wal.truncations == 1
    assert len(tree.wal) == 1  # only the post-freeze put


def test_tombstone_resolved_from_metadata_without_read():
    tree = small_tree(memtable_bytes=16)
    backend = MemoryPatchStore()
    tree.put("a", b"12345678")
    drive(tree, backend, tree.flush())
    tree.delete("a")
    drive(tree, backend, tree.flush())
    assert tree.get("a") == ("miss", None)


def test_newest_run_wins_after_out_of_order_registration():
    """If an older frozen patch is registered *after* a newer one, the
    key map must still point at the newer data."""
    tree = small_tree(memtable_bytes=1024)
    backend = MemoryPatchStore()
    tree.put("k", b"old")
    older = tree.flush()
    tree.put("k", b"new")
    newer = tree.flush()
    drive(tree, backend, newer)
    drive(tree, backend, older)  # late registration of older data
    assert lookup_value(tree, backend, "k") == b"new"


def test_compaction_merges_runs_and_frees_handles():
    tree = small_tree(memtable_bytes=16)
    backend = MemoryPatchStore()
    for tag in range(4):
        tree.put(f"k{tag}", b"12345678")
        drive(tree, backend, tree.flush())
    assert tree.n_runs == 4
    compact_fully(tree, backend)
    assert tree.n_runs < 4
    assert tree.compactions >= 1
    for tag in range(4):
        assert lookup_value(tree, backend, f"k{tag}") == b"12345678"


def test_compaction_preserves_newest_value():
    tree = small_tree(memtable_bytes=1024)
    backend = MemoryPatchStore()
    for version in range(4):
        tree.put("hot", f"v{version}".encode())
        drive(tree, backend, tree.flush())
    compact_fully(tree, backend)
    assert lookup_value(tree, backend, "hot") == b"v3"


def test_tombstones_dropped_only_at_final_level():
    tree = small_tree(
        memtable_bytes=1024,
        policy=TieredCompactionPolicy(fanout=2, max_levels=2),
    )
    backend = MemoryPatchStore()
    tree.put("a", b"live")
    drive(tree, backend, tree.flush())
    tree.delete("a")
    drive(tree, backend, tree.flush())
    compact_fully(tree, backend)
    # Merge landed on the final level with no survivors -> tombstone gone.
    assert tree.get("a") == ("miss", None)
    assert "a" not in tree._key_map


def test_write_amplification_counts_compaction_traffic():
    tree = small_tree(memtable_bytes=16)
    backend = MemoryPatchStore()
    for tag in range(6):
        tree.put(f"k{tag}", b"12345678")
        drive(tree, backend, tree.flush())
        compact_fully(tree, backend)
    assert tree.write_amplification > 1.0
    assert tree.bytes_compaction_read > 0


def test_scan_plan_covers_memory_and_runs():
    tree = small_tree(memtable_bytes=32)
    backend = MemoryPatchStore()
    tree.put("a", b"12345678")
    drive(tree, backend, tree.flush())
    tree.put("b", b"12345678")
    memory_items, runs = tree.scan_plan("a", "z")
    assert [k for k, _ in memory_items] == ["b"]
    assert len(runs) == 1
    memory_items, runs = tree.scan_plan("c", "z")
    assert memory_items == [] and runs == []


def test_apply_compaction_validates_task():
    from repro.kv.compaction import CompactionTask

    from repro.kv import Patch

    tree = small_tree()
    with pytest.raises(ValueError):
        tree.apply_compaction(
            CompactionTask(level=0, run_ids=(99,)), [Patch([])], [0]
        )
    with pytest.raises(ValueError):
        tree.apply_compaction(
            CompactionTask(level=0, run_ids=(99,)), [], []
        )


def test_placeholder_values_work_end_to_end():
    tree = small_tree(memtable_bytes=10_000)
    backend = MemoryPatchStore()
    tree.put("big", PlaceholderValue(4096))
    drive(tree, backend, tree.flush())
    kind, lookup = tree.get("big")
    assert kind == "lookup"
    assert lookup.size == 4096

"""Property-based test: CCDBStore behaves exactly like a dict.

Random interleavings of put/delete/get/flush/scan against the full
LSM machinery (memtable, WAL, patches, multi-level compaction, backend
free) must be indistinguishable from a plain dictionary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv import CCDBStore, MemoryPatchStore, TieredCompactionPolicy

KEYS = [f"k{i}" for i in range(12)]


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=80))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(["put", "put", "put", "delete", "get", "flush"])
        )
        key = draw(st.sampled_from(KEYS))
        value = draw(st.binary(min_size=0, max_size=12))
        ops.append((kind, key, value))
    return ops


@given(op_sequences())
@settings(max_examples=120, deadline=None)
def test_store_matches_dict_model(ops):
    backend = MemoryPatchStore()
    store = CCDBStore(
        backend=backend,
        memtable_bytes=40,
        policy=TieredCompactionPolicy(fanout=2, max_levels=2),
    )
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            store.put(key, value)
            model[key] = value
        elif kind == "delete":
            store.delete(key)
            model.pop(key, None)
        elif kind == "flush":
            store.flush()
            store.compact_pending()
        else:
            assert store.get(key) == model.get(key)
    # Final audit: every key agrees, scan agrees, nothing leaked.
    for key in KEYS:
        assert store.get(key) == model.get(key), key
    assert list(store.scan("", "~")) == sorted(model.items())
    assert backend.n_patches == store.lsm.n_runs + store.lsm.n_pending

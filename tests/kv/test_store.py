"""Unit/integration tests for CCDBStore and its backends."""

import pytest

from repro.kv import (
    CCDBStore,
    KeyRange,
    MemoryPatchStore,
    SDFPatchStore,
    Slice,
    TieredCompactionPolicy,
)
from repro.kv.slice import WrongSliceError, partition_key_space


def small_store(**kwargs):
    kwargs.setdefault("memtable_bytes", 64)
    kwargs.setdefault(
        "policy", TieredCompactionPolicy(fanout=2, max_levels=2)
    )
    return CCDBStore(**kwargs)


def test_put_get_small():
    store = small_store()
    store.put("k", b"v")
    assert store.get("k") == b"v"
    assert store.get("missing") is None
    assert store.get("missing", b"default") == b"default"


def test_many_puts_trigger_flush_and_compaction():
    store = small_store()
    for index in range(40):
        store.put(f"key-{index:03d}", b"0123456789")
    assert store.lsm.flushes > 0
    assert store.lsm.compactions > 0
    for index in range(40):
        assert store.get(f"key-{index:03d}") == b"0123456789"


def test_overwrites_return_latest():
    store = small_store()
    for version in range(30):
        store.put("hot", f"version-{version}".encode())
    assert store.get("hot") == b"version-29"


def test_delete_hides_key_across_flushes():
    store = small_store()
    store.put("k", b"v")
    store.flush()
    store.delete("k")
    store.flush()
    store.compact_pending()
    assert store.get("k") is None
    assert "k" not in store


def test_scan_merges_all_sources_in_order():
    store = small_store(memtable_bytes=48)
    for key in ["e", "a", "c"]:
        store.put(key, f"value-{key}".encode())
    store.flush()
    store.put("b", b"value-b")
    store.delete("c")
    result = list(store.scan("a", "z"))
    assert result == [
        ("a", b"value-a"),
        ("b", b"value-b"),
        ("e", b"value-e"),
    ]


def test_scan_keys_and_len():
    store = small_store()
    for key in "abc":
        store.put(key, b"x")
    store.delete("b")
    assert sorted(store.scan_keys()) == ["a", "c"]
    assert len(store) == 2


def test_backend_frees_replaced_patches():
    backend = MemoryPatchStore()
    store = small_store(backend=backend)
    for index in range(40):
        store.put(f"key-{index:03d}", b"0123456789")
    store.flush()
    store.compact_pending()
    # The backend must hold exactly the live runs, nothing leaked.
    assert backend.n_patches == store.lsm.n_runs


def test_sdf_backend_roundtrip():
    backend = SDFPatchStore(capacity_scale=0.004, n_channels=2)
    store = CCDBStore(
        backend=backend,
        memtable_bytes=256,
        policy=TieredCompactionPolicy(fanout=2, max_levels=2),
    )
    for index in range(12):
        store.put(f"key-{index:02d}", b"0123456789" * 2)
    for index in range(12):
        assert store.get(f"key-{index:02d}") == b"0123456789" * 2
    # Patches occupy SDF blocks; compaction freed the replaced ones.
    assert backend.n_patches == store.lsm.n_runs
    # Simulated time actually advanced (this ran on the device).
    assert backend.system.sim.now > 0


def test_slice_ownership():
    slice_ = Slice(0, KeyRange(100, 200))
    assert slice_.owns(100) and slice_.owns(199)
    assert not slice_.owns(200) and not slice_.owns(99)
    slice_.require_owns(150)
    with pytest.raises(WrongSliceError):
        slice_.require_owns(500)


def test_key_range_validation():
    with pytest.raises(ValueError):
        KeyRange(5, 5)


def test_partition_key_space():
    ranges = partition_key_space(4, 0, 100)
    assert len(ranges) == 4
    assert ranges[0].lo == 0 and ranges[-1].hi == 100
    # Contiguous, non-overlapping.
    for left, right in zip(ranges, ranges[1:]):
        assert left.hi == right.lo
    with pytest.raises(ValueError):
        partition_key_space(0)
    with pytest.raises(ValueError):
        partition_key_space(10, 0, 5)

"""Durable WAL truncation and crash-ordered LSM registration.

The durable-truncation discipline (``mark`` at freeze,
``truncate_through`` at register) and the in-freeze-order registration
of flushed patches are what make the cluster's crash/recovery path
lose nothing -- these unit tests pin the state-machine contracts the
fault-injection suite relies on end to end.
"""

import pytest

from repro.kv import LSMTree, MemoryPatchStore, MemTable, WriteAheadLog
from repro.kv.compaction import TieredCompactionPolicy, split_patch


def small_tree(**kwargs):
    kwargs.setdefault("memtable_bytes", 16)
    kwargs.setdefault("policy", TieredCompactionPolicy(fanout=2, max_levels=2))
    kwargs.setdefault("durable_wal", True)
    return LSMTree(**kwargs)


# -- WriteAheadLog mark/truncate_through ---------------------------------------
def test_wal_truncate_through_drops_only_the_marked_prefix():
    wal = WriteAheadLog()
    wal.append_put("a", b"1")
    wal.mark("t0")
    wal.append_put("b", b"2")
    wal.append_put("c", b"3")
    wal.mark("t1")
    assert wal.truncate_through("t0") == 1
    assert [key for _, key, _ in wal.records()] == ["b", "c"]
    assert wal.truncate_through("t1") == 2
    assert wal.records() == []


def test_wal_truncate_through_unknown_token_raises():
    wal = WriteAheadLog()
    with pytest.raises(KeyError):
        wal.truncate_through("nope")


def test_wal_later_marks_shift_down_after_a_cut():
    wal = WriteAheadLog()
    wal.append_put("a", b"1")
    wal.mark("t0")
    wal.append_put("b", b"2")
    wal.mark("t1")
    wal.truncate_through("t0")
    # t1's mark moved from position 2 to 1; cutting it drops just "b".
    assert wal.truncate_through("t1") == 1
    assert wal.records() == []


def test_wal_reset_forgets_marks_without_counting_truncation():
    wal = WriteAheadLog()
    wal.append_put("a", b"1")
    wal.mark("t0")
    wal.reset()
    assert len(wal) == 0 and wal.truncations == 0
    with pytest.raises(KeyError):
        wal.truncate_through("t0")


# -- LSMTree durable mode ------------------------------------------------------
def test_durable_wal_requires_wal():
    with pytest.raises(ValueError):
        LSMTree(enable_wal=False, durable_wal=True)


def test_durable_wal_keeps_records_until_register():
    tree = small_tree()
    backend = MemoryPatchStore()
    tree.put("a", b"12345678")
    frozen = tree.put("b", b"12345678")  # freezes the "a" container
    assert frozen is not None
    # Freeze marked, did not truncate: "a"'s record still protects the
    # in-flight patch.
    assert [key for _, key, _ in tree.wal.records()] == ["a", "b"]
    tree.register_patch(frozen, backend.store(frozen.patch))
    assert [key for _, key, _ in tree.wal.records()] == ["b"]


def test_lose_volatile_then_recover_replays_everything():
    tree = small_tree(memtable_bytes=64)
    backend = MemoryPatchStore()
    tree.put("a", b"12345678")
    tree.put("b", b"12345678")
    frozen = tree.flush()
    tree.put("c", b"1")  # memtable-only
    assert tree.lose_volatile() == 1  # the unstored frozen patch died
    assert tree.get("a") == ("miss", None)
    n_records, refrozen = tree.recover()
    assert n_records == 3  # a, b (frozen but never durable) and c
    for patch in refrozen:
        tree.register_patch(patch, backend.store(patch.patch))
    assert tree.get("c") == ("value", b"1")
    # a and b live again, frozen or registered depending on refreeze.
    for key in ("a", "b"):
        kind, _ = tree.get(key)
        assert kind in ("value", "lookup")


# -- in-freeze-order registration ----------------------------------------------
def freeze_two_patches(tree):
    tree.put("a", b"12345678")
    first = tree.put("b", b"12345678")  # freezes {a}
    second = tree.put("c", b"12345678")  # freezes {b}
    assert first is not None and second is not None
    return first, second


def test_out_of_order_register_is_staged_until_predecessor_lands():
    tree = small_tree()
    backend = MemoryPatchStore()
    first, second = freeze_two_patches(tree)
    # The later freeze reaches storage first: it must not install ahead
    # of its predecessor, or the older pending patch would shadow newer
    # registered data on reads.
    assert tree.register_patch(second, backend.store(second.patch)) is None
    assert tree.n_runs == 0 and tree.n_pending == 2
    assert tree.get("b") == ("value", b"12345678")  # still served pending
    # Its WAL records also survive until it actually installs.
    assert [key for _, key, _ in tree.wal.records()] == ["a", "b", "c"]
    run = tree.register_patch(first, backend.store(first.patch))
    assert run is not None and tree.n_runs == 2 and tree.n_pending == 0
    assert [key for _, key, _ in tree.wal.records()] == ["c"]


def test_out_of_order_register_keeps_newest_value_through_compaction():
    # Regression: two freezes both containing "k"; the newer one's store
    # completes first.  After both land, reads and a full compaction must
    # keep the newer value -- historically the arrival-ordered level list
    # let the merge resurrect the older one.
    tree = small_tree(memtable_bytes=16)
    backend = MemoryPatchStore()
    tree.put("k", b"old-----")
    first = tree.put("x", b"12345678")  # freezes {k: old}
    second = tree.put("k", b"new-----")  # freezes {x}
    third = tree.put("y", b"12345678")  # freezes {k: new}
    assert None not in (first, second, third)
    for frozen in (third, second, first):  # reverse arrival order
        tree.register_patch(frozen, backend.store(frozen.patch))
    assert tree.n_pending == 0

    def lookup(key):
        kind, payload = tree.get(key)
        assert kind == "lookup"
        found, value = backend.load(payload.handle).get(key)
        assert found
        return value

    assert lookup("k") == b"new-----"
    while True:
        task = tree.pick_compaction()
        if task is None:
            break
        patches = [backend.load(h) for h in tree.run_handles(task)]
        merged = tree.merge_for_task(task, patches)
        parts = split_patch(merged, 8 << 20)
        handles = [backend.store(part) for part in parts]
        for handle in tree.apply_compaction(task, parts, handles):
            backend.free(handle)
    assert lookup("k") == b"new-----"


def test_double_register_rejected():
    tree = small_tree()
    backend = MemoryPatchStore()
    first, second = freeze_two_patches(tree)
    tree.register_patch(first, backend.store(first.patch))
    with pytest.raises(ValueError):
        tree.register_patch(first, backend.store(first.patch))

"""Unit tests for MemTable, WriteAheadLog and Patch."""

import pytest

from repro.kv import (
    MemTable,
    Patch,
    PlaceholderValue,
    TOMBSTONE,
    WriteAheadLog,
    sizeof_key,
    sizeof_value,
)


def test_sizeof_helpers():
    assert sizeof_key(b"abc") == 3
    assert sizeof_key("abcd") == 4
    assert sizeof_key(7) == 8
    assert sizeof_value(b"xy") == 2
    assert sizeof_value(PlaceholderValue(512)) == 512
    assert sizeof_value(TOMBSTONE) == 0
    with pytest.raises(TypeError):
        sizeof_key(3.14)
    with pytest.raises(TypeError):
        sizeof_value(3.14)
    with pytest.raises(ValueError):
        PlaceholderValue(-1)


def test_tombstone_is_singleton():
    from repro.kv.common import _Tombstone

    assert _Tombstone() is TOMBSTONE


def test_memtable_put_get():
    table = MemTable(capacity_bytes=1024)
    table.put("k1", b"v1")
    assert table.get("k1") == (True, b"v1")
    assert table.get("nope") == (False, None)
    assert len(table) == 1
    assert table.nbytes == 2 + 2


def test_memtable_overwrite_updates_size():
    table = MemTable(1024)
    table.put("k", b"12345678")
    table.put("k", b"12")
    assert table.nbytes == 1 + 2
    assert table.get("k") == (True, b"12")


def test_memtable_capacity_and_fits():
    table = MemTable(capacity_bytes=10)
    assert table.fits("abc", b"1234")  # 7 bytes
    table.put("abc", b"1234")
    assert not table.fits("xyz", b"1234")  # would be 14
    assert table.fits("abc", b"1234567")  # replacing: 10 exactly
    with pytest.raises(ValueError, match="exceeds"):
        table.put("a", b"x" * 100)


def test_memtable_delete_inserts_tombstone():
    table = MemTable(1024)
    table.put("k", b"v")
    table.delete("k")
    assert table.get("k") == (True, TOMBSTONE)


def test_memtable_items_sorted_and_clear():
    table = MemTable(1024)
    for key in ["delta", "alpha", "charlie"]:
        table.put(key, b"x")
    assert [key for key, _ in table.items_sorted()] == [
        "alpha",
        "charlie",
        "delta",
    ]
    table.clear()
    assert table.is_empty and table.nbytes == 0


def test_memtable_validation():
    with pytest.raises(ValueError):
        MemTable(0)


def test_wal_append_truncate_replay():
    wal = WriteAheadLog()
    wal.append_put("a", b"1")
    wal.append_delete("b")
    assert len(wal) == 2
    assert wal.appended_bytes == 2 + 1
    rebuilt = MemTable(1024)
    assert wal.replay(rebuilt) == 2
    assert rebuilt.get("a") == (True, b"1")
    assert rebuilt.get("b") == (True, TOMBSTONE)
    wal.truncate()
    assert len(wal) == 0
    assert wal.truncations == 1


def test_patch_requires_sorted_unique_keys():
    with pytest.raises(ValueError):
        Patch([("b", b"1"), ("a", b"2")])
    with pytest.raises(ValueError):
        Patch([("a", b"1"), ("a", b"2")])


def test_patch_get_and_contains():
    patch = Patch([("a", b"1"), ("c", b"3"), ("e", TOMBSTONE)])
    assert patch.get("a") == (True, b"1")
    assert patch.get("b") == (False, None)
    assert patch.get("e") == (True, TOMBSTONE)
    assert "c" in patch and "d" not in patch
    assert patch.min_key == "a" and patch.max_key == "e"
    assert len(patch) == 3


def test_patch_from_memtable():
    table = MemTable(1024)
    table.put("z", b"26")
    table.put("a", b"1")
    patch = Patch.from_memtable(table)
    assert list(patch.keys()) == ["a", "z"]
    assert patch.nbytes == table.nbytes


def test_patch_offset_of_matches_layout():
    patch = Patch([("aa", b"111"), ("bb", b"22222")])
    # Layout: key aa (2) + value (3) + key bb (2) + value (5).
    assert patch.offset_of("aa") == 2
    assert patch.offset_of("bb") == 2 + 3 + 2
    assert patch.offset_of("cc") is None


def test_patch_range_items():
    patch = Patch([(k, b"x") for k in "acegi"])
    assert [k for k, _ in patch.range_items("c", "h")] == ["c", "e", "g"]
    assert patch.range_items("j", "z") == []


def test_patch_serialization_roundtrip():
    patch = Patch(
        [
            ("a", b"bytes"),
            ("b", PlaceholderValue(4096)),
            ("c", TOMBSTONE),
        ]
    )
    clone = Patch.deserialize(patch.serialize())
    assert list(clone.items()) == list(patch.items())
    assert clone.nbytes == patch.nbytes


def test_empty_patch():
    patch = Patch([])
    assert patch.is_empty
    assert patch.min_key is None
    assert patch.get("x") == (False, None)

"""Unit tests for GF(2^m) arithmetic."""

import pytest

from repro.ecc import GF2m


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


def test_field_sizes(gf16):
    assert gf16.order == 16
    assert gf16.n == 15


def test_exp_log_are_inverses(gf16):
    for element in range(1, 16):
        assert gf16.exp(gf16.log(element)) == element
    for power in range(15):
        assert gf16.log(gf16.exp(power)) == power


def test_exp_wraps_mod_n(gf16):
    assert gf16.exp(15) == gf16.exp(0) == 1
    assert gf16.exp(-1) == gf16.exp(14)


def test_add_is_xor(gf16):
    assert gf16.add(0b1010, 0b0110) == 0b1100
    assert gf16.add(7, 7) == 0


def test_mul_properties(gf16):
    for a in range(16):
        assert gf16.mul(a, 0) == 0
        assert gf16.mul(a, 1) == a
    # Commutativity and associativity, spot-checked exhaustively (tiny field).
    for a in range(16):
        for b in range(16):
            assert gf16.mul(a, b) == gf16.mul(b, a)
            for c in range(0, 16, 5):
                assert gf16.mul(gf16.mul(a, b), c) == gf16.mul(a, gf16.mul(b, c))


def test_distributivity(gf16):
    for a in range(16):
        for b in range(16):
            for c in range(0, 16, 3):
                left = gf16.mul(a, gf16.add(b, c))
                right = gf16.add(gf16.mul(a, b), gf16.mul(a, c))
                assert left == right


def test_inverse_and_division(gf16):
    for a in range(1, 16):
        assert gf16.mul(a, gf16.inv(a)) == 1
        assert gf16.div(a, a) == 1
    with pytest.raises(ZeroDivisionError):
        gf16.inv(0)
    with pytest.raises(ZeroDivisionError):
        gf16.div(3, 0)
    assert gf16.div(0, 5) == 0


def test_pow(gf16):
    alpha = gf16.exp(1)
    assert gf16.pow(alpha, 0) == 1
    assert gf16.pow(alpha, 15) == 1  # order of the multiplicative group
    assert gf16.pow(0, 0) == 1
    assert gf16.pow(0, 3) == 0
    with pytest.raises(ZeroDivisionError):
        gf16.pow(0, -1)


def test_log_validation(gf16):
    with pytest.raises(ValueError):
        gf16.log(0)
    with pytest.raises(ValueError):
        gf16.log(16)


def test_poly_eval(gf16):
    # p(x) = 1 + x: p(alpha) = 1 ^ alpha.
    alpha = gf16.exp(1)
    assert gf16.poly_eval([1, 1], alpha) == 1 ^ alpha
    assert gf16.poly_eval([5], 9) == 5  # constant polynomial


def test_poly_mul_against_known_product(gf16):
    # (1 + x)(1 + x) = 1 + x^2 over GF(2) coefficient arithmetic.
    assert gf16.poly_mul([1, 1], [1, 1]) == [1, 0, 1]


def test_non_primitive_polynomial_rejected():
    # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive for m=4.
    with pytest.raises(ValueError, match="not primitive"):
        GF2m(4, primitive_poly=0b11111)


def test_wrong_degree_rejected():
    with pytest.raises(ValueError, match="degree"):
        GF2m(4, primitive_poly=0b1011)


def test_unknown_m_without_poly_rejected():
    with pytest.raises(ValueError):
        GF2m(20)


def test_larger_fields_construct():
    for m in (3, 5, 8, 10):
        gf = GF2m(m)
        assert gf.mul(gf.exp(1), gf.inv(gf.exp(1))) == 1

"""Unit and property tests for the BCH codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import BCHCode, UncorrectableError


@pytest.fixture(scope="module")
def bch_15_2():
    """BCH(15, 7) correcting 2 errors."""
    return BCHCode(m=4, t=2)


@pytest.fixture(scope="module")
def bch_63_5():
    """BCH(63, ~33) correcting 5 errors."""
    return BCHCode(m=6, t=5)


def test_known_code_parameters(bch_15_2):
    # BCH(15, 7, t=2) is a classic textbook code.
    assert bch_15_2.n == 15
    assert bch_15_2.k == 7
    assert bch_15_2.parity_bits == 8


def test_generator_polynomial_of_15_7_code(bch_15_2):
    # g(x) = x^8 + x^7 + x^6 + x^4 + 1 for the (15,7) 2-error BCH code.
    assert bch_15_2.generator == [1, 0, 0, 0, 1, 0, 1, 1, 1]


def test_encode_is_systematic(bch_15_2):
    message = [1, 0, 1, 1, 0, 0, 1]
    codeword = bch_15_2.encode(message)
    assert len(codeword) == 15
    assert codeword[bch_15_2.parity_bits :] == message
    assert bch_15_2.extract_message(codeword) == message


def test_codeword_has_zero_syndromes(bch_15_2):
    codeword = bch_15_2.encode([1, 1, 1, 0, 0, 0, 1])
    assert not any(bch_15_2.syndromes(codeword))


def test_clean_decode_is_identity(bch_15_2):
    codeword = bch_15_2.encode([0, 1, 0, 1, 0, 1, 0])
    assert bch_15_2.decode(codeword) == codeword


def test_single_error_corrected_at_every_position(bch_15_2):
    message = [1, 0, 0, 1, 1, 0, 1]
    codeword = bch_15_2.encode(message)
    for position in range(15):
        corrupted = list(codeword)
        corrupted[position] ^= 1
        assert bch_15_2.decode(corrupted) == codeword


def test_double_errors_corrected(bch_15_2):
    message = [1, 1, 0, 0, 1, 0, 1]
    codeword = bch_15_2.encode(message)
    for first in range(0, 15, 2):
        for second in range(first + 1, 15, 3):
            corrupted = list(codeword)
            corrupted[first] ^= 1
            corrupted[second] ^= 1
            assert bch_15_2.decode(corrupted) == codeword


def test_triple_errors_detected_or_miscorrected_but_flagged(bch_15_2):
    """t+1 errors must never be silently 'corrected' into the original
    codeword; typically the decoder raises UncorrectableError or lands on
    a different valid codeword (detected by comparing messages)."""
    message = [0, 0, 1, 1, 0, 1, 1]
    codeword = bch_15_2.encode(message)
    outcomes = {"raised": 0, "wrong_codeword": 0, "silent_correct": 0}
    rng = np.random.default_rng(11)
    for _ in range(50):
        positions = rng.choice(15, size=3, replace=False)
        corrupted = list(codeword)
        for position in positions:
            corrupted[position] ^= 1
        try:
            decoded = bch_15_2.decode(corrupted)
            if decoded == codeword:
                outcomes["silent_correct"] += 1
            else:
                outcomes["wrong_codeword"] += 1
        except UncorrectableError:
            outcomes["raised"] += 1
    assert outcomes["silent_correct"] == 0
    assert outcomes["raised"] > 0


def test_input_validation(bch_15_2):
    with pytest.raises(ValueError):
        bch_15_2.encode([1] * 6)
    with pytest.raises(ValueError):
        bch_15_2.encode([2] * 7)
    with pytest.raises(ValueError):
        bch_15_2.decode([0] * 14)
    with pytest.raises(ValueError):
        bch_15_2.extract_message([0] * 14)
    with pytest.raises(ValueError):
        BCHCode(m=4, t=0)


def test_maximal_t_degenerates_to_repetition_code():
    # For m=4, t=7 the generator is (x^15 - 1)/(x - 1): the length-15
    # repetition code with a single data bit.
    code = BCHCode(m=4, t=7)
    assert code.k == 1
    assert code.encode([1]) == [1] * 15
    corrupted = [1] * 15
    for position in (0, 3, 7, 8, 11, 12, 14):  # 7 errors
        corrupted[position] ^= 1
    assert code.decode(corrupted) == [1] * 15


def test_bch63_corrects_up_to_t_random_errors(bch_63_5):
    rng = np.random.default_rng(42)
    for trial in range(10):
        message = list(rng.integers(0, 2, size=bch_63_5.k))
        codeword = bch_63_5.encode(message)
        n_errors = int(rng.integers(0, bch_63_5.t + 1))
        positions = rng.choice(63, size=n_errors, replace=False)
        corrupted = list(codeword)
        for position in positions:
            corrupted[position] ^= 1
        decoded = bch_63_5.decode(corrupted)
        assert decoded == codeword, f"trial {trial} with {n_errors} errors"
        assert bch_63_5.extract_message(decoded) == message


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_with_errors(data):
    """encode -> corrupt (<= t bits) -> decode recovers the message."""
    code = BCHCode(m=4, t=2)
    message = data.draw(
        st.lists(st.integers(0, 1), min_size=code.k, max_size=code.k)
    )
    n_errors = data.draw(st.integers(min_value=0, max_value=code.t))
    positions = data.draw(
        st.lists(
            st.integers(0, code.n - 1),
            min_size=n_errors,
            max_size=n_errors,
            unique=True,
        )
    )
    codeword = code.encode(message)
    corrupted = list(codeword)
    for position in positions:
        corrupted[position] ^= 1
    assert code.extract_message(code.decode(corrupted)) == message


def test_code_rates_scale_with_t():
    weak = BCHCode(m=6, t=1)
    strong = BCHCode(m=6, t=5)
    assert weak.k > strong.k  # more correction -> fewer data bits
    assert weak.n == strong.n == 63

"""Unit tests for the probabilistic ECC model."""

import numpy as np
import pytest

from repro.ecc import EccModel, ReadStatus
from repro.nand.errors import RawBitErrorModel


def test_deterministic_model_always_clean():
    model = EccModel(rng=None)
    for _ in range(100):
        assert model.read_outcome(8192, pe_cycles=5000) is ReadStatus.CLEAN
    assert model.corrected_reads == 0
    assert model.uncorrectable_reads == 0


def test_fresh_flash_rarely_errors():
    model = EccModel(rng=np.random.default_rng(1))
    outcomes = [model.read_outcome(8192, pe_cycles=0) for _ in range(2000)]
    assert outcomes.count(ReadStatus.UNCORRECTABLE) == 0
    # RBER 1e-6 over 64 Kib bits -> expect ~0.065 errors/page; a few
    # CORRECTED outcomes are plausible but most reads are clean.
    assert outcomes.count(ReadStatus.CLEAN) > 1500


def test_worn_flash_with_weak_code_fails_often():
    weak = EccModel(
        t=1,
        rber_model=RawBitErrorModel(base_rber=1e-4, growth=1000, endurance=100),
        rng=np.random.default_rng(2),
    )
    outcomes = [weak.read_outcome(8192, pe_cycles=300) for _ in range(300)]
    assert outcomes.count(ReadStatus.UNCORRECTABLE) > 0
    assert weak.uncorrectable_reads == outcomes.count(ReadStatus.UNCORRECTABLE)


def test_uncorrectable_probability_monotone_in_wear():
    model = EccModel(t=8)
    p_fresh = model.uncorrectable_probability(8192, 0)
    p_worn = model.uncorrectable_probability(8192, 6000)
    assert p_fresh < p_worn


def test_stronger_code_lower_failure_probability():
    weak = EccModel(t=4)
    strong = EccModel(t=40)
    assert strong.uncorrectable_probability(
        8192, 3000
    ) < weak.uncorrectable_probability(8192, 3000)


def test_validation():
    with pytest.raises(ValueError):
        EccModel(t=0)
    with pytest.raises(ValueError):
        EccModel(codeword_bytes=0)

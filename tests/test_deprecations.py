"""The legacy per-plane ``attach_system*`` entry points survive as
thin shims: they must still wire correctly, must warn, and the unified
replacement surface must stay warning-free (CI runs a tier-1 leg with
``-W error::DeprecationWarning`` to hold the line).
"""

import warnings

import pytest

from repro import build_sdf_system
from repro.faults import FaultPlan, attach_system_faults
from repro.obs import Observability, attach_system
from repro.qos import QosPlan, attach_system_qos


def small_system(**kwargs):
    return build_sdf_system(capacity_scale=0.004, n_channels=2, **kwargs)


def test_attach_system_warns_but_still_wires():
    system = small_system()
    obs = Observability()
    with pytest.warns(DeprecationWarning, match="SDFSystem.attach"):
        attach_system(obs, system)
    system.put(b"d" * 512)
    assert obs.snapshot(system.sim.now)["blk.writes"] == 1


def test_attach_system_faults_warns_but_still_wires():
    system = small_system()
    plan = FaultPlan(seed=4)
    with pytest.warns(DeprecationWarning, match="SDFSystem.attach"):
        attach_system_faults(plan, system)
    system.put(b"d" * 512)  # injectors in place, nothing fires


def test_attach_system_qos_warns_but_still_wires():
    system = small_system()
    plan = QosPlan()
    with pytest.warns(DeprecationWarning, match="SDFSystem.attach"):
        attach_system_qos(plan, system)
    system.put(b"d" * 512)


def test_unified_surface_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        obs = Observability()
        system = small_system(obs=obs, faults=FaultPlan(seed=5), qos=QosPlan())
        system.attach(Observability())
        system.put(b"d" * 512)


def test_build_sdf_warns_but_still_builds():
    from repro.devices import build_sdf
    from repro.sim import Simulator

    sim = Simulator()
    with pytest.warns(DeprecationWarning, match="build_device"):
        device = build_sdf(sim, capacity_scale=0.004, n_channels=2)
    assert device.n_channels == 2
    assert device.kind == "sdf"


def test_build_conventional_warns_but_still_builds():
    from repro.devices import INTEL_320_SPEC, build_conventional
    from repro.sim import Simulator

    sim = Simulator()
    with pytest.warns(DeprecationWarning, match="build_device"):
        device = build_conventional(
            sim, INTEL_320_SPEC, capacity_scale=0.01
        )
    assert device.kind == "conventional"
    assert device.spec.name == "intel-320"


def test_build_device_surface_is_warning_free():
    from repro.devices import DeviceSpec, build_device, device_kinds
    from repro.sim import Simulator

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for kind in device_kinds():
            build_device(kind, Simulator(), capacity_scale=0.01)
        DeviceSpec("sdf", {"capacity_scale": 0.01}).build(Simulator())

"""End-to-end integration: the full stack working together."""

import numpy as np
import pytest

from repro import build_sdf_system
from repro.kv import (
    CCDBStore,
    MemTable,
    SDFPatchStore,
    TieredCompactionPolicy,
)
from repro.sim import MS, S


def test_kv_store_on_simulated_flash_with_real_bytes():
    """CCDB over the SDF with real serialized patches: every byte that
    comes back traveled through memtable -> patch -> block layer ->
    channel FTL -> NAND pages and back."""
    backend = SDFPatchStore(capacity_scale=0.01, n_channels=4)
    store = CCDBStore(
        backend=backend,
        memtable_bytes=1024,
        policy=TieredCompactionPolicy(fanout=2, max_levels=3),
    )
    rng = np.random.default_rng(1)
    shadow = {}
    for step in range(300):
        key = f"key-{int(rng.integers(200)):03d}"
        if rng.random() < 0.15 and shadow:
            store.delete(key)
            shadow.pop(key, None)
        else:
            value = bytes(rng.integers(0, 256, size=40, dtype=np.uint8))
            store.put(key, value)
            shadow[key] = value
    for key, expected in shadow.items():
        assert store.get(key) == expected
    assert list(store.scan("key-", "key-~")) == sorted(shadow.items())
    # The flash underneath did real work.
    system = backend.system
    assert system.device.array.total_programs > 0
    assert system.sim.now > 10 * MS


def test_wal_crash_recovery_rebuilds_unflushed_container():
    """Kill a store after unflushed writes; replaying its WAL into a
    fresh memtable recovers exactly the lost mutations."""
    store = CCDBStore(memtable_bytes=1 << 20)
    store.put("flushed", b"old")
    store.flush()
    store.put("lost-1", b"v1")
    store.put("lost-2", b"v2")
    store.delete("flushed")
    # "Crash": rebuild a container from the surviving WAL.
    recovered = MemTable(1 << 20)
    n_replayed = store.lsm.wal.replay(recovered)
    assert n_replayed == 3
    assert recovered.get("lost-1") == (True, b"v1")
    assert recovered.get("lost-2") == (True, b"v2")
    from repro.kv import TOMBSTONE

    assert recovered.get("flushed") == (True, TOMBSTONE)


def test_sdf_never_amplifies_writes_under_any_block_layer_workload():
    """The core SDF invariant: physical programs == host page writes,
    no matter how the block layer churns."""
    system = build_sdf_system(capacity_scale=0.008, n_channels=4)
    rng = np.random.default_rng(3)
    live = []
    for step in range(60):
        action = rng.random()
        if action < 0.6 or not live:
            block_id = system.put(None)
            live.append(block_id)
        elif action < 0.85:
            victim = live.pop(int(rng.integers(len(live))))
            system.delete(victim)
        else:
            block_id = live[int(rng.integers(len(live)))]
            system.put(None, block_id=block_id)
    system.sim.run(until=system.sim.now + 2 * S)  # drain background erase
    device = system.device
    host_programs = sum(ftl.host_programs for ftl in device.ftls)
    assert device.array.total_programs == host_programs
    for ftl in device.ftls:
        assert ftl.write_amplification == 1.0


def test_wear_stays_level_without_static_wear_leveling():
    """Dynamic wear leveling alone keeps erase counts tight when churn
    is uniform -- the paper's justification for dropping static WL on
    cache-like workloads."""
    system = build_sdf_system(capacity_scale=0.008, n_channels=2)
    for cycle in range(120):
        block_id = system.put(None)
        system.delete(block_id)
    system.sim.run(until=system.sim.now + 2 * S)
    for ftl in system.device.ftls:
        assert ftl.wear_spread() <= 2


def test_read_while_background_erases_pending():
    """Reads succeed and return correct data while the background
    eraser is grinding through freed blocks."""
    system = build_sdf_system(capacity_scale=0.008, n_channels=2)
    keep = system.put(b"keep me")
    churn = [system.put(None) for _ in range(10)]
    for block_id in churn:
        system.delete(block_id)
    # Immediately read (erases still queued).
    assert system.get(keep, 0, 7) == b"keep me"


def test_get_costs_exactly_one_device_read_after_compaction():
    """The paper's DRAM-metadata guarantee survives compaction."""
    backend = SDFPatchStore(capacity_scale=0.01, n_channels=2)
    store = CCDBStore(
        backend=backend,
        memtable_bytes=2048,
        policy=TieredCompactionPolicy(fanout=2, max_levels=2),
    )
    for index in range(50):
        store.put(f"k{index:02d}", b"x" * 50)
    store.flush()
    store.compact_pending()
    device = backend.system.device
    for index in range(50):
        before = device.stats.read_meter.n_samples
        assert store.get(f"k{index:02d}") == b"x" * 50
        assert device.stats.read_meter.n_samples == before + 1

"""Unit tests for host links, I/O stack models and interrupt coalescing."""

import pytest

from repro.interfaces import (
    HostLink,
    InterruptCoalescer,
    IOStackModel,
    KERNEL_IO_STACK,
    LinkSpec,
    PCIE_1_1_X8,
    SATA_2_0,
    SDF_USER_SPACE_STACK,
)
from repro.interfaces.iostack import HostCPU
from repro.sim import MB, Simulator, US
from repro.sim.units import mb_per_s


def run_transfers(spec, transfers):
    """transfers: list of (direction, nbytes); returns (elapsed, link)."""
    sim = Simulator()
    link = HostLink(sim, spec)
    procs = [
        sim.process(link.transfer(direction, nbytes))
        for direction, nbytes in transfers
    ]
    sim.run(until=sim.all_of(procs))
    return sim.now, link


def test_pcie_read_bandwidth_is_paper_effective_rate():
    elapsed, _ = run_transfers(PCIE_1_1_X8, [("read", 64 * MB)])
    assert mb_per_s(64 * MB, elapsed) == pytest.approx(1610, rel=0.01)


def test_pcie_write_bandwidth():
    elapsed, _ = run_transfers(PCIE_1_1_X8, [("write", 64 * MB)])
    assert mb_per_s(64 * MB, elapsed) == pytest.approx(1400, rel=0.01)


def test_full_duplex_directions_do_not_contend():
    elapsed, _ = run_transfers(
        PCIE_1_1_X8, [("read", 16 * MB), ("write", 16 * MB)]
    )
    solo, _ = run_transfers(PCIE_1_1_X8, [("read", 16 * MB)])
    assert elapsed == pytest.approx(
        max(solo, int(16 * MB / (1400e6 / 1e9))), rel=0.02
    )


def test_sata_is_half_duplex():
    elapsed, _ = run_transfers(SATA_2_0, [("read", 8 * MB), ("write", 8 * MB)])
    one_way, _ = run_transfers(SATA_2_0, [("read", 8 * MB)])
    assert elapsed == pytest.approx(2 * one_way, rel=0.02)


def test_concurrent_reads_share_fairly_via_chunking():
    """Two equal concurrent transfers finish together at half rate each,
    instead of strictly one-after-the-other."""
    sim = Simulator()
    link = HostLink(sim, PCIE_1_1_X8)
    finish = {}

    def mover(tag):
        yield from link.transfer("read", 8 * MB)
        finish[tag] = sim.now

    sim.process(mover("a"))
    sim.process(mover("b"))
    sim.run()
    assert finish["a"] == pytest.approx(finish["b"], rel=0.05)


def test_transfer_validation():
    sim = Simulator()
    link = HostLink(sim, PCIE_1_1_X8)
    with pytest.raises(ValueError):
        sim.run(until=sim.process(link.transfer("sideways", 100)))
    with pytest.raises(ValueError):
        sim.run(until=sim.process(link.transfer("read", -1)))


def test_zero_byte_transfer_costs_only_overhead():
    elapsed, _ = run_transfers(PCIE_1_1_X8, [("read", 0)])
    assert elapsed == PCIE_1_1_X8.per_transfer_overhead_ns


def test_link_spec_validation():
    with pytest.raises(ValueError):
        LinkSpec("bad", 0, 100)
    with pytest.raises(ValueError):
        LinkSpec("bad", 100, 100, chunk_bytes=0)
    with pytest.raises(ValueError):
        LinkSpec("bad", 100, 100, per_transfer_overhead_ns=-1)


def test_link_meters_record_traffic():
    _, link = run_transfers(PCIE_1_1_X8, [("read", MB), ("write", 2 * MB)])
    assert link.read_meter.total_bytes == MB
    assert link.write_meter.total_bytes == 2 * MB


def test_iostack_totals_match_paper():
    assert KERNEL_IO_STACK.total_ns == pytest.approx(12_900, abs=100)
    assert 2_000 <= SDF_USER_SPACE_STACK.total_ns <= 4_000
    assert KERNEL_IO_STACK.total_ns > 3 * SDF_USER_SPACE_STACK.total_ns


def test_iostack_validation():
    with pytest.raises(ValueError):
        IOStackModel("bad", -1, 0)


def test_host_cpu_serializes_software_time():
    sim = Simulator()
    cpu = HostCPU(sim, cores=1)
    done = []

    def worker(tag):
        yield from cpu.spend(10 * US)
        done.append((tag, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert done == [("a", 10 * US), ("b", 20 * US)]
    with pytest.raises(ValueError):
        HostCPU(sim, cores=0)


def test_interrupt_coalescer_merges_within_window():
    sim = Simulator()
    coalescer = InterruptCoalescer(sim, window_ns=20 * US, handler_ns=4 * US)
    log = []

    def completions():
        for _ in range(10):
            log.append(coalescer.on_completion())
            yield sim.timeout(5 * US)  # 4 completions per 20 us window

    sim.run(until=sim.process(completions()))
    # 10 completions over 50 us with 20 us windows -> ~3 interrupts.
    assert coalescer.interrupts.value <= 4
    assert 0.2 <= coalescer.merge_ratio <= 0.45


def test_interrupt_coalescer_sparse_completions_not_merged():
    sim = Simulator()
    coalescer = InterruptCoalescer(sim, window_ns=10 * US)

    def completions():
        for _ in range(5):
            coalescer.on_completion()
            yield sim.timeout(100 * US)

    sim.run(until=sim.process(completions()))
    assert coalescer.merge_ratio == 1.0


def test_interrupt_coalescer_validation_and_empty_ratio():
    sim = Simulator()
    with pytest.raises(ValueError):
        InterruptCoalescer(sim, window_ns=-1)
    assert InterruptCoalescer(sim).merge_ratio == 1.0

#!/usr/bin/env python3
"""Trace an SDF run and export it for chrome://tracing / Perfetto.

Demonstrates the observability layer end to end:

* attach an :class:`repro.obs.Observability` (with tracing enabled) to
  a freshly built SDF system;
* run a mixed workload -- writes, byte reads, a rewrite and frees --
  so channel buses, planes and the background eraser all show up;
* export a Chrome-trace JSON timeline (open it at
  https://ui.perfetto.dev or in ``chrome://tracing``);
* print the metrics report: per-channel utilisation, queue depth,
  wait vs busy time, FTL/wear state and block-layer counters.

Run:  python examples/trace_viewer_demo.py [output.trace.json]
"""

import json
import sys

from repro import build_sdf_system
from repro.obs import Observability
from repro.sim.units import MS


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "sdf.trace.json"

    obs = Observability(trace=True)
    system = build_sdf_system(capacity_scale=0.004, n_channels=4, obs=obs)

    # --- a small mixed workload -------------------------------------------
    payload = b"<html>software-defined flash</html>" * 100
    ids = [system.put(payload) for _ in range(6)]
    for block_id in ids[:3]:
        system.get(block_id, 0, 4096)
    system.put(b"rewritten", block_id=ids[0])     # frees + rewrites
    system.delete(ids[1])                          # background erase
    system.sim.run(until=system.sim.now + 50 * MS)  # let the eraser drain

    # --- export ------------------------------------------------------------
    obs.trace.write(out_path)
    with open(out_path, encoding="utf-8") as handle:
        trace = json.load(handle)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    tracks = {e["cat"] for e in spans}
    print(f"wrote {out_path}: {len(trace['traceEvents'])} events, "
          f"{len(spans)} spans on {len(tracks)} tracks")
    print("open it at https://ui.perfetto.dev (or chrome://tracing)\n")

    ops = [e for e in spans if e["cat"].endswith("/ops")]
    sample = max(ops, key=lambda e: e["dur"])
    print(f"slowest flash op: {sample['name']} on {sample['cat']} "
          f"({sample['dur'] / 1000:.2f} ms, "
          f"queue wait {sample['args']['wait_ns'] / 1e6:.2f} ms)\n")

    # --- metrics report -----------------------------------------------------
    print(obs.metrics.report(system.sim.now, title="end-of-run metrics"))

    snapshot = obs.snapshot(system.sim.now)
    utils = [
        snapshot[f"channel{c}.utilization"]
        for c in range(system.device.n_channels)
    ]
    assert all(0.0 <= u <= 1.0 for u in utils), utils
    print("\ntrace_viewer_demo OK")


if __name__ == "__main__":
    main()

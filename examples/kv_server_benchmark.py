#!/usr/bin/env python3
"""A miniature of the paper's production experiments (Figures 10-11).

Builds one storage server over an SDF and over a Huawei-Gen3-class SSD,
loads each with CCDB slices, and drives them with batched synchronous
512 KB KV read clients -- printing aggregate throughput as the batch
size grows.  Watch SDF start far behind at batch 1 and shoot past the
Gen3 once its 44 channels fill up.

Run:  python examples/kv_server_benchmark.py   (takes a minute or two)
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import (
    BatchSpec,
    KVClient,
    Network,
    build_conventional_server,
    build_sdf_server,
    run_clients,
)
from repro.kv.slice import Slice, partition_key_space
from repro.sim import KIB, MS, Simulator

N_SLICES = 4
VALUE_BYTES = 512 * KIB
BATCH_SIZES = [1, 8, 44]
DURATION = 120 * MS


def make_slices():
    return [
        Slice(index, key_range)
        for index, key_range in enumerate(
            partition_key_space(N_SLICES, 0, 1_000_000)
        )
    ]


def throughput(kind: str, batch_size: int) -> float:
    sim = Simulator()
    if kind == "sdf":
        server = build_sdf_server(sim, make_slices(), capacity_scale=0.03)
    else:
        server = build_conventional_server(
            sim, make_slices(), capacity_scale=0.03
        )
    keys = {}
    for slice_ in server.slices:
        slice_keys = [slice_.key_range.lo + i for i in range(64)]
        server.preload(slice_, slice_keys, VALUE_BYTES)
        keys[slice_.slice_id] = slice_keys
    network = Network(sim)
    clients = [
        KVClient(
            sim,
            network,
            server,
            slice_,
            BatchSpec(batch_size=batch_size, value_bytes=VALUE_BYTES,
                      mode="read"),
            keys=keys[slice_.slice_id],
            rng=np.random.default_rng(slice_.slice_id),
            name=f"client{slice_.slice_id}",
        )
        for slice_ in server.slices
    ]
    return run_clients(sim, clients, DURATION, warmup_ns=DURATION // 5)


def main() -> None:
    rows = []
    for batch in BATCH_SIZES:
        sdf_mb = throughput("sdf", batch)
        gen3_mb = throughput("gen3", batch)
        rows.append([batch, sdf_mb, gen3_mb])
        print(f"batch {batch:>2}: SDF {sdf_mb:7.0f} MB/s | "
              f"Gen3 {gen3_mb:7.0f} MB/s")
    print()
    print(
        format_table(
            ["batch size", "SDF MB/s", "Gen3 MB/s"],
            rows,
            title=f"{N_SLICES} slices, random {VALUE_BYTES // 1024} KB reads",
        )
    )
    print("\nkv server benchmark OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build an SDF system, store and retrieve data.

Demonstrates the public API end to end:

* building a (capacity-scaled) 44-channel SDF with its user-space block
  layer;
* the asymmetric interface: 8 MB writes, byte-addressable reads;
* the explicit erase command working in the background;
* the simulated clock: every operation has a realistic latency.

Run:  python examples/quickstart.py
"""

from repro import build_sdf_system
from repro.sim.units import MS


def main() -> None:
    # capacity_scale shrinks capacity (not timing) so the demo is quick.
    system = build_sdf_system(capacity_scale=0.01)
    device = system.device
    layer = system.block_layer

    print(f"device: {device}")
    print(f"channels exposed to software: {device.n_channels} "
          f"(/dev/sda0 .. /dev/sda{device.n_channels - 1})")
    print(f"write unit: {layer.block_bytes // 2**20} MiB, "
          f"read unit: {layer.page_size // 1024} KiB")
    print(f"user capacity: {device.capacity_utilization:.1%} of raw "
          f"({device.user_bytes / 2**30:.1f} GiB)")

    # --- store a "web page" under a fresh 64-bit block ID -----------------
    page_html = b"<html><body>Hello, software-defined flash!</body></html>"
    block_id = system.put(page_html * 1000)
    location = layer.location_of(block_id)
    print(f"\nstored block {block_id} on channel {location.channel}, "
          f"logical block {location.logical_block}")
    print(f"simulated time so far: {system.sim.now / MS:.1f} ms "
          f"(one 8 MB write ~ 360 ms of flash time)")

    # --- byte-addressable reads back --------------------------------------
    first_bytes = system.get(block_id, 0, 56)
    assert first_bytes == page_html
    print(f"read back {len(first_bytes)} bytes: {first_bytes[:30]!r}...")

    # --- rewrite: the old block is freed and erased in the background -----
    system.put(b"version 2 of the page", block_id=block_id)
    print(f"rewrote block {block_id}; "
          f"background erases so far: {layer.background_erases}")

    # --- round-robin placement over channels -------------------------------
    ids = [system.put(None) for _ in range(8)]
    channels = [layer.location_of(i).channel for i in ids]
    print(f"\nconsecutive IDs round-robin over channels: {channels}")

    print(f"\nfinal state: {system}")
    print("quickstart OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 8 in miniature: why Baidu wanted predictable writes.

Writes 8 MB blocks to (a) a Huawei-Gen3-class SSD that is nearly full
(so garbage collection fires under the writes) and (b) an SDF doing
explicit erase+write cycles, then prints the latency distributions.

The Gen3 swings between a few ms (DRAM-buffer hit) and hundreds of ms
(buffer full behind a GC storm); the SDF pays a flat ~360-380 ms, every
single time.

Run:  python examples/latency_predictability.py
"""

from dataclasses import replace

import numpy as np

from repro.devices import build_device, ConventionalSSD, HUAWEI_GEN3_SPEC
from repro.sim import MIB, Simulator

N_WRITES = 24


def gen3_latencies():
    sim = Simulator()
    spec = replace(
        HUAWEI_GEN3_SPEC.scaled(0.006),
        dram_buffer_bytes=48 << 20,
        parity_group_size=None,
        n_channels=8,
    )
    device = ConventionalSSD(sim, spec)
    device.prefill(1.0)
    rng = np.random.default_rng(7)
    while max(
        device.ftl.free_blocks(c) for c in range(spec.n_channels)
    ) > device.ftl.gc_free_blocks + 2:
        device.ftl.write(int(rng.integers(device.user_pages)), None)
    pages = 8 * MIB // device.page_size

    def writer():
        for _ in range(N_WRITES):
            start = int(rng.integers(device.user_pages - pages))
            yield from device.write(start, pages)

    sim.run(until=sim.process(writer()))
    return device.stats.write_latency


def sdf_latencies():
    from repro.sim.stats import LatencyRecorder

    sim = Simulator()
    sdf = build_device("sdf", sim, capacity_scale=0.004, n_channels=4)
    sdf.prefill(1.0)
    recorder = LatencyRecorder("sdf.erase+write")

    def writer(channel):
        for block in range(N_WRITES // 4):
            start = sim.now
            # The explicit erase is part of every write cycle (Fig 8).
            yield from channel.write_fresh(block % channel.n_logical_blocks)
            recorder.record(sim.now - start)

    procs = [sim.process(writer(channel)) for channel in sdf.channels]
    sim.run(until=sim.all_of(procs))
    return recorder


def spark(samples, width=48):
    """A crude text histogram of per-write latencies."""
    blocks = " .:-=+*#%@"
    top = max(samples)
    return "".join(
        blocks[min(int(value / top * (len(blocks) - 1)), len(blocks) - 1)]
        for value in samples[:width]
    )


def main() -> None:
    gen3 = gen3_latencies()
    sdf = sdf_latencies()
    for name, rec in [("Huawei Gen3", gen3), ("Baidu SDF", sdf)]:
        print(f"{name}: 8 MB writes")
        print(f"  mean {rec.mean / 1e6:7.1f} ms   "
              f"min {rec.minimum / 1e6:7.1f}   "
              f"max {rec.maximum / 1e6:7.1f}   "
              f"CoV {rec.coefficient_of_variation:.3f}")
        print(f"  per-write profile: |{spark(rec.samples)}|")
        print()
    assert sdf.coefficient_of_variation < 0.05
    assert gen3.coefficient_of_variation > 5 * sdf.coefficient_of_variation
    print("latency predictability demo OK")


if __name__ == "__main__":
    main()

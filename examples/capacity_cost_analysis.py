#!/usr/bin/env python3
"""Capacity, cost and reliability analysis (the paper's S1/S2.2 claims).

Purely analytic -- no simulation: where the raw flash bytes go on each
architecture, what that does to per-usable-GB cost, and why dropping
on-device parity is safe once replication is in place.

Run:  python examples/capacity_cost_analysis.py
"""

from repro.analysis import (
    DEFAULT_COST_MODEL,
    commodity_capacity,
    expected_fleet_uncorrectable_events,
    format_table,
    replication_loss_probability,
    sdf_capacity,
    sdf_raw_bandwidths,
)
from repro.analysis.cost import cost_reduction_vs_commodity

RAW_GB = 704.0  # the SDF board


def main() -> None:
    # --- where the bytes go -------------------------------------------------
    configs = [
        ("SDF", sdf_capacity()),
        ("commodity, 10% OP", commodity_capacity(op_ratio=0.10)),
        ("commodity, 25% OP", commodity_capacity(op_ratio=0.25)),
        ("commodity, 40% OP", commodity_capacity(op_ratio=0.40)),
    ]
    rows = [
        [
            name,
            f"{breakdown.user_fraction:.0%}",
            f"{breakdown.op_fraction:.0%}",
            f"{breakdown.parity_fraction:.0%}",
            f"{RAW_GB * breakdown.user_fraction:.0f} GB",
        ]
        for name, breakdown in configs
    ]
    print(format_table(
        ["architecture", "user", "over-prov", "parity", "usable of 704 GB"],
        rows,
        title="Where the raw capacity goes",
    ))

    # --- per-usable-GB cost ---------------------------------------------------
    print("\nPer-usable-GB cost (cost model: "
          f"${DEFAULT_COST_MODEL.flash_usd_per_raw_gb}/raw GB flash):")
    sdf = sdf_capacity()
    for name, breakdown in configs[1:]:
        saving = cost_reduction_vs_commodity(sdf, breakdown)
        print(f"  SDF vs {name}: {saving:.0%} cheaper per usable GB")

    # --- raw bandwidth sanity -------------------------------------------------
    read, write = sdf_raw_bandwidths()
    print(f"\nSDF raw bandwidth: {read:.0f} MB/s read, {write:.0f} MB/s "
          "write (paper: 1670 / 1010)")

    # --- reliability without parity -------------------------------------------
    print("\nFleet reliability (2000 devices, 6 months, ~19k reads/s each):")
    for wear in (100, 1000, 3000, 6000):
        events = expected_fleet_uncorrectable_events(
            n_devices=2000, months=6,
            page_reads_per_device_per_day=2e8, mean_pe_cycles=wear,
        )
        print(f"  mean wear {wear:>5} P/E: "
              f"expected uncorrectable events = {events:.3g}")
    print("  (the paper observed exactly 1 such event -> a young fleet)")
    p_loss = replication_loss_probability(1e-6, 3)
    print(f"\nwith 3-way replication, P(read loses all copies) ~ {p_loss:.1e}")
    print("capacity/cost analysis OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating application (Figure 9): a web-page repository.

A crawler stores pages into CCDB (the LSM-tree KV store) backed by a
simulated SDF; an indexer then scans the key range to build an inverted
index -- the exact workload of the paper's S3.3.2 experiments.

Run:  python examples/webpage_repository.py
"""

import re
from collections import defaultdict

from repro.kv import CCDBStore, SDFPatchStore, TieredCompactionPolicy

PAGES = {
    "http://news.example/flash": (
        "software defined flash exposes channels to software"
    ),
    "http://news.example/ssd": (
        "commodity ssd hides channels behind a translation layer"
    ),
    "http://blog.example/lsm": (
        "log structured merge trees batch writes into large patches"
    ),
    "http://blog.example/baidu": (
        "baidu deployed software defined flash for web scale storage"
    ),
    "http://docs.example/erase": (
        "the erase command moves garbage collection into software"
    ),
}


def crawl(store: CCDBStore) -> None:
    """The crawler: write each page under its URL key."""
    for url, body in PAGES.items():
        # A page record: the body padded to a representative web-page
        # size (the paper's 32 KB class).
        record = body.encode() + b" " * (32 * 1024 - len(body))
        store.put(url, record)
    store.flush()
    print(f"crawled {len(PAGES)} pages "
          f"({store.lsm.flushes} container flushes, "
          f"{store.lsm.compactions} compactions)")


def build_inverted_index(store: CCDBStore) -> dict:
    """The indexer: scan the whole repository and invert it."""
    index = defaultdict(set)
    for url, record in store.scan("http://", "http:/~"):
        text = record.rstrip(b" ").decode()
        for word in re.findall(r"[a-z]+", text):
            index[word].add(url)
    return index


def main() -> None:
    backend = SDFPatchStore(capacity_scale=0.01, n_channels=8)
    store = CCDBStore(
        backend=backend,
        policy=TieredCompactionPolicy(fanout=2, max_levels=3),
    )

    crawl(store)

    # Point lookups cost one device read (metadata lives in DRAM).
    record = store.get("http://blog.example/baidu")
    print(f"lookup: {record[:40].decode().strip()}...")

    index = build_inverted_index(store)
    print(f"\ninverted index over {len(index)} terms; samples:")
    for term in ("flash", "software", "channels"):
        urls = sorted(index[term])
        print(f"  {term!r}: {urls}")

    # The repository lives on simulated flash: show the accounting.
    system = backend.system
    print(f"\nSDF state: {system.block_layer.stored_blocks} patches stored, "
          f"simulated time {system.sim.now / 1e6:.1f} ms")
    assert index["flash"] == {
        "http://news.example/flash",
        "http://blog.example/baidu",
    }
    print("webpage repository OK")


if __name__ == "__main__":
    main()

"""Span tracing with Chrome ``chrome://tracing`` / Perfetto export.

A :class:`TraceCollector` records timestamped spans on named *tracks*
(e.g. ``"ch3/bus"`` -- the part before the ``/`` groups tracks into a
Perfetto "process" row, the part after is the "thread" row).  Two APIs
are provided:

* :meth:`TraceCollector.span` -- record a complete span whose start and
  end are both known (the common case: instrumentation sites know the
  duration when the work finishes);
* :meth:`TraceCollector.begin` / :meth:`TraceCollector.end` -- a stack
  discipline per track for nested spans (an outer request span
  containing inner phase spans).

Timestamps are integer simulated nanoseconds, exactly as kept by
:class:`repro.sim.engine.Simulator`; the exporter converts to the
microseconds Chrome expects.  :class:`NullTraceCollector` is the no-op
default used when tracing is disabled, so untraced runs pay only a
``None``/``enabled`` check at each instrumentation site.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple


class Span:
    """One recorded span: a named interval on a track."""

    __slots__ = ("track", "name", "start_ns", "end_ns", "args")

    def __init__(
        self,
        track: str,
        name: str,
        start_ns: int,
        end_ns: int,
        args: Optional[dict] = None,
    ):
        if end_ns < start_ns:
            raise ValueError(f"span ends ({end_ns}) before it starts ({start_ns})")
        self.track = track
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.args = args or {}

    @property
    def duration_ns(self) -> int:
        """Span length in nanoseconds."""
        return self.end_ns - self.start_ns

    def __repr__(self):
        return (
            f"Span({self.track!r}, {self.name!r}, "
            f"[{self.start_ns}, {self.end_ns}) ns)"
        )


class TraceCollector:
    """Records spans, instants and counter samples for later export."""

    enabled = True

    def __init__(self, max_events: Optional[int] = None):
        self.spans: List[Span] = []
        self._instants: List[Tuple[str, str, int, dict]] = []
        self._counters: List[Tuple[str, str, int, float]] = []
        self._open: Dict[str, List[Span]] = {}
        self.max_events = max_events
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def _full(self) -> bool:
        if self.max_events is not None and len(self.spans) >= self.max_events:
            self.dropped += 1
            return True
        return False

    # -- recording -------------------------------------------------------------
    def span(
        self, track: str, name: str, start_ns: int, end_ns: int, **args
    ) -> Optional[Span]:
        """Record a complete span (start and end already known)."""
        if self._full():
            return None
        span = Span(track, name, start_ns, end_ns, args)
        self.spans.append(span)
        return span

    def begin(self, track: str, name: str, start_ns: int, **args) -> Span:
        """Open a nested span on a track; close it with :meth:`end`."""
        span = Span(track, name, start_ns, start_ns, args)
        self._open.setdefault(track, []).append(span)
        return span

    def end(self, track: str, end_ns: int) -> Optional[Span]:
        """Close the innermost open span on the track."""
        stack = self._open.get(track)
        if not stack:
            raise ValueError(f"no open span on track {track!r}")
        span = stack.pop()
        span.end_ns = end_ns
        if self._full():
            return None
        self.spans.append(span)
        return span

    def open_depth(self, track: str) -> int:
        """How many spans are currently open on the track."""
        return len(self._open.get(track, ()))

    def instant(self, track: str, name: str, ts_ns: int, **args) -> None:
        """Record a zero-duration marker."""
        self._instants.append((track, name, ts_ns, args))

    def counter(self, track: str, name: str, ts_ns: int, value: float) -> None:
        """Record one sample of a numeric timeline (Chrome 'C' event)."""
        self._counters.append((track, name, ts_ns, value))

    # -- export ----------------------------------------------------------------
    def _track_ids(self) -> Dict[str, Tuple[int, int]]:
        """Map each track to a stable (pid, tid) pair, grouped by the
        ``proc/thread`` convention."""
        pids: Dict[str, int] = {}
        tids: Dict[str, Tuple[int, int]] = {}
        tracks = sorted(
            {s.track for s in self.spans}
            | {t for t, _, _, _ in self._instants}
            | {t for t, _, _, _ in self._counters}
        )
        for track in tracks:
            proc, _, thread = track.partition("/")
            pid = pids.setdefault(proc, len(pids) + 1)
            tids[track] = (pid, len(tids) + 1)
        return tids

    def chrome_trace(self) -> dict:
        """The trace as a Chrome JSON object (``traceEvents`` format).

        Load the written file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Durations are exported in microseconds as
        the format requires; sub-microsecond spans keep their fractional
        part.
        """
        tids = self._track_ids()
        events: List[dict] = []
        procs_named = set()
        for track, (pid, tid) in tids.items():
            proc, _, thread = track.partition("/")
            if pid not in procs_named:
                procs_named.add(pid)
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": proc},
                    }
                )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread or proc},
                }
            )
        for span in self.spans:
            pid, tid = tids[span.track]
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.track,
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start_ns / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "args": span.args,
                }
            )
        for track, name, ts_ns, args in self._instants:
            pid, tid = tids[track]
            events.append(
                {
                    "ph": "i",
                    "name": name,
                    "cat": track,
                    "pid": pid,
                    "tid": tid,
                    "ts": ts_ns / 1000.0,
                    "s": "t",
                    "args": args,
                }
            )
        for track, name, ts_ns, value in self._counters:
            pid, _ = tids[track]
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": pid,
                    "tid": 0,
                    "ts": ts_ns / 1000.0,
                    "args": {"value": value},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)

    def reset(self) -> None:
        """Drop all recorded events."""
        self.spans.clear()
        self._instants.clear()
        self._counters.clear()
        self._open.clear()
        self.dropped = 0


class NullTraceCollector:
    """No-op collector: every recording method does nothing.

    Instrumentation sites check ``collector.enabled`` (or hold ``None``)
    before assembling span arguments, so a disabled trace costs one
    attribute read per site.
    """

    enabled = False

    def __len__(self) -> int:
        return 0

    def span(self, track, name, start_ns, end_ns, **args) -> None:
        return None

    def begin(self, track, name, start_ns, **args) -> None:
        return None

    def end(self, track, end_ns) -> None:
        return None

    def open_depth(self, track) -> int:
        return 0

    def instant(self, track, name, ts_ns, **args) -> None:
        return None

    def counter(self, track, name, ts_ns, value) -> None:
        return None

    def chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)

    def reset(self) -> None:
        return None

"""The observability facade and the wiring that threads it through a
running system.

:class:`Observability` bundles one :class:`~repro.obs.trace.TraceCollector`
(or the no-op null collector when tracing is off) with one
:class:`~repro.obs.metrics.MetricsRegistry`.  The ``attach_*`` helpers
connect an already-built system to it:

* :func:`attach_device` -- channel engines (op spans, utilisation,
  queue depth) and per-channel FTLs (host op counts, wear);
* :func:`attach_block_layer` -- block-layer counters, erase backlog
  timelines and op spans;
* :func:`attach_system` -- both of the above plus the simulator hook
  that makes named resources (channel buses, planes) emit hold spans;
* :func:`attach_server` -- a CCDB storage server's request metrics and
  per-slice counters.

Attachment is optional and late-bound: systems built without an
``Observability`` run exactly as before, paying only a ``None`` check
at each instrumentation site.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTraceCollector, TraceCollector


class Observability:
    """One trace collector + one metrics registry for a whole run."""

    def __init__(self, trace: bool = False, max_trace_events: Optional[int] = None):
        self.trace = (
            TraceCollector(max_trace_events) if trace else NullTraceCollector()
        )
        self.metrics = MetricsRegistry()

    def snapshot(self, now_ns: Optional[int] = None) -> dict:
        """Shorthand for ``self.metrics.snapshot(now_ns)``."""
        return self.metrics.snapshot(now_ns)

    def __repr__(self):
        kind = "tracing" if self.trace.enabled else "metrics-only"
        return f"Observability({kind}, metrics={len(self.metrics.names())})"


def attach_device(obs: Observability, device) -> None:
    """Instrument any :class:`~repro.devices.base.DeviceModel`.

    Channel engines (when the device exposes them) get op-level spans
    and a live queue-depth timeline; the registry gains per-channel
    utilisation/busy/wait pull metrics, each exposed FTL's host-op and
    wear metrics, and the device's uniform ``device.{kind}.*`` family
    via its ``attach_metrics`` hook.
    """
    device.sim.obs = obs
    registry = obs.metrics
    for engine in getattr(device, "engines", ()):
        engine.obs = obs
        channel = engine.channel
        registry.register_callback(
            f"channel{channel}.utilization",
            lambda now, e=engine: e.utilization(now),
        )
        registry.register_callback(
            f"channel{channel}.busy_ns",
            lambda now, e=engine: e.busy_value(now),
        )
        registry.register_callback(
            f"channel{channel}.wait_ns", lambda now, e=engine: e.wait_ns.value
        )
        registry.register_callback(
            f"channel{channel}.ops", lambda now, e=engine: e.ops_executed.value
        )
    for ftl in getattr(device, "ftls", ()):
        ftl.attach_metrics(registry)
    if hasattr(device, "attach_metrics"):
        device.attach_metrics(registry)


def attach_block_layer(obs: Observability, layer) -> None:
    """Instrument a :class:`~repro.core.block_layer.UserSpaceBlockLayer`."""
    registry = obs.metrics
    layer.obs = obs
    layer._m_writes = registry.counter("blk.writes")
    layer._m_reads = registry.counter("blk.reads")
    layer._m_frees = registry.counter("blk.frees")
    layer._m_rewrites = registry.counter("blk.rewrites")
    now = layer.sim.now
    layer._m_backlog = [
        registry.time_weighted(f"blk.ch{channel}.erase_backlog", start_ns=now)
        for channel in range(layer.device.n_channels)
    ]
    registry.register_callback(
        "blk.stored_blocks", lambda _now: layer.stored_blocks
    )
    registry.register_callback(
        "blk.background_erases", lambda _now: layer.background_erases
    )


def _wire_system(obs: Observability, system) -> None:
    """Instrument an :class:`~repro.core.api.SDFSystem` end to end."""
    attach_device(obs, system.device)
    attach_block_layer(obs, system.block_layer)


def attach_system(obs: Observability, system) -> None:
    """Deprecated: use ``system.attach(obs)`` or
    ``build_sdf_system(obs=...)`` instead."""
    import warnings

    warnings.warn(
        "attach_system() is deprecated; use SDFSystem.attach(obs) or "
        "build_sdf_system(obs=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    _wire_system(obs, system)


def attach_server(obs: Observability, server) -> None:
    """Instrument a :class:`~repro.cluster.node.StorageServer`."""
    server.attach_obs(obs)


def attach_ecc(obs: Observability, ecc) -> None:
    """Instrument an :class:`~repro.ecc.model.EccModel`.

    Every ``read_outcome`` increments one of the ``ecc.reads_clean`` /
    ``ecc.reads_corrected`` / ``ecc.reads_uncorrectable`` counters, so
    correction pressure shows up in the same snapshot as the QoS
    shed/stall metrics it tends to precede.
    """
    ecc.obs = obs
    registry = obs.metrics
    registry.register_callback(
        "ecc.reads_clean", lambda _now: ecc.clean_reads
    )
    registry.register_callback(
        "ecc.reads_corrected", lambda _now: ecc.corrected_reads
    )
    registry.register_callback(
        "ecc.reads_uncorrectable", lambda _now: ecc.uncorrectable_reads
    )

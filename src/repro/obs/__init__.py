"""Observability: end-to-end tracing and metrics for the SDF stack.

The paper's evaluation (Figs 7/8, Table 1) is all about *per-channel*
behaviour -- utilisation, queue wait vs service time, erase backlog,
wear.  This package makes those visible in any run:

* :class:`~repro.obs.trace.TraceCollector` records timestamped spans
  per channel/bus/plane/request track and exports Chrome
  ``chrome://tracing`` / Perfetto JSON;
* :class:`~repro.obs.metrics.MetricsRegistry` holds named counters,
  gauges, histograms and time-weighted signals with a one-call
  ``snapshot()`` and text report;
* :class:`~repro.obs.attach.Observability` bundles both, and the
  ``attach_*`` helpers wire an already-built system to it.

Typical use::

    from repro import build_sdf_system
    from repro.obs import Observability

    obs = Observability(trace=True)
    system = build_sdf_system(capacity_scale=0.004, n_channels=4, obs=obs)
    block = system.put(b"payload")
    system.get(block, 0, 7)
    obs.trace.write("run.trace.json")          # open in ui.perfetto.dev
    print(obs.metrics.report(system.sim.now))  # text metrics table

Everything is off by default: a system that is never attached pays only
a ``None`` check per instrumentation site.
"""

from repro.obs.attach import (
    Observability,
    attach_block_layer,
    attach_device,
    attach_ecc,
    attach_server,
    attach_system,
)
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NullTraceCollector, Span, TraceCollector

__all__ = [
    "Observability",
    "attach_block_layer",
    "attach_device",
    "attach_ecc",
    "attach_server",
    "attach_system",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTraceCollector",
    "Span",
    "TraceCollector",
]

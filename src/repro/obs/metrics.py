"""A registry of named metrics with one-call snapshot and text report.

Four metric kinds cover everything the reproduction measures:

* **counters** -- monotonically increasing event counts (reuses
  :class:`repro.sim.stats.Counter`);
* **gauges** -- instantaneous values set by the instrumented code;
* **histograms** -- latency-style sample distributions (mean, quantiles);
* **time-weighted signals** -- piecewise-constant timelines such as
  queue depths (reuses :class:`repro.sim.stats.TimeWeighted`).

A fifth kind, **callbacks**, pulls values lazily at snapshot time from
live objects (per-channel utilisation, wear spread, backlog lengths)
so the hot path pays nothing for them.

``snapshot()`` flattens everything into one ``{name: value}`` dict;
``report()`` renders it as an aligned text table.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.stats import Counter, LatencyRecorder, TimeWeighted, percentile


class Gauge:
    """A named instantaneous value."""

    def __init__(self, name: str = "", value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta`` (may be negative)."""
        self.value += delta

    def __repr__(self):
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram(LatencyRecorder):
    """Sample distribution; extends the recorder with a summary dict."""

    def summary(self) -> dict:
        """Count, mean, min/max and standard quantiles of the samples."""
        if not len(self):
            return {"count": 0}
        ordered = sorted(self.samples)
        return {
            "count": len(self),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
        }


class MetricsRegistry:
    """Named counters, gauges, histograms and time-weighted signals.

    Accessors create on first use, so instrumented code can say
    ``registry.counter("blk.writes").add()`` without a registration
    step.  Every name lives in one flat namespace; dotted prefixes
    (``channel3.…``, ``ftl.ch3.…``) are the grouping convention.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._time_weighted: Dict[str, TimeWeighted] = {}
        self._callbacks: Dict[str, Callable[[Optional[int]], float]] = {}

    # -- accessors (create on first use) ----------------------------------------
    def counter(self, name: str) -> Counter:
        """The named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def time_weighted(self, name: str, start_ns: int = 0) -> TimeWeighted:
        """The named time-weighted signal."""
        signal = self._time_weighted.get(name)
        if signal is None:
            signal = self._time_weighted[name] = TimeWeighted(
                initial=0.0, start_ns=start_ns
            )
        return signal

    def register_counter(self, name: str, counter: Counter) -> Counter:
        """Adopt an existing Counter (e.g. a Slice's) under ``name``."""
        self._counters[name] = counter
        return counter

    def register_callback(
        self, name: str, fn: Callable[[Optional[int]], float]
    ) -> None:
        """Register a pull metric: ``fn(now_ns)`` evaluated at snapshot.

        ``now_ns`` is forwarded from :meth:`snapshot` and may be None
        when the caller did not supply a time; callbacks over simulator-
        attached objects should then fall back to their own clock.
        """
        self._callbacks[name] = fn

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._histograms)
            | set(self._time_weighted)
            | set(self._callbacks)
        )

    # -- reading ---------------------------------------------------------------
    def peek(self, name: str, now_ns: Optional[int] = None, default=None):
        """Read one metric *without creating it* (policy-engine reads).

        Returns the same shape :meth:`snapshot` would give the name --
        counter/gauge value, histogram summary dict, time-weighted
        average, callback result -- or ``default`` when no metric of
        that name exists.  Unlike the accessors above, a peek at an
        unknown name leaves the registry untouched, so reading a metric
        before the first event never perturbs later snapshots.
        """
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.value
        histogram = self._histograms.get(name)
        if histogram is not None:
            return histogram.summary()
        signal = self._time_weighted.get(name)
        if signal is not None:
            at = now_ns if now_ns is not None else signal.horizon
            return signal.average(at)
        fn = self._callbacks.get(name)
        if fn is not None:
            return fn(now_ns)
        return default

    def snapshot(self, now_ns: Optional[int] = None) -> dict:
        """Flatten every metric into ``{name: value}``.

        Counters and gauges contribute their value; histograms a summary
        dict; time-weighted signals their average up to ``now_ns`` (or
        their last update when no time is given); callbacks whatever
        they return.
        """
        snap: dict = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, histogram in self._histograms.items():
            snap[name] = histogram.summary()
        for name, signal in self._time_weighted.items():
            at = now_ns if now_ns is not None else signal.horizon
            snap[name] = signal.average(at)
        for name, fn in self._callbacks.items():
            snap[name] = fn(now_ns)
        return snap

    def report(self, now_ns: Optional[int] = None, title: str = "metrics") -> str:
        """An aligned text table of the snapshot (histograms expanded)."""
        from repro.analysis.reporting import format_metrics

        return format_metrics(self.snapshot(now_ns), title=title)

    def reset(self) -> None:
        """Clear counters and histograms (gauges/signals keep state)."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

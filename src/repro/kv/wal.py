"""Write-ahead log.

"Data that are being accumulated in the in-memory container are
immediately saved in a log in an SSD or a hard disk to prevent data
loss" (S2.4).  The log records every mutation since the last container
flush; :meth:`replay` rebuilds the container after a crash.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.kv.common import TOMBSTONE, sizeof_key, sizeof_value

PUT = "put"
DELETE = "delete"


class WriteAheadLog:
    """An append-only mutation log with truncation at flush points.

    Two truncation disciplines are supported:

    * :meth:`truncate` drops everything -- correct when the records'
      container was *persisted* before truncating (the default LSM mode,
      which truncates at freeze time and accepts a small window where a
      crash loses the frozen-but-unstored patch);
    * :meth:`mark` / :meth:`truncate_through` implement durable
      truncation: mark the log position at freeze time, truncate only
      the prefix once the patch is actually on storage.  Records for
      patches still in flight survive a crash and are replayed.
    """

    def __init__(self):
        self._records: List[Tuple[str, object, object]] = []
        self.appended_bytes = 0
        self.truncations = 0
        self._marks: dict = {}  # token -> record position

    def __len__(self) -> int:
        return len(self._records)

    def append_put(self, key, value) -> None:
        """Log an insert."""
        self._records.append((PUT, key, value))
        self.appended_bytes += sizeof_key(key) + sizeof_value(value)

    def append_delete(self, key) -> None:
        """Log a deletion."""
        self._records.append((DELETE, key, None))
        self.appended_bytes += sizeof_key(key)

    def truncate(self) -> None:
        """Drop all records (the container they protect was persisted)."""
        self._records.clear()
        self._marks.clear()
        self.truncations += 1

    def mark(self, token) -> None:
        """Remember the current log position under ``token``."""
        self._marks[token] = len(self._records)

    def truncate_through(self, token) -> int:
        """Drop records up to ``token``'s mark (they are now durable).

        Returns how many records were dropped.  Later marks shift down;
        marks at or before the cut are discarded.
        """
        position = self._marks.pop(token, None)
        if position is None:
            raise KeyError(f"no WAL mark for token {token!r}")
        cut = min(position, len(self._records))
        del self._records[:cut]
        for other in list(self._marks):
            self._marks[other] = max(0, self._marks[other] - cut)
        self.truncations += 1
        return cut

    def records(self) -> List[Tuple[str, object, object]]:
        """A snapshot of the surviving records (oldest first)."""
        return list(self._records)

    def reset(self) -> None:
        """Forget everything, marks included, without counting a
        truncation (used when rebuilding state after crash replay)."""
        self._records.clear()
        self._marks.clear()

    def replay(self, memtable) -> int:
        """Re-apply every record into ``memtable``; returns the count."""
        for kind, key, value in self._records:
            if kind == PUT:
                memtable.put(key, value)
            else:
                memtable.put(key, TOMBSTONE)
        return len(self._records)

"""Write-ahead log.

"Data that are being accumulated in the in-memory container are
immediately saved in a log in an SSD or a hard disk to prevent data
loss" (S2.4).  The log records every mutation since the last container
flush; :meth:`replay` rebuilds the container after a crash.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.kv.common import TOMBSTONE, sizeof_key, sizeof_value

PUT = "put"
DELETE = "delete"


class WriteAheadLog:
    """An append-only mutation log with truncation at flush points."""

    def __init__(self):
        self._records: List[Tuple[str, object, object]] = []
        self.appended_bytes = 0
        self.truncations = 0

    def __len__(self) -> int:
        return len(self._records)

    def append_put(self, key, value) -> None:
        """Log an insert."""
        self._records.append((PUT, key, value))
        self.appended_bytes += sizeof_key(key) + sizeof_value(value)

    def append_delete(self, key) -> None:
        """Log a deletion."""
        self._records.append((DELETE, key, None))
        self.appended_bytes += sizeof_key(key)

    def truncate(self) -> None:
        """Drop all records (the container they protect was persisted)."""
        self._records.clear()
        self.truncations += 1

    def replay(self, memtable) -> int:
        """Re-apply every record into ``memtable``; returns the count."""
        for kind, key, value in self._records:
            if kind == PUT:
                memtable.put(key, value)
            else:
                memtable.put(key, TOMBSTONE)
        return len(self._records)

"""Slices: CCDB's unit of key-space partitioning (paper S2.4).

"Requests from clients are hashed into different hash buckets called
slices ... A slice uses Baidu's CCDB system to manage its KV pairs using
a log-structured merge tree."  A slice owns one key range and one LSM
tree; slices are hosted on storage-server nodes (see
:mod:`repro.cluster.node`) and replicated across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kv.lsm import LSMTree
from repro.sim.stats import Counter


@dataclass(frozen=True)
class KeyRange:
    """Half-open key interval [lo, hi)."""

    lo: object
    hi: object

    def __post_init__(self):
        if not self.lo < self.hi:
            raise ValueError(f"empty key range [{self.lo!r}, {self.hi!r})")

    def __contains__(self, key) -> bool:
        return self.lo <= key < self.hi


class WrongSliceError(KeyError):
    """A key outside this slice's range was routed here."""


class Slice:
    """One key range served by one LSM tree."""

    def __init__(
        self,
        slice_id: int,
        key_range: KeyRange,
        lsm: Optional[LSMTree] = None,
    ):
        self.slice_id = slice_id
        self.key_range = key_range
        self.lsm = lsm if lsm is not None else LSMTree()
        self.reads = Counter(f"slice{slice_id}.reads")
        self.writes = Counter(f"slice{slice_id}.writes")

    def bind_metrics(self, registry) -> None:
        """Adopt this slice's counters into a MetricsRegistry, so a
        snapshot reports per-slice read/write counts."""
        registry.register_counter(f"slice{self.slice_id}.reads", self.reads)
        registry.register_counter(f"slice{self.slice_id}.writes", self.writes)
        registry.register_callback(
            f"slice{self.slice_id}.memtable_bytes",
            lambda _now: self.lsm.memtable.nbytes,
        )

    def write_pressure(self, config) -> str:
        """This slice's LSM write pressure (see
        :meth:`repro.kv.lsm.LSMTree.write_pressure`)."""
        return self.lsm.write_pressure(config)

    def owns(self, key) -> bool:
        """True when the key falls in this slice's range."""
        return key in self.key_range

    def require_owns(self, key) -> None:
        """Raise WrongSliceError unless the key is owned."""
        if not self.owns(key):
            raise WrongSliceError(
                f"key {key!r} outside slice {self.slice_id} range "
                f"[{self.key_range.lo!r}, {self.key_range.hi!r})"
            )

    def __repr__(self):
        return (
            f"Slice(id={self.slice_id}, "
            f"range=[{self.key_range.lo!r}, {self.key_range.hi!r}), "
            f"{self.lsm!r})"
        )


def partition_key_space(n_slices: int, lo: int = 0, hi: int = 1 << 64):
    """Split an integer key space into ``n_slices`` equal ranges."""
    if n_slices < 1:
        raise ValueError("need at least one slice")
    if not lo < hi:
        raise ValueError("empty key space")
    width = (hi - lo) // n_slices
    if width < 1:
        raise ValueError("key space too small for that many slices")
    ranges = []
    for index in range(n_slices):
        range_lo = lo + index * width
        range_hi = hi if index == n_slices - 1 else range_lo + width
        ranges.append(KeyRange(range_lo, range_hi))
    return ranges

"""Slices: CCDB's unit of key-space partitioning (paper S2.4).

"Requests from clients are hashed into different hash buckets called
slices ... A slice uses Baidu's CCDB system to manage its KV pairs using
a log-structured merge tree."  A slice owns one key range and one LSM
tree; slices are hosted on storage-server nodes (see
:mod:`repro.cluster.node`) and replicated across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ClusterError
from repro.kv.lsm import LSMTree
from repro.sim.stats import Counter


@dataclass(frozen=True)
class KeyRange:
    """Half-open key interval [lo, hi)."""

    lo: object
    hi: object

    def __post_init__(self):
        if not self.lo < self.hi:
            raise ValueError(f"empty key range [{self.lo!r}, {self.hi!r})")

    def __contains__(self, key) -> bool:
        return self.lo <= key < self.hi

    def split(self, at) -> "tuple[KeyRange, KeyRange]":
        """Split into ``[lo, at)`` and ``[at, hi)``; ``at`` must fall
        strictly inside the range (both halves non-empty)."""
        if not self.lo < at < self.hi:
            raise ValueError(
                f"split point {at!r} outside ({self.lo!r}, {self.hi!r})"
            )
        return KeyRange(self.lo, at), KeyRange(at, self.hi)

    def adjacent_to(self, other: "KeyRange") -> bool:
        """True when the two ranges share exactly one boundary."""
        return self.hi == other.lo or other.hi == self.lo

    def merged_with(self, other: "KeyRange") -> "KeyRange":
        """The union of two adjacent ranges."""
        if not self.adjacent_to(other):
            raise ValueError(
                f"ranges [{self.lo!r}, {self.hi!r}) and "
                f"[{other.lo!r}, {other.hi!r}) are not adjacent"
            )
        return KeyRange(min(self.lo, other.lo), max(self.hi, other.hi))


class WrongSliceError(ClusterError, KeyError):
    """A key outside this slice's range was routed here.

    Subclasses :class:`KeyError` so historical ``except KeyError``
    routing checks keep matching.
    """


class Slice:
    """One key range served by one LSM tree."""

    def __init__(
        self,
        slice_id: int,
        key_range: KeyRange,
        lsm: Optional[LSMTree] = None,
    ):
        self.slice_id = slice_id
        self.key_range = key_range
        self.lsm = lsm if lsm is not None else LSMTree()
        self.reads = Counter(f"slice{slice_id}.reads")
        self.writes = Counter(f"slice{slice_id}.writes")
        #: Payload bytes served/accepted -- the load signal the cluster
        #: rebalancer equalises across nodes.
        self.bytes_read = Counter(f"slice{slice_id}.bytes_read")
        self.bytes_written = Counter(f"slice{slice_id}.bytes_written")
        #: Routing epoch: bumped by the control plane each time the
        #: slice changes owner.  Requests stamped with an older epoch
        #: are rejected with :class:`~repro.errors.WrongEpochError`.
        self.epoch = 0
        #: True while this slice is a migration *target* still catching
        #: up: it must not serve requests yet.
        self.importing = False
        #: True during migration cutover: new puts are rejected (and
        #: retried by the client against the new owner after the epoch
        #: bump) so the final tail transfer sees a quiescent memtable.
        self.write_blocked = False
        #: True while this slice is a migration *source*: background
        #: compaction stands down so the registered-run set only grows,
        #: letting the snapshot/catch-up transfer work over a stable
        #: run inventory (no read-vs-free races, no re-transfers).
        self.migration_hold = False
        #: True while a compaction merge is actually in flight on this
        #: slice.  ``migration_hold`` stops *new* merges; the control
        #: plane polls this flag to wait out one already running before
        #: it snapshots the run inventory.
        self.compaction_active = False

    def bind_metrics(self, registry) -> None:
        """Adopt this slice's counters into a MetricsRegistry, so a
        snapshot reports per-slice read/write counts."""
        registry.register_counter(f"slice{self.slice_id}.reads", self.reads)
        registry.register_counter(f"slice{self.slice_id}.writes", self.writes)
        registry.register_counter(
            f"slice{self.slice_id}.bytes_read", self.bytes_read
        )
        registry.register_counter(
            f"slice{self.slice_id}.bytes_written", self.bytes_written
        )
        registry.register_callback(
            f"slice{self.slice_id}.memtable_bytes",
            lambda _now: self.lsm.memtable.nbytes,
        )

    def write_pressure(self, config) -> str:
        """This slice's LSM write pressure (see
        :meth:`repro.kv.lsm.LSMTree.write_pressure`)."""
        return self.lsm.write_pressure(config)

    def owns(self, key) -> bool:
        """True when the key falls in this slice's range."""
        return key in self.key_range

    def require_owns(self, key) -> None:
        """Raise WrongSliceError unless the key is owned."""
        if not self.owns(key):
            raise WrongSliceError(
                f"key {key!r} outside slice {self.slice_id} range "
                f"[{self.key_range.lo!r}, {self.key_range.hi!r})"
            )

    def __repr__(self):
        return (
            f"Slice(id={self.slice_id}, "
            f"range=[{self.key_range.lo!r}, {self.key_range.hi!r}), "
            f"{self.lsm!r})"
        )


def partition_key_space(n_slices: int, lo: int = 0, hi: int = 1 << 64):
    """Split an integer key space into ``n_slices`` equal ranges."""
    if n_slices < 1:
        raise ValueError("need at least one slice")
    if not lo < hi:
        raise ValueError("empty key space")
    width = (hi - lo) // n_slices
    if width < 1:
        raise ValueError("key space too small for that many slices")
    ranges = []
    for index in range(n_slices):
        range_lo = lo + index * width
        range_hi = hi if index == n_slices - 1 else range_lo + width
        ranges.append(KeyRange(range_lo, range_hi))
    return ranges

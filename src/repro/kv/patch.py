"""Immutable sorted patches -- CCDB's SSTable equivalent.

"When a container is full, a patch is formed, and the patch is written
into the SDF device" (S2.4).  A patch is a sorted run of key/value
pairs with a binary-searchable index; patches are merge-sorted during
compaction and can be serialized to bytes for storage on a real(ly
simulated) device.
"""

from __future__ import annotations

import bisect
import pickle
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.kv.common import TOMBSTONE, PlaceholderValue, sizeof_key, sizeof_value


class Patch:
    """An immutable sorted run of (key, value) pairs."""

    __slots__ = ("_keys", "_values", "nbytes")

    def __init__(self, items: Iterable[Tuple[object, object]]):
        pairs = list(items)
        keys = [key for key, _ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("patch items must be strictly sorted by key")
        self._keys: List = keys
        self._values: List = [value for _, value in pairs]
        self.nbytes = sum(
            sizeof_key(key) + sizeof_value(value) for key, value in pairs
        )

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_memtable(cls, memtable) -> "Patch":
        """Freeze a memtable's sorted contents into a patch."""
        return cls(memtable.items_sorted())

    # -- lookups ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    @property
    def is_empty(self) -> bool:
        """True when nothing is stored."""
        return not self._keys

    @property
    def min_key(self):
        """Smallest key (None if empty)."""
        return self._keys[0] if self._keys else None

    @property
    def max_key(self):
        """Largest key (None if empty)."""
        return self._keys[-1] if self._keys else None

    def __contains__(self, key) -> bool:
        index = bisect.bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    def get(self, key) -> Tuple[bool, Optional[object]]:
        """(found, value); found is True for tombstones too."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return True, self._values[index]
        return False, None

    def offset_of(self, key) -> Optional[int]:
        """Byte offset of the value within the patch (for device reads)."""
        index = bisect.bisect_left(self._keys, key)
        if index >= len(self._keys) or self._keys[index] != key:
            return None
        offset = 0
        for i in range(index):
            offset += sizeof_key(self._keys[i]) + sizeof_value(self._values[i])
        return offset + sizeof_key(key)

    def items(self) -> Iterable[Tuple[object, object]]:
        """Iterate (key, value) pairs in key order."""
        return zip(self._keys, self._values)

    def keys(self) -> Sequence:
        """The keys, in key order."""
        return tuple(self._keys)

    def range_items(self, lo, hi) -> List[Tuple[object, object]]:
        """Items with lo <= key < hi."""
        start = bisect.bisect_left(self._keys, lo)
        stop = bisect.bisect_left(self._keys, hi)
        return [
            (self._keys[i], self._values[i]) for i in range(start, stop)
        ]

    def restricted_to(self, key_range) -> Optional["Patch"]:
        """A new patch holding only the items inside ``key_range``
        (a :class:`repro.kv.slice.KeyRange`), or ``None`` when the
        range holds nothing.  Used by slice splits to partition a
        parent's runs between its children."""
        items = self.range_items(key_range.lo, key_range.hi)
        if not items:
            return None
        return Patch(items)

    # -- serialization -------------------------------------------------------------
    _TOMBSTONE_MARK = "__ccdb_tombstone__"
    _PLACEHOLDER_MARK = "__ccdb_placeholder__"

    def serialize(self) -> bytes:
        """Portable byte form (for storing patches on simulated flash)."""
        encoded = []
        for key, value in self.items():
            if value is TOMBSTONE:
                value = (self._TOMBSTONE_MARK,)
            elif isinstance(value, PlaceholderValue):
                value = (self._PLACEHOLDER_MARK, value.size)
            encoded.append((key, value))
        return pickle.dumps(encoded, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def deserialize(cls, raw: bytes) -> "Patch":
        """Rebuild a patch from its serialized bytes."""
        decoded = []
        for key, value in pickle.loads(raw):
            if isinstance(value, tuple) and value:
                if value[0] == cls._TOMBSTONE_MARK:
                    value = TOMBSTONE
                elif value[0] == cls._PLACEHOLDER_MARK:
                    value = PlaceholderValue(value[1])
            decoded.append((key, value))
        return cls(decoded)

    def __repr__(self):
        return f"Patch(n={len(self)}, nbytes={self.nbytes})"

"""CCDBStore: the synchronous KV facade.

Binds an :class:`~repro.kv.lsm.LSMTree` to a patch-storage backend and
drives flushes and compactions to completion on every call.  Two
backends ship:

* :class:`MemoryPatchStore` -- patches in a dict (pure functional use);
* :class:`SDFPatchStore` -- patches serialized onto a simulated SDF
  through the user-space block layer, one 8 MB block per patch, which is
  exactly the correspondence the paper engineered.

The timed cluster model (:mod:`repro.cluster`) drives the same LSM state
machine against the same devices but inside simulation processes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.api import SDFSystem
from repro.kv.common import TOMBSTONE
from repro.kv.compaction import TieredCompactionPolicy, split_patch
from repro.kv.lsm import LSMTree
from repro.kv.patch import Patch
from repro.sim.units import MIB


class MemoryPatchStore:
    """Patch storage in host memory."""

    def __init__(self):
        self._patches: Dict[int, Patch] = {}
        self._next_handle = 0

    def store(self, patch: Patch) -> int:
        """Store a patch; returns its handle."""
        handle = self._next_handle
        self._next_handle += 1
        self._patches[handle] = patch
        return handle

    def load(self, handle: int) -> Patch:
        """Load a patch by handle."""
        return self._patches[handle]

    def free(self, handle: int) -> None:
        """Release a handle."""
        del self._patches[handle]

    @property
    def n_patches(self) -> int:
        """Patches currently stored."""
        return len(self._patches)


class SDFPatchStore:
    """Patch storage on a simulated SDF (one 8 MB block per patch)."""

    def __init__(self, system: Optional[SDFSystem] = None, **system_kwargs):
        if system is None:
            from repro.core.api import build_sdf_system

            system_kwargs.setdefault("capacity_scale", 0.05)
            system = build_sdf_system(**system_kwargs)
        self.system = system

    def store(self, patch: Patch) -> int:
        """Store a patch; returns its handle."""
        raw = patch.serialize()
        if len(raw) > self.system.block_layer.block_bytes:
            raise ValueError(
                f"serialized patch ({len(raw)} B) exceeds the SDF block"
            )
        return self.system.put(raw)

    def load(self, handle: int) -> Patch:
        """Load a patch by handle."""
        raw = self.system.get(handle)
        return Patch.deserialize(raw)

    def free(self, handle: int) -> None:
        """Release a handle."""
        self.system.delete(handle)

    @property
    def n_patches(self) -> int:
        """Patches currently stored."""
        return self.system.block_layer.stored_blocks


class CCDBStore:
    """A synchronous, compaction-driving KV store."""

    def __init__(
        self,
        backend=None,
        memtable_bytes: int = 8 * MIB,
        policy: Optional[TieredCompactionPolicy] = None,
        enable_wal: bool = True,
        max_patch_bytes: int = 8 * MIB,
    ):
        self.backend = backend if backend is not None else MemoryPatchStore()
        self.lsm = LSMTree(memtable_bytes, policy, enable_wal)
        self.max_patch_bytes = max_patch_bytes

    # -- mutations --------------------------------------------------------------
    def put(self, key, value) -> None:
        """Insert; the returned event fires once accepted."""
        frozen = self.lsm.put(key, value)
        if frozen is not None:
            self._persist(frozen)

    def delete(self, key) -> None:
        """Record a deletion (tombstone insert)."""
        frozen = self.lsm.delete(key)
        if frozen is not None:
            self._persist(frozen)

    def flush(self) -> None:
        """Force the write container onto storage."""
        frozen = self.lsm.flush()
        if frozen is not None:
            self._persist(frozen)

    def _persist(self, frozen) -> None:
        handle = self.backend.store(frozen.patch)
        self.lsm.register_patch(frozen, handle)
        self.compact_pending()

    # -- compaction --------------------------------------------------------------
    def compact_pending(self) -> int:
        """Run every compaction the policy wants; returns merge count."""
        merges = 0
        while True:
            task = self.lsm.pick_compaction()
            if task is None:
                return merges
            patches = [
                self.backend.load(handle)
                for handle in self.lsm.run_handles(task)
            ]
            merged = self.lsm.merge_for_task(task, patches)
            parts = split_patch(merged, self.max_patch_bytes)
            new_handles = [self.backend.store(part) for part in parts]
            for freed in self.lsm.apply_compaction(task, parts, new_handles):
                self.backend.free(freed)
            merges += 1

    # -- reads -------------------------------------------------------------------
    def get(self, key, default=None):
        """Remove/fetch; the returned event fires with the result."""
        kind, payload = self.lsm.get(key)
        if kind == "value":
            return payload
        if kind == "miss":
            return default
        patch = self.backend.load(payload.handle)
        found, value = patch.get(key)
        if not found or value is TOMBSTONE:  # pragma: no cover - metadata
            return default  # and storage disagree: treat as miss
        return value

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def scan(self, lo, hi) -> Iterator[Tuple[object, object]]:
        """All live pairs with lo <= key < hi, in key order."""
        memory_items, runs = self.lsm.scan_plan(lo, hi)
        view: Dict = {}
        # Overlay oldest to newest so the most recent entry wins: runs
        # (oldest first), then pending patches (older before newer), then
        # the memtable.  ``memory_items`` is ordered memtable first, then
        # pendings newest-first, so reversing it yields exactly the
        # older-to-newer application order.
        for run in reversed(runs):
            patch = self.backend.load(run.handle)
            for key, value in patch.range_items(lo, hi):
                view[key] = value
        for key, value in reversed(memory_items):
            view[key] = value
        for key in sorted(view):
            value = view[key]
            if value is not TOMBSTONE:
                yield key, value

    def __len__(self) -> int:
        """Number of live keys (walks DRAM metadata only)."""
        return sum(1 for _ in self.scan_keys())

    def scan_keys(self) -> Iterator:
        """All live keys, from DRAM metadata (no device reads)."""
        seen = set()
        for key, value in self.lsm.memtable.items_sorted():
            seen.add(key)
            if value is not TOMBSTONE:
                yield key
        for frozen in sorted(self.lsm._pending, key=lambda f: -f.token):
            for key, value in frozen.patch.items():
                if key not in seen:
                    seen.add(key)
                    if value is not TOMBSTONE:
                        yield key
        for key, run_id in self.lsm._key_map.items():
            if key not in seen:
                offset, size, is_tombstone = self.lsm._runs[run_id].index[key]
                if not is_tombstone:
                    yield key

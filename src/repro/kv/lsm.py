"""The LSM tree: CCDB's per-slice data structure (paper S2.4).

Design constraints lifted straight from the paper:

* the write container (memtable) holds at most 8 MB; full containers
  freeze into patches that are stored in exactly one SDF write unit;
* *all* KV metadata lives in DRAM, so a client read costs **one** device
  read: the tree keeps a global ``key -> run`` map plus per-run offset
  indexes;
* patches experience multiple merge-sorts (tiered compaction) on their
  way into the final large log.

The tree performs no I/O itself.  ``put`` may return a frozen
:class:`~repro.kv.patch.Patch` the caller must persist;
``pick_compaction`` returns merge work for the caller to execute.  This
lets the same state machine drive the synchronous in-memory store, the
functional SDF store, and the fully timed cluster simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kv.common import TOMBSTONE, sizeof_key, sizeof_value
from repro.kv.compaction import (
    CompactionTask,
    TieredCompactionPolicy,
    merge_patches,
)
from repro.kv.memtable import MemTable
from repro.kv.patch import Patch
from repro.kv.wal import PUT, WriteAheadLog
from repro.sim.units import MIB


@dataclass
class Run:
    """One immutable sorted run persisted on storage."""

    run_id: int
    level: int
    handle: object
    freeze_token: int
    nbytes: int
    n_items: int
    #: key -> (byte offset of value within the patch, value size,
    #: is_tombstone).  This is the DRAM metadata of S2.4.
    index: Dict[object, Tuple[int, int, bool]]


@dataclass(frozen=True)
class Lookup:
    """Everything a driver needs to fetch one value with one read."""

    run_id: int
    handle: object
    offset: int
    size: int


class FrozenPatch:
    """A patch flushed from the memtable but not yet registered."""

    __slots__ = ("token", "patch")

    def __init__(self, token: int, patch: Patch):
        self.token = token
        self.patch = patch


class LSMTree:
    """A single slice's log-structured merge tree."""

    def __init__(
        self,
        memtable_bytes: int = 8 * MIB,
        policy: Optional[TieredCompactionPolicy] = None,
        enable_wal: bool = True,
        durable_wal: bool = False,
    ):
        if durable_wal and not enable_wal:
            raise ValueError("durable_wal requires enable_wal")
        self.policy = policy if policy is not None else TieredCompactionPolicy()
        self.memtable = MemTable(memtable_bytes)
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog() if enable_wal else None
        )
        #: Durable-truncation mode: the WAL keeps records for frozen
        #: patches until :meth:`register_patch` confirms them on storage,
        #: so a crash between freeze and store loses nothing (needed by
        #: the crash/recovery path; off by default to preserve the
        #: original truncate-at-freeze behaviour).
        self.durable_wal = durable_wal
        self._frozen_order: List[int] = []  # tokens awaiting durability
        self._durable_tokens: set = set()
        self._pending: List[FrozenPatch] = []  # frozen, awaiting storage
        #: token -> storage handle for patches whose store completed
        #: before an earlier freeze's store did (awaiting in-order
        #: registration).
        self._staged_handles: Dict[int, object] = {}
        self._runs: Dict[int, Run] = {}
        self._levels: List[List[int]] = [[] for _ in range(self.policy.max_levels)]
        self._key_map: Dict[object, int] = {}
        self._next_token = 0
        self._next_run_id = 0
        #: Run ids produced by the most recent final-level self-merge.
        self._final_merge_family: set = set()
        # Statistics (drive Figure 14's read/write split).
        self.flushes = 0
        self.compactions = 0
        self.bytes_flushed = 0
        self.bytes_compaction_read = 0
        self.bytes_compaction_written = 0

    # -- writes ------------------------------------------------------------------
    def put(self, key, value) -> Optional[FrozenPatch]:
        """Insert a pair.  If the container was full, returns the frozen
        patch that the caller must store and then ``register_patch``."""
        frozen = None
        if not self.memtable.fits(key, value) and not self.memtable.is_empty:
            frozen = self._freeze()
        if self.wal is not None:
            if value is TOMBSTONE:
                self.wal.append_delete(key)
            else:
                self.wal.append_put(key, value)
        self.memtable.put(key, value)
        return frozen

    def delete(self, key) -> Optional[FrozenPatch]:
        """Record a deletion (tombstone insert)."""
        return self.put(key, TOMBSTONE)

    def flush(self) -> Optional[FrozenPatch]:
        """Force-freeze the current container (e.g. at shutdown)."""
        if self.memtable.is_empty:
            return None
        return self._freeze()

    def _freeze(self) -> FrozenPatch:
        patch = Patch.from_memtable(self.memtable)
        frozen = FrozenPatch(self._next_token, patch)
        self._next_token += 1
        self._pending.append(frozen)
        self.memtable.clear()
        if self.wal is not None:
            if self.durable_wal:
                self.wal.mark(frozen.token)
                self._frozen_order.append(frozen.token)
            else:
                self.wal.truncate()
        self.flushes += 1
        self.bytes_flushed += patch.nbytes
        return frozen

    def register_patch(self, frozen: FrozenPatch, handle) -> Optional[Run]:
        """Record that a frozen patch now lives on storage at ``handle``.

        Registration is applied in **freeze order**.  Concurrent flushes
        can complete out of order (one stalled by a device fault or a
        busy channel), but registering a later patch while an earlier
        one is still pending would let the older pending copy shadow the
        newer registered run on reads -- ``get`` checks pending patches
        first.  An early arrival is therefore staged and installed once
        its predecessors land.  Returns the :class:`Run` when this
        patch was installed by this call, ``None`` when it was staged.
        """
        if frozen not in self._pending:
            raise ValueError("patch is not pending (already registered?)")
        self._staged_handles[frozen.token] = handle
        installed = None
        # _pending is append-ordered by freeze, so its head gates
        # everything frozen after it.
        while self._pending and self._pending[0].token in self._staged_handles:
            head = self._pending.pop(0)
            run = self._install_run(head, self._staged_handles.pop(head.token))
            if head is frozen:
                installed = run
        return installed

    def _install_run(self, frozen: FrozenPatch, handle) -> Run:
        run = self._make_run(
            level=0, handle=handle, token=frozen.token, patch=frozen.patch
        )
        self._insert_newest_first(0, run)
        self._index_run(run, frozen.patch)
        if self.durable_wal and self.wal is not None:
            # Truncate in freeze order only: a later patch landing first
            # must not drop WAL records protecting an earlier one still
            # in flight.
            self._durable_tokens.add(frozen.token)
            while (
                self._frozen_order
                and self._frozen_order[0] in self._durable_tokens
            ):
                token = self._frozen_order.pop(0)
                self._durable_tokens.discard(token)
                self.wal.truncate_through(token)
        return run

    def _insert_newest_first(self, level: int, run: Run) -> None:
        """Insert keeping the level sorted by descending freeze token.

        Concurrent flushes can complete out of order (one stalled by a
        device fault or a slow channel), so registration order is not
        write order.  Compaction resolves duplicate keys by level-list
        position, so the list must be ordered by freeze token, not by
        arrival.
        """
        runs = self._levels[level]
        pos = 0
        while (
            pos < len(runs)
            and self._runs[runs[pos]].freeze_token > run.freeze_token
        ):
            pos += 1
        runs.insert(pos, run.run_id)

    def _make_run(self, level: int, handle, token: int, patch: Patch) -> Run:
        index = {}
        offset = 0
        for key, value in patch.items():
            offset += sizeof_key(key)
            size = sizeof_value(value)
            index[key] = (offset, size, value is TOMBSTONE)
            offset += size
        run = Run(
            run_id=self._next_run_id,
            level=level,
            handle=handle,
            freeze_token=token,
            nbytes=patch.nbytes,
            n_items=len(patch),
            index=index,
        )
        self._next_run_id += 1
        self._runs[run.run_id] = run
        return run

    def _index_run(self, run: Run, patch: Patch) -> None:
        """Point the global key map at this run where it is the newest."""
        for key in patch.keys():
            current = self._key_map.get(key)
            if current is not None:
                if self._runs[current].freeze_token > run.freeze_token:
                    continue
            self._key_map[key] = run.run_id

    # -- migration (snapshot transfer) --------------------------------------------
    def runs_snapshot(self) -> List[Run]:
        """The registered runs, oldest freeze first.

        This is the unit of the control plane's snapshot transfer: each
        run's patch is read from the source storage, shipped over the
        network, stored on the target and re-installed there with
        :meth:`adopt_run`.  Oldest-first order means a partially adopted
        prefix is always a consistent (if stale) view.
        """
        return sorted(self._runs.values(), key=lambda run: run.freeze_token)

    def adopt_run(self, patch: Patch, handle, level: int, freeze_token: int) -> Run:
        """Install a run transferred from another node.

        The run keeps its source ``freeze_token`` so newest-wins
        shadowing resolves identically on the target; future local
        freezes are pushed past the adopted tokens so they stay newer.
        """
        if level < 0 or level >= self.policy.max_levels:
            raise ValueError(f"level {level} outside the level range")
        run = self._make_run(
            level=level, handle=handle, token=freeze_token, patch=patch
        )
        self._insert_newest_first(level, run)
        self._index_run(run, patch)
        self._next_token = max(self._next_token, freeze_token + 1)
        return run

    # -- crash / recovery --------------------------------------------------------
    def lose_volatile(self) -> int:
        """Simulate power loss: drop everything DRAM-resident that the
        WAL protects -- the memtable and any frozen-but-unstored patches.

        Registered runs survive (they are on storage) and so does their
        DRAM index (rebuildable from on-storage patch headers; we model
        that rebuild as free).  Returns the number of lost pending
        patches.  With ``durable_wal`` their records are still in the
        WAL, so :meth:`recover` loses nothing.
        """
        lost = len(self._pending)
        self.memtable.clear()
        self._pending.clear()
        self._staged_handles.clear()
        self._frozen_order.clear()
        self._durable_tokens.clear()
        return lost

    def recover(self):
        """Replay the WAL after :meth:`lose_volatile`.

        Re-applies every surviving record through :meth:`put`, which may
        re-freeze full containers; the caller must store and
        ``register_patch`` each returned patch, exactly as for live
        writes.  Returns ``(n_records, refrozen_patches)``.
        """
        if self.wal is None:
            return 0, []
        records = self.wal.records()
        self.wal.reset()
        refrozen = []
        for kind, key, value in records:
            if kind == PUT:
                frozen = self.put(key, value)
            else:
                frozen = self.put(key, TOMBSTONE)
            if frozen is not None:
                refrozen.append(frozen)
        return len(records), refrozen

    # -- reads -------------------------------------------------------------------
    def get(self, key):
        """Resolve a key against DRAM state.

        Returns ``("value", v)`` when the value is still in memory,
        ``("lookup", Lookup)`` when one device read is needed, or
        ``("miss", None)``.
        """
        found, value = self.memtable.get(key)
        if found:
            if value is TOMBSTONE:
                return ("miss", None)
            return ("value", value)
        for frozen in sorted(self._pending, key=lambda f: -f.token):
            found, value = frozen.patch.get(key)
            if found:
                if value is TOMBSTONE:
                    return ("miss", None)
                return ("value", value)
        run_id = self._key_map.get(key)
        if run_id is None:
            return ("miss", None)
        run = self._runs[run_id]
        offset, size, is_tombstone = run.index[key]
        if is_tombstone:
            return ("miss", None)
        return ("lookup", Lookup(run_id, run.handle, offset, size))

    def scan_plan(self, lo, hi):
        """What a range scan must read.

        Returns ``(memory_items, run_list)``: the in-memory pairs in the
        range, plus the runs (newest first) whose patches the driver
        must read in full and merge.
        """
        memory_items = [
            (key, value)
            for key, value in self.memtable.items_sorted()
            if lo <= key < hi
        ]
        for frozen in sorted(self._pending, key=lambda f: -f.token):
            memory_items.extend(frozen.patch.range_items(lo, hi))
        run_ids = set()
        for key, run_id in self._key_map.items():
            if lo <= key < hi:
                run_ids.add(run_id)
        runs = sorted(
            (self._runs[run_id] for run_id in run_ids),
            key=lambda run: -run.freeze_token,
        )
        return memory_items, runs

    # -- compaction -----------------------------------------------------------------
    def pick_compaction(self) -> Optional[CompactionTask]:
        """Merge work, if the policy wants any (run ids newest first).

        A same-level (final-log) re-merge is only allowed when at least
        one run arrived since the previous such merge -- re-merging a
        level made entirely of the last merge's own outputs would churn
        the same data forever.
        """
        run_bytes = {
            run_id: run.nbytes for run_id, run in self._runs.items()
        }
        task = self.policy.plan(self._levels, run_bytes)
        if task is not None and self.policy.output_level(task) == task.level:
            if set(task.run_ids) <= self._final_merge_family:
                return None
        return task

    def run_handles(self, task: CompactionTask) -> List[object]:
        """Storage handles for a task's input runs (newest first)."""
        return [self._runs[run_id].handle for run_id in task.run_ids]

    def merge_for_task(self, task: CompactionTask, patches: List[Patch]) -> Patch:
        """Merge loaded input patches (same order as ``task.run_ids``)."""
        output_level = self.policy.output_level(task)
        final_level = self.policy.max_levels - 1
        # A tombstone may only be dropped when nothing older can
        # resurrect the key: the merge lands on the final level and
        # consumes every run already there.
        survivors = [
            run_id
            for run_id in self._levels[final_level]
            if run_id not in task.run_ids
        ]
        drop = output_level == final_level and not survivors
        self.bytes_compaction_read += sum(p.nbytes for p in patches)
        return merge_patches(patches, drop_tombstones=drop)

    def apply_compaction(
        self,
        task: CompactionTask,
        parts: Sequence[Patch],
        new_handles: Sequence,
    ) -> List[object]:
        """Install the merge result (already split into <= write-unit
        patches, one handle each); returns the replaced runs' handles
        (now free for the driver to release/erase)."""
        if len(parts) != len(new_handles) or not parts:
            raise ValueError("need one handle per output patch")
        for run_id in task.run_ids:
            if run_id not in self._runs or run_id not in self._levels[task.level]:
                raise ValueError(f"run {run_id} is not at level {task.level}")
        output_level = self.policy.output_level(task)
        newest_token = max(
            self._runs[run_id].freeze_token for run_id in task.run_ids
        )
        replaced = set(task.run_ids)
        same_level_merge = output_level == task.level
        new_run_ids: List[int] = []
        new_run_of_key: Dict[object, int] = {}
        for part, handle in zip(parts, new_handles):
            new_run = self._make_run(
                level=output_level, handle=handle, token=newest_token,
                patch=part,
            )
            self._insert_newest_first(output_level, new_run)
            new_run_ids.append(new_run.run_id)
            for key in part.keys():
                new_run_of_key[key] = new_run.run_id
            self.bytes_compaction_written += part.nbytes
        if same_level_merge:
            self._final_merge_family = set(new_run_ids)
        # Re-point (or drop) every key that lived in a replaced run.
        for key in list(self._key_map):
            if self._key_map[key] in replaced:
                new_run_id = new_run_of_key.get(key)
                if new_run_id is not None:
                    self._key_map[key] = new_run_id
                else:
                    del self._key_map[key]  # tombstone dropped at max level
        freed = []
        for run_id in task.run_ids:
            self._levels[task.level].remove(run_id)
            freed.append(self._runs.pop(run_id).handle)
        self.compactions += 1
        return freed

    # -- introspection ----------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Number of runs involved/stored."""
        return len(self._runs)

    @property
    def n_pending(self) -> int:
        """Frozen patches awaiting storage registration."""
        return len(self._pending)

    def write_pressure(self, config) -> str:
        """``"ok"``/``"stall"``/``"stop"`` against a
        :class:`~repro.qos.config.WriteStallConfig`.

        The pressure signals are the flush backlog (frozen patches not
        yet durable on storage) and the level-0 run count (patches
        flushed but not yet merged down) -- the same pair RocksDB keys
        its write stalls on.  ``stop`` dominates ``stall``.
        """
        pending = self.n_pending
        l0_runs = len(self._levels[0])
        if (
            config.stop_pending_patches is not None
            and pending >= config.stop_pending_patches
        ) or (
            config.stop_l0_runs is not None
            and l0_runs >= config.stop_l0_runs
        ):
            return "stop"
        if (
            config.stall_pending_patches is not None
            and pending >= config.stall_pending_patches
        ) or (
            config.stall_l0_runs is not None
            and l0_runs >= config.stall_l0_runs
        ):
            return "stall"
        return "ok"

    def level_sizes(self) -> List[int]:
        """Run count per level."""
        return [len(level) for level in self._levels]

    @property
    def write_amplification(self) -> float:
        """(flush + compaction writes) / flush writes."""
        if self.bytes_flushed == 0:
            return 1.0
        return (
            self.bytes_flushed + self.bytes_compaction_written
        ) / self.bytes_flushed

    def __repr__(self):
        return (
            f"LSMTree(runs={self.n_runs}, pending={self.n_pending}, "
            f"levels={self.level_sizes()})"
        )

"""Shared KV primitives: tombstones, placeholder values, sizing."""

from __future__ import annotations

from dataclasses import dataclass


class _Tombstone:
    """Marks a deleted key inside memtables and patches."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


@dataclass(frozen=True)
class PlaceholderValue:
    """A sized stand-in for a value whose bytes do not matter.

    Performance experiments push gigabytes through the KV store; storing
    real buffers would waste host memory without changing any simulated
    time, so workloads write ``PlaceholderValue(size)`` instead.
    """

    size: int

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative placeholder size {self.size}")


def sizeof_key(key) -> int:
    """Stored size of a key (bytes/str supported)."""
    if isinstance(key, (bytes, bytearray)):
        return len(key)
    if isinstance(key, str):
        return len(key.encode("utf-8"))
    if isinstance(key, int):
        return 8
    raise TypeError(f"unsupported key type {type(key).__name__}")


def sizeof_value(value) -> int:
    """Stored size of a value."""
    if value is TOMBSTONE:
        return 0
    if isinstance(value, PlaceholderValue):
        return value.size
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    raise TypeError(f"unsupported value type {type(value).__name__}")

"""CCDB: Baidu's LSM-tree key-value storage (paper S2.4).

The paper's production workloads are all CCDB traffic, so the
reproduction implements a working (if compact) CCDB:

* writes accumulate in an 8 MB in-memory container
  (:class:`~repro.kv.memtable.MemTable`), protected by a write-ahead log
  (:class:`~repro.kv.wal.WriteAheadLog`);
* full containers become immutable sorted **patches**
  (:class:`~repro.kv.patch.Patch`) -- the 8 MB write unit that matches
  the SDF interface exactly;
* patches undergo multi-level merge-sort **compaction**
  (:mod:`~repro.kv.compaction`) on their way into the final large log;
* all KV metadata stays in DRAM so a read needs exactly one device read
  (:class:`~repro.kv.lsm.LSMTree` keeps a global key -> run map);
* a :class:`~repro.kv.slice.Slice` serves one key range, and
  :class:`~repro.kv.store.CCDBStore` is the synchronous facade that
  binds an LSM tree to a storage backend (in-memory or an
  :class:`~repro.core.api.SDFSystem`).

The LSM tree itself is a pure state machine: it never performs I/O but
returns *tasks* (store this patch / merge these runs) that its driver --
the synchronous store here, or the timed cluster node in
:mod:`repro.cluster` -- executes against real storage.
"""

from repro.kv.common import (
    TOMBSTONE,
    PlaceholderValue,
    sizeof_key,
    sizeof_value,
)
from repro.kv.compaction import (
    CompactionTask,
    TieredCompactionPolicy,
    merge_patches,
    split_patch,
)
from repro.kv.lsm import LSMTree, Lookup, Run
from repro.kv.memtable import MemTable
from repro.kv.patch import Patch
from repro.kv.slice import KeyRange, Slice
from repro.kv.store import CCDBStore, MemoryPatchStore, SDFPatchStore
from repro.kv.wal import WriteAheadLog

__all__ = [
    "TOMBSTONE",
    "PlaceholderValue",
    "sizeof_key",
    "sizeof_value",
    "MemTable",
    "Patch",
    "WriteAheadLog",
    "LSMTree",
    "Run",
    "Lookup",
    "CompactionTask",
    "TieredCompactionPolicy",
    "merge_patches",
    "split_patch",
    "KeyRange",
    "Slice",
    "CCDBStore",
    "MemoryPatchStore",
    "SDFPatchStore",
]

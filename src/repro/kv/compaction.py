"""Merge-sort compaction (paper S2.4).

"Patches on the storage experience multiple merge-sorts, or multiple
reads and writes, before they are placed in the final large log."  We
implement classic tiered compaction: when a level accumulates ``fanout``
runs they are merge-sorted into one run on the next level.  Each merge
is the paper's compaction traffic: read every input patch, write the
merged patch -- all in 8 MB units on the SDF.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.kv.common import TOMBSTONE
from repro.kv.patch import Patch


@dataclass(frozen=True)
class CompactionTask:
    """A unit of compaction work decided by the policy.

    ``run_ids`` are ordered newest-first; the driver must read these
    runs, call :func:`merge_patches` on their patches (same order), store
    the result, and report back via ``LSMTree.apply_compaction``.
    """

    level: int
    run_ids: tuple

    @property
    def n_runs(self) -> int:
        """Number of runs involved/stored."""
        return len(self.run_ids)


@dataclass
class TieredCompactionPolicy:
    """Merge a level once it holds ``fanout`` runs.

    ``max_patch_bytes`` is the write-unit cap merge outputs are split
    at; a final-level merge whose output would be just as many patches
    as its input (all inputs already full of live data) is pointless
    churn and is never planned.
    """

    fanout: int = 4
    max_levels: int = 4
    max_patch_bytes: int = 8 * 1024 * 1024

    def __post_init__(self):
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {self.fanout}")
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        if self.max_patch_bytes < 1:
            raise ValueError("max_patch_bytes must be positive")

    def plan(
        self,
        levels: Sequence[Sequence[int]],
        run_bytes: Optional[dict] = None,
    ) -> Optional[CompactionTask]:
        """``levels[i]`` = run ids at level i, newest first.

        ``run_bytes`` (run id -> live bytes), when available, lets the
        policy prove a final-level re-merge would make progress.
        """
        for level, runs in enumerate(levels):
            final = level == self.max_levels - 1
            threshold = self.fanout * 2 if final else self.fanout
            if len(runs) < threshold:
                continue
            if final and run_bytes is not None:
                total = sum(run_bytes[run_id] for run_id in runs)
                min_outputs = max(
                    1, -(-total // self.max_patch_bytes)  # ceil
                )
                if min_outputs >= len(runs):
                    continue  # cannot shrink the final log: skip
            return CompactionTask(level=level, run_ids=tuple(runs))
        return None

    def output_level(self, task: CompactionTask) -> int:
        """Level where the task's merge output lands."""
        return min(task.level + 1, self.max_levels - 1)


def merge_patches(
    patches_newest_first: Sequence[Patch], drop_tombstones: bool = False
) -> Patch:
    """K-way merge; for duplicate keys the newest patch wins."""
    if not patches_newest_first:
        raise ValueError("nothing to merge")
    heap = []
    iterators = []
    for age, patch in enumerate(patches_newest_first):
        iterator = iter(patch.items())
        iterators.append(iterator)
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first[0], age, first[1]))
    merged = []
    while heap:
        key, age, value = heapq.heappop(heap)
        # Collect every same-key entry; the smallest age (newest) wins.
        best_age, best_value = age, value
        while heap and heap[0][0] == key:
            _, other_age, other_value = heapq.heappop(heap)
            if other_age < best_age:
                best_age, best_value = other_age, other_value
            nxt = next(iterators[other_age], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], other_age, nxt[1]))
        nxt = next(iterators[age], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0], age, nxt[1]))
        if best_value is TOMBSTONE and drop_tombstones:
            continue
        merged.append((key, best_value))
    return Patch(merged)


def split_patch(patch: Patch, max_bytes: int) -> List[Patch]:
    """Split a (possibly oversized) merge output into <= ``max_bytes``
    patches -- merge results larger than the 8 MB write unit are written
    as several consecutive patches of the final log."""
    if max_bytes < 1:
        raise ValueError("max_bytes must be positive")
    parts: List[Patch] = []
    current: List = []
    current_bytes = 0
    from repro.kv.common import sizeof_key, sizeof_value

    for key, value in patch.items():
        entry = sizeof_key(key) + sizeof_value(value)
        if entry > max_bytes:
            raise ValueError(
                f"single entry of {entry} bytes cannot fit a "
                f"{max_bytes}-byte patch"
            )
        if current and current_bytes + entry > max_bytes:
            parts.append(Patch(current))
            current, current_bytes = [], 0
        current.append((key, value))
        current_bytes += entry
    if current or not parts:
        parts.append(Patch(current))
    return parts

"""The in-memory write container (paper S2.4).

"CCDB uses a container for receiving KV items arriving in write
requests.  The container has a maximum capacity of 8 MB."  When full it
is frozen into a :class:`~repro.kv.patch.Patch`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.kv.common import TOMBSTONE, sizeof_key, sizeof_value
from repro.sim.units import MIB


class MemTable:
    """A bounded, mutable key-value container."""

    def __init__(self, capacity_bytes: int = 8 * MIB):
        if capacity_bytes < 1:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._items: Dict = {}
        self._nbytes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def nbytes(self) -> int:
        """Current payload size (keys + values)."""
        return self._nbytes

    @property
    def is_empty(self) -> bool:
        """True when nothing is stored."""
        return not self._items

    def fits(self, key, value) -> bool:
        """Would inserting this pair stay within capacity?"""
        delta = sizeof_key(key) + sizeof_value(value)
        if key in self._items:
            delta -= sizeof_key(key) + sizeof_value(self._items[key])
        return self._nbytes + delta <= self.capacity_bytes

    def put(self, key, value) -> None:
        """Insert or overwrite; raises when the entry alone is too big."""
        entry = sizeof_key(key) + sizeof_value(value)
        if entry > self.capacity_bytes:
            raise ValueError(
                f"entry of {entry} bytes exceeds container capacity "
                f"{self.capacity_bytes}"
            )
        if key in self._items:
            self._nbytes -= sizeof_key(key) + sizeof_value(self._items[key])
        self._items[key] = value
        self._nbytes += entry

    def delete(self, key) -> None:
        """Record a deletion (tombstone)."""
        self.put(key, TOMBSTONE)

    def get(self, key) -> Tuple[bool, Optional[object]]:
        """(found, value); found is True even for tombstones."""
        if key in self._items:
            return True, self._items[key]
        return False, None

    def items_sorted(self) -> List[Tuple[object, object]]:
        """Snapshot of (key, value) in key order (for patch building)."""
        return sorted(self._items.items(), key=lambda kv: kv[0])

    def keys(self) -> Iterator:
        """The keys, in key order."""
        return iter(self._items)

    def clear(self) -> None:
        """Remove everything."""
        self._items.clear()
        self._nbytes = 0

"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence.  Processes wait on events by
``yield``-ing them; arbitrary callbacks may also be attached.  Events are
*triggered* (``succeed``/``fail``) at some simulated instant and their
callbacks run when the event loop reaches that instant.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`."""

    @property
    def cause(self):
        """The cause passed to interrupt(), if any."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes and callbacks can wait on.

    State machine: *pending* -> *triggered* (scheduled on the event queue)
    -> *processed* (callbacks have run).  An event can succeed with a value
    or fail with an exception; a failure is re-raised inside every waiting
    process.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list = []
        self._value = _PENDING
        self._ok: bool = True
        self._processed = False
        #: Set to True once a waiter has observed a failure; unobserved
        #: failures crash the simulation to avoid silently lost errors.
        self.defused = False

    # -- state ---------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event loop has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self):
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------------
    def succeed(self, value=None, delay: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` ns (default now)."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception after ``delay`` ns."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    # -- callbacks -------------------------------------------------------------
    def add_callback(self, callback) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback is scheduled to run
        immediately (at the current simulated instant) so that waiting on a
        past event never deadlocks.
        """
        if self._processed:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback) -> None:
        """Detach a previously added callback (no-op if absent)."""
        try:
            self.callbacks.remove(callback)
        except ValueError:
            pass

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if not self._ok and not self.defused:
            # A failure nobody handled: stop the simulation loudly.
            raise self._value

    def __repr__(self):
        state = (
            "processed"
            if self._processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class PooledTimeout(Timeout):
    """A :class:`Timeout` recycled through the simulator's free list.

    Returned by :meth:`repro.sim.engine.Simulator.hold`.  After its
    callbacks run the instance goes back to the pool for reuse, so it
    must never be referenced past the instant it is processed: yield it
    from exactly one process (or attach ephemeral callbacks) and drop
    it.  Composite conditions (``AllOf``/``AnyOf``) and
    ``run(until=...)`` keep references and must use plain timeouts.
    """

    __slots__ = ()

    def _process(self) -> None:
        super()._process()
        pool = self.sim._timeout_pool
        if len(pool) < 1024:
            pool.append(self)


class Condition(Event):
    """Composite event over several sub-events (base for AllOf/AnyOf)."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same Simulator")
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self):
        raise NotImplementedError

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(Condition):
    """Succeeds (with the list of values) when every sub-event succeeds."""

    __slots__ = ()

    def _collect(self):
        return [event.value for event in self.events]

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)


class AnyOf(Condition):
    """Succeeds with the value of the first sub-event to be processed."""

    __slots__ = ("_first",)

    def __init__(self, sim: "Simulator", events):
        self._first = None
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if not self.triggered and event.ok and self._n_done == 0:
            self._first = event.value
        super()._check(event)

    def _collect(self):
        return self._first

    def _satisfied(self) -> bool:
        return self._n_done >= 1

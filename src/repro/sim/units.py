"""Time and size units shared across the simulation.

Simulated time is an integer number of **nanoseconds**; sizes are integer
**bytes**.  The paper mixes decimal (bandwidth: MB/s, GB/s) and binary
(capacities, request sizes: KB pages, MB blocks) units; we follow the
storage-industry convention used in the paper: request/page/block sizes
are binary (``KIB``/``MIB``), while bandwidths are reported in decimal
MB/s and GB/s.  ``KB``/``MB``/``GB`` are binary aliases because every
"8 KB page" / "2 MB block" / "8 MB write unit" in the paper is binary.
"""

# --- time (integer nanoseconds) -------------------------------------------
NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000

# --- sizes (bytes). Paper sizes (8 KB page, 2 MB block...) are binary. ----
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

KB = KIB
MB = MIB
GB = GIB

# Decimal units, used only when quoting bandwidths (MB/s, GB/s).
KB_DEC = 1_000
MB_DEC = 1_000_000
GB_DEC = 1_000_000_000


def bytes_per_ns(mb_per_s: float) -> float:
    """Convert a decimal MB/s bandwidth into bytes per nanosecond."""
    return mb_per_s * MB_DEC / S


def transfer_ns(nbytes: int, mb_per_s: float) -> int:
    """Time (ns, rounded up) to move ``nbytes`` at ``mb_per_s`` MB/s."""
    if nbytes <= 0:
        return 0
    rate = bytes_per_ns(mb_per_s)
    return max(1, int(round(nbytes / rate)))


def mb_per_s(nbytes: int, elapsed_ns: int) -> float:
    """Average decimal MB/s for ``nbytes`` moved in ``elapsed_ns``."""
    if elapsed_ns <= 0:
        return 0.0
    return nbytes / MB_DEC / (elapsed_ns / S)

"""Analytic reservation timelines for the fast scheduling path.

The generator scheduling path models every contended resource as a
:class:`~repro.sim.resources.Resource` and spends one process
suspension per acquire/hold/release.  For capacity-1 FIFO resources with
uniform priorities the same schedule can be computed *analytically*: a
resource is a single "next free" timestamp, a request made at ``now``
is granted at ``max(now, free_at)`` and the end of service is
``grant + duration``.  :class:`ResourceTimeline` is that timestamp;
:class:`BusyUnion` reproduces the generator path's merged busy-time
accounting.

Equivalence rules (the contract the no-drift suite enforces):

* requests must be reserved at the simulated instant they would have
  been issued on the slow path -- so multi-phase ops schedule a
  callback at each phase boundary instead of reserving the whole chain
  up front;
* same-instant requests must be reserved in the same order the slow
  path's processes would issue them (creation order);
* anything ordering-sensitive that happens at a phase's *end* must be
  scheduled from its *grant* instant.  The slow path grants a queued
  waiter inside the previous holder's release (its service-timeout
  event), so :meth:`ResourceTimeline.reserve_and_call` chains a queued
  phase's end event off its predecessor's end event -- same instant,
  same intra-instant position, and no extra relay event.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush


class ResourceTimeline:
    """Next-free timestamp of one capacity-1 FIFO resource."""

    __slots__ = ("free_at", "_tail_hooks")

    def __init__(self, free_at: int = 0):
        self.free_at = free_at
        #: ``(fn, hooks, delay)`` triples chained off the *most recent*
        #: reservation made through :meth:`reserve_and_call` -- drained
        #: by its ``_PhaseEnd`` at the end instant; ``None`` after a
        #: plain :meth:`reserve` (no end event exists to chain from).
        self._tail_hooks = None

    def reserve(self, request_ns: int, duration_ns: int):
        """Reserve ``duration_ns`` of service requested at ``request_ns``.

        Returns ``(grant_ns, end_ns)`` and advances the timeline.  The
        caller must only reserve at the current simulated instant and in
        slow-path request order for the schedule to be equivalent.
        """
        free = self.free_at
        grant = free if free > request_ns else request_ns
        end = grant + duration_ns
        self.free_at = end
        self._tail_hooks = None
        return grant, end

    def reserve_and_call(self, sim, duration_ns: int, fn):
        """Reserve at sim-now and run ``fn()`` at the end instant.

        Returns ``(grant_ns, end_ns)``.  An immediately granted phase
        schedules its end event now (the slow path schedules the service
        timeout at the grant, which is now).  A queued phase's grant is
        its predecessor's end, so its end event is scheduled from inside
        the predecessor's end callback -- exactly where the slow path's
        release-then-grant happens -- after the predecessor's own work.
        """
        now = sim._now
        free = self.free_at
        grant = free if free > now else now
        end = grant + duration_ns
        self.free_at = end
        hooks = []
        if grant <= now:
            sim._schedule(sim._phase_event(fn, hooks), end - now)
        else:
            tail = self._tail_hooks
            if tail is None:
                # Predecessor made through plain reserve(): no end event
                # to chain from, fall back to a relay at the grant.
                delay = end - grant
                sim._schedule_call(
                    lambda: sim._schedule(sim._phase_event(fn, hooks), delay),
                    grant - now,
                )
            else:
                tail.append((fn, hooks, end - grant))
        self._tail_hooks = hooks
        return grant, end

    def reserve_bulk(self, request_ns: int, duration_ns: int, count: int):
        """Reserve ``count`` back-to-back equal-length services at once.

        Returns ``(grants, ends)`` as numpy int64 arrays and advances
        the timeline past the last reservation.  This is the vectorized
        form of ``count`` consecutive :meth:`reserve` calls made at the
        same ``request_ns``: the first grant is ``max(request, free_at)``
        and each successor is granted exactly at its predecessor's end.

        ``_tail_hooks`` is cleared -- the caller is responsible for
        scheduling the end events (and may rebuild the hook chain
        itself, as the vectorized batch scheduler does).
        """
        import numpy as np

        free = self.free_at
        first = free if free > request_ns else request_ns
        grants = first + duration_ns * np.arange(count, dtype=np.int64)
        ends = grants + duration_ns
        self.free_at = int(ends[-1])
        self._tail_hooks = None
        return grants, ends

    def __repr__(self):
        return f"ResourceTimeline(free_at={self.free_at})"


class PriorityTimeline:
    """Analytic mirror of a capacity-1 ``PriorityResource``.

    Unlike :class:`ResourceTimeline`, grant instants under non-uniform
    priorities cannot be computed at request time: which waiter runs
    next is decided when the current holder releases.  So this timeline
    keeps the waiter heap explicitly -- ordered by ``(priority, order)``
    exactly like ``PriorityResource`` -- but still schedules only two
    events per phase (one grant hop, one end) instead of running a
    process.

    Event-shape equivalence with the generator path:

    * an immediate grant on the slow path is still one scheduled event
      (``Request.succeed`` schedules the grant), so :meth:`reserve_call`
      always pays exactly one grant hop;
    * a queued waiter is granted inside the holder's release, *before*
      the holder's process continuation runs -- :meth:`_start`'s end
      callback grants the next waiter first, then runs the holder's
      continuation, preserving same-instant seq order.
    """

    __slots__ = ("_waiting", "_order", "_busy")

    def __init__(self):
        self._waiting: list = []
        self._order = 0
        self._busy = False

    def reserve_call(self, sim, priority: int, duration_ns: int, granted, fn):
        """Queue one phase: ``granted(grant, end)`` runs at the grant
        instant, ``fn()`` at the end instant."""
        self._order += 1
        entry = (priority, self._order, duration_ns, granted, fn)
        if self._busy:
            heappush(self._waiting, entry)
        else:
            self._start(sim, entry)

    def _start(self, sim, entry) -> None:
        self._busy = True
        _priority, _order, duration_ns, granted, fn = entry

        def hop():
            grant = sim._now
            granted(grant, grant + duration_ns)

            def ended():
                # Grant the successor (or go idle) BEFORE the holder's
                # continuation, matching the slow path's release-inside-
                # the-with-exit ordering.
                if self._waiting:
                    self._start(sim, heappop(self._waiting))
                else:
                    self._busy = False
                fn()

            sim._schedule_call(ended, duration_ns)

        sim._schedule_call(hop, 0)

    def __repr__(self):
        return (
            f"PriorityTimeline(busy={self._busy}, "
            f"waiting={len(self._waiting)})"
        )


class BusyUnion:
    """Union of service intervals, matching the slow path's busy counter.

    The generator path counts channel busy time with an in-service
    counter: an interval is *closed* (added to the busy counter) when
    the last concurrent op finishes service, even if service resumes at
    the same instant.  We replicate that exactly: intervals are merged
    only when they **overlap** (``begin < end``); merely touching
    intervals stay separate so the counter's closure instants match.
    """

    __slots__ = ("_closed", "_pending", "_head", "_raw")

    def __init__(self):
        #: Total length of intervals whose end has passed the last query.
        self._closed = 0
        #: Merged intervals as [begin, end) lists, sorted by begin;
        #: entries before ``_head`` are already folded into ``_closed``.
        self._pending: list = []
        self._head = 0
        #: Unmerged intervals appended since the last query; folding is
        #: deferred so the reservation hot path is a single append.
        self._raw: list = []

    def add(self, begin: int, end: int) -> None:
        """Record one service interval (begin < end, begin >= now)."""
        if end > begin:
            self._raw.append([begin, end])

    def _fold(self) -> None:
        raw = self._raw
        if not raw:
            return
        items = self._pending[self._head :]
        items.extend(raw)
        raw.clear()
        items.sort()
        merged: list = []
        for interval in items:
            if merged and interval[0] < merged[-1][1]:
                # Strictly overlaps the growing interval: extend it.
                if interval[1] > merged[-1][1]:
                    merged[-1][1] = interval[1]
            else:
                merged.append(interval)
        self._pending = merged
        self._head = 0

    def closed_through(self, now_ns: int) -> int:
        """Busy time of intervals fully finished by ``now_ns``.

        Matches the slow path's ``busy_ns`` counter value at ``now_ns``.
        Queries must be (weakly) monotonic in time, which holds for any
        live simulation observer.
        """
        self._fold()
        pending = self._pending
        head = self._head
        while head < len(pending) and pending[head][1] <= now_ns:
            begin, end = pending[head]
            self._closed += end - begin
            head += 1
        if head != self._head:
            if head > 64:
                del pending[:head]
                head = 0
            self._head = head
        return self._closed

    def busy_through(self, now_ns: int) -> int:
        """Closed busy time plus the elapsed part of an open interval.

        Matches the slow path's ``utilization`` numerator at ``now_ns``.
        """
        total = self.closed_through(now_ns)
        pending = self._pending
        head = self._head
        if head < len(pending) and pending[head][0] < now_ns:
            total += now_ns - pending[head][0]
        return total

    def __repr__(self):
        return (
            f"BusyUnion(closed={self._closed}, "
            f"pending={len(self._pending) - self._head + len(self._raw)})"
        )

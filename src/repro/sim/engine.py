"""The simulation event loop.

:class:`Simulator` owns the clock (integer nanoseconds) and a binary heap
of scheduled events.  Ties at the same instant are broken by schedule
order, making every run deterministic.
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, PooledTimeout, Timeout
from repro.sim.process import Process


class _Call(Event):
    """Internal event that invokes a plain callable when processed.

    Instances are recycled through the owning simulator's free list:
    nothing may keep a reference to a ``_Call`` past its instant.
    """

    __slots__ = ("_fn",)

    def __init__(self, sim: "Simulator", fn):
        super().__init__(sim)
        self._fn = fn
        self._ok = True
        self._value = None

    def _process(self) -> None:
        self._processed = True
        fn = self._fn
        self._fn = None
        pool = self.sim._call_pool
        if len(pool) < 1024:
            pool.append(self)
        fn()


class _PhaseEnd(Event):
    """End-of-service event for one timeline reservation (fast path).

    Runs ``fn`` at the reservation's end instant, then schedules every
    chained successor reservation's own ``_PhaseEnd`` (the ``hooks``
    list, appended to by :meth:`ResourceTimeline.reserve_and_call` when
    a later reservation queues behind this one).  Folding the chain
    drain into ``_process`` saves one closure and one ``_Call`` per
    phase relative to wrapping the same logic in a plain callback.

    Instances are recycled through ``sim._phase_pool``: nothing may keep
    a reference to one past its instant.
    """

    __slots__ = ("_fn", "_hooks")

    def __init__(self, sim: "Simulator", fn, hooks):
        super().__init__(sim)
        self._fn = fn
        self._hooks = hooks
        self._ok = True
        self._value = None

    def _process(self) -> None:
        self._processed = True
        fn = self._fn
        hooks = self._hooks
        self._fn = None
        self._hooks = None
        sim = self.sim
        pool = sim._phase_pool
        if len(pool) < 1024:
            pool.append(self)
        fn()
        if hooks:
            # Successors queued behind this reservation: materialize
            # their end events only now, so at most heap-resident phase
            # events exist at once and the pool almost always hits.
            now = sim._now
            heap = sim._heap
            for h_fn, h_hooks, h_delay in hooks:
                if pool:
                    event = pool.pop()
                    event._processed = False
                    event._fn = h_fn
                    event._hooks = h_hooks
                else:
                    event = _PhaseEnd(sim, h_fn, h_hooks)
                sim._seq += 1
                heapq.heappush(heap, (now + h_delay, sim._seq, event))


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock."""

    __slots__ = (
        "_now", "_heap", "_seq", "obs",
        "_call_pool", "_timeout_pool", "_phase_pool",
    )

    def __init__(self):
        self._now: int = 0
        self._heap: list = []
        self._seq: int = 0
        #: Optional :class:`repro.obs.Observability` consulted by named
        #: resources (and any other instrumented component holding a
        #: reference to this simulator).  ``None`` -- the default --
        #: keeps every instrumentation site a single attribute check.
        self.obs = None
        #: Free lists recycling the internal fire-and-forget events.
        self._call_pool: list = []
        self._timeout_pool: list = []
        self._phase_pool: list = []

    # -- clock -----------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling (internal API used by events) --------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} ns in the past")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_call(self, fn, delay: int = 0) -> None:
        pool = self._call_pool
        if pool:
            call = pool.pop()
            call._processed = False
            call._fn = fn
        else:
            call = _Call(self, fn)
        # _schedule inlined: delays here are computed from reservation
        # arithmetic and are never negative.
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, call))

    def _phase_event(self, fn, hooks) -> _PhaseEnd:
        """A pooled :class:`_PhaseEnd` ready to be heap-scheduled."""
        pool = self._phase_pool
        if pool:
            event = pool.pop()
            event._processed = False
            event._fn = fn
            event._hooks = hooks
            return event
        return _PhaseEnd(self, fn, hooks)

    # -- public factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value=None) -> Timeout:
        """An event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def hold(self, delay: int, value=None) -> Timeout:
        """A pooled timeout for fire-and-forget waits on hot paths.

        Semantically identical to :meth:`timeout`, but the event object
        is recycled once processed.  Only yield it directly from a
        process and drop it; never store it, pass it to ``AllOf`` /
        ``AnyOf``, or ``run(until=...)`` on it.
        """
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay}")
            event._processed = False
            event._value = value
            event.delay = delay
            self._schedule(event, delay)
            return event
        return PooledTimeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Launch ``generator`` as a concurrent process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first given event fires."""
        return AnyOf(self, events)

    # -- running ----------------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        if not self._heap:
            raise EmptySchedule("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        event._process()

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until no events remain;
        * an ``int`` -- run until the clock reaches that time (ns);
        * an :class:`Event` -- run until that event is processed, returning
          its value (or raising its failure exception).
        """
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                when, _, event = pop(heap)
                self._now = when
                event._process()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not heap:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        f"event {stop!r} was triggered (deadlock?)"
                    )
                when, _, event = pop(heap)
                self._now = when
                event._process()
            if not stop.ok:
                stop.defused = True
                raise stop.value
            return stop.value

        deadline = int(until)
        if deadline < self._now:
            raise ValueError(f"cannot run until {deadline} < now={self._now}")
        while heap and heap[0][0] <= deadline:
            when, _, event = pop(heap)
            self._now = when
            event._process()
        self._now = deadline
        return None

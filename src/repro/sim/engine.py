"""The simulation event loop.

:class:`Simulator` owns the clock (integer nanoseconds) and a binary heap
of scheduled events.  Ties at the same instant are broken by schedule
order, making every run deterministic.
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class _Call(Event):
    """Internal event that invokes a plain callable when processed."""

    __slots__ = ("_fn",)

    def __init__(self, sim: "Simulator", fn):
        super().__init__(sim)
        self._fn = fn
        self._ok = True
        self._value = None

    def _process(self) -> None:
        self._processed = True
        self._fn()


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock."""

    def __init__(self):
        self._now: int = 0
        self._heap: list = []
        self._seq: int = 0
        #: Optional :class:`repro.obs.Observability` consulted by named
        #: resources (and any other instrumented component holding a
        #: reference to this simulator).  ``None`` -- the default --
        #: keeps every instrumentation site a single attribute check.
        self.obs = None

    # -- clock -----------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling (internal API used by events) --------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} ns in the past")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_call(self, fn, delay: int = 0) -> None:
        self._schedule(_Call(self, fn), delay)

    # -- public factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value=None) -> Timeout:
        """An event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Launch ``generator`` as a concurrent process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first given event fires."""
        return AnyOf(self, events)

    # -- running ----------------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        if not self._heap:
            raise EmptySchedule("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        event._process()

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until no events remain;
        * an ``int`` -- run until the clock reaches that time (ns);
        * an :class:`Event` -- run until that event is processed, returning
          its value (or raising its failure exception).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._heap:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        f"event {stop!r} was triggered (deadlock?)"
                    )
                self.step()
            if not stop.ok:
                stop.defused = True
                raise stop.value
            return stop.value

        deadline = int(until)
        if deadline < self._now:
            raise ValueError(f"cannot run until {deadline} < now={self._now}")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

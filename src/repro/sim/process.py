"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield`` must produce
an :class:`~repro.sim.events.Event`; the process sleeps until that event
is processed and is then resumed with the event's value (or has the
event's exception thrown into it).  A process is itself an event that
succeeds with the generator's return value, so processes can wait on each
other.
"""

from __future__ import annotations

import typing
from typing import Generator

from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Process(Event):
    """A running simulation process (also an event: its completion)."""

    __slots__ = ("_gen", "_target")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._gen = generator
        self._target: Event | None = None
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        sim._schedule(bootstrap)
        bootstrap.add_callback(self._resume)
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is abandoned (its outcome is
        ignored by this process).  Interrupting a finished process is an
        error.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt a completed process")
        if self._target is None:
            raise RuntimeError("process is not waiting on anything yet")
        target, self._target = self._target, None
        target.remove_callback(self._resume)
        if not target.ok if target.triggered else False:
            target.defused = True
        self.sim._schedule_call(lambda: self._throw_in(Interrupt(cause)))

    # -- internals ---------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event.ok:
            self._advance(self._gen.send, event.value)
        else:
            event.defused = True
            self._advance(self._gen.throw, event.value)

    def _throw_in(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._advance(self._gen.throw, exc)

    def _advance(self, step, arg) -> None:
        try:
            target = step(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = RuntimeError(
                f"process yielded {target!r}; processes may only yield Events"
            )
            self._gen.close()
            self.fail(error)
            return
        if target is self:
            self._gen.close()
            self.fail(RuntimeError("process cannot wait on itself"))
            return
        self._target = target
        target.add_callback(self._resume)

"""Measurement helpers used by experiments and benchmarks.

All recorders take explicit timestamps (nanoseconds) so they work both
inside the simulator (``sim.now``) and in plain functional code.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import List, Optional, Sequence

from repro.sim.units import MB_DEC, S


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter."""
        if amount < 0:
            raise ValueError(f"cannot add negative amount {amount}")
        self.value += amount

    def reset(self) -> None:
        """Clear all recorded state."""
        self.value = 0

    def __repr__(self):
        return f"Counter({self.name!r}, value={self.value})"


class ThroughputMeter:
    """Accumulates (timestamp, nbytes) samples and reports MB/s.

    A measurement window ``[t0, t1]`` can be set to exclude warmup and
    drain phases, matching how sustained throughput is reported in the
    paper's evaluation.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List = []  # (time_ns, nbytes)

    def record(self, time_ns: int, nbytes: int) -> None:
        """Record that ``nbytes`` finished transferring at ``time_ns``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        self._samples.append((time_ns, nbytes))

    @property
    def samples(self) -> List:
        """Copy of the raw ``(time_ns, nbytes)`` samples."""
        return list(self._samples)

    @property
    def total_bytes(self) -> int:
        """Sum of all recorded byte counts."""
        return sum(nbytes for _, nbytes in self._samples)

    @property
    def n_samples(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    def bytes_in(self, t0: int, t1: int, include_start: bool = False) -> int:
        """Bytes recorded in the half-open window ``(t0, t1]``.

        Samples are *completion* timestamps, so the window is open at
        ``t0``: a transfer finishing exactly at the window start belongs
        to the previous window, which keeps adjacent windows disjoint.
        Pass ``include_start=True`` for the closed window ``[t0, t1]``
        (used by :meth:`mb_per_s` when it defaults ``t0`` to the
        earliest sample, which must then be counted).
        """
        if include_start:
            return sum(n for t, n in self._samples if t0 <= t <= t1)
        return sum(n for t, n in self._samples if t0 < t <= t1)

    def mb_per_s(
        self, t0: Optional[int] = None, t1: Optional[int] = None
    ) -> float:
        """Decimal MB/s over the window (defaults to first..last sample).

        An explicit ``t0`` keeps the half-open ``(t0, t1]`` convention;
        when ``t0`` is omitted the window closes at the earliest sample
        so its bytes are included rather than silently dropped.
        """
        if not self._samples:
            return 0.0
        times = [t for t, _ in self._samples]
        include_start = t0 is None
        lo = min(times) if t0 is None else t0
        hi = max(times) if t1 is None else t1
        if hi <= lo:
            return 0.0
        return (
            self.bytes_in(lo, hi, include_start) / MB_DEC / ((hi - lo) / S)
        )

    def gb_per_s(
        self, t0: Optional[int] = None, t1: Optional[int] = None
    ) -> float:
        """Decimal GB/s over the window."""
        return self.mb_per_s(t0, t1) / 1000.0

    def reset(self) -> None:
        """Clear all recorded state."""
        self._samples.clear()


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = fraction * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(sorted_values[lo])
    weight = pos - lo
    return float(sorted_values[lo] * (1 - weight) + sorted_values[hi] * weight)


class LatencyRecorder:
    """Collects latency samples (ns) and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        """Record one sample."""
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self._samples.append(latency_ns)

    @property
    def samples(self) -> List[int]:
        """Copy of the raw samples."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> int:
        """Smallest recorded sample."""
        return min(self._samples) if self._samples else 0

    @property
    def maximum(self) -> int:
        """Largest recorded sample."""
        return max(self._samples) if self._samples else 0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / (n - 1))

    @property
    def coefficient_of_variation(self) -> float:
        """stdev / mean -- the paper's 'predictability' measure (Fig 8)."""
        mu = self.mean
        return self.stdev / mu if mu else 0.0

    def quantile(self, fraction: float) -> float:
        """Interpolated quantile of the samples."""
        return percentile(sorted(self._samples), fraction)

    def reset(self) -> None:
        """Clear all recorded state."""
        self._samples.clear()


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Used for queue depths and buffer occupancy: call ``update`` whenever
    the value changes; ``average`` integrates over time.

    The signal also accepts *deferred* relative changes via
    :meth:`shift_at`: the timeline fast path knows an op's grant instant
    at reservation time, long before any event fires there, so the
    depth change for that instant can be queued instead of scheduled.
    Pending changes are folded in -- in timestamp order -- before any
    later update and before every read, which integrates exactly the
    same area as an ``update`` call made by an event at that instant
    without the cost of the event.
    """

    def __init__(self, initial: float = 0.0, start_ns: int = 0):
        self._value = initial
        self._last_time = start_ns
        self._area = 0.0
        self._start = start_ns
        self._pending: List = []  # heap of (time_ns, order, delta)
        self._order = 0

    @property
    def value(self) -> float:
        """Current value of the signal (deferred changes excluded until
        an update or read at/after their instant folds them in)."""
        return self._value

    @property
    def horizon(self) -> int:
        """Timestamp through which the signal is known: the last update
        or the latest deferred change, whichever is later.  Reads that
        default to "as far as recorded" (registry snapshots without a
        timestamp) must use this, not ``_last_time``, so deferred
        changes count exactly as their event-scheduled equivalents do.
        """
        if self._pending:
            return max(self._last_time, max(t for t, _, _ in self._pending))
        return self._last_time

    def _settle(self, time_ns: int) -> None:
        pending = self._pending
        while pending and pending[0][0] <= time_ns:
            at, _, delta = heappop(pending)
            if at < self._last_time:
                raise ValueError("time went backwards")
            self._area += self._value * (at - self._last_time)
            self._value += delta
            self._last_time = at

    def update(self, time_ns: int, value: float) -> None:
        """Record a change of the signal at a timestamp."""
        if self._pending:
            self._settle(time_ns)
        if time_ns < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._value * (time_ns - self._last_time)
        self._value = value
        self._last_time = time_ns

    def shift(self, time_ns: int, delta: float) -> None:
        """Apply a relative change at ``time_ns`` (pending folded first)."""
        if self._pending:
            self._settle(time_ns)
        self.update(time_ns, self._value + delta)

    def shift_at(self, time_ns: int, delta: float) -> None:
        """Queue a relative change for a (usually future) instant."""
        heappush(self._pending, (time_ns, self._order, delta))
        self._order += 1

    def average(self, time_ns: int) -> float:
        """Average value from start until ``time_ns``."""
        if self._pending:
            self._settle(time_ns)
        if time_ns <= self._start:
            return self._value
        area = self._area + self._value * (time_ns - self._last_time)
        return area / (time_ns - self._start)

"""Contention primitives: Resource, PriorityResource, Store, Container.

These model the shared hardware in the system: a flash plane is a
``Resource(capacity=1)``, a channel bus is a ``Resource(1)`` held for the
transfer duration, a DRAM write buffer is a ``Container`` of bytes, and
request queues are ``Store``\\ s.
"""

from __future__ import annotations

import heapq
import typing
from collections import deque
from typing import Optional

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Request(Event):
    """A pending acquisition of a :class:`Resource` slot.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... # holding the resource
        # released on exit
    """

    __slots__ = ("resource", "queued_at", "granted_at")

    def __init__(self, sim, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource
        #: Timestamps for tracing: when the request was queued (only
        #: recorded while tracing is enabled) and when it was granted.
        self.queued_at: Optional[int] = None
        self.granted_at: Optional[int] = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A FIFO resource with ``capacity`` identical slots.

    A non-empty ``name`` opts the resource into tracing: when the
    simulator carries an attached :class:`repro.obs.Observability` with
    tracing enabled, every completed hold emits a span on the track
    named after the resource (acquire -> release, with the queue wait
    recorded as a span argument).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set = set()
        self._waiting: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when it is granted."""
        req = Request(self.sim, self)
        if self.name and self.sim.obs is not None:
            req.queued_at = self.sim.now
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a slot (or cancel a not-yet-granted request)."""
        if request in self._users:
            self._users.discard(request)
            if self.name:
                self._trace_release(request)
            self._grant()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass

    def _trace_release(self, request: Request) -> None:
        """Emit a hold span for a just-released granted request."""
        obs = self.sim.obs
        if obs is None or not obs.trace.enabled:
            return
        start = request.granted_at
        if start is None:  # granted before tracing was attached
            return
        args = {}
        if request.queued_at is not None:
            args["wait_ns"] = start - request.queued_at
        obs.trace.span(self.name, "hold", start, self.sim.now, **args)

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.add(req)
            req.granted_at = self.sim.now
            req.succeed(req)

    def acquire(self, hold_ns: int):
        """Convenience process body: acquire, hold ``hold_ns``, release.

        Usage: ``yield from resource.acquire(duration)``.
        """
        with self.request() as req:
            yield req
            yield self.sim.timeout(hold_ns)


class PriorityRequest(Request):
    """A :class:`PriorityResource` request (lower priority value = sooner)."""

    __slots__ = ("priority", "_order")

    def __init__(self, sim, resource, priority: int, order: int):
        super().__init__(sim, resource)
        self.priority = priority
        self._order = order

    def _key(self):
        return (self.priority, self._order)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name)
        self._waiting: list = []
        self._order = 0

    def request(self, priority: int = 0) -> PriorityRequest:
        """Ask for a slot; the returned event fires when granted."""
        self._order += 1
        req = PriorityRequest(self.sim, self, priority, self._order)
        if self.name and self.sim.obs is not None:
            req.queued_at = self.sim.now
        heapq.heappush(self._waiting, (req._key(), req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a held slot (or cancel a queued request)."""
        if request in self._users:
            self._users.discard(request)
            if self.name:
                self._trace_release(request)
            self._grant()
        else:
            self._waiting = [
                entry for entry in self._waiting if entry[1] is not request
            ]
            heapq.heapify(self._waiting)

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            _, req = heapq.heappop(self._waiting)
            self._users.add(req)
            req.granted_at = self.sim.now
            req.succeed(req)


class Store:
    """An unbounded-or-bounded FIFO queue of items."""

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item) -> Event:
        """Insert ``item``; the event fires once the item is accepted."""
        event = Event(self.sim)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event fires with that item."""
        event = Event(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                progress = True
            while self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progress = True


class Container:
    """A continuous quantity (e.g. bytes in a DRAM buffer).

    ``put`` blocks while the container would overflow; ``get`` blocks
    until the requested amount is available.
    """

    def __init__(self, sim: "Simulator", capacity: float, init: float = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._putters: deque = deque()
        self._getters: deque = deque()

    @property
    def level(self) -> float:
        """Current contents."""
        return self._level

    def put(self, amount: float) -> Event:
        """Insert; the returned event fires once accepted."""
        if amount < 0:
            raise ValueError(f"cannot put a negative amount {amount}")
        if amount > self.capacity:
            raise ValueError(f"put {amount} exceeds capacity {self.capacity}")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove/fetch; the returned event fires with the result."""
        if amount < 0:
            raise ValueError(f"cannot get a negative amount {amount}")
        if amount > self.capacity:
            raise ValueError(f"get {amount} exceeds capacity {self.capacity}")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progress = True

"""Discrete-event simulation kernel.

This package is a small, self-contained discrete-event simulation engine
(in the spirit of SimPy) used by every timed model in the repository:
NAND chips, channel buses, host links, FTLs, the CCDB KV store and the
cluster model.

Simulated time is kept in integer **nanoseconds** so that event ordering
is exact and runs are bit-for-bit reproducible.  Convenience constants
(:data:`~repro.sim.units.US`, :data:`~repro.sim.units.MS`, ...) are
provided by :mod:`repro.sim.units`.

The core abstractions:

* :class:`~repro.sim.engine.Simulator` -- the event loop.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` --
  one-shot occurrences that processes can wait on.
* :class:`~repro.sim.process.Process` -- a generator-based coroutine that
  ``yield``\\ s events.
* :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Container` -- contention primitives.
* :mod:`~repro.sim.stats` -- throughput meters, latency recorders and
  time-weighted statistics used by the benchmark harness.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.stats import (
    Counter,
    LatencyRecorder,
    ThroughputMeter,
    TimeWeighted,
)
from repro.sim.units import GB, GIB, KB, KIB, MB, MIB, MS, NS, S, US

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "ThroughputMeter",
    "LatencyRecorder",
    "TimeWeighted",
    "Counter",
    "NS",
    "US",
    "MS",
    "S",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
]

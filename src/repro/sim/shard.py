"""Sharded simulation: independent sub-simulations in worker processes.

Fleet scenarios are dominated by per-node device-plane events, and --
when the control plane is static for the run (no rebalancer, no policy
actions) -- nodes only interact through the *initial* routing table.
Each node's event stream is then fully determined by the scenario
alone, so the fleet factors into one independent sub-simulation per
node; :func:`run_sharded` executes those sub-simulations across worker
processes and the caller merges the per-node results.

Determinism contract:

* **Worker-count invariance by construction.**  Work is partitioned
  per *task* (per node), never within one: task ``i`` always runs a
  complete, self-contained simulation whose result depends only on its
  inputs.  Workers merely decide *where* each task runs, so 1, 2 or N
  workers produce identical per-task payloads, and the merge (keyed by
  task index) is identical too.
* **Fork-based.**  Workers are forked, inheriting the task closures by
  memory snapshot; only the plain-data result payloads cross process
  boundaries.  Platforms without ``fork`` (and ``workers=1``) run the
  tasks inline -- same results, no processes.

:class:`SealedHorizonMerger` performs the deterministic event-merge at
the network boundary: per-stream events are buffered and released only
up to the minimum across stream watermarks (the earliest timestamp any
stream may still produce), ordered by ``(timestamp, stream, arrival)``.
With a static control plane every stream's watermark jumps straight to
infinity at completion -- the degenerate (and cheapest) case -- but the
merge discipline is what keeps the chronology byte-identical however
many workers raced to fill the buffers.
"""

from __future__ import annotations

import multiprocessing
from heapq import heappop, heappush
from typing import Callable, List, Optional, Sequence

from repro.errors import ReproError


class ShardError(ReproError):
    """A sharded worker failed (its exception is in the message)."""


class SealedHorizonMerger:
    """Deterministic k-way merge of per-shard timestamped event streams.

    Each stream pushes ``(at_ns, item)`` pairs in nondecreasing ``at_ns``
    order and advances a *watermark*: a promise that it will never again
    push anything earlier.  :meth:`release` emits, in global order, every
    event strictly below the sealed horizon ``min(watermarks)`` -- no
    straggler can land before them, so the released prefix is final.
    Ties are broken by ``(stream index, arrival order)``, which is
    deterministic because each stream is internally ordered.
    """

    def __init__(self, n_streams: int):
        if n_streams < 1:
            raise ValueError("need at least one stream")
        self._heap: list = []
        self._watermarks: List[int] = [0] * n_streams
        self._seq = 0

    def push(self, stream: int, at_ns: int, item) -> None:
        """Buffer one event from ``stream`` at ``at_ns``."""
        if at_ns < self._watermarks[stream]:
            raise ValueError(
                f"stream {stream} pushed at {at_ns} behind its "
                f"watermark {self._watermarks[stream]}"
            )
        self._seq += 1
        heappush(self._heap, (at_ns, stream, self._seq, item))

    def advance(self, stream: int, watermark_ns: int) -> None:
        """Promise that ``stream`` will push nothing before
        ``watermark_ns`` from now on (monotonic per stream)."""
        if watermark_ns > self._watermarks[stream]:
            self._watermarks[stream] = watermark_ns

    def release(self) -> list:
        """Pop every sealed event (strictly below the horizon), in
        global ``(at_ns, stream, arrival)`` order."""
        horizon = min(self._watermarks)
        out = []
        heap = self._heap
        while heap and heap[0][0] < horizon:
            out.append(heappop(heap)[3])
        return out

    def drain(self, finished_watermark_ns: Optional[int] = None) -> list:
        """Seal every stream (they are done) and release everything."""
        for stream in range(len(self._watermarks)):
            self._watermarks[stream] = (
                float("inf")
                if finished_watermark_ns is None
                else finished_watermark_ns
            )
        out = []
        heap = self._heap
        while heap:
            out.append(heappop(heap)[3])
        return out


def run_sharded(
    tasks: Sequence[Callable[[], object]],
    workers: int,
    inline: bool = False,
) -> list:
    """Run ``tasks`` across ``workers`` forked processes; returns their
    results in task order.

    Task ``i`` is assigned to worker ``i % workers`` and each worker
    runs its tasks sequentially in index order, so the schedule -- and
    therefore every result -- is independent of how many workers exist.
    Falls back to inline execution (identical results) when ``inline``
    is set, only one worker is asked for, or ``fork`` is unavailable.
    """
    tasks = list(tasks)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if (
        inline
        or workers == 1
        or len(tasks) <= 1
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return [task() for task in tasks]

    workers = min(workers, len(tasks))
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()

    def worker_main(indices):
        for index in indices:
            try:
                queue.put((index, None, tasks[index]()))
            except BaseException as exc:  # surfaced in the parent
                queue.put((index, f"{type(exc).__name__}: {exc}", None))
                return

    assignments = [list(range(w, len(tasks), workers)) for w in range(workers)]
    procs = [
        ctx.Process(target=worker_main, args=(indices,), daemon=True)
        for indices in assignments
    ]
    for proc in procs:
        proc.start()
    results: dict = {}
    try:
        while len(results) < len(tasks):
            try:
                index, error, payload = queue.get(timeout=5)
            except Exception:
                dead = [p for p in procs if not p.is_alive() and p.exitcode]
                if dead:
                    raise ShardError(
                        f"shard worker died with exit code "
                        f"{dead[0].exitcode} before returning its result"
                    )
                continue
            if error is not None:
                raise ShardError(f"shard task {index} failed: {error}")
            results[index] = payload
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join()
    return [results[index] for index in range(len(tasks))]

"""Address mapping tables.

* :class:`PageMapping` -- numpy-backed logical-page -> physical-page map
  with a reverse map and per-block valid-page counters; the heart of the
  conventional SSD's page-mapped FTL.
* :class:`BlockMapping` -- the SDF channel engine's LA2PA table mapping a
  logical (8 MB) block to the group of physical erase blocks (one per
  plane) that store it.  The paper keeps this in on-chip SRAM with
  one-cycle lookups; functionally it is a small array.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

UNMAPPED = -1


class PageMapping:
    """Bidirectional LPN <-> PPN map plus valid-page accounting."""

    def __init__(self, n_lpns: int, n_ppns: int, pages_per_block: int):
        if n_lpns < 1 or n_ppns < 1:
            raise ValueError("page counts must be positive")
        if n_ppns % pages_per_block != 0:
            raise ValueError("n_ppns must be a whole number of blocks")
        self.n_lpns = n_lpns
        self.n_ppns = n_ppns
        self.pages_per_block = pages_per_block
        self._l2p = np.full(n_lpns, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(n_ppns, UNMAPPED, dtype=np.int64)
        self._valid_per_block = np.zeros(
            n_ppns // pages_per_block, dtype=np.int32
        )

    # -- lookups -----------------------------------------------------------------
    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently holding ``lpn``, or None if never written/trimmed."""
        ppn = int(self._l2p[lpn])
        return None if ppn == UNMAPPED else ppn

    def reverse(self, ppn: int) -> Optional[int]:
        """LPN stored at ``ppn`` if that page holds valid data."""
        lpn = int(self._p2l[ppn])
        return None if lpn == UNMAPPED else lpn

    def is_valid(self, ppn: int) -> bool:
        """True when the physical page holds live data."""
        return self._p2l[ppn] != UNMAPPED

    def valid_count(self, block_index: int) -> int:
        """Valid pages currently in the block."""
        return int(self._valid_per_block[block_index])

    @property
    def valid_counts(self) -> np.ndarray:
        """Read-only view of per-block valid-page counts."""
        view = self._valid_per_block.view()
        view.flags.writeable = False
        return view

    @property
    def mapped_lpns(self) -> int:
        """Logical pages that currently map somewhere."""
        return int(np.count_nonzero(self._l2p != UNMAPPED))

    # -- updates -----------------------------------------------------------------
    def map(self, lpn: int, ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``ppn``; returns the invalidated old PPN (if any).

        The target physical page must not already hold valid data.
        """
        if self._p2l[ppn] != UNMAPPED:
            raise ValueError(
                f"ppn {ppn} already holds valid lpn {int(self._p2l[ppn])}"
            )
        old_ppn = self.lookup(lpn)
        if old_ppn is not None:
            self._invalidate_ppn(old_ppn)
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self._valid_per_block[ppn // self.pages_per_block] += 1
        return old_ppn

    def unmap(self, lpn: int) -> Optional[int]:
        """TRIM: drop the mapping for ``lpn``; returns the freed PPN."""
        ppn = self.lookup(lpn)
        if ppn is None:
            return None
        self._invalidate_ppn(ppn)
        self._l2p[lpn] = UNMAPPED
        return ppn

    def _invalidate_ppn(self, ppn: int) -> None:
        self._p2l[ppn] = UNMAPPED
        block = ppn // self.pages_per_block
        self._valid_per_block[block] -= 1
        if self._valid_per_block[block] < 0:
            raise AssertionError(f"valid count of block {block} went negative")

    def valid_lpns_in_block(self, block_index: int) -> List[Tuple[int, int]]:
        """(ppn, lpn) pairs still valid inside a block (for GC movement)."""
        start = block_index * self.pages_per_block
        stop = start + self.pages_per_block
        segment = self._p2l[start:stop]
        hits = np.nonzero(segment != UNMAPPED)[0]
        return [(start + int(i), int(segment[i])) for i in hits]

    def note_block_erased(self, block_index: int) -> None:
        """Assert-and-reset after an erase: the block must hold no valid data."""
        if self._valid_per_block[block_index] != 0:
            raise ValueError(
                f"erasing block {block_index} with "
                f"{int(self._valid_per_block[block_index])} valid pages"
            )
        start = block_index * self.pages_per_block
        self._p2l[start : start + self.pages_per_block] = UNMAPPED


class BlockMapping:
    """SDF LA2PA: logical block -> tuple of physical blocks (one per plane).

    Lookups are one SRAM cycle in hardware; here, one dict access.
    """

    def __init__(self, n_logical_blocks: int):
        if n_logical_blocks < 1:
            raise ValueError("need at least one logical block")
        self.n_logical_blocks = n_logical_blocks
        self._table: Dict[int, Tuple[int, ...]] = {}

    def lookup(self, logical_block: int) -> Optional[Tuple[int, ...]]:
        """Current mapping for the logical unit, or None."""
        self._check(logical_block)
        return self._table.get(logical_block)

    def map(self, logical_block: int, physical_blocks: Tuple[int, ...]) -> None:
        """Install a mapping."""
        self._check(logical_block)
        if logical_block in self._table:
            raise ValueError(
                f"logical block {logical_block} is already mapped; erase first"
            )
        self._table[logical_block] = tuple(physical_blocks)

    def unmap(self, logical_block: int) -> Tuple[int, ...]:
        """Remove a mapping."""
        self._check(logical_block)
        try:
            return self._table.pop(logical_block)
        except KeyError:
            raise KeyError(f"logical block {logical_block} is not mapped")

    def is_mapped(self, logical_block: int) -> bool:
        """True when the logical block currently holds data."""
        self._check(logical_block)
        return logical_block in self._table

    @property
    def mapped_count(self) -> int:
        """Number of mapped logical blocks."""
        return len(self._table)

    def _check(self, logical_block: int) -> None:
        if not 0 <= logical_block < self.n_logical_blocks:
            raise IndexError(
                f"logical block {logical_block} outside "
                f"[0, {self.n_logical_blocks})"
            )

"""Wear leveling: free-block allocation and (optional) static migration.

**Dynamic wear leveling** (what SDF implements, S2.1): when a write
needs a fresh block, pick the free block with the smallest erase count.
The paper stores the erase-count table in banked SRAM so the minimum
search can proceed in parallel; functionally this is a min-heap.

**Static wear leveling** (what SDF deliberately *omits*, S2.2): migrate
long-lived cold data out of low-wear blocks.  Implemented here for the
conventional-SSD baseline and for the ablation study that justifies the
omission.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Tuple


class FreeBlockPool:
    """Min-erase-count allocator over a set of free blocks.

    Erase counts are tracked internally: blocks re-enter the pool via
    :meth:`release` after an erase, which bumps their count.
    """

    def __init__(self, blocks: Iterable[int]):
        self._erase_counts: Dict[int, int] = {}
        self._heap: List[Tuple[int, int]] = []  # (erase_count, block)
        self._free: set = set()
        #: Optional wear hook ``fn(block, new_erase_count)`` invoked on
        #: every recorded erase; used by the observability layer to keep
        #: live wear metrics.  None (the default) costs one check.
        self.on_erase: Optional[Callable[[int, int], None]] = None
        for block in blocks:
            self._erase_counts[block] = 0
            self._free.add(block)
            heapq.heappush(self._heap, (0, block))

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, block: int) -> bool:
        return block in self._free

    def erase_count(self, block: int) -> int:
        """Erase count of the given block."""
        return self._erase_counts[block]

    def allocate(self) -> int:
        """Pop the free block with the lowest erase count."""
        while self._heap:
            count, block = heapq.heappop(self._heap)
            if block in self._free and count == self._erase_counts[block]:
                self._free.discard(block)
                return block
        raise IndexError("no free blocks available")

    def release(self, block: int, erased: bool = True) -> None:
        """Return a block to the pool (after erasing it, normally)."""
        if block in self._free:
            raise ValueError(f"block {block} is already free")
        if block not in self._erase_counts:
            # A block entering the pool for the first time (e.g. a BBM
            # replacement brought into service late).
            self._erase_counts[block] = 0
        if erased:
            self._erase_counts[block] += 1
            if self.on_erase is not None:
                self.on_erase(block, self._erase_counts[block])
        self._free.add(block)
        heapq.heappush(self._heap, (self._erase_counts[block], block))

    def retire(self, block: int) -> None:
        """Permanently remove a (bad) block from circulation."""
        self._free.discard(block)
        self._erase_counts.pop(block, None)

    def note_external_erase(self, block: int) -> None:
        """Record an erase performed while the block was allocated."""
        if block in self._free:
            raise ValueError("block is free; release() records its erase")
        self._erase_counts[block] = self._erase_counts.get(block, 0) + 1
        if self.on_erase is not None:
            self.on_erase(block, self._erase_counts[block])

    @property
    def min_free_erase_count(self) -> Optional[int]:
        """Smallest erase count among free blocks."""
        while self._heap:
            count, block = self._heap[0]
            if block in self._free and count == self._erase_counts[block]:
                return count
            heapq.heappop(self._heap)
        return None

    def wear_spread(self) -> int:
        """max - min erase count over every block this pool has seen."""
        if not self._erase_counts:
            return 0
        counts = self._erase_counts.values()
        return max(counts) - min(counts)


class StaticWearLeveler:
    """Cold-data migration policy for the conventional baseline/ablation.

    When the wear spread (max erase count - min erase count) exceeds
    ``threshold``, the block with the minimum erase count is nominated
    for migration: its (cold) valid data should be moved so the
    low-wear block can rejoin the free pool.  The mechanics of moving
    data belong to the owning FTL; this class only decides *when* and
    *which block*.
    """

    def __init__(self, threshold: int = 50):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.migrations_triggered = 0

    def pick_victim(
        self,
        erase_count_of: Callable[[int], int],
        candidate_blocks: Iterable[int],
        max_erase_count: int,
    ) -> Optional[int]:
        """The coldest candidate, if the spread crosses the threshold."""
        victim = None
        victim_count = None
        for block in candidate_blocks:
            count = erase_count_of(block)
            if victim_count is None or count < victim_count:
                victim, victim_count = block, count
        if victim is None:
            return None
        if max_erase_count - victim_count < self.threshold:
            return None
        self.migrations_triggered += 1
        return victim

"""Flash translation layers.

Two FTL families, matching the paper's Figure 5 contrast:

* :class:`~repro.ftl.page_ftl.PageFTL` -- the conventional-SSD FTL: one
  page-mapped, log-structured FTL spanning all channels with small-unit
  striping, over-provisioning and greedy garbage collection.  This is
  what the Huawei Gen3 / Intel 320 baselines run.
* :class:`~repro.ftl.block_ftl.ChannelBlockFTL` -- the SDF per-channel
  engine: block-level LA2PA mapping, dynamic wear leveling and bad-block
  management, with **no** garbage collection (the host erases blocks
  explicitly before rewriting them, so write amplification is 1).

Every logical operation returns the list of physical
:class:`~repro.ftl.ops.FlashOp`\\ s it performed, which the timed device
layer replays against the channel engines to produce latency.
"""

from repro.ftl.badblocks import BadBlockManager
from repro.ftl.block_ftl import ChannelBlockFTL, EraseBeforeWriteError
from repro.ftl.gc import GreedyGarbageCollector
from repro.ftl.mapping import BlockMapping, PageMapping
from repro.ftl.ops import FlashOp, OpKind
from repro.ftl.page_ftl import OutOfSpaceError, PageFTL
from repro.ftl.wear import FreeBlockPool, StaticWearLeveler

__all__ = [
    "FlashOp",
    "OpKind",
    "PageMapping",
    "BlockMapping",
    "BadBlockManager",
    "FreeBlockPool",
    "StaticWearLeveler",
    "GreedyGarbageCollector",
    "PageFTL",
    "OutOfSpaceError",
    "ChannelBlockFTL",
    "EraseBeforeWriteError",
]

"""Physical flash operation records.

Functional FTL calls return lists of :class:`FlashOp` describing exactly
which physical reads/programs/erases happened.  The timed device layer
replays these against channel engines to charge simulated time, and
tests use them to assert write-amplification behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.nand.array import PhysicalAddress


class OpKind(Enum):
    """The three physical flash operations."""
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True, slots=True)
class FlashOp:
    """One physical flash operation."""

    kind: OpKind
    address: PhysicalAddress
    nbytes: int = 0  # payload moved over the channel bus (0 for erase)
    #: True when the op was internal housekeeping (GC movement, wear
    #: leveling migration) rather than directly serving a host request.
    internal: bool = False

    @property
    def channel(self) -> int:
        """Channel this op targets."""
        return self.address.channel


def read_op(addr: PhysicalAddress, nbytes: int, internal=False) -> FlashOp:
    """Construct a page-read op."""
    return FlashOp(OpKind.READ, addr, nbytes, internal)


def program_op(addr: PhysicalAddress, nbytes: int, internal=False) -> FlashOp:
    """Construct a page-program op."""
    return FlashOp(OpKind.PROGRAM, addr, nbytes, internal)


def erase_op(addr: PhysicalAddress, internal=False) -> FlashOp:
    """Construct a block-erase op."""
    return FlashOp(OpKind.ERASE, addr, 0, internal)

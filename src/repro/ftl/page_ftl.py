"""The conventional SSD's page-mapped, log-structured FTL.

This is the paper's baseline architecture (Figure 5a): one FTL spans
every channel, the logical address space is **striped across channels in
small units** (8 KB for the Huawei Gen3), writes go to per-plane append
frontiers, and a greedy garbage collector relocates valid pages when
free blocks run low.  Over-provisioned space (the paper's Figure 1
variable) and optional RAID-5-style channel parity (S2.2) are both
modeled.

Every logical operation returns the physical :class:`~repro.ftl.ops.FlashOp`
list it generated so the timed device layer can charge time and tests
can assert write amplification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ftl.gc import GreedyGarbageCollector
from repro.ftl.mapping import PageMapping
from repro.ftl.ops import FlashOp, erase_op, program_op, read_op
from repro.ftl.wear import FreeBlockPool
from repro.nand.array import FlashArray, PhysicalAddress
from repro.nand.geometry import scaled_count


class OutOfSpaceError(Exception):
    """The FTL ran out of physical space (GC could not keep up)."""


class PageFTL:
    """Page-mapped FTL with striping, over-provisioning, GC and parity."""

    def __init__(
        self,
        array: FlashArray,
        op_ratio: float = 0.25,
        stripe_pages: int = 1,
        parity_group_size: Optional[int] = None,
        gc_free_blocks: Optional[int] = None,
        store_data: bool = True,
    ):
        if not 0.0 <= op_ratio < 1.0:
            raise ValueError(f"op_ratio {op_ratio} outside [0, 1)")
        if stripe_pages < 1:
            raise ValueError("stripe_pages must be >= 1")
        if parity_group_size is not None and parity_group_size < 2:
            raise ValueError("parity_group_size must be >= 2 (n-1 data + 1)")
        if gc_free_blocks is None:
            # GC relocation may open one fresh frontier per plane before
            # the victim's erase returns a block, so keep that much
            # headroom (plus slack) per channel.
            gc_free_blocks = (
                array.chips_per_channel * array.geometry.planes_per_chip + 2
            )
        if gc_free_blocks < 1:
            raise ValueError("gc_free_blocks must be >= 1")
        self.array = array
        self.op_ratio = op_ratio
        self.stripe_pages = stripe_pages
        self.parity_group_size = parity_group_size
        self.gc_free_blocks = gc_free_blocks
        self.store_data = store_data
        self.gc_policy = GreedyGarbageCollector()

        geo = array.geometry
        self._data_channels, self._parity_channels = self._split_channels()
        data_pages = (
            len(self._data_channels)
            * array.planes_per_channel
            * geo.blocks_per_plane
            * geo.pages_per_block
        )
        self.user_pages = scaled_count(data_pages * (1.0 - op_ratio))
        if self.user_pages < 1:
            raise ValueError("configuration leaves no user capacity")

        self.mapping = PageMapping(
            n_lpns=self.user_pages,
            n_ppns=array.n_pages,
            pages_per_block=geo.pages_per_block,
        )
        # Per-(channel, plane) free pools, so every plane keeps its own
        # append frontier busy (4-plane program parallelism).
        self._pools: Dict[Tuple[int, int], FreeBlockPool] = {}
        for channel in range(array.n_channels):
            plane_index = 0
            for chip in range(array.chips_per_channel):
                for plane in range(geo.planes_per_chip):
                    blocks = [
                        array.flat_block(
                            PhysicalAddress(channel, chip, plane, block)
                        )
                        for block in range(geo.blocks_per_plane)
                    ]
                    self._pools[(channel, plane_index)] = FreeBlockPool(blocks)
                    plane_index += 1
        # (channel, plane_index) -> [flat_block, next_page] append frontier.
        self._frontiers: Dict[Tuple[int, int], List[int]] = {}
        self._plane_rr: Dict[int, int] = {c: 0 for c in range(array.n_channels)}
        self._sealed: Dict[int, Set[int]] = {
            c: set() for c in range(array.n_channels)
        }
        # Parity bookkeeping: programs since last parity write, per group.
        self._parity_pending: Dict[int, int] = {}
        self._parity_rr: Dict[int, int] = {}

        # Statistics.
        self.user_programs = 0
        self.gc_programs = 0
        self.parity_programs = 0
        self.gc_reads = 0
        self.erases = 0
        self.gc_runs = 0

    # -- layout -------------------------------------------------------------------
    def _split_channels(self) -> Tuple[List[int], List[int]]:
        """Partition channels into data and parity sets."""
        n = self.array.n_channels
        if self.parity_group_size is None:
            return list(range(n)), []
        group = self.parity_group_size
        data, parity = [], []
        for channel in range(n):
            if channel % group == group - 1:
                parity.append(channel)
            else:
                data.append(channel)
        if not data:
            raise ValueError("parity grouping left no data channels")
        return data, parity

    @property
    def user_bytes(self) -> int:
        """Bytes of user-visible capacity."""
        return self.user_pages * self.array.geometry.page_size

    def channel_of_lpn(self, lpn: int) -> int:
        """Striping: which channel serves this logical page."""
        stripe_index = lpn // self.stripe_pages
        return self._data_channels[stripe_index % len(self._data_channels)]

    # -- public operations ------------------------------------------------------------
    def write(self, lpn: int, data=None) -> List[FlashOp]:
        """Write one logical page; returns every physical op performed
        (including any GC and parity traffic it triggered)."""
        self._check_lpn(lpn)
        channel = self.channel_of_lpn(lpn)
        ops: List[FlashOp] = []
        ops.extend(self._ensure_free_space(channel))
        addr = self._append(channel, lpn, data)
        self.user_programs += 1
        ops.append(program_op(addr, self.array.geometry.page_size))
        ops.extend(self._maybe_write_parity(channel))
        return ops

    def read(self, lpn: int) -> Tuple[object, List[FlashOp]]:
        """Read one logical page; (payload, physical ops)."""
        self._check_lpn(lpn)
        ppn = self.mapping.lookup(lpn)
        if ppn is None:
            return None, []
        addr = self.array.unpack_ppn(ppn)
        data = self.array.read_page(addr)
        return data, [read_op(addr, self.array.geometry.page_size)]

    def trim(self, lpn: int) -> None:
        """Drop the mapping for a logical page (TRIM)."""
        self._check_lpn(lpn)
        self.mapping.unmap(lpn)

    # -- statistics ---------------------------------------------------------------------
    @property
    def total_programs(self) -> int:
        """Page programs across every chip."""
        return self.user_programs + self.gc_programs + self.parity_programs

    @property
    def write_amplification(self) -> float:
        """(all programs) / (user programs); 1.0 is the ideal."""
        if self.user_programs == 0:
            return 1.0
        return self.total_programs / self.user_programs

    def free_blocks(self, channel: int) -> int:
        """Free physical blocks on the channel."""
        return sum(
            len(self._pools[(channel, plane)])
            for plane in range(self.array.planes_per_channel)
        )

    # -- internals ------------------------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"lpn {lpn} outside [0, {self.user_pages})")

    def _append(self, channel: int, lpn: int, data) -> PhysicalAddress:
        """Program the next page of the channel's rotating plane frontier."""
        addr, flat_block, page = self._next_slot(channel)
        self.array.program_page(addr, data if self.store_data else None)
        self.mapping.map(lpn, flat_block * self.array.geometry.pages_per_block + page)
        return addr

    def _next_slot(self, channel: int) -> Tuple[PhysicalAddress, int, int]:
        """Advance the channel's round-robin plane frontier by one page."""
        geo = self.array.geometry
        planes = self.array.planes_per_channel
        plane_index = self._plane_rr[channel] % planes
        self._plane_rr[channel] += 1
        key = (channel, plane_index)
        frontier = self._frontiers.get(key)
        if frontier is None or frontier[1] >= geo.pages_per_block:
            if frontier is not None:
                self._sealed[channel].add(frontier[0])
            frontier = [self._allocate_block(channel, plane_index), 0]
            self._frontiers[key] = frontier
        flat_block, page = frontier
        frontier[1] += 1
        addr = self.array.unpack_block(flat_block).with_page(page)
        return addr, flat_block, page

    def _allocate_block(self, channel: int, plane_index: int) -> int:
        """A fresh block for the given frontier, preferring its own
        plane (keeps all planes programming in parallel) and stealing
        from the fullest sibling pool when the plane is exhausted."""
        pool = self._pools[(channel, plane_index)]
        if len(pool) > 0:
            return pool.allocate()
        richest = max(
            (
                self._pools[(channel, plane)]
                for plane in range(self.array.planes_per_channel)
            ),
            key=len,
        )
        if len(richest) == 0:
            raise OutOfSpaceError(f"channel {channel} has no free blocks")
        return richest.allocate()

    def _ensure_free_space(self, channel: int) -> List[FlashOp]:
        """Run greedy GC on a channel until it has breathing room."""
        ops: List[FlashOp] = []
        pages_per_block = self.array.geometry.pages_per_block
        while self.free_blocks(channel) < self.gc_free_blocks:
            victim = self.gc_policy.select_victim(
                self.mapping.valid_counts, self._sealed[channel]
            )
            if victim is not None and (
                self.mapping.valid_count(victim) >= pages_per_block
            ):
                # Every candidate is fully valid: GC cannot reclaim
                # anything, so collecting would only shuffle data forever.
                victim = None
            if victim is None:
                # Nothing reclaimable right now.  The write itself may
                # still fit in an open frontier; if it truly needs a
                # fresh block, _allocate_block raises OutOfSpaceError.
                break
            ops.extend(self._collect_block(channel, victim))
        return ops

    def _collect_block(self, channel: int, victim: int) -> List[FlashOp]:
        """Relocate a victim block's valid pages, erase it, free it."""
        geo = self.array.geometry
        ops: List[FlashOp] = []
        self.gc_runs += 1
        self._sealed[channel].discard(victim)
        for ppn, lpn in self.mapping.valid_lpns_in_block(victim):
            src = self.array.unpack_ppn(ppn)
            data = self.array.read_page(src)
            self.gc_reads += 1
            ops.append(read_op(src, geo.page_size, internal=True))
            dst, flat_block, page = self._next_slot(channel)
            self.array.program_page(dst, data)
            self.gc_programs += 1
            self.mapping.map(lpn, flat_block * geo.pages_per_block + page)
            ops.append(program_op(dst, geo.page_size, internal=True))
        victim_addr = self.array.unpack_block(victim)
        self.array.erase_block(victim_addr)
        self.mapping.note_block_erased(victim)
        self.erases += 1
        ops.append(erase_op(victim_addr, internal=True))
        plane_index = (
            victim_addr.chip * self.array.geometry.planes_per_chip
            + victim_addr.plane
        )
        self._pools[(channel, plane_index)].release(victim)
        return ops

    def _maybe_write_parity(self, data_channel: int) -> List[FlashOp]:
        """RAID-5-style channel parity: one parity program per (g-1)
        data programs within the channel's parity group."""
        if self.parity_group_size is None:
            return []
        group = data_channel // self.parity_group_size
        pending = self._parity_pending.get(group, 0) + 1
        if pending < self.parity_group_size - 1:
            self._parity_pending[group] = pending
            return []
        self._parity_pending[group] = 0
        parity_channel = self._parity_channels[group % len(self._parity_channels)]
        ops = list(self._ensure_free_space(parity_channel))
        addr, _, _ = self._next_slot(parity_channel)
        self.array.program_page(addr, None)
        self.parity_programs += 1
        ops.append(
            program_op(addr, self.array.geometry.page_size, internal=True)
        )
        return ops

"""The SDF per-channel FTL engine (paper S2.1, Figure 4).

Each of the 44 channels runs an independent engine providing:

* **LA2PA** -- block-level logical-to-physical mapping.  The logical
  unit is the 8 MB *write block*: one 2 MB erase block on each of the
  channel's four planes, striped 2 MB per plane (S2.3).
* **DWL** -- dynamic wear leveling: fresh blocks are allocated from a
  per-plane min-erase-count pool.
* **BBM** -- bad block management: factory-bad and grown-bad blocks are
  retired and never allocated.

There is deliberately **no garbage collection, no static wear leveling
and no parity**: the host must erase a logical block before rewriting
it, so write amplification is exactly 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.faults.injector import NULL_INJECTOR
from repro.ftl.badblocks import BadBlockManager
from repro.ftl.mapping import BlockMapping
from repro.ftl.ops import FlashOp, erase_op, program_op, read_op
from repro.ftl.wear import FreeBlockPool
from repro.nand.array import FlashArray, PhysicalAddress
from repro.nand.geometry import scaled_count
from repro.nand.chip import ProgramFailError
from repro.ftl.page_ftl import OutOfSpaceError


class EraseBeforeWriteError(Exception):
    """Write to a logical block that has not been erased (paper S2.3)."""


class ChannelBlockFTL:
    """One channel's block-mapped FTL engine."""

    def __init__(
        self,
        array: FlashArray,
        channel: int,
        reserve_fraction: float = 0.01,
    ):
        if not 0 <= channel < array.n_channels:
            raise IndexError(f"channel {channel} outside the array")
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction outside [0, 1)")
        self.array = array
        self.channel = channel
        geo = array.geometry
        self.n_planes = array.planes_per_channel
        self.pages_per_logical_block = self.n_planes * geo.pages_per_block
        self.logical_block_bytes = self.pages_per_logical_block * geo.page_size

        # Discover factory-bad blocks and build per-plane pools.
        self._pools: List[FreeBlockPool] = []
        self._bbm: List[BadBlockManager] = []
        min_usable = geo.blocks_per_plane
        for plane_index in range(self.n_planes):
            chip, plane = self._chip_plane(plane_index)
            bad = [
                block
                for block in range(geo.blocks_per_plane)
                if array.is_bad(PhysicalAddress(channel, chip, plane, block))
            ]
            self._bbm.append(BadBlockManager(factory_bad=bad))
            good = [
                block for block in range(geo.blocks_per_plane) if block not in set(bad)
            ]
            min_usable = min(min_usable, len(good))
            self._pools.append(FreeBlockPool(good))

        self.n_logical_blocks = scaled_count(min_usable * (1.0 - reserve_fraction))
        if self.n_logical_blocks < 1:
            raise ValueError("no usable logical blocks on this channel")
        self.mapping = BlockMapping(self.n_logical_blocks)

        self.host_reads = 0
        self.host_programs = 0
        self.erase_count = 0
        self.program_remaps = 0
        #: Fault handle used only to *log* recovery actions (remaps);
        #: injection itself happens in the chips underneath.
        self.faults = NULL_INJECTOR

    # -- geometry helpers ----------------------------------------------------------
    def _chip_plane(self, plane_index: int) -> Tuple[int, int]:
        per_chip = self.array.geometry.planes_per_chip
        return plane_index // per_chip, plane_index % per_chip

    def _address(
        self, plane_index: int, block: int, page: int = 0
    ) -> PhysicalAddress:
        chip, plane = self._chip_plane(plane_index)
        return PhysicalAddress(self.channel, chip, plane, block, page)

    @property
    def capacity_bytes(self) -> int:
        """Capacity exposed to the host (99% of raw by default)."""
        return self.n_logical_blocks * self.logical_block_bytes

    @property
    def write_amplification(self) -> float:
        """Always 1.0: the engine never issues internal programs."""
        return 1.0

    # -- operations -------------------------------------------------------------------
    def write(self, logical_block: int, pages: Sequence) -> List[FlashOp]:
        """Write one full logical block (8 MB: all pages, stripe order).

        ``pages[i]`` lands on plane ``i // pages_per_block`` at page
        offset ``i % pages_per_block`` -- the 2 MB-per-plane striping of
        S2.3.  The logical block must be unmapped (never written, or
        erased since).
        """
        if len(pages) != self.pages_per_logical_block:
            raise ValueError(
                f"SDF write unit is the full logical block "
                f"({self.pages_per_logical_block} pages); got {len(pages)}"
            )
        if self.mapping.is_mapped(logical_block):
            raise EraseBeforeWriteError(
                f"logical block {logical_block} must be erased before rewrite"
            )
        physical = list(self._allocate_group())
        self.mapping.map(logical_block, tuple(physical))
        geo = self.array.geometry
        ops: List[FlashOp] = []
        # Program in plane-interleaved order (page 0 of every plane, then
        # page 1, ...) so the shared channel bus feeds all four planes
        # from the start -- the stripe layout itself is unchanged.
        for page in range(geo.pages_per_block):
            for plane_index in range(self.n_planes):
                index = plane_index * geo.pages_per_block + page
                payload = pages[index]
                addr = self._address(plane_index, physical[plane_index], page)
                try:
                    self.array.program_page(addr, payload)
                except ProgramFailError:
                    ops.extend(
                        self._remap_program_failure(
                            logical_block, physical, plane_index, page, pages
                        )
                    )
                    # Retry the failed page on the replacement block; a
                    # second verify failure on a fresh block is beyond the
                    # recovery model and propagates.
                    addr = self._address(plane_index, physical[plane_index], page)
                    self.array.program_page(addr, payload)
                self.host_programs += 1
                ops.append(program_op(addr, geo.page_size))
        return ops

    def _remap_program_failure(
        self,
        logical_block: int,
        physical: List[int],
        plane_index: int,
        failed_page: int,
        pages: Sequence,
    ) -> List[FlashOp]:
        """Absorb a program-verify failure: retire the bad block, bring a
        replacement into the stripe, and replay the plane's already
        programmed pages from the in-flight host buffer (``pages``).

        Mutates ``physical`` in place and refreshes the LA2PA entry.
        Returns the extra (replayed) program ops so the caller can charge
        their simulated time.
        """
        geo = self.array.geometry
        bad = physical[plane_index]
        self._bbm[plane_index].mark_grown_bad(bad)
        self._pools[plane_index].retire(bad)
        try:
            replacement = self._pools[plane_index].allocate()
        except IndexError:
            raise OutOfSpaceError(
                f"channel {self.channel} plane {plane_index} has no spare "
                f"block to remap failed block {bad}"
            )
        physical[plane_index] = replacement
        self.mapping.unmap(logical_block)
        self.mapping.map(logical_block, tuple(physical))
        self.program_remaps += 1
        ops: List[FlashOp] = []
        for page in range(failed_page):
            index = plane_index * geo.pages_per_block + page
            addr = self._address(plane_index, replacement, page)
            self.array.program_page(addr, pages[index])
            ops.append(program_op(addr, geo.page_size))
        self.faults.note(
            "program_remap",
            plane=plane_index,
            bad_block=bad,
            replacement=replacement,
            replayed_pages=failed_page,
        )
        return ops

    def read(
        self, logical_block: int, page_offset: int, n_pages: int = 1
    ) -> Tuple[List, List[FlashOp]]:
        """Read ``n_pages`` 8 KB pages starting at ``page_offset``."""
        if n_pages < 1:
            raise ValueError("n_pages must be >= 1")
        if not 0 <= page_offset < self.pages_per_logical_block:
            raise IndexError(f"page_offset {page_offset} out of range")
        if page_offset + n_pages > self.pages_per_logical_block:
            raise IndexError("read crosses the logical block boundary")
        physical = self.mapping.lookup(logical_block)
        if physical is None:
            return [None] * n_pages, []
        geo = self.array.geometry
        payloads: List = []
        ops: List[FlashOp] = []
        for index in range(page_offset, page_offset + n_pages):
            plane_index = index // geo.pages_per_block
            page = index % geo.pages_per_block
            addr = self._address(plane_index, physical[plane_index], page)
            payloads.append(self.array.read_page(addr))
            self.host_reads += 1
            ops.append(read_op(addr, geo.page_size))
        return payloads, ops

    def erase(self, logical_block: int) -> List[FlashOp]:
        """Host-initiated erase: the new command SDF exposes (S2.3).

        Erases the logical block's physical blocks, returns them to the
        wear-leveling pools, and unmaps the logical block.  Blocks that
        wear out during the erase are retired via BBM instead.
        """
        physical = self.mapping.unmap(logical_block)
        ops: List[FlashOp] = []
        for plane_index, block in enumerate(physical):
            addr = self._address(plane_index, block)
            self.array.erase_block(addr)
            self.erase_count += 1
            ops.append(erase_op(addr))
            if self.array.is_bad(addr):
                self._bbm[plane_index].mark_grown_bad(block)
                self._pools[plane_index].retire(block)
            else:
                self._pools[plane_index].release(block)
        return ops

    def is_mapped(self, logical_block: int) -> bool:
        """True when the logical block currently holds data."""
        return self.mapping.is_mapped(logical_block)

    # -- allocation ---------------------------------------------------------------------
    def _allocate_group(self) -> Tuple[int, ...]:
        """One min-wear free block per plane."""
        group: List[int] = []
        for plane_index, pool in enumerate(self._pools):
            try:
                group.append(pool.allocate())
            except IndexError:
                # Roll back planes already taken.
                for taken_plane, taken in enumerate(group):
                    self._pools[taken_plane].release(taken, erased=False)
                raise OutOfSpaceError(
                    f"channel {self.channel} plane {plane_index} has no "
                    "free blocks (host must erase before writing)"
                )
        return tuple(group)

    # -- observability -------------------------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Expose this engine's counters and wear state as pull metrics.

        Registers callbacks on a :class:`repro.obs.MetricsRegistry` (no
        hot-path cost) and wires the wear pools' ``on_erase`` hook to a
        live max-erase-count gauge.
        """
        prefix = f"ftl.ch{self.channel}"
        registry.register_callback(
            f"{prefix}.host_reads", lambda _now: self.host_reads
        )
        registry.register_callback(
            f"{prefix}.host_programs", lambda _now: self.host_programs
        )
        registry.register_callback(
            f"{prefix}.erases", lambda _now: self.erase_count
        )
        registry.register_callback(
            f"{prefix}.free_logical_blocks",
            lambda _now: self.free_logical_blocks(),
        )
        registry.register_callback(
            f"{prefix}.grown_bad_blocks", lambda _now: self.grown_bad_blocks()
        )
        registry.register_callback(
            f"{prefix}.program_remaps", lambda _now: self.program_remaps
        )
        registry.register_callback(
            f"wear.ch{self.channel}.spread", lambda _now: self.wear_spread()
        )
        gauge = registry.gauge(f"wear.ch{self.channel}.max_erase_count")

        def note_erase(block, count, _gauge=gauge):
            if count > _gauge.value:
                _gauge.set(count)

        for pool in self._pools:
            pool.on_erase = note_erase

    # -- introspection ---------------------------------------------------------------------
    def free_logical_blocks(self) -> int:
        """Logical blocks writable without an erase."""
        return min(len(pool) for pool in self._pools)

    def wear_spread(self) -> int:
        """max - min erase count across the pools."""
        return max(pool.wear_spread() for pool in self._pools)

    def grown_bad_blocks(self) -> int:
        """Blocks retired in service (not factory-bad)."""
        return sum(len(bbm.grown_bad) for bbm in self._bbm)

    def __repr__(self):
        return (
            f"ChannelBlockFTL(channel={self.channel}, "
            f"logical_blocks={self.n_logical_blocks}, "
            f"mapped={self.mapping.mapped_count})"
        )

"""Garbage-collection victim selection.

The conventional-SSD baseline uses the classic greedy policy: reclaim
the sealed block with the fewest valid pages (cheapest to relocate).
SDF has no GC at all -- that asymmetry *is* the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class GreedyGarbageCollector:
    """Greedy victim selection over per-block valid-page counts."""

    def __init__(self):
        self.victims_selected = 0

    def select_victim(
        self, valid_counts: np.ndarray, candidates: Iterable[int]
    ) -> Optional[int]:
        """The candidate block with the fewest valid pages, or None.

        ``valid_counts`` is indexed by flat block number (as maintained
        by :class:`repro.ftl.mapping.PageMapping`).
        """
        candidate_list = list(candidates)
        if not candidate_list:
            return None
        index = np.asarray(candidate_list, dtype=np.int64)
        victim = int(index[np.argmin(valid_counts[index])])
        self.victims_selected += 1
        return victim

"""Bad block management (the BBM module of each SDF channel engine).

Tracks factory-bad and grown-bad physical blocks so the allocator never
hands them out, and records the grown-bad history for reliability
reporting.
"""

from __future__ import annotations

from typing import Iterable, List, Set


class BadBlockManager:
    """Registry of unusable physical blocks within one allocation domain."""

    def __init__(self, factory_bad: Iterable[int] = ()):
        self._factory_bad: Set[int] = set(factory_bad)
        self._grown_bad: Set[int] = set()

    def is_bad(self, block: int) -> bool:
        """True when the block is unusable."""
        return block in self._factory_bad or block in self._grown_bad

    def mark_grown_bad(self, block: int) -> None:
        """Retire a block that failed an erase/program in service."""
        if block in self._factory_bad:
            raise ValueError(f"block {block} was already factory-bad")
        self._grown_bad.add(block)

    @property
    def factory_bad(self) -> List[int]:
        """Sorted factory-bad block indices."""
        return sorted(self._factory_bad)

    @property
    def grown_bad(self) -> List[int]:
        """Sorted grown-bad block indices."""
        return sorted(self._grown_bad)

    @property
    def n_bad(self) -> int:
        """Total unusable blocks."""
        return len(self._factory_bad) + len(self._grown_bad)

    def usable(self, blocks: Iterable[int]) -> List[int]:
        """Filter an iterable of block indices down to the good ones."""
        return [block for block in blocks if not self.is_bad(block)]

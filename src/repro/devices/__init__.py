"""Storage devices: the SDF and its conventional-SSD baselines.

* :class:`~repro.devices.sdf.SDFDevice` -- the paper's device: 44
  channels exposed individually (`/dev/sda0..43`), 8 KB read unit, 8 MB
  write/erase unit, explicit erase command, no OP/parity/DRAM-cache/GC.
* :class:`~repro.devices.conventional.ConventionalSSD` -- the baseline
  architecture (Figure 5a): single controller, page-mapped FTL, 8 KB
  striping, over-provisioning, GC, DRAM write-back buffer, optional
  channel parity.
* :mod:`~repro.devices.catalog` -- the concrete devices of Tables 1-3:
  Baidu SDF, Huawei Gen3, Intel 320, and a Memblaze-Q520-class high-end
  drive.
"""

from repro.devices.base import DeviceStats
from repro.devices.catalog import (
    HUAWEI_GEN3_SPEC,
    INTEL_320_SPEC,
    MEMBLAZE_Q520_SPEC,
    build_conventional,
    build_sdf,
    sdf_spec,
)
from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.devices.sdf import SDFChannelDevice, SDFDevice

__all__ = [
    "DeviceStats",
    "SDFDevice",
    "SDFChannelDevice",
    "ConventionalSSD",
    "ConventionalSSDSpec",
    "build_sdf",
    "build_conventional",
    "sdf_spec",
    "HUAWEI_GEN3_SPEC",
    "INTEL_320_SPEC",
    "MEMBLAZE_Q520_SPEC",
]

"""Storage devices: the SDF, its baselines, and the pluggable zoo.

* :class:`~repro.devices.sdf.SDFDevice` -- the paper's device: 44
  channels exposed individually (`/dev/sda0..43`), 8 KB read unit, 8 MB
  write/erase unit, explicit erase command, no OP/parity/DRAM-cache/GC.
* :class:`~repro.devices.conventional.ConventionalSSD` -- the baseline
  architecture (Figure 5a): single controller, page-mapped FTL, 8 KB
  striping, over-provisioning, GC, DRAM write-back buffer, optional
  channel parity.
* The zoo (DESIGN.md section 11): :class:`~repro.devices.dftl.DFTLDevice`
  (bounded cached mapping table), :class:`~repro.devices.hybrid.HybridDevice`
  (log-block FTL with merge costs), :class:`~repro.devices.mqftl.MQFTLDevice`
  (queue-per-channel controller), :class:`~repro.devices.zoned.ZonedDevice`
  (ZNS-style zones over the SDF hardware).
* :mod:`~repro.devices.catalog` -- the concrete devices of Tables 1-3
  plus the one-door factory: every backend registers under a string
  ``kind`` and is built via :func:`~repro.devices.catalog.build_device`
  or a declarative :class:`~repro.devices.catalog.DeviceSpec`.

All backends satisfy the :class:`~repro.devices.base.DeviceModel`
protocol and report the same ``device.{kind}.*`` metric family
(:data:`~repro.devices.base.DEVICE_METRIC_KEYS`).
"""

from repro.devices.base import DEVICE_METRIC_KEYS, DeviceModel, DeviceStats
from repro.devices.catalog import (
    HUAWEI_GEN3_SPEC,
    INTEL_320_SPEC,
    MEMBLAZE_Q520_SPEC,
    DeviceSpec,
    build_conventional,
    build_device,
    build_sdf,
    device_kinds,
    register_device,
    sdf_spec,
)
from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.devices.dftl import DFTLDevice, DFTLSpec
from repro.devices.hybrid import HybridDevice, HybridSpec
from repro.devices.mqftl import MQFTLDevice
from repro.devices.sdf import SDFChannelDevice, SDFDevice
from repro.devices.zoned import ZonedDevice, ZoneStateError

__all__ = [
    "DeviceModel",
    "DeviceStats",
    "DEVICE_METRIC_KEYS",
    "SDFDevice",
    "SDFChannelDevice",
    "ConventionalSSD",
    "ConventionalSSDSpec",
    "DFTLDevice",
    "DFTLSpec",
    "HybridDevice",
    "HybridSpec",
    "MQFTLDevice",
    "ZonedDevice",
    "ZoneStateError",
    "DeviceSpec",
    "build_device",
    "device_kinds",
    "register_device",
    "build_sdf",
    "build_conventional",
    "sdf_spec",
    "HUAWEI_GEN3_SPEC",
    "INTEL_320_SPEC",
    "MEMBLAZE_Q520_SPEC",
]

"""The conventional-SSD baseline (paper Figure 5a / Figure 6a).

One controller fronts every channel: the logical space is striped in
small units across channels, a page-mapped FTL with over-provisioning
runs garbage collection, writes are acknowledged from a DRAM write-back
buffer, and requests traverse the kernel I/O stack.

The controller's per-request and per-page processing costs are the
calibration knobs that reproduce each commodity device's measured
sequential bandwidth envelope (Table 1 / Table 4); the *behavioural*
effects -- GC interference, buffer-full latency spikes, striping
overheads -- emerge from the flash engines and FTL underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.channel.engine import build_engines
from repro.devices.base import DeviceStats, base_device_metrics, register_device_metrics
from repro.ftl.ops import FlashOp
from repro.ftl.page_ftl import PageFTL
from repro.interfaces.iostack import IOStackModel, KERNEL_IO_STACK
from repro.interfaces.link import HostLink, LinkSpec, PCIE_1_1_X8
from repro.nand.array import FlashArray
from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY
from repro.nand.geometry import FlashGeometry, scaled_count
from repro.nand.timing import NandTiming
from repro.sim import AllOf, Container, Resource, Simulator, Store
from repro.sim.stats import ThroughputMeter


@dataclass(frozen=True)
class ConventionalSSDSpec:
    """Static configuration of one conventional SSD model."""

    name: str
    n_channels: int
    chips_per_channel: int
    geometry: FlashGeometry
    timing: NandTiming
    link: LinkSpec = PCIE_1_1_X8
    iostack: IOStackModel = KERNEL_IO_STACK
    op_ratio: float = 0.25
    stripe_pages: int = 1
    parity_group_size: Optional[int] = None
    dram_buffer_bytes: int = 1 << 30  # Huawei Gen3: 1 GB on-board DRAM
    #: Controller processing costs (the Table 4 calibration knobs).
    controller_request_ns: int = 2_200
    controller_read_ns_per_page: int = 6_700
    controller_write_ns_per_page: int = 12_200
    #: Outstanding flash programs the controller keeps in flight while
    #: draining the write buffer; 0 = auto (2x the number of planes).
    flush_workers: int = 0
    #: Controller scheduling degradation under high read concurrency
    #: (paper S3.3.1/S3.3.2: "the scheduling overhead may increase and
    #: the service time of unsynchronized requests at different channels
    #: may increase some requests' service time").  Up to
    #: ``congestion_free_requests`` open reads are handled at full speed
    #: (the Table 4 async-microbenchmark regime); past that the per-page
    #: cost grows linearly with a slope of 1/``congestion_knee_requests``,
    #: saturating at the max factor.
    congestion_free_requests: int = 64
    congestion_knee_requests: int = 192
    congestion_max_factor: float = 2.0

    def scaled(self, capacity_factor: float) -> "ConventionalSSDSpec":
        """Same device with ``blocks_per_plane`` scaled down -- used by
        tests/benches to shrink simulated capacity, not behaviour."""
        return replace(self, geometry=self.geometry.scaled(capacity_factor))


class ConventionalSSD:
    """Timed conventional SSD built on :class:`~repro.ftl.page_ftl.PageFTL`."""

    #: Registry kind; also the ``device.{kind}.*`` metric prefix.
    kind = "conventional"

    def __init__(
        self,
        sim: Simulator,
        spec: ConventionalSSDSpec,
        store_data: bool = False,
        mode: Optional[str] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.array = FlashArray(
            channels=spec.n_channels,
            chips_per_channel=spec.chips_per_channel,
            geometry=spec.geometry,
            timing=spec.timing,
        )
        self.ftl = self._make_ftl(spec, store_data)
        self.engines = build_engines(
            sim,
            spec.n_channels,
            spec.geometry,
            spec.timing,
            spec.chips_per_channel,
            mode=mode,
        )
        self.link = HostLink(sim, spec.link)
        self.controller = Resource(sim, capacity=1)
        self.stats = DeviceStats(spec.name)
        #: Flash-side write progress: one sample per page as it is
        #: programmed (smooth, unlike request-completion accounting).
        self.flush_meter = ThroughputMeter(f"{spec.name}.flush")
        self._open_reads = 0
        self._buffer: Optional[Container] = None
        self._flush_queue: Optional[Store] = None
        #: lpn -> buffered payloads not yet programmed (newest last).
        #: Reads must serve these: a write acks from DRAM, so the FTL
        #: alone can be stale (or unmapped) until the flusher lands it.
        self._pending_pages: Dict[int, List] = {}
        if spec.dram_buffer_bytes > 0:
            self._buffer = Container(sim, capacity=spec.dram_buffer_bytes)
            self._flush_queue = Store(sim)
            workers = spec.flush_workers
            if workers <= 0:
                workers = 2 * spec.n_channels * (
                    spec.chips_per_channel * spec.geometry.planes_per_chip
                )
            for _ in range(workers):
                sim.process(self._flusher())

    def _make_ftl(self, spec: ConventionalSSDSpec, store_data: bool):
        """FTL factory hook; zoo backends override to swap the design."""
        return PageFTL(
            self.array,
            op_ratio=spec.op_ratio,
            stripe_pages=spec.stripe_pages,
            parity_group_size=spec.parity_group_size,
            store_data=store_data,
        )

    def _request_controller(self, lpn: int) -> Resource:
        """Controller serving request-level admission for ``lpn``."""
        return self.controller

    def _page_controller(self, lpn: int) -> Resource:
        """Controller charging the per-page processing cost for ``lpn``."""
        return self.controller

    # -- geometry ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        """Bytes in one flash page."""
        return self.spec.geometry.page_size

    @property
    def user_pages(self) -> int:
        """Logical pages exposed to the host."""
        return self.ftl.user_pages

    @property
    def user_bytes(self) -> int:
        """Bytes of user-visible capacity."""
        return self.ftl.user_bytes

    @property
    def raw_bytes(self) -> int:
        """Raw flash capacity in bytes."""
        return self.array.raw_bytes

    @property
    def capacity_utilization(self) -> float:
        """user bytes / raw bytes."""
        return self.user_bytes / self.raw_bytes

    @property
    def buffer_level(self) -> float:
        """Bytes currently held in the DRAM write buffer."""
        return self._buffer.level if self._buffer is not None else 0.0

    # -- timed operations (generators) --------------------------------------------------
    def read(self, lpn: int, n_pages: int = 1):
        """Read ``n_pages`` starting at ``lpn``; returns payload list."""
        if n_pages < 1:
            raise ValueError("n_pages must be >= 1")
        sim = self.sim
        start = sim.now
        self._open_reads += 1
        yield sim.timeout(self.spec.iostack.submit_ns)
        with self._request_controller(lpn).request() as hold:
            yield hold
            yield sim.timeout(self.spec.controller_request_ns)
        payloads: List = [None] * n_pages
        workers = [
            sim.process(self._read_one_page(lpn + index, payloads, index))
            for index in range(n_pages)
        ]
        yield AllOf(sim, workers)
        nbytes = n_pages * self.page_size
        yield sim.timeout(self.spec.iostack.complete_ns)
        self._open_reads -= 1
        self.stats.note_read(sim.now, nbytes, sim.now - start)
        return payloads

    def _read_one_page(self, lpn: int, out: List, index: int):
        excess = max(0, self._open_reads - self.spec.congestion_free_requests)
        congestion = min(
            self.spec.congestion_max_factor,
            1.0 + excess / self.spec.congestion_knee_requests,
        )
        with self._page_controller(lpn).request() as hold:
            yield hold
            yield self.sim.timeout(
                int(self.spec.controller_read_ns_per_page * congestion)
            )
        data, ops = self.ftl.read(lpn)
        pending = self._pending_pages.get(lpn)
        if pending:
            # The freshest copy is still in the DRAM write buffer;
            # timing is unchanged (the controller/flash work above is
            # what the request costs), only the payload is corrected.
            data = pending[-1]
        out[index] = data
        yield from self._execute_ops(ops)
        # Pages stream up to the host as they arrive (DMA overlaps flash).
        yield from self.link.transfer("read", self.page_size)

    def write(self, lpn: int, n_pages: int = 1, data=None):
        """Write ``n_pages`` starting at ``lpn``.

        With a DRAM buffer the request completes once the data is
        buffered (write-back); background flushers move it to flash.
        Without one, the request waits for the flash programs.
        """
        if n_pages < 1:
            raise ValueError("n_pages must be >= 1")
        sim = self.sim
        start = sim.now
        yield sim.timeout(self.spec.iostack.submit_ns)
        nbytes = n_pages * self.page_size
        with self._request_controller(lpn).request() as hold:
            yield hold
            yield sim.timeout(self.spec.controller_request_ns)
        # Data streams over the wire page by page and lands in the DRAM
        # buffer (or goes straight to flash) as it arrives, so long
        # requests do not stall the whole drain pipeline behind one DMA.
        for index in range(n_pages):
            yield from self.link.transfer("write", self.page_size)
            if self._buffer is not None:
                yield self._buffer.put(self.page_size)
                self._pending_pages.setdefault(lpn + index, []).append(data)
                yield self._flush_queue.put((lpn + index, data))
            else:
                yield from self._write_one_page(lpn + index, data)
        yield sim.timeout(self.spec.iostack.complete_ns)
        self.stats.note_write(sim.now, nbytes, sim.now - start)

    def _write_one_page(self, lpn: int, data):
        with self._page_controller(lpn).request() as hold:
            yield hold
            yield self.sim.timeout(self.spec.controller_write_ns_per_page)
        ops = self.ftl.write(lpn, data)
        yield from self._execute_ops(ops)
        self.flush_meter.record(self.sim.now, self.page_size)

    def _flusher(self):
        """Background worker draining the DRAM buffer into flash."""
        while True:
            lpn, data = yield self._flush_queue.get()
            yield from self._write_one_page(lpn, data)
            # The FTL now maps this copy; drop the oldest buffered one
            # (newer buffered writes of the lpn keep shadowing the FTL).
            pending = self._pending_pages.get(lpn)
            if pending:
                pending.pop(0)
                if not pending:
                    del self._pending_pages[lpn]
            yield self._buffer.get(self.page_size)

    def _execute_ops(self, ops: List[FlashOp]):
        """Run a batch of physical ops, grouped per channel, in parallel.

        Each per-channel group goes through ``execute_batch``: one
        completion event per channel on the timeline fast path, the
        process-per-op generator path otherwise.
        """
        if not ops:
            return
        by_channel: dict = {}
        for op in ops:
            by_channel.setdefault(op.channel, []).append(op)
        processes = [
            self.sim.process(self.engines[channel].execute_batch(channel_ops))
            for channel, channel_ops in by_channel.items()
        ]
        yield AllOf(self.sim, processes)

    def drain(self):
        """Generator: wait until the write buffer is fully flushed."""
        if self._buffer is None:
            return
        while self._buffer.level > 0 or len(self._flush_queue) > 0:
            yield self.sim.timeout(1_000_000)

    # -- observability --------------------------------------------------------------------
    def device_metrics(self) -> dict:
        """The uniform zoo metric snapshot (see ``repro.devices.base``)."""
        ftl = self.ftl
        return base_device_metrics(
            write_amplification=ftl.write_amplification,
            host_programs=ftl.user_programs,
            gc_programs=ftl.gc_programs,
            gc_runs=ftl.gc_runs,
            erases=ftl.erases,
        )

    def attach_metrics(self, registry) -> None:
        """Register ``device.{kind}.*`` pull metrics."""
        register_device_metrics(registry, self)

    # -- functional helpers ---------------------------------------------------------------
    def prefill(self, fraction: float = 1.0, payload=None) -> int:
        """Functionally fill user space (no simulated time)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        n_lpns = scaled_count(self.user_pages * fraction)
        for lpn in range(n_lpns):
            self.ftl.write(lpn, payload)
        return n_lpns

    def __repr__(self):
        return (
            f"ConventionalSSD({self.spec.name!r}, "
            f"channels={self.spec.n_channels}, "
            f"user={self.user_bytes / 2**30:.0f} GiB)"
        )

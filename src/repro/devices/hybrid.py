"""Hybrid log-block FTL (BAST-style; SNIPPETS.md's hmftl is the idiom).

Most of the logical space is **block-mapped**: a logical block lives in
one physical block with pages in place, so the mapping table is tiny.
Updates that would violate in-place page order land in a small, shared,
page-mapped pool of **log blocks**.  When the pool is exhausted the FTL
merges the oldest log block back into data blocks:

* **switch merge** -- the log block holds one logical block fully and
  sequentially: swap it in as the data block (1 erase);
* **partial merge** -- the log holds the sequential continuation of a
  partially-written data block: append those pages in place
  (m reads + m programs + 1 erase);
* **full merge** -- the general case: rebuild the logical block from
  the freshest copy of every page (up to ``pages_per_block`` reads +
  programs + 2 erases).

Merge traffic is the hybrid design's write amplification: sequential
workloads ride switch merges at WA ~1, random small updates degenerate
into full merges.  Logical blocks stripe across channels round-robin;
free blocks come from the same per-plane min-wear pools
(:class:`~repro.ftl.wear.FreeBlockPool`) the other FTLs use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.devices.base import base_device_metrics
from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.ftl.ops import FlashOp, erase_op, program_op, read_op
from repro.ftl.page_ftl import OutOfSpaceError
from repro.ftl.wear import FreeBlockPool
from repro.nand.array import FlashArray, PhysicalAddress
from repro.nand.geometry import scaled_count


@dataclass(frozen=True)
class HybridSpec(ConventionalSSDSpec):
    """A conventional-SSD spec plus the log-block pool bound."""

    #: Page-mapped log blocks each channel may hold before merging.
    log_blocks_per_channel: int = 4


class _LogBlock:
    """One page-mapped log block: an append frontier plus its entries."""

    __slots__ = ("flat_block", "wp", "entries")

    def __init__(self, flat_block: int):
        self.flat_block = flat_block
        self.wp = 0
        #: Append order: (lbn, offset) per programmed page.
        self.entries: List[Tuple[int, int]] = []


class HybridLogBlockFTL:
    """Block-mapped FTL with a bounded shared log-block pool."""

    def __init__(
        self,
        array: FlashArray,
        op_ratio: float = 0.25,
        log_blocks_per_channel: int = 4,
        store_data: bool = True,
    ):
        if not 0.0 <= op_ratio < 1.0:
            raise ValueError(f"op_ratio {op_ratio} outside [0, 1)")
        if log_blocks_per_channel < 1:
            raise ValueError("log_blocks_per_channel must be >= 1")
        self.array = array
        self.op_ratio = op_ratio
        self.log_limit = log_blocks_per_channel
        self.store_data = store_data
        geo = array.geometry
        self.pages_per_block = geo.pages_per_block

        blocks_per_channel = array.planes_per_channel * geo.blocks_per_plane
        # Block-mapped user space: OP covers the log pool and the merge
        # spares (a full merge allocates before it erases).
        usable = scaled_count(blocks_per_channel * (1.0 - op_ratio))
        self.data_lbns_per_channel = min(
            usable, blocks_per_channel - log_blocks_per_channel - 2
        )
        if self.data_lbns_per_channel < 1:
            raise ValueError("configuration leaves no user capacity")
        self.n_lbns = self.data_lbns_per_channel * array.n_channels
        self.user_pages = self.n_lbns * geo.pages_per_block

        self._pools: Dict[Tuple[int, int], FreeBlockPool] = {}
        for channel in range(array.n_channels):
            for plane_index in range(array.planes_per_channel):
                chip = plane_index // geo.planes_per_chip
                plane = plane_index % geo.planes_per_chip
                blocks = [
                    array.flat_block(
                        PhysicalAddress(channel, chip, plane, block)
                    )
                    for block in range(geo.blocks_per_plane)
                ]
                self._pools[(channel, plane_index)] = FreeBlockPool(blocks)
        self._plane_rr: Dict[int, int] = {c: 0 for c in range(array.n_channels)}
        #: lbn -> in-place physical block / its sequential write pointer.
        self._data_block: Dict[int, int] = {}
        self._data_wp: Dict[int, int] = {}
        #: Per-channel log pool, oldest first.
        self._logs: Dict[int, List[_LogBlock]] = {
            c: [] for c in range(array.n_channels)
        }
        #: lpn -> (flat_block, page) of its freshest copy.
        self._loc: Dict[int, Tuple[int, int]] = {}
        self._store: Dict[int, object] = {}

        self.user_programs = 0
        self.merge_programs = 0
        self.merge_reads = 0
        self.erases = 0
        self.full_merges = 0
        self.partial_merges = 0
        self.switch_merges = 0

    # -- layout -------------------------------------------------------------------
    @property
    def user_bytes(self) -> int:
        """Bytes of user-visible capacity."""
        return self.user_pages * self.array.geometry.page_size

    def channel_of_lpn(self, lpn: int) -> int:
        """Block-granular striping: which channel serves this page."""
        return (lpn // self.pages_per_block) % self.array.n_channels

    @property
    def merges(self) -> int:
        """Log-block merges of any flavour."""
        return self.full_merges + self.partial_merges + self.switch_merges

    @property
    def total_programs(self) -> int:
        """Page programs across every chip."""
        return self.user_programs + self.merge_programs

    @property
    def write_amplification(self) -> float:
        """(all programs) / (user programs); 1.0 is the ideal."""
        if self.user_programs == 0:
            return 1.0
        return self.total_programs / self.user_programs

    # -- public operations ------------------------------------------------------------
    def write(self, lpn: int, data=None) -> List[FlashOp]:
        """Write one logical page; returns every physical op performed
        (including any merge traffic it triggered)."""
        self._check_lpn(lpn)
        lbn, offset = divmod(lpn, self.pages_per_block)
        channel = lbn % self.array.n_channels
        ops: List[FlashOp] = []
        self._loc.pop(lpn, None)  # overwrite invalidates the old copy
        if lbn not in self._data_block and offset == 0:
            ops.extend(self._merge_if_needed(channel, want_data_block=True))
            self._data_block[lbn] = self._allocate(channel)
            self._data_wp[lbn] = 0
        if (
            lbn in self._data_block
            and offset == self._data_wp[lbn]
        ):
            flat = self._data_block[lbn]
            page = offset
            self._data_wp[lbn] = offset + 1
        else:
            log, merge_ops = self._active_log(channel)
            ops.extend(merge_ops)
            flat, page = log.flat_block, log.wp
            log.wp += 1
            log.entries.append((lpn // self.pages_per_block, offset))
        self._loc[lpn] = (flat, page)
        if self.store_data:
            self._store[lpn] = data
        self.user_programs += 1
        ops.append(
            program_op(self._address(flat, page), self.array.geometry.page_size)
        )
        return ops

    def read(self, lpn: int) -> Tuple[object, List[FlashOp]]:
        """Read one logical page; (payload, physical ops)."""
        self._check_lpn(lpn)
        location = self._loc.get(lpn)
        if location is None:
            return None, []
        flat, page = location
        data = self._store.get(lpn) if self.store_data else None
        return data, [
            read_op(self._address(flat, page), self.array.geometry.page_size)
        ]

    def trim(self, lpn: int) -> None:
        """Drop the mapping for a logical page (TRIM)."""
        self._check_lpn(lpn)
        self._loc.pop(lpn, None)
        self._store.pop(lpn, None)

    # -- internals ------------------------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"lpn {lpn} outside [0, {self.user_pages})")

    def _address(self, flat_block: int, page: int) -> PhysicalAddress:
        return self.array.unpack_block(flat_block).with_page(page)

    def _allocate(self, channel: int) -> int:
        """A fresh min-wear block, rotating the channel's planes."""
        planes = self.array.planes_per_channel
        for _ in range(planes):
            plane_index = self._plane_rr[channel] % planes
            self._plane_rr[channel] += 1
            pool = self._pools[(channel, plane_index)]
            if len(pool) > 0:
                return pool.allocate()
        raise OutOfSpaceError(f"channel {channel} has no free blocks")

    def _release(self, channel: int, flat_block: int) -> List[FlashOp]:
        """Erase a block and return it to its plane's wear pool."""
        addr = self.array.unpack_block(flat_block)
        self.erases += 1
        plane_index = (
            addr.chip * self.array.geometry.planes_per_chip + addr.plane
        )
        self._pools[(channel, plane_index)].release(flat_block)
        return [erase_op(addr, internal=True)]

    def _free_blocks(self, channel: int) -> int:
        return sum(
            len(self._pools[(channel, plane)])
            for plane in range(self.array.planes_per_channel)
        )

    def _merge_if_needed(
        self, channel: int, want_data_block: bool = False
    ) -> List[FlashOp]:
        """Merge the oldest log block when allocation headroom runs out."""
        ops: List[FlashOp] = []
        # A full merge mid-flight needs one spare block beyond this
        # allocation, so keep two blocks of headroom.
        while self._free_blocks(channel) < 2 and self._logs[channel]:
            ops.extend(self._merge_log_block(channel))
        if want_data_block and self._free_blocks(channel) == 0:
            raise OutOfSpaceError(f"channel {channel} has no free blocks")
        return ops

    def _active_log(self, channel: int) -> Tuple[_LogBlock, List[FlashOp]]:
        """The log block accepting appends, merging the oldest if the
        pool is full-and-exhausted."""
        ops: List[FlashOp] = []
        logs = self._logs[channel]
        if logs and logs[-1].wp < self.pages_per_block:
            return logs[-1], ops
        while len(logs) >= self.log_limit or self._free_blocks(channel) < 2:
            if not logs:
                raise OutOfSpaceError(
                    f"channel {channel} cannot open a log block"
                )
            ops.extend(self._merge_log_block(channel))
        log = _LogBlock(self._allocate(channel))
        logs.append(log)
        return log, ops

    def _merge_log_block(self, channel: int) -> List[FlashOp]:
        """Merge the channel's oldest log block back into data blocks."""
        log = self._logs[channel].pop(0)
        ops: List[FlashOp] = []
        # Logical blocks with *valid* pages still living in this log.
        victims: List[int] = []
        valid_of: Dict[int, List[Tuple[int, int]]] = {}
        for page, (lbn, offset) in enumerate(log.entries):
            lpn = lbn * self.pages_per_block + offset
            if self._loc.get(lpn) == (log.flat_block, page):
                if lbn not in valid_of:
                    valid_of[lbn] = []
                    victims.append(lbn)
                valid_of[lbn].append((offset, page))
        if self._try_switch_merge(channel, log, victims, valid_of, ops):
            return ops
        for lbn in victims:
            if self._try_partial_merge(channel, lbn, log, valid_of[lbn], ops):
                continue
            self._full_merge(channel, lbn, ops)
        ops.extend(self._release(channel, log.flat_block))
        return ops

    def _try_switch_merge(
        self,
        channel: int,
        log: _LogBlock,
        victims: List[int],
        valid_of: Dict[int, List[Tuple[int, int]]],
        ops: List[FlashOp],
    ) -> bool:
        """The log block holds exactly one lbn, fully and in order:
        promote it to the data block (no data movement at all)."""
        if len(victims) != 1:
            return False
        lbn = victims[0]
        pairs = valid_of[lbn]
        if len(pairs) != self.pages_per_block:
            return False
        if any(offset != page for offset, page in pairs):
            return False
        old = self._data_block.pop(lbn, None)
        if old is not None:
            ops.extend(self._release(channel, old))
        self._data_block[lbn] = log.flat_block
        self._data_wp[lbn] = self.pages_per_block
        self.switch_merges += 1
        return True

    def _try_partial_merge(
        self,
        channel: int,
        lbn: int,
        log: _LogBlock,
        pairs: List[Tuple[int, int]],
        ops: List[FlashOp],
    ) -> bool:
        """The log holds the sequential continuation of the data block:
        copy those pages in place and keep the data block."""
        data_block = self._data_block.get(lbn)
        if data_block is None:
            return False
        wp = self._data_wp[lbn]
        # The data block prefix must be fully live in place...
        base = lbn * self.pages_per_block
        for offset in range(wp):
            if self._loc.get(base + offset) != (data_block, offset):
                return False
        # ...and the log must hold exactly the next offsets, in order.
        expected = list(range(wp, wp + len(pairs)))
        if [offset for offset, _page in pairs] != expected:
            return False
        # Every remaining offset of the lbn must be unwritten.
        for offset in range(wp + len(pairs), self.pages_per_block):
            if base + offset in self._loc:
                return False
        geo = self.array.geometry
        for offset, page in pairs:
            ops.append(
                read_op(
                    self._address(log.flat_block, page),
                    geo.page_size,
                    internal=True,
                )
            )
            self.merge_reads += 1
            ops.append(
                program_op(
                    self._address(data_block, offset),
                    geo.page_size,
                    internal=True,
                )
            )
            self.merge_programs += 1
            self._loc[base + offset] = (data_block, offset)
        self._data_wp[lbn] = wp + len(pairs)
        self.partial_merges += 1
        return True

    def _full_merge(self, channel: int, lbn: int, ops: List[FlashOp]) -> None:
        """Rebuild the logical block from the freshest copy of each page."""
        geo = self.array.geometry
        fresh = self._allocate(channel)
        base = lbn * self.pages_per_block
        wp = 0
        for offset in range(self.pages_per_block):
            location = self._loc.get(base + offset)
            if location is None:
                continue
            flat, page = location
            ops.append(
                read_op(self._address(flat, page), geo.page_size, internal=True)
            )
            self.merge_reads += 1
            ops.append(
                program_op(
                    self._address(fresh, wp), geo.page_size, internal=True
                )
            )
            self.merge_programs += 1
            self._loc[base + offset] = (fresh, wp)
            wp += 1
        old = self._data_block.pop(lbn, None)
        if old is not None:
            ops.extend(self._release(channel, old))
        self._data_block[lbn] = fresh
        # The rebuilt block is compact, not offset-addressed: further
        # in-place appends would collide, so route updates via the log.
        self._data_wp[lbn] = self.pages_per_block
        self.full_merges += 1


class HybridDevice(ConventionalSSD):
    """A conventional SSD running the hybrid log-block FTL."""

    kind = "hybrid"

    def _make_ftl(self, spec: ConventionalSSDSpec, store_data: bool):
        return HybridLogBlockFTL(
            self.array,
            op_ratio=spec.op_ratio,
            log_blocks_per_channel=getattr(spec, "log_blocks_per_channel", 4),
            store_data=store_data,
        )

    def device_metrics(self) -> dict:
        ftl = self.ftl
        return base_device_metrics(
            write_amplification=ftl.write_amplification,
            host_programs=ftl.user_programs,
            gc_programs=ftl.merge_programs,
            gc_runs=ftl.merges,
            merges=ftl.merges,
            erases=ftl.erases,
        )

"""The device zoo: concrete drives plus the spec-driven factory.

The paper's hardware (Tables 1-4) lives here as specs -- controller
costs for the commodity baselines are calibrated against the paper's
own measurements (Table 4's request-size sweep fits a per-request +
per-page cost model almost exactly; see EXPERIMENTS.md).  The SDF has
no controller knobs: its numbers emerge from the channel engines, the
link, and the thin software stack alone.

Every backend -- SDF, conventional page-mapped, DFTL, hybrid log-block,
multi-queue, zoned -- registers under a string ``kind`` and is built
through one door::

    device = build_device("dftl", sim, capacity_scale=0.01, cmt_pages=8)

or declaratively via :class:`DeviceSpec`, which pickles/compares
cleanly for scenario configs::

    spec = DeviceSpec("sdf", {"n_channels": 8})
    device = spec.build(sim)

The legacy ``build_sdf`` / ``build_conventional`` entry points survive
as :class:`DeprecationWarning` shims over ``build_device`` so old
call sites keep working while CI's ``-W error::DeprecationWarning``
leg keeps new code off them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.devices.dftl import DFTLDevice, DFTLSpec
from repro.devices.hybrid import HybridDevice, HybridSpec
from repro.devices.mqftl import MQFTLDevice
from repro.devices.sdf import SDFDevice
from repro.devices.zoned import ZonedDevice
from repro.errors import ConfigError
from repro.interfaces.iostack import KERNEL_IO_STACK
from repro.interfaces.link import PCIE_1_1_X8, SATA_2_0
from repro.nand.catalog import (
    HIGH_END_CHIP_GEOMETRY,
    INTEL_25NM_MLC,
    INTEL_320_CHIP_GEOMETRY,
    MICRON_25NM_MLC,
    MICRON_34NM_MLC,
    SDF_CHIP_GEOMETRY,
)
from repro.sim import Simulator

#: Huawei Gen3 -- the SDF's hardware predecessor: identical flash and
#: channel count, but a conventional architecture (Table 3 + S3.1:
#: 8 KB striping over 44 channels, 25% OP, 1 GB DRAM buffer, channel
#: parity, kernel I/O stack).
HUAWEI_GEN3_SPEC = ConventionalSSDSpec(
    name="huawei-gen3",
    n_channels=44,
    chips_per_channel=2,
    geometry=SDF_CHIP_GEOMETRY,
    timing=MICRON_25NM_MLC,
    link=PCIE_1_1_X8,
    iostack=KERNEL_IO_STACK,
    op_ratio=0.25,
    stripe_pages=1,  # 8 KB striping unit
    parity_group_size=11,  # 10 data + 1 parity channels
    dram_buffer_bytes=1 << 30,
    controller_request_ns=2_200,
    controller_read_ns_per_page=6_700,  # -> ~1.2 GB/s stream ceiling
    controller_write_ns_per_page=12_200,  # -> ~0.67 GB/s stream ceiling
)

#: Intel 320 -- the low-end SATA drive (Table 1: 10 channels, 25 nm MLC;
#: S3.1: 160 GB with 12.5% reserved).
INTEL_320_SPEC = ConventionalSSDSpec(
    name="intel-320",
    n_channels=10,
    chips_per_channel=2,
    geometry=INTEL_320_CHIP_GEOMETRY,
    timing=INTEL_25NM_MLC,
    link=SATA_2_0,
    iostack=KERNEL_IO_STACK,
    op_ratio=0.125,
    stripe_pages=1,
    parity_group_size=10,
    dram_buffer_bytes=64 << 20,
    controller_request_ns=11_800,
    controller_read_ns_per_page=36_400,  # -> ~0.22 GB/s stream ceiling
    controller_write_ns_per_page=63_000,  # -> ~0.13 GB/s stream ceiling
)

#: Memblaze Q520-class high-end PCIe drive (Table 1: 32 channels x 16
#: planes of 34 nm MLC, raw 1600/1500 MB/s, measured 1300/620).
MEMBLAZE_Q520_SPEC = ConventionalSSDSpec(
    name="memblaze-q520",
    n_channels=32,
    chips_per_channel=4,
    geometry=HIGH_END_CHIP_GEOMETRY,
    timing=MICRON_34NM_MLC,
    link=PCIE_1_1_X8,
    iostack=KERNEL_IO_STACK,
    op_ratio=0.20,
    stripe_pages=2,  # 8 KB striping with 4 KiB pages
    parity_group_size=11,
    dram_buffer_bytes=1 << 30,
    controller_request_ns=2_000,
    controller_read_ns_per_page=3_100,  # -> ~1.3 GB/s stream ceiling
    controller_write_ns_per_page=6_600,  # -> ~0.62 GB/s stream ceiling
)


def sdf_spec() -> dict:
    """The Baidu SDF configuration (Table 3), as keyword arguments."""
    return dict(
        n_channels=44,
        chips_per_channel=2,
        geometry=SDF_CHIP_GEOMETRY,
        timing=MICRON_25NM_MLC,
        link_spec=PCIE_1_1_X8,
    )


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_device(kind: str) -> Callable[[Callable], Callable]:
    """Decorator: register ``builder(sim, **spec)`` under ``kind``.

    Third-party backends can hook into ``build_device`` the same way
    the built-in zoo does; re-registering a kind raises.
    """

    def decorate(builder: Callable) -> Callable:
        if kind in _REGISTRY:
            raise ConfigError(f"device kind {kind!r} already registered")
        _REGISTRY[kind] = builder
        return builder

    return decorate


def device_kinds() -> Tuple[str, ...]:
    """The registered device kinds, sorted."""
    return tuple(sorted(_REGISTRY))


def build_device(kind: str, sim: Optional[Simulator] = None, **spec) -> Any:
    """Build any registered device behind the one-door factory.

    ``sim=None`` creates a fresh :class:`Simulator` (handy in tests);
    unknown kinds raise :class:`~repro.errors.ConfigError` naming the
    known ones.  Keyword arguments are backend-specific -- see each
    builder's docstring and DESIGN.md section 11.
    """
    try:
        builder = _REGISTRY[kind]
    except KeyError:
        raise ConfigError(
            f"unknown device kind {kind!r}; known kinds: "
            f"{', '.join(device_kinds())}"
        ) from None
    if sim is None:
        sim = Simulator()
    return builder(sim, **spec)


@dataclass(frozen=True)
class DeviceSpec:
    """A declarative, hashable (kind, params) recipe for a device.

    Lets configs (scenarios, sweeps, ablation grids) carry a device
    choice as data; ``build`` defers to :func:`build_device`.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in _REGISTRY:
            raise ConfigError(
                f"unknown device kind {self.kind!r}; known kinds: "
                f"{', '.join(device_kinds())}"
            )

    def build(self, sim: Optional[Simulator] = None) -> Any:
        """Instantiate the device this spec describes."""
        return build_device(self.kind, sim, **dict(self.params))

    def with_params(self, **updates) -> "DeviceSpec":
        """A copy with ``updates`` merged over ``params``."""
        merged = dict(self.params)
        merged.update(updates)
        return DeviceSpec(self.kind, merged)


# ---------------------------------------------------------------------------
# Built-in builders.
# ---------------------------------------------------------------------------


def _conventional_family_spec(
    spec_cls,
    spec: Optional[ConventionalSSDSpec],
    capacity_scale: float,
    extra: Dict[str, Any],
):
    """Derive a (possibly subclassed) spec for page/log-mapped builds.

    Starts from ``spec`` (default: the Huawei Gen3 drive), widens it to
    ``spec_cls`` when the backend needs extra knobs, then applies the
    capacity scale.  Scaling happens *after* widening so subclass specs
    survive ``dataclasses.replace``.
    """
    if spec is None:
        spec = HUAWEI_GEN3_SPEC
    if not isinstance(spec, spec_cls):
        base_kwargs = {
            f.name: getattr(spec, f.name) for f in fields(ConventionalSSDSpec)
        }
        spec = spec_cls(**base_kwargs, **extra)
    elif extra:
        spec = replace(spec, **extra)
    if capacity_scale != 1.0:
        spec = spec.scaled(capacity_scale)
    return spec


@register_device("sdf")
def _build_sdf(
    sim: Simulator,
    capacity_scale: float = 1.0,
    n_channels: int = 44,
    rng: Optional[np.random.Generator] = None,
    **overrides,
) -> SDFDevice:
    """A Baidu SDF, optionally with scaled-down capacity for fast runs.

    ``capacity_scale`` shrinks ``blocks_per_plane`` only; page/block
    sizes and timing -- everything bandwidth depends on -- are untouched.
    """
    kwargs = sdf_spec()
    kwargs["geometry"] = kwargs["geometry"].scaled(capacity_scale)
    kwargs["n_channels"] = n_channels
    kwargs.update(overrides)
    return SDFDevice(sim, rng=rng, **kwargs)


@register_device("conventional")
def _build_conventional(
    sim: Simulator,
    spec: ConventionalSSDSpec = HUAWEI_GEN3_SPEC,
    capacity_scale: float = 1.0,
    store_data: bool = False,
    mode: Optional[str] = None,
) -> ConventionalSSD:
    """A commodity baseline, optionally with scaled-down capacity."""
    if capacity_scale != 1.0:
        spec = spec.scaled(capacity_scale)
    return ConventionalSSD(sim, spec, store_data=store_data, mode=mode)


@register_device("dftl")
def _build_dftl(
    sim: Simulator,
    spec: Optional[ConventionalSSDSpec] = None,
    capacity_scale: float = 1.0,
    store_data: bool = False,
    mode: Optional[str] = None,
    cmt_pages: Optional[int] = None,
) -> DFTLDevice:
    """A DFTL drive: page-mapped with a bounded cached mapping table.

    ``cmt_pages=None`` keeps the spec's own bound (or the DFTLSpec
    default of 64 when widening a plain conventional spec).
    """
    extra = {} if cmt_pages is None else {"cmt_pages": cmt_pages}
    dspec = _conventional_family_spec(DFTLSpec, spec, capacity_scale, extra)
    return DFTLDevice(sim, dspec, store_data=store_data, mode=mode)


@register_device("hybrid")
def _build_hybrid(
    sim: Simulator,
    spec: Optional[ConventionalSSDSpec] = None,
    capacity_scale: float = 1.0,
    store_data: bool = False,
    mode: Optional[str] = None,
    log_blocks_per_channel: Optional[int] = None,
) -> HybridDevice:
    """A hybrid log-block (BAST-style) drive with merge costs."""
    extra = (
        {}
        if log_blocks_per_channel is None
        else {"log_blocks_per_channel": log_blocks_per_channel}
    )
    hspec = _conventional_family_spec(HybridSpec, spec, capacity_scale, extra)
    return HybridDevice(sim, hspec, store_data=store_data, mode=mode)


@register_device("mqftl")
def _build_mqftl(
    sim: Simulator,
    spec: Optional[ConventionalSSDSpec] = None,
    capacity_scale: float = 1.0,
    store_data: bool = False,
    mode: Optional[str] = None,
) -> MQFTLDevice:
    """An LFTL-style multi-queue drive: queue-per-channel controller."""
    mspec = _conventional_family_spec(
        ConventionalSSDSpec, spec, capacity_scale, {}
    )
    return MQFTLDevice(sim, mspec, store_data=store_data, mode=mode)


@register_device("zoned")
def _build_zoned(
    sim: Simulator,
    capacity_scale: float = 1.0,
    n_channels: int = 44,
    rng: Optional[np.random.Generator] = None,
    **overrides,
) -> ZonedDevice:
    """A ZNS-style zoned device over the SDF channel hardware."""
    kwargs = sdf_spec()
    kwargs["geometry"] = kwargs["geometry"].scaled(capacity_scale)
    kwargs["n_channels"] = n_channels
    kwargs.update(overrides)
    return ZonedDevice(sim, rng=rng, **kwargs)


# ---------------------------------------------------------------------------
# Deprecated entry points (kept as shims; CI's -W error leg bans new uses).
# ---------------------------------------------------------------------------


def build_sdf(
    sim: Simulator,
    capacity_scale: float = 1.0,
    n_channels: int = 44,
    rng: Optional[np.random.Generator] = None,
    **overrides,
) -> SDFDevice:
    """Deprecated: use ``build_device("sdf", sim, ...)``."""
    warnings.warn(
        "build_sdf is deprecated; use build_device('sdf', sim, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_sdf(
        sim,
        capacity_scale=capacity_scale,
        n_channels=n_channels,
        rng=rng,
        **overrides,
    )


def build_conventional(
    sim: Simulator,
    spec: ConventionalSSDSpec = HUAWEI_GEN3_SPEC,
    capacity_scale: float = 1.0,
    store_data: bool = False,
    mode: Optional[str] = None,
) -> ConventionalSSD:
    """Deprecated: use ``build_device("conventional", sim, spec=...)``."""
    warnings.warn(
        "build_conventional is deprecated; "
        "use build_device('conventional', sim, spec=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_conventional(
        sim,
        spec=spec,
        capacity_scale=capacity_scale,
        store_data=store_data,
        mode=mode,
    )

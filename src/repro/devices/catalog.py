"""The concrete devices of the paper's Tables 1-4.

Controller costs for the commodity baselines are calibrated against the
paper's own measurements (Table 4's request-size sweep fits a
per-request + per-page cost model almost exactly; see EXPERIMENTS.md).
The SDF has no controller knobs -- its numbers emerge from the channel
engines, the link, and the thin software stack alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.devices.sdf import SDFDevice
from repro.interfaces.iostack import KERNEL_IO_STACK
from repro.interfaces.link import PCIE_1_1_X8, SATA_2_0
from repro.nand.catalog import (
    HIGH_END_CHIP_GEOMETRY,
    INTEL_25NM_MLC,
    INTEL_320_CHIP_GEOMETRY,
    MICRON_25NM_MLC,
    MICRON_34NM_MLC,
    SDF_CHIP_GEOMETRY,
)
from repro.sim import Simulator

#: Huawei Gen3 -- the SDF's hardware predecessor: identical flash and
#: channel count, but a conventional architecture (Table 3 + S3.1:
#: 8 KB striping over 44 channels, 25% OP, 1 GB DRAM buffer, channel
#: parity, kernel I/O stack).
HUAWEI_GEN3_SPEC = ConventionalSSDSpec(
    name="huawei-gen3",
    n_channels=44,
    chips_per_channel=2,
    geometry=SDF_CHIP_GEOMETRY,
    timing=MICRON_25NM_MLC,
    link=PCIE_1_1_X8,
    iostack=KERNEL_IO_STACK,
    op_ratio=0.25,
    stripe_pages=1,  # 8 KB striping unit
    parity_group_size=11,  # 10 data + 1 parity channels
    dram_buffer_bytes=1 << 30,
    controller_request_ns=2_200,
    controller_read_ns_per_page=6_700,  # -> ~1.2 GB/s stream ceiling
    controller_write_ns_per_page=12_200,  # -> ~0.67 GB/s stream ceiling
)

#: Intel 320 -- the low-end SATA drive (Table 1: 10 channels, 25 nm MLC;
#: S3.1: 160 GB with 12.5% reserved).
INTEL_320_SPEC = ConventionalSSDSpec(
    name="intel-320",
    n_channels=10,
    chips_per_channel=2,
    geometry=INTEL_320_CHIP_GEOMETRY,
    timing=INTEL_25NM_MLC,
    link=SATA_2_0,
    iostack=KERNEL_IO_STACK,
    op_ratio=0.125,
    stripe_pages=1,
    parity_group_size=10,
    dram_buffer_bytes=64 << 20,
    controller_request_ns=11_800,
    controller_read_ns_per_page=36_400,  # -> ~0.22 GB/s stream ceiling
    controller_write_ns_per_page=63_000,  # -> ~0.13 GB/s stream ceiling
)

#: Memblaze Q520-class high-end PCIe drive (Table 1: 32 channels x 16
#: planes of 34 nm MLC, raw 1600/1500 MB/s, measured 1300/620).
MEMBLAZE_Q520_SPEC = ConventionalSSDSpec(
    name="memblaze-q520",
    n_channels=32,
    chips_per_channel=4,
    geometry=HIGH_END_CHIP_GEOMETRY,
    timing=MICRON_34NM_MLC,
    link=PCIE_1_1_X8,
    iostack=KERNEL_IO_STACK,
    op_ratio=0.20,
    stripe_pages=2,  # 8 KB striping with 4 KiB pages
    parity_group_size=11,
    dram_buffer_bytes=1 << 30,
    controller_request_ns=2_000,
    controller_read_ns_per_page=3_100,  # -> ~1.3 GB/s stream ceiling
    controller_write_ns_per_page=6_600,  # -> ~0.62 GB/s stream ceiling
)


def sdf_spec() -> dict:
    """The Baidu SDF configuration (Table 3), as keyword arguments."""
    return dict(
        n_channels=44,
        chips_per_channel=2,
        geometry=SDF_CHIP_GEOMETRY,
        timing=MICRON_25NM_MLC,
        link_spec=PCIE_1_1_X8,
    )


def build_sdf(
    sim: Simulator,
    capacity_scale: float = 1.0,
    n_channels: int = 44,
    rng: Optional[np.random.Generator] = None,
    **overrides,
) -> SDFDevice:
    """A Baidu SDF, optionally with scaled-down capacity for fast runs.

    ``capacity_scale`` shrinks ``blocks_per_plane`` only; page/block
    sizes and timing -- everything bandwidth depends on -- are untouched.
    """
    kwargs = sdf_spec()
    kwargs["geometry"] = kwargs["geometry"].scaled(capacity_scale)
    kwargs["n_channels"] = n_channels
    kwargs.update(overrides)
    return SDFDevice(sim, rng=rng, **kwargs)


def build_conventional(
    sim: Simulator,
    spec: ConventionalSSDSpec = HUAWEI_GEN3_SPEC,
    capacity_scale: float = 1.0,
    store_data: bool = False,
    mode: Optional[str] = None,
) -> ConventionalSSD:
    """A commodity baseline, optionally with scaled-down capacity."""
    if capacity_scale != 1.0:
        spec = spec.scaled(capacity_scale)
    return ConventionalSSD(sim, spec, store_data=store_data, mode=mode)

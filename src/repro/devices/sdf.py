"""The SDF device (paper Figure 2/5b).

An :class:`SDFDevice` bundles:

* one :class:`~repro.ftl.block_ftl.ChannelBlockFTL` and one
  :class:`~repro.channel.engine.ChannelEngine` per channel;
* a shared PCIe link and interrupt coalescer;
* the ultra-thin user-space I/O stack.

Each channel is exposed to software as an independent
:class:`SDFChannelDevice` (``/dev/sda0`` .. ``/dev/sda43``) with the
asymmetric interface: reads at 8 KB page granularity, writes and erases
at the 8 MB logical-block granularity, erase as an explicit host
command.

All operation methods are *generators* meant to run inside simulation
processes::

    payloads = yield from device.channels[3].read(block, 0, n_pages=2)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.engine import ChannelEngine, build_engines
from repro.devices.base import DeviceStats, base_device_metrics, register_device_metrics
from repro.ftl.block_ftl import ChannelBlockFTL
from repro.ftl.ops import OpKind
from repro.interfaces.interrupts import InterruptCoalescer
from repro.interfaces.iostack import IOStackModel, SDF_USER_SPACE_STACK
from repro.interfaces.link import HostLink, LinkSpec, PCIE_1_1_X8
from repro.nand.array import FlashArray
from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY
from repro.nand.geometry import FlashGeometry, scaled_count
from repro.nand.timing import NandTiming
from repro.sim import AllOf, Container, Event, Simulator


class SDFChannelDevice:
    """One exposed channel: an independent block device."""

    def __init__(self, device: "SDFDevice", channel: int):
        self.device = device
        self.channel = channel
        self.ftl: ChannelBlockFTL = device.ftls[channel]
        self.engine: ChannelEngine = device.engines[channel]

    # -- geometry ---------------------------------------------------------------
    @property
    def n_logical_blocks(self) -> int:
        """Logical (8 MB) blocks exposed by this channel."""
        return self.ftl.n_logical_blocks

    @property
    def logical_block_bytes(self) -> int:
        """Bytes in one logical block."""
        return self.ftl.logical_block_bytes

    @property
    def pages_per_logical_block(self) -> int:
        """Pages in one logical block."""
        return self.ftl.pages_per_logical_block

    @property
    def page_size(self) -> int:
        """Bytes in one flash page."""
        return self.device.array.geometry.page_size

    # -- timed operations (generators) ----------------------------------------------
    #: Pages the DDR3 staging buffer holds ahead of the flash programs.
    WRITE_WINDOW_PAGES = 16

    def read(self, logical_block: int, page_offset: int = 0, n_pages: int = 1):
        """Read ``n_pages`` 8 KB pages; returns the list of payloads.

        Pages stream up the PCIe link as they come off the channel bus
        (the board's DDR3 staging buffers decouple the two), so the DMA
        overlaps the flash reads instead of trailing them.
        """
        if self.device.fast_path_ok():
            return self._read_fast(logical_block, page_offset, n_pages)
        return self._read_gen(logical_block, page_offset, n_pages)

    def _read_gen(self, logical_block: int, page_offset: int, n_pages: int):
        device = self.device
        sim = device.sim
        start = sim.now
        yield sim.timeout(device.iostack.submit_ns)
        payloads, ops = self.ftl.read(logical_block, page_offset, n_pages)
        if ops:
            page_size = self.page_size

            def page_read(op):
                yield from self.engine.execute(op)
                yield from device.link.transfer("read", page_size)

            workers = [sim.process(page_read(op)) for op in ops]
            yield AllOf(sim, workers)
        nbytes = n_pages * self.page_size
        yield sim.timeout(device.interrupts.on_completion())
        yield sim.timeout(device.iostack.complete_ns)
        device.stats.note_read(sim.now, nbytes, sim.now - start)
        return payloads

    def _read_fast(self, logical_block: int, page_offset: int, n_pages: int):
        """Timeline-scheduled read: per page, one engine chain plus one
        link-DMA completion callback instead of a process."""
        device = self.device
        sim = device.sim
        engine = self.engine
        link = device.link
        start = sim.now
        yield sim.timeout(device.iostack.submit_ns)
        payloads, ops = self.ftl.read(logical_block, page_offset, n_pages)
        if ops:
            page_size = self.page_size
            meter = link.read_meter
            done = Event(sim)
            remaining = [len(ops)]

            def landed():
                # One page's DMA finished (the slow path's meter.record
                # at transfer end, then worker completion).
                meter.record(sim.now, page_size)
                remaining[0] -= 1
                if not remaining[0]:
                    done.succeed()

            def stream():
                # Runs at one op's bus-phase end: start its DMA.
                link.reserve_call("read", page_size, landed)

            for op in ops:
                engine.execute_fast(op, stream)
            yield done
        nbytes = n_pages * self.page_size
        yield sim.timeout(device.interrupts.on_completion())
        yield sim.timeout(device.iostack.complete_ns)
        device.stats.note_read(sim.now, nbytes, sim.now - start)
        return payloads

    def write(self, logical_block: int, pages: Optional[Sequence] = None):
        """Write one full 8 MB logical block.

        ``pages`` must supply every page payload (or None for a sized
        placeholder write, the common case in performance runs).
        """
        if self.device.fast_path_ok():
            return self._write_fast(logical_block, pages)
        return self._write_gen(logical_block, pages)

    def _write_gen(self, logical_block: int, pages: Optional[Sequence]):
        device = self.device
        sim = device.sim
        start = sim.now
        if pages is None:
            pages = [None] * self.pages_per_logical_block
        yield sim.timeout(device.iostack.submit_ns)
        nbytes = len(pages) * self.page_size
        ops = self.ftl.write(logical_block, pages)
        page_size = self.page_size
        # Bounded streaming window: the DDR3 staging buffer holds a few
        # pages ahead of the flash programs, so one request cannot hog
        # the PCIe link far in advance of what its planes can absorb.
        window = Container(sim, capacity=self.WRITE_WINDOW_PAGES,
                           init=self.WRITE_WINDOW_PAGES)

        def page_write(op):
            yield window.get(1)
            yield from device.link.transfer("write", page_size)
            yield from self.engine.execute(op)
            yield window.put(1)

        workers = [sim.process(page_write(op)) for op in ops]
        yield AllOf(sim, workers)
        yield sim.timeout(device.interrupts.on_completion())
        yield sim.timeout(device.iostack.complete_ns)
        device.stats.note_write(sim.now, nbytes, sim.now - start)

    def _write_fast(self, logical_block: int, pages: Optional[Sequence]):
        """Timeline-scheduled write with the same bounded streaming
        window: page ``i`` starts its host DMA when the ``i - 16``-th
        program completes, exactly like the Container-gated slow path."""
        device = self.device
        sim = device.sim
        engine = self.engine
        link = device.link
        start = sim.now
        if pages is None:
            pages = [None] * self.pages_per_logical_block
        yield sim.timeout(device.iostack.submit_ns)
        nbytes = len(pages) * self.page_size
        ops = self.ftl.write(logical_block, pages)
        page_size = self.page_size
        meter = link.write_meter
        done = Event(sim)
        n_ops = len(ops)
        state = {"remaining": n_ops, "next": self.WRITE_WINDOW_PAGES}

        def start_page(op):
            def to_flash():
                # DMA landed in the staging buffer; contend for the
                # channel (bus then plane program).
                meter.record(sim.now, page_size)
                engine.execute_fast(op, programmed)

            link.reserve_call("write", page_size, to_flash)

        def programmed():
            # One program finished: free a window slot (admitting the
            # next waiting page at this exact instant, FIFO) and count
            # down the batch.
            index = state["next"]
            if index < n_ops:
                state["next"] = index + 1
                start_page(ops[index])
            state["remaining"] -= 1
            if not state["remaining"]:
                done.succeed()

        for op in ops[: self.WRITE_WINDOW_PAGES]:
            start_page(op)
        if n_ops:
            yield done
        yield sim.timeout(device.interrupts.on_completion())
        yield sim.timeout(device.iostack.complete_ns)
        device.stats.note_write(sim.now, nbytes, sim.now - start)

    def erase(self, logical_block: int):
        """The explicit erase command (S2.3)."""
        device = self.device
        sim = device.sim
        start = sim.now
        yield sim.timeout(device.iostack.submit_ns)
        ops = self.ftl.erase(logical_block)
        yield from self.engine.execute_batch(ops)
        yield sim.timeout(device.interrupts.on_completion())
        yield sim.timeout(device.iostack.complete_ns)
        device.stats.note_erase(sim.now, sim.now - start)

    def write_fresh(self, logical_block: int, pages: Optional[Sequence] = None):
        """Erase-if-mapped then write: the host-side write discipline."""
        if self.ftl.is_mapped(logical_block):
            yield from self.erase(logical_block)
        yield from self.write(logical_block, pages)

    def __repr__(self):
        return f"SDFChannelDevice(/dev/sda{self.channel})"


class SDFDevice:
    """The full 44-channel SDF board."""

    #: Registry kind; also the ``device.{kind}.*`` metric prefix.
    kind = "sdf"

    def __init__(
        self,
        sim: Simulator,
        n_channels: int = 44,
        chips_per_channel: int = 2,
        geometry: FlashGeometry = SDF_CHIP_GEOMETRY,
        timing: NandTiming = MICRON_25NM_MLC,
        link_spec: LinkSpec = PCIE_1_1_X8,
        iostack: IOStackModel = SDF_USER_SPACE_STACK,
        reserve_fraction: float = 0.01,
        priorities: Optional[Dict[OpKind, int]] = None,
        rng: Optional[np.random.Generator] = None,
        factory_bad_rate: float = 0.0,
        endurance: Optional[int] = None,
        name: str = "sdf",
        mode: Optional[str] = None,
    ):
        self.sim = sim
        self.array = FlashArray(
            channels=n_channels,
            chips_per_channel=chips_per_channel,
            geometry=geometry,
            timing=timing,
            rng=rng,
            factory_bad_rate=factory_bad_rate,
            endurance=endurance,
        )
        self.ftls: List[ChannelBlockFTL] = [
            ChannelBlockFTL(self.array, channel, reserve_fraction)
            for channel in range(n_channels)
        ]
        self.engines = build_engines(
            sim, n_channels, geometry, timing, chips_per_channel, priorities,
            mode=mode,
        )
        self.link = HostLink(sim, link_spec)
        self.iostack = iostack
        self.interrupts = InterruptCoalescer(sim)
        self.stats = DeviceStats(name)
        self.channels: List[SDFChannelDevice] = [
            SDFChannelDevice(self, channel) for channel in range(n_channels)
        ]

    def fast_path_ok(self) -> bool:
        """True when requests may use the timeline-scheduled fast path.

        Checked per request so tests may flip tracing/faults/QoS on at
        any point; all gating state is attach-time configuration, so in
        practice a run is entirely fast or entirely generator-driven.
        """
        if not self.link.fast_ok(self.array.geometry.page_size):
            return False
        return all(engine.fast_ok() for engine in self.engines)

    @property
    def n_channels(self) -> int:
        """Number of channels."""
        return len(self.channels)

    @property
    def raw_bytes(self) -> int:
        """Raw flash capacity in bytes."""
        return self.array.raw_bytes

    @property
    def user_bytes(self) -> int:
        """Capacity exposed to software (the paper's ~99% of raw)."""
        return sum(ftl.capacity_bytes for ftl in self.ftls)

    @property
    def capacity_utilization(self) -> float:
        """user bytes / raw bytes."""
        return self.user_bytes / self.raw_bytes

    @property
    def page_size(self) -> int:
        """Bytes in one flash page."""
        return self.array.geometry.page_size

    def drain(self):
        """Generator: nothing to drain -- the SDF has no device-side
        write buffer or background GC (writes complete at the flash)."""
        return
        yield  # pragma: no cover - keeps this a generator

    def device_metrics(self) -> dict:
        """The uniform zoo metric snapshot: WA is exactly 1 by design
        (no device GC, no parity, block-level SRAM mapping)."""
        return base_device_metrics(
            host_programs=sum(ftl.host_programs for ftl in self.ftls),
            erases=sum(ftl.erase_count for ftl in self.ftls),
        )

    def attach_metrics(self, registry) -> None:
        """Register ``device.{kind}.*`` pull metrics."""
        register_device_metrics(registry, self)

    def prefill(self, fraction: float = 1.0, payload=None) -> int:
        """Functionally fill a fraction of every channel (no simulated
        time): used to start experiments on an 'almost full' device as
        in Figure 8.  Returns the number of logical blocks written."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        written = 0
        for ftl in self.ftls:
            n_blocks = scaled_count(ftl.n_logical_blocks * fraction)
            pages = [payload] * ftl.pages_per_logical_block
            for block in range(n_blocks):
                if not ftl.is_mapped(block):
                    ftl.write(block, pages)
                    written += 1
        return written

    def __repr__(self):
        return (
            f"SDFDevice(channels={self.n_channels}, "
            f"raw={self.raw_bytes / 2**30:.0f} GiB, "
            f"user={self.user_bytes / 2**30:.0f} GiB)"
        )

"""Shared device plumbing: the device-model protocol and per-operation
statistics.

Every member of the device zoo -- SDF, conventional, DFTL, hybrid
log-block, multi-queue, zoned -- satisfies :class:`DeviceModel`: one
geometry surface, one :class:`DeviceStats`, a functional ``prefill``, a
``drain`` generator, and a uniform ``device_metrics()`` dictionary that
:func:`register_device_metrics` exposes through ``repro.obs`` under
``device.{kind}.{key}``.

The metric keys are fixed across the zoo (a backend with no mapping
cache reports a hit rate of 1.0; a backend with no merges reports 0),
so ablation tooling can diff device kinds without per-kind schemas:

========================  =====================================================
``write_amplification``   total programs / host programs (1.0 = ideal)
``host_programs``         page programs serving host writes
``gc_programs``           page programs moved by garbage collection
``gc_runs``               GC victim collections
``merges``                log-block merges (hybrid FTLs; 0 elsewhere)
``erases``                block erases (host- or device-initiated)
``map_cache_hits``        mapping-cache hits (DFTL; 0 elsewhere)
``map_cache_misses``      mapping-cache misses (DFTL; 0 elsewhere)
``map_cache_hit_rate``    hits / lookups (1.0 when the map is all-SRAM)
========================  =====================================================
"""

from __future__ import annotations

from typing import Dict, Protocol, runtime_checkable

from repro.sim.stats import Counter, LatencyRecorder, ThroughputMeter

#: The uniform ``device_metrics()`` key set (order is the report order).
DEVICE_METRIC_KEYS = (
    "write_amplification",
    "host_programs",
    "gc_programs",
    "gc_runs",
    "merges",
    "erases",
    "map_cache_hits",
    "map_cache_misses",
    "map_cache_hit_rate",
)


class DeviceStats:
    """Latency and throughput recorders for one device."""

    def __init__(self, name: str):
        self.name = name
        self.read_latency = LatencyRecorder(f"{name}.read.latency")
        self.write_latency = LatencyRecorder(f"{name}.write.latency")
        self.erase_latency = LatencyRecorder(f"{name}.erase.latency")
        self.read_meter = ThroughputMeter(f"{name}.read.bytes")
        self.write_meter = ThroughputMeter(f"{name}.write.bytes")
        self.requests = Counter(f"{name}.requests")

    def note_read(self, now: int, nbytes: int, latency_ns: int) -> None:
        """Record one completed read."""
        self.requests.add()
        self.read_meter.record(now, nbytes)
        self.read_latency.record(latency_ns)

    def note_write(self, now: int, nbytes: int, latency_ns: int) -> None:
        """Record one completed write."""
        self.requests.add()
        self.write_meter.record(now, nbytes)
        self.write_latency.record(latency_ns)

    def note_erase(self, now: int, latency_ns: int) -> None:
        """Record one completed erase."""
        self.requests.add()
        self.erase_latency.record(latency_ns)

    def reset(self) -> None:
        """Clear every recorder (e.g. after a warmup phase)."""
        self.read_latency.reset()
        self.write_latency.reset()
        self.erase_latency.reset()
        self.read_meter.reset()
        self.write_meter.reset()
        self.requests.reset()


@runtime_checkable
class DeviceModel(Protocol):
    """What every device-zoo backend provides.

    Operation *signatures* differ by interface family -- the SDF/zoned
    devices expose block/zone operations, the LPN devices expose
    ``read(lpn, n_pages)`` / ``write(lpn, n_pages, data)`` -- but the
    construction, observation and lifecycle surface is uniform, and it
    is this protocol that ``build_device`` returns against.
    """

    #: Registry kind ("sdf", "conventional", "dftl", "hybrid", "mqftl",
    #: "zoned", ...); also the ``device.{kind}.*`` metric prefix.
    kind: str
    sim: object
    stats: DeviceStats

    @property
    def page_size(self) -> int: ...

    @property
    def user_bytes(self) -> int: ...

    @property
    def raw_bytes(self) -> int: ...

    @property
    def capacity_utilization(self) -> float: ...

    def prefill(self, fraction: float = 1.0, payload=None) -> int:
        """Functionally fill user space (no simulated time)."""
        ...

    def drain(self):
        """Generator: wait for background work (buffers, GC) to settle."""
        ...

    def device_metrics(self) -> Dict[str, float]:
        """The uniform :data:`DEVICE_METRIC_KEYS` snapshot."""
        ...

    def attach_metrics(self, registry) -> None:
        """Register ``device.{kind}.*`` pull metrics on a registry."""
        ...


def base_device_metrics(**overrides) -> Dict[str, float]:
    """The neutral metric dict (WA 1.0, all-SRAM map, no GC/merges),
    with backend-specific keys overridden on top."""
    metrics: Dict[str, float] = {
        "write_amplification": 1.0,
        "host_programs": 0,
        "gc_programs": 0,
        "gc_runs": 0,
        "merges": 0,
        "erases": 0,
        "map_cache_hits": 0,
        "map_cache_misses": 0,
        "map_cache_hit_rate": 1.0,
    }
    for key, value in overrides.items():
        if key not in metrics:
            raise KeyError(f"unknown device metric {key!r}")
        metrics[key] = value
    return metrics


def register_device_metrics(registry, device) -> None:
    """Expose ``device.device_metrics()`` as ``device.{kind}.{key}``
    pull metrics on a :class:`repro.obs.MetricsRegistry`."""
    prefix = f"device.{device.kind}"
    for key in DEVICE_METRIC_KEYS:
        registry.register_callback(
            f"{prefix}.{key}",
            lambda _now, d=device, k=key: d.device_metrics()[k],
        )

"""Shared device plumbing: per-operation statistics."""

from __future__ import annotations

from repro.sim.stats import Counter, LatencyRecorder, ThroughputMeter


class DeviceStats:
    """Latency and throughput recorders for one device."""

    def __init__(self, name: str):
        self.name = name
        self.read_latency = LatencyRecorder(f"{name}.read.latency")
        self.write_latency = LatencyRecorder(f"{name}.write.latency")
        self.erase_latency = LatencyRecorder(f"{name}.erase.latency")
        self.read_meter = ThroughputMeter(f"{name}.read.bytes")
        self.write_meter = ThroughputMeter(f"{name}.write.bytes")
        self.requests = Counter(f"{name}.requests")

    def note_read(self, now: int, nbytes: int, latency_ns: int) -> None:
        """Record one completed read."""
        self.requests.add()
        self.read_meter.record(now, nbytes)
        self.read_latency.record(latency_ns)

    def note_write(self, now: int, nbytes: int, latency_ns: int) -> None:
        """Record one completed write."""
        self.requests.add()
        self.write_meter.record(now, nbytes)
        self.write_latency.record(latency_ns)

    def note_erase(self, now: int, latency_ns: int) -> None:
        """Record one completed erase."""
        self.requests.add()
        self.erase_latency.record(latency_ns)

    def reset(self) -> None:
        """Clear every recorder (e.g. after a warmup phase)."""
        self.read_latency.reset()
        self.write_latency.reset()
        self.erase_latency.reset()
        self.read_meter.reset()
        self.write_meter.reset()
        self.requests.reset()

"""Multi-queue FTL (LFTL-style): one submission queue per channel.

The conventional baseline serializes every request behind one
controller: per-request admission and per-page processing all contend
for a single ``Resource``, which is exactly the "lock-coupled firmware"
bottleneck LFTL attacks by partitioning the FTL into per-channel
workers with their own queues.

This backend keeps the page-mapped FTL of the baseline byte-for-byte
(striping, OP, greedy per-channel GC via ``ftl/gc.py``, min-wear pools
via ``ftl/wear.py``) and changes only the controller model: requests
are admitted by the queue owning their first page, and per-page costs
charge the queue owning *that* page's channel.  Under concurrency the
queues run in parallel; a single stream sees baseline latencies.
"""

from __future__ import annotations

from typing import List

from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.sim import Resource


class MQFTLDevice(ConventionalSSD):
    """A conventional SSD with queue-per-channel controller parallelism."""

    kind = "mqftl"

    def __init__(self, sim, spec: ConventionalSSDSpec, store_data=False, mode=None):
        super().__init__(sim, spec, store_data=store_data, mode=mode)
        #: One admission/processing queue per channel (the LFTL split);
        #: replaces the single shared ``self.controller`` on every path.
        self._queues: List[Resource] = [
            Resource(sim, capacity=1) for _ in range(spec.n_channels)
        ]

    def _request_controller(self, lpn: int) -> Resource:
        return self._queues[self.ftl.channel_of_lpn(lpn)]

    def _page_controller(self, lpn: int) -> Resource:
        return self._queues[self.ftl.channel_of_lpn(lpn)]

"""DFTL: a page-mapped FTL with an on-demand cached mapping table.

The conventional baseline keeps its whole page map in controller DRAM.
DFTL (Gupta et al., ASPLOS'09; WiscSee's ``FtlSim/dftl2.py`` is the
reference simulator) stores the map *in flash* as translation pages and
caches only a bounded working set: a map lookup that misses the cache
costs a flash read of the translation page, and evicting a dirty cached
translation page costs a flash program.  Under workloads whose mapping
working set fits the cache, DFTL behaves like the page-mapped baseline;
past it, every host I/O drags translation traffic behind it.

The model here caches at translation-page granularity (one cached unit
maps ``page_size / 8`` logical pages), which is exactly the batching
DFTL's CMT performs on eviction.  Translation ops are timing-only
``internal`` flash ops: the *functional* map stays in
:class:`~repro.ftl.page_ftl.PageFTL` (correctness is unchanged), while
the translation reads/programs contend for the same channel buses as
host data and count toward write amplification.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.devices.base import base_device_metrics
from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.ftl.ops import FlashOp, program_op, read_op
from repro.nand.array import FlashArray, PhysicalAddress
from repro.ftl.page_ftl import PageFTL


@dataclass(frozen=True)
class DFTLSpec(ConventionalSSDSpec):
    """A conventional-SSD spec plus the cached-mapping-table bound."""

    #: Translation pages the cached mapping table holds (each covers
    #: ``page_size / 8`` logical pages; 8-byte map entries).
    cmt_pages: int = 64


class DFTLPageFTL(PageFTL):
    """PageFTL whose map lookups go through a bounded translation cache."""

    #: Bytes per map entry (4-byte PPN + metadata, the usual estimate).
    ENTRY_BYTES = 8

    def __init__(self, array: FlashArray, cmt_pages: int = 64, **kwargs):
        super().__init__(array, **kwargs)
        if cmt_pages < 1:
            raise ValueError("cmt_pages must be >= 1")
        self.cmt_pages = cmt_pages
        self.entries_per_tp = max(
            1, array.geometry.page_size // self.ENTRY_BYTES
        )
        #: LRU over cached translation pages: tvpn -> dirty flag.
        self._cmt: "OrderedDict[int, bool]" = OrderedDict()
        self.map_cache_hits = 0
        self.map_cache_misses = 0
        self.translation_reads = 0
        self.translation_programs = 0

    # -- translation traffic --------------------------------------------------------
    def _tp_address(self, tvpn: int) -> PhysicalAddress:
        """A stable physical home for one translation page.

        Timing-only: translation pages round-robin over the data
        channels (plane 0) so their bus traffic interferes with host
        I/O the way a real GTD layout would, without perturbing the
        functional array state.
        """
        geo = self.array.geometry
        channel = self._data_channels[tvpn % len(self._data_channels)]
        block = (tvpn // len(self._data_channels)) % geo.blocks_per_plane
        page = tvpn % geo.pages_per_block
        return PhysicalAddress(channel, 0, 0, block, page)

    def _translate(self, lpn: int, dirty: bool) -> List[FlashOp]:
        """Consult the cached mapping table for ``lpn``.

        Returns the flash ops the lookup cost: nothing on a hit, a
        translation-page read on a miss, plus a translation-page
        program when the evicted victim was dirty.
        """
        tvpn = lpn // self.entries_per_tp
        ops: List[FlashOp] = []
        if tvpn in self._cmt:
            self.map_cache_hits += 1
            self._cmt.move_to_end(tvpn)
            if dirty:
                self._cmt[tvpn] = True
            return ops
        self.map_cache_misses += 1
        geo = self.array.geometry
        ops.append(read_op(self._tp_address(tvpn), geo.page_size, internal=True))
        self.translation_reads += 1
        self._cmt[tvpn] = dirty
        if len(self._cmt) > self.cmt_pages:
            victim, victim_dirty = self._cmt.popitem(last=False)
            if victim_dirty:
                ops.append(
                    program_op(
                        self._tp_address(victim), geo.page_size, internal=True
                    )
                )
                self.translation_programs += 1
        return ops

    # -- public operations ------------------------------------------------------------
    def write(self, lpn: int, data=None) -> List[FlashOp]:
        ops = self._translate(lpn, dirty=True)
        ops.extend(super().write(lpn, data))
        return ops

    def read(self, lpn: int):
        ops = self._translate(lpn, dirty=False)
        data, read_ops = super().read(lpn)
        return data, ops + read_ops

    # -- statistics ---------------------------------------------------------------------
    @property
    def total_programs(self) -> int:
        """Page programs including translation-page write-backs."""
        return (
            self.user_programs
            + self.gc_programs
            + self.parity_programs
            + self.translation_programs
        )

    @property
    def map_cache_hit_rate(self) -> float:
        """Hits / lookups (1.0 before any lookup happens)."""
        lookups = self.map_cache_hits + self.map_cache_misses
        if lookups == 0:
            return 1.0
        return self.map_cache_hits / lookups


class DFTLDevice(ConventionalSSD):
    """A conventional SSD whose FTL pages its map in and out of flash."""

    kind = "dftl"

    def _make_ftl(self, spec: ConventionalSSDSpec, store_data: bool):
        cmt_pages = getattr(spec, "cmt_pages", 64)
        return DFTLPageFTL(
            self.array,
            cmt_pages=cmt_pages,
            op_ratio=spec.op_ratio,
            stripe_pages=spec.stripe_pages,
            parity_group_size=spec.parity_group_size,
            store_data=store_data,
        )

    def device_metrics(self) -> dict:
        ftl = self.ftl
        return base_device_metrics(
            write_amplification=ftl.write_amplification,
            host_programs=ftl.user_programs,
            gc_programs=ftl.gc_programs,
            gc_runs=ftl.gc_runs,
            erases=ftl.erases,
            map_cache_hits=ftl.map_cache_hits,
            map_cache_misses=ftl.map_cache_misses,
            map_cache_hit_rate=ftl.map_cache_hit_rate,
        )

"""ZNS-style zoned device: sequential-write zones, explicit reset.

SDF's 8 MB erase-before-write contract *is* a proto-zone, so this
backend is deliberately thin over the SDF channel machinery: a zone is
one 8 MB logical block on one channel (zones round-robin across
channels), a zone write is the sequential whole-zone program, reset is
the explicit erase, and there is **zero device-side GC** -- space
reclamation is the host's problem, exactly as in the SDF.

What it adds over the raw SDF surface is the ZNS state machine: a zone
is EMPTY or FULL, writing a FULL zone raises :class:`ZoneStateError`
instead of being a host-discipline convention, and at most
``max_open_zones`` zone writes may be in flight at once (the ZNS
active-zone bound).  Sub-zone sequential appends are future work; the
8 MB KV patch flush path is zone-aligned by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.devices.base import base_device_metrics, register_device_metrics
from repro.devices.sdf import SDFDevice
from repro.interfaces.iostack import IOStackModel, SDF_USER_SPACE_STACK
from repro.interfaces.link import LinkSpec, PCIE_1_1_X8
from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim import Resource, Simulator


class ZoneStateError(Exception):
    """Operation illegal in the zone's current state (ZNS semantics)."""


class ZonedDevice:
    """A zoned namespace over the SDF channel hardware."""

    kind = "zoned"

    def __init__(
        self,
        sim: Simulator,
        n_channels: int = 44,
        chips_per_channel: int = 2,
        geometry: FlashGeometry = SDF_CHIP_GEOMETRY,
        timing: NandTiming = MICRON_25NM_MLC,
        link_spec: LinkSpec = PCIE_1_1_X8,
        iostack: IOStackModel = SDF_USER_SPACE_STACK,
        reserve_fraction: float = 0.01,
        max_open_zones: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        mode: Optional[str] = None,
        name: str = "zoned",
    ):
        self._sdf = SDFDevice(
            sim,
            n_channels=n_channels,
            chips_per_channel=chips_per_channel,
            geometry=geometry,
            timing=timing,
            link_spec=link_spec,
            iostack=iostack,
            reserve_fraction=reserve_fraction,
            rng=rng,
            name=name,
            mode=mode,
        )
        self.sim = sim
        self.stats = self._sdf.stats
        #: Exposed for the shared obs wiring (channel spans, FTL wear).
        self.array = self._sdf.array
        self.engines = self._sdf.engines
        self.ftls = self._sdf.ftls
        self.link = self._sdf.link
        # Zones round-robin over channels; clamp to the smallest channel
        # so the zone -> (channel, block) map stays uniform even when
        # bad blocks leave channels uneven.
        self._zones_per_channel = min(
            ftl.n_logical_blocks for ftl in self._sdf.ftls
        )
        self.n_zones = self._zones_per_channel * n_channels
        if max_open_zones is None:
            max_open_zones = 2 * n_channels
        self.max_open_zones = max_open_zones
        self._open_slots = Resource(sim, capacity=max_open_zones)
        self.zone_resets = 0

    # -- geometry ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        """Number of channels under the zones."""
        return self._sdf.n_channels

    @property
    def zone_bytes(self) -> int:
        """Bytes in one zone (the SDF 8 MB write unit)."""
        return self._sdf.ftls[0].logical_block_bytes

    @property
    def pages_per_zone(self) -> int:
        """Pages in one zone."""
        return self._sdf.ftls[0].pages_per_logical_block

    @property
    def page_size(self) -> int:
        """Bytes in one flash page."""
        return self._sdf.array.geometry.page_size

    @property
    def user_bytes(self) -> int:
        """Bytes of user-visible capacity (all zones)."""
        return self.n_zones * self.zone_bytes

    @property
    def raw_bytes(self) -> int:
        """Raw flash capacity in bytes."""
        return self._sdf.raw_bytes

    @property
    def capacity_utilization(self) -> float:
        """user bytes / raw bytes."""
        return self.user_bytes / self.raw_bytes

    def _locate(self, zone: int):
        if not 0 <= zone < self.n_zones:
            raise IndexError(f"zone {zone} outside [0, {self.n_zones})")
        channel = zone % self._sdf.n_channels
        return self._sdf.channels[channel], zone // self._sdf.n_channels

    def zone_is_full(self, zone: int) -> bool:
        """True when the zone holds data (state FULL)."""
        channel, block = self._locate(zone)
        return channel.ftl.is_mapped(block)

    def fast_path_ok(self) -> bool:
        """Timeline eligibility is the underlying SDF's."""
        return self._sdf.fast_path_ok()

    # -- timed operations (generators) ----------------------------------------------
    def write_zone(self, zone: int, pages: Optional[Sequence] = None):
        """Sequentially fill one EMPTY zone (the whole-zone program).

        Raises :class:`ZoneStateError` if the zone is FULL -- the host
        must ``reset_zone`` first; the device never relocates data.
        """
        channel, block = self._locate(zone)
        if channel.ftl.is_mapped(block):
            raise ZoneStateError(
                f"zone {zone} is FULL; reset it before rewriting"
            )
        with self._open_slots.request() as slot:
            yield slot
            yield from channel.write(block, pages)

    def read_zone(self, zone: int, page_offset: int = 0, n_pages: int = 1):
        """Read ``n_pages`` 8 KB pages from a zone."""
        channel, block = self._locate(zone)
        payloads = yield from channel.read(block, page_offset, n_pages)
        return payloads

    def reset_zone(self, zone: int):
        """Explicit zone reset (the erase command); idempotent on EMPTY."""
        channel, block = self._locate(zone)
        if not channel.ftl.is_mapped(block):
            return
        self.zone_resets += 1
        yield from channel.erase(block)

    def drain(self):
        """Generator: nothing buffered device-side."""
        return
        yield  # pragma: no cover - keeps this a generator

    # -- functional helpers ---------------------------------------------------------------
    def functional_write_zone(self, zone: int, pages=None) -> None:
        """Fill a zone with no simulated time (preloading)."""
        channel, block = self._locate(zone)
        if channel.ftl.is_mapped(block):
            raise ZoneStateError(f"zone {zone} is FULL; reset it first")
        if pages is None:
            pages = [None] * self.pages_per_zone
        channel.ftl.write(block, pages)

    def functional_read_zone(self, zone: int, page_offset: int = 0):
        """One page's payload with no simulated time."""
        channel, block = self._locate(zone)
        payloads, _ops = channel.ftl.read(block, page_offset, 1)
        return payloads[0]

    def functional_reset_zone(self, zone: int) -> None:
        """Reset a zone with no simulated time."""
        channel, block = self._locate(zone)
        if channel.ftl.is_mapped(block):
            self.zone_resets += 1
            channel.ftl.erase(block)

    def prefill(self, fraction: float = 1.0, payload=None) -> int:
        """Functionally fill a fraction of the zones (no simulated time)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        written = 0
        pages = [payload] * self.pages_per_zone
        target = int(self.n_zones * fraction + 1e-9)
        for zone in range(target):
            if not self.zone_is_full(zone):
                self.functional_write_zone(zone, pages)
                written += 1
        return written

    # -- observability --------------------------------------------------------------------
    def device_metrics(self) -> dict:
        """WA is exactly 1: the device never moves data on its own."""
        return base_device_metrics(
            host_programs=sum(ftl.host_programs for ftl in self.ftls),
            erases=sum(ftl.erase_count for ftl in self.ftls),
        )

    def attach_metrics(self, registry) -> None:
        """Register ``device.{kind}.*`` pull metrics."""
        register_device_metrics(registry, self)

    def __repr__(self):
        return (
            f"ZonedDevice(zones={self.n_zones}, "
            f"zone={self.zone_bytes >> 20} MiB, "
            f"open<={self.max_open_zones})"
        )

"""System-level replication (paper S2.2).

SDF drops on-device parity because "data reliability is provided by
data replication across multiple racks": CCDB replicates each slice
over several server nodes.  :class:`ReplicatedKV` writes every value to
all live replicas and reads with replica failover; the robustness
behaviours the paper assumes host software provides live here:

* **failover ordering** -- reads try healthy, in-sync replicas first
  and never touch a replica known to be missing the key (no stale
  reads);
* **degraded mode** -- with a replica down, writes are acknowledged
  once every *live* replica has them, and the missed keys are kept in a
  per-replica ledger;
* **timeouts + backoff** -- with a :class:`~repro.faults.retry.RetryPolicy`,
  each replica attempt is bounded in time and exhausted rounds back off
  exponentially with jitter before retrying;
* **resync** -- :meth:`heal` replays a restarted replica's missed keys
  from its peers.

Fault injection goes through :mod:`repro.faults` (site ``replication``
for the read-path BCH-failure stand-in).

With a ``router`` -- a callable returning the slice's *current* replica
servers, typically
:meth:`repro.cluster.control.ClusterController.replica_router` -- the
replica set is resolved from the routing table on every operation, so
membership changes made by the control plane take effect without
rebuilding the ``ReplicatedKV``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.node import StorageServer
from repro.errors import ClusterError, PermanentFault, TransientFault
from repro.faults.injector import NULL_INJECTOR, READ_UNCORRECTABLE
from repro.faults.retry import RetryPolicy, defuse_on_failure, race_with_timeout
from repro.sim import Simulator
from repro.sim.stats import Counter


class ReplicaReadError(PermanentFault, ClusterError):
    """Every replica failed a read: real data loss (or total outage)."""


class ReplicaWriteError(PermanentFault, ClusterError):
    """No live replica could accept a write; nothing was acknowledged."""


class ReplicatedKV:
    """A key's value stored on every replica of its slice.

    The replica set is either the fixed ``servers`` list (the original
    behaviour) or resolved per operation through ``router`` (a callable
    returning the current list of :class:`StorageServer`\\ s).

    ``faults`` is a :class:`~repro.faults.injector.FaultInjector` for the
    ``replication`` site; its ``read_uncorrectable`` rules stand in for
    the wear-driven BCH failures of :class:`repro.ecc.model.EccModel`.
    ``retry`` enables per-attempt timeouts with exponential backoff;
    without it reads make a single failover pass (the original
    behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        servers: Optional[List[StorageServer]] = None,
        rng: Optional[np.random.Generator] = None,
        faults=None,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[List] = None,
        router: Optional[Callable[[], List[StorageServer]]] = None,
    ):
        if router is None:
            if not servers:
                raise ValueError("need at least one replica server")
        else:
            if servers is not None:
                raise ValueError("pass a fixed server list or a router, not both")
            if breakers is not None:
                raise ValueError(
                    "per-replica breakers need a fixed replica set; "
                    "they cannot follow a dynamic router"
                )
        if breakers is not None and len(breakers) != len(servers):
            raise ValueError(
                f"need one breaker per replica: got {len(breakers)} "
                f"breakers for {len(servers)} servers"
            )
        self.sim = sim
        self._servers = list(servers) if servers is not None else None
        self.router = router
        self.rng = rng
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.retry = retry
        #: Optional per-replica :class:`~repro.qos.breaker.CircuitBreaker`
        #: list (index-aligned with ``servers``).  Opting in also bounds
        #: each *write* attempt by ``retry.timeout_ns``, so a replica in
        #: brownout trips its breaker instead of stalling every put --
        #: timed-out replicas go to the missed ledger and are healed
        #: later, exactly like replicas that were down.
        self.breakers = breakers
        #: keys each replica missed while down, in arrival order.  Keyed
        #: by the server object so the ledger follows a replica through
        #: routing-table membership changes.
        self._behind: Dict[object, Dict[object, bool]] = {}
        for server in self._servers or ():
            self._behind[server] = {}
        #: per-key write sequence, bumped synchronously when a put is
        #: issued; :meth:`heal` uses it to detect writes racing with a
        #: resync copy (which could otherwise resurrect a stale value).
        self._write_seq: Dict[object, int] = {}
        self.recoveries = Counter("replication.recoveries")
        self.data_loss_events = Counter("replication.data_loss")
        self.degraded_writes = Counter("replication.degraded_writes")
        self.degraded_reads = Counter("replication.degraded_reads")
        self.timeouts = Counter("replication.timeouts")
        self.resynced_keys = Counter("replication.resynced_keys")

    @property
    def servers(self) -> List[StorageServer]:
        """The current replica set (fixed list, or resolved per call)."""
        if self.router is not None:
            return list(self.router())
        return self._servers

    @property
    def replication_factor(self) -> int:
        """Number of replicas."""
        return len(self.servers)

    def _ledger(self, server) -> Dict[object, bool]:
        """The missed-key ledger for one replica (created on first use)."""
        ledger = self._behind.get(server)
        if ledger is None:
            ledger = self._behind[server] = {}
        return ledger

    def behind_count(self, index: Optional[int] = None) -> int:
        """Keys a replica (or all replicas) still owes."""
        if index is not None:
            return len(self._ledger(self.servers[index]))
        return sum(len(b) for b in self._behind.values())

    # -- writes ---------------------------------------------------------------------
    def put(self, key, value):
        """Generator: write to every live replica in parallel.

        Acknowledged once every replica that was up at issue time has
        the value; down replicas get the key recorded in their missed
        ledger for :meth:`heal`.  Raises :class:`ReplicaWriteError` when
        no replica accepts the write (nothing acknowledged).
        """
        self._write_seq[key] = self._write_seq.get(key, 0) + 1
        servers = self.servers  # one consistent membership snapshot
        writers = []
        for index, server in enumerate(servers):
            if not server.up:
                self._ledger(server)[key] = True
                continue
            if self.breakers is not None and not self.breakers[index].allow():
                # Fast local failure: the replica is presumed unhealthy,
                # so record the debt for heal() instead of feeding load
                # to a node already in trouble.
                self._ledger(server)[key] = True
                continue
            # Defused up front: a replica crashing under writer N+1 while
            # we still await writer N must reach us at our yield, not
            # crash the kernel's unobserved-failure check.
            writers.append(
                (
                    index,
                    server,
                    defuse_on_failure(
                        self.sim.process(server.handle_put(key, value))
                    ),
                )
            )
        acked = 0
        last_error: Optional[BaseException] = None
        for index, server, proc in writers:
            try:
                if self.breakers is not None and self.retry is not None:
                    # With breakers opted in, a write attempt is bounded
                    # in time too: a replica in brownout times out, goes
                    # to the missed ledger, and trips its breaker.  (Its
                    # abandoned write may still land; heal() re-copies
                    # the current value, so that is harmless.)
                    done, _ = yield from race_with_timeout(
                        self.sim, proc, self.retry.timeout_ns
                    )
                    if not done:
                        self.timeouts.add()
                        self.breakers[index].record_failure()
                        self._ledger(server)[key] = True
                        last_error = TimeoutError(
                            f"replica {index} write of {key!r} exceeded "
                            f"{self.retry.timeout_ns} ns"
                        )
                        continue
                else:
                    yield proc
            except TransientFault as exc:  # crashed while the put ran
                if self.breakers is not None:
                    self.breakers[index].record_failure()
                self._ledger(server)[key] = True
                last_error = exc
                continue
            if self.breakers is not None:
                self.breakers[index].record_success()
            acked += 1
            # The replica now holds the newest value, even if it was
            # behind on this key before (e.g. written mid-resync).
            self._ledger(server).pop(key, None)
        if acked == 0:
            raise ReplicaWriteError(
                f"no live replica accepted the write of {key!r}"
            ) from last_error
        if acked < len(servers):
            self.degraded_writes.add()

    # -- reads ----------------------------------------------------------------------
    def _failover_order(self, servers, key) -> List[int]:
        """Replica indexes to try, best candidates first.

        Down replicas are excluded (their requests would only burn a
        timeout) and so are replicas known to be missing this key --
        reading one could return a stale miss.  With every replica
        healthy this is simply ``0..n-1``, preserving the historical
        read order.
        """
        return [
            index
            for index, server in enumerate(servers)
            if server.up and key not in self._ledger(server)
        ]

    def get(self, key):
        """Generator -> value; fails over across replicas on errors.

        With a :class:`~repro.faults.retry.RetryPolicy` each attempt is
        bounded by ``timeout_ns`` and exhausted passes back off before
        retrying (replicas may come back); without one a single failover
        pass is made.  Raises :class:`ReplicaReadError` when every
        attempt fails.
        """
        policy = self.retry
        max_rounds = policy.max_attempts if policy is not None else 1
        last_error: Optional[BaseException] = None
        for round_no in range(max_rounds):
            if round_no > 0:
                yield self.sim.timeout(
                    policy.backoff_ns(round_no - 1, self.rng)
                )
            servers = self.servers  # re-resolved: replicas may have moved
            candidates = self._failover_order(servers, key)
            if candidates and len(candidates) < len(servers):
                self.degraded_reads.add()
            for order, index in enumerate(candidates):
                server = servers[index]
                breaker = (
                    self.breakers[index] if self.breakers is not None else None
                )
                if breaker is not None and not breaker.allow():
                    last_error = ReplicaReadError(
                        f"breaker open for replica {index}"
                    )
                    continue
                try:
                    if policy is None:
                        value = yield from server.handle_get(key)
                    else:
                        proc = self.sim.process(server.handle_get(key))
                        done, value = yield from race_with_timeout(
                            self.sim, proc, policy.timeout_ns
                        )
                        if not done:
                            self.timeouts.add()
                            if breaker is not None:
                                breaker.record_failure()
                            last_error = TimeoutError(
                                f"replica {index} exceeded "
                                f"{policy.timeout_ns} ns for {key!r}"
                            )
                            continue
                except KeyError as exc:  # replica lost the key somehow
                    last_error = exc
                    continue
                except TransientFault as exc:  # died mid-request
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
                    continue
                if breaker is not None:
                    breaker.record_success()
                if (
                    self.faults.fires(
                        READ_UNCORRECTABLE, replica=index, key=key
                    )
                    is not None
                ):
                    last_error = ReplicaReadError(
                        f"uncorrectable read of {key!r} on replica {index}"
                    )
                    self.recoveries.add()
                    continue
                if order > 0 or round_no > 0:
                    self.faults.note(
                        "replica_failover", key=key, served_by=index
                    )
                return value
        self.data_loss_events.add()
        raise ReplicaReadError(
            f"all {self.replication_factor} replicas failed for {key!r}"
        ) from last_error

    # -- recovery --------------------------------------------------------------------
    def heal(self, index: int):
        """Generator: resync a restarted replica from its peers.

        Replays every key the replica missed while down by reading the
        current value from the healthy replicas and writing it back.  A
        key that reads as a miss is replayed as a delete.  Intended as
        the ``on_restore`` hook of a
        :class:`~repro.faults.runner.FaultRunner`.

        Resync copies race with live writes: a put issued between our
        read and our write-back would be overwritten with the older
        value.  Each read therefore snapshots ``_write_seq[key]`` and is
        retried if the sequence moved before the write-back is issued;
        once issued, the per-slice FIFO guarantees any later put lands
        after it.  Puts that reach the replica directly clear the ledger
        entry themselves, so such keys are simply skipped here.
        """
        server = self.servers[index]
        if not server.up:
            raise RuntimeError(f"replica {index} is still down; restart first")
        ledger = self._ledger(server)
        resynced = 0
        for key in list(ledger):
            if key not in ledger:
                continue  # a live put already brought this key in sync
            while True:
                seq = self._write_seq.get(key, 0)
                value = yield from self.get(key)
                if self._write_seq.get(key, 0) != seq:
                    continue  # raced with a writer; re-read
                if value is None:
                    yield from server.handle_delete(key)
                else:
                    yield from server.handle_put(key, value)
                break
            ledger.pop(key, None)
            self.resynced_keys.add()
            resynced += 1
        if resynced:
            self.faults.note("replica_resync", replica=index, keys=resynced)
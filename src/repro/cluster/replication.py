"""System-level replication (paper S2.2).

SDF drops on-device parity because "data reliability is provided by
data replication across multiple racks": CCDB replicates each slice
over several server nodes.  :class:`ReplicatedKV` writes every value to
all replicas and, when a read hits an uncorrectable error (the rare
BCH-failure event the paper reports), recovers from the next replica.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.node import StorageServer
from repro.sim import AllOf, Simulator
from repro.sim.stats import Counter


class ReplicaReadError(Exception):
    """An uncorrectable device error surfaced to the software layer."""


class ReplicatedKV:
    """A key's value stored on every one of ``servers``.

    ``read_failure_rate`` injects uncorrectable-read events (standing in
    for the wear-driven BCH failures of
    :class:`repro.ecc.model.EccModel`) so recovery paths can be
    exercised deterministically in simulation.
    """

    def __init__(
        self,
        sim: Simulator,
        servers: List[StorageServer],
        read_failure_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if not servers:
            raise ValueError("need at least one replica server")
        if not 0.0 <= read_failure_rate < 1.0:
            raise ValueError("read_failure_rate outside [0, 1)")
        if read_failure_rate > 0.0 and rng is None:
            raise ValueError("failure injection needs an rng")
        self.sim = sim
        self.servers = servers
        self.read_failure_rate = read_failure_rate
        self.rng = rng
        self.recoveries = Counter("replication.recoveries")
        self.data_loss_events = Counter("replication.data_loss")

    @property
    def replication_factor(self) -> int:
        """Number of replicas."""
        return len(self.servers)

    def put(self, key, value):
        """Generator: write to every replica in parallel."""
        writers = [
            self.sim.process(server.handle_put(key, value))
            for server in self.servers
        ]
        yield AllOf(self.sim, writers)

    def get(self, key):
        """Generator -> value; fails over across replicas on errors."""
        last_error = None
        for attempt, server in enumerate(self.servers):
            try:
                value = yield from server.handle_get(key)
            except KeyError as exc:  # replica lost the key somehow
                last_error = exc
                continue
            if self._injected_failure():
                last_error = ReplicaReadError(
                    f"uncorrectable read of {key!r} on replica {attempt}"
                )
                self.recoveries.add()
                continue
            return value
        self.data_loss_events.add()
        raise ReplicaReadError(
            f"all {self.replication_factor} replicas failed for {key!r}"
        ) from last_error

    def _injected_failure(self) -> bool:
        return (
            self.read_failure_rate > 0.0
            and self.rng.random() < self.read_failure_rate
        )

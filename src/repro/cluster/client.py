"""Closed-loop KV clients (paper S3.3).

"Each slice is always loaded with requests from a single client; each
client continuously sends synchronous read/write KV requests to one
slice ... one request may contain multiple read/write sub-requests; the
number of sub-requests contained in a request is called the request's
batch size."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.network import Network, Nic, TEN_GBE_MB_S
from repro.cluster.node import StorageServer
from repro.errors import ClusterError, TransientFault, WrongEpochError
from repro.faults.retry import (
    RetryPolicy,
    defuse_on_failure,
    race_with_timeout,
)
from repro.kv.common import PlaceholderValue
from repro.kv.slice import Slice
from repro.qos.breaker import CircuitBreaker, CircuitOpenError
from repro.sim import AllOf, Simulator
from repro.sim.stats import LatencyRecorder, ThroughputMeter


class RequestAbandonedError(ClusterError):
    """A client request exhausted its retry budget."""

#: Size of one KV request/response envelope (headers, key, status).
ENVELOPE_BYTES = 256


@dataclass(frozen=True)
class BatchSpec:
    """Shape of one client's requests."""

    batch_size: int = 1
    value_bytes: int = 512 * 1024
    mode: str = "read"  # "read" or "write"

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.value_bytes < 1:
            raise ValueError("value_bytes must be >= 1")
        if self.mode not in ("read", "write"):
            raise ValueError(f"mode must be read/write, got {self.mode!r}")


#: Epoch-redirect retry bounds for routed clients: a stale routing view
#: (or a cutover-frozen slice) is retried after an exponentially growing
#: backoff, refreshing the view each time.
ROUTE_RETRIES = 8
ROUTE_BACKOFF_NS = 100_000  # 100 us, doubling per retry
ROUTE_BACKOFF_CAP_NS = 5_000_000  # 5 ms


class KVClient:
    """One client node driving one slice with synchronous batches.

    With a ``router`` (a :class:`repro.cluster.control.RoutingView`),
    the client resolves the owning server per request from its cached
    routing snapshot and stamps each sub-request with the entry's
    epoch; a :class:`~repro.errors.WrongEpochError` rejection triggers
    a view refresh and a bounded backoff-retry, so requests follow a
    slice through migrations.  Without one, the fixed ``server`` is
    used unconditionally (the original single-owner behaviour, event
    sequence untouched).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        server: StorageServer,
        slice_: Slice,
        spec: BatchSpec,
        keys: Optional[List] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "client",
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        router=None,
        tenant: Optional[str] = None,
    ):
        self.sim = sim
        self.network = network
        self.server = server
        self.slice = slice_
        self.spec = spec
        self.router = router
        #: Optional tenant label stamped on every request this client
        #: issues, splitting server metrics and admission accounting.
        self.tenant = tenant
        self.keys = keys if keys is not None else []
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.nic = Nic(sim, TEN_GBE_MB_S, lanes=1, name=name)
        self.meter = ThroughputMeter(f"{name}.data")
        self.latency = LatencyRecorder(f"{name}.latency")
        self.requests_completed = 0
        self.requests_retried = 0
        #: Optional per-request timeout/backoff policy.  ``None`` (the
        #: default) keeps the historical fail-fast single attempt.
        self.retry = retry
        #: Optional :class:`~repro.qos.breaker.CircuitBreaker` guarding
        #: this client's server: while open, requests fail locally with
        #: :class:`~repro.qos.breaker.CircuitOpenError` instead of
        #: adding load to a node already in trouble.
        self.breaker = breaker
        self.requests_shed = 0
        self.requests_redirected = 0
        self._write_seq = 0

    # -- key selection ---------------------------------------------------------------
    def _sample_read_keys(self, count: int) -> List:
        if not self.keys:
            raise RuntimeError("read client has no preloaded keys to sample")
        picks = self.rng.integers(0, len(self.keys), size=count)
        return [self.keys[int(i)] for i in picks]

    def _next_write_keys(self, count: int) -> List:
        lo = self.slice.key_range.lo
        hi = self.slice.key_range.hi
        span = hi - lo
        keys = []
        for _ in range(count):
            keys.append(lo + (self._write_seq % span))
            self._write_seq += 1
        return keys

    # -- request loops (generators) ------------------------------------------------------
    def run(self, until_ns: int):
        """Closed loop: issue batches back-to-back until the deadline."""
        while self.sim.now < until_ns:
            yield from self.request_once()

    def request_once(self):
        """One synchronous batched request (the unit the paper measures).

        Without a retry policy or breaker the request runs inline
        (identical event sequence to the original client).  With a retry
        policy, each attempt is raced against ``timeout_ns``; a
        timed-out or transiently failed attempt is abandoned and
        reissued after exponential backoff with jitter, until the
        attempt budget is spent.  A ``budget_ns`` on the policy is a
        total deadline across all attempts, propagated to the server so
        admission control can shed the request once it is doomed.  A
        breaker turns a run of failures into fast local rejections.
        """
        if self.router is not None:
            yield from self._request_once_routed()
            return
        if self.retry is None and self.breaker is None:
            yield from self._attempt_once()
            return
        policy = self.retry
        breaker = self.breaker
        deadline: Optional[int] = None
        if policy is not None and policy.budget_ns is not None:
            deadline = self.sim.now + policy.budget_ns
        max_attempts = policy.max_attempts if policy is not None else 1
        last_error: Optional[BaseException] = None
        for attempt in range(max_attempts):
            if attempt > 0:
                self.requests_retried += 1
                yield self.sim.timeout(
                    policy.backoff_ns(attempt - 1, self.rng)
                )
            if deadline is not None and self.sim.now >= deadline:
                last_error = TimeoutError(
                    f"deadline budget of {policy.budget_ns} ns spent"
                )
                break
            if breaker is not None and not breaker.allow():
                self.requests_shed += 1
                last_error = CircuitOpenError(
                    f"breaker {breaker.name!r} is open"
                )
                continue
            timeout_ns = policy.timeout_ns if policy is not None else None
            if deadline is not None:
                timeout_ns = min(timeout_ns, deadline - self.sim.now)
            proc = self.sim.process(self._attempt_once(deadline_ns=deadline))
            try:
                if timeout_ns is None:
                    # Breaker without a retry policy: single unbounded
                    # attempt, the breaker learning from its outcome.
                    yield proc
                    done = True
                else:
                    done, _ = yield from race_with_timeout(
                        self.sim, proc, timeout_ns
                    )
            except TransientFault as exc:  # dropped message, node down, shed
                if breaker is not None:
                    breaker.record_failure()
                last_error = exc
                continue
            if done:
                if breaker is not None:
                    breaker.record_success()
                return
            if breaker is not None:
                breaker.record_failure()
            last_error = TimeoutError(
                f"request exceeded {timeout_ns} ns"
            )
        raise RequestAbandonedError(
            f"request failed after {max_attempts} attempts"
        ) from last_error

    # -- routed mode -------------------------------------------------------------------
    def _request_once_routed(self):
        """One request against the routing table, following redirects.

        A stale-epoch rejection (the slice moved, or is mid-cutover)
        refreshes the cached view and retries after an exponential
        backoff -- bounded, so a persistently wrong table surfaces as
        :class:`RequestAbandonedError` rather than a livelock.

        A :class:`~repro.faults.retry.RetryPolicy` with a ``budget_ns``
        additionally caps the *total* time spent chasing redirects: no
        refresh-retry starts after the budget is spent (backoffs are
        clipped to the remaining budget so a sleep cannot overshoot it),
        and the deadline propagates to the server.  Without a budget the
        historical attempt-count bound alone applies, event sequence
        untouched.
        """
        policy = self.retry
        deadline: Optional[int] = None
        if policy is not None and policy.budget_ns is not None:
            deadline = self.sim.now + policy.budget_ns
        last_error: Optional[BaseException] = None
        for attempt in range(ROUTE_RETRIES + 1):
            if attempt > 0:
                self.requests_retried += 1
                backoff = min(
                    ROUTE_BACKOFF_NS << (attempt - 1), ROUTE_BACKOFF_CAP_NS
                )
                if deadline is not None:
                    backoff = min(backoff, max(deadline - self.sim.now, 0))
                yield self.sim.timeout(backoff)
                self.router.refresh()
            if deadline is not None and self.sim.now >= deadline:
                raise RequestAbandonedError(
                    f"routed request spent its {policy.budget_ns} ns "
                    f"budget after {attempt} refreshes"
                ) from last_error
            try:
                yield from self._attempt_once_routed(deadline_ns=deadline)
                return
            except (WrongEpochError, KeyError) as exc:
                # WrongEpochError: the slice moved (or is mid-cutover).
                # KeyError: the cached view names a retired node or a
                # since-split slice.  Both mean "refresh and retry".
                self.requests_redirected += 1
                last_error = exc
                continue
        raise RequestAbandonedError(
            f"request still misrouted after {ROUTE_RETRIES} refreshes"
        ) from last_error

    def _attempt_once_routed(self, deadline_ns: Optional[int] = None):
        """One routed attempt: like :meth:`_attempt_once`, but every
        sub-request resolves its owner through the routing view and
        carries the entry's epoch stamp."""
        spec = self.spec
        start = self.sim.now
        if spec.mode == "read":
            keys = self._sample_read_keys(spec.batch_size)
        else:
            keys = self._next_write_keys(spec.batch_size)
        front, _ = self.router.lookup(keys[0])
        envelope = ENVELOPE_BYTES * spec.batch_size
        payload = spec.batch_size * spec.value_bytes
        if spec.mode == "read":
            yield from self.network.send(self.nic, front.nic, envelope)
            per_sub = spec.value_bytes + ENVELOPE_BYTES

            def sub_read(key):
                server, entry = self.router.lookup(key)
                value = yield from server.handle_get(
                    key,
                    deadline_ns=deadline_ns,
                    epoch=entry.epoch,
                    tenant=self.tenant,
                )
                yield from self.network.send(server.nic, self.nic, per_sub)
                return value

            subs = [
                defuse_on_failure(self.sim.process(sub_read(key)))
                for key in keys
            ]
            yield AllOf(self.sim, subs)
        else:
            yield from self.network.send(
                self.nic, front.nic, payload + envelope
            )

            def sub_write(key):
                server, entry = self.router.lookup(key)
                yield from server.handle_put(
                    key,
                    PlaceholderValue(spec.value_bytes),
                    deadline_ns=deadline_ns,
                    epoch=entry.epoch,
                    tenant=self.tenant,
                )

            subs = [
                defuse_on_failure(self.sim.process(sub_write(key)))
                for key in keys
            ]
            yield AllOf(self.sim, subs)
            yield from self.network.send(front.nic, self.nic, envelope)
        self.meter.record(self.sim.now, payload)
        self.latency.record(self.sim.now - start)
        self.requests_completed += 1

    def _attempt_once(self, deadline_ns: Optional[int] = None):
        """Generator: one request attempt (the original request body)."""
        spec = self.spec
        start = self.sim.now
        if spec.mode == "read":
            keys = self._sample_read_keys(spec.batch_size)
            request_bytes = ENVELOPE_BYTES * spec.batch_size
            response_bytes = (
                spec.batch_size * spec.value_bytes
                + ENVELOPE_BYTES * spec.batch_size
            )
        else:
            keys = self._next_write_keys(spec.batch_size)
            request_bytes = (
                spec.batch_size * spec.value_bytes
                + ENVELOPE_BYTES * spec.batch_size
            )
            response_bytes = ENVELOPE_BYTES * spec.batch_size
        yield from self.network.send(self.nic, self.server.nic, request_bytes)
        if spec.mode == "read":
            # Each sub-response streams back as soon as its sub-request
            # completes (S3.3.1: the server "can send the data back to
            # the client at the same time that it is serving the next
            # sub-request").
            per_sub = response_bytes // spec.batch_size

            def sub_read(key):
                value = yield from self.server.handle_get(
                    key, deadline_ns=deadline_ns, tenant=self.tenant
                )
                yield from self.network.send(
                    self.server.nic, self.nic, per_sub
                )
                return value

            # Defused at spawn: if several subs fail (drops, a crash),
            # only the first reaches us through the AllOf; the rest must
            # not crash the kernel's unobserved-failure check.
            subs = [
                defuse_on_failure(self.sim.process(sub_read(key)))
                for key in keys
            ]
            yield AllOf(self.sim, subs)
        else:
            subs = [
                defuse_on_failure(
                    self.sim.process(
                        self.server.handle_put(
                            key,
                            PlaceholderValue(spec.value_bytes),
                            deadline_ns=deadline_ns,
                            tenant=self.tenant,
                        )
                    )
                )
                for key in keys
            ]
            yield AllOf(self.sim, subs)
            yield from self.network.send(
                self.server.nic, self.nic, response_bytes
            )
        payload = spec.batch_size * spec.value_bytes
        self.meter.record(self.sim.now, payload)
        self.latency.record(self.sim.now - start)
        self.requests_completed += 1


def run_clients(
    sim: Simulator,
    clients: List[KVClient],
    duration_ns: int,
    warmup_ns: int = 0,
):
    """Run every client for ``duration_ns``; returns aggregate MB/s
    measured over the post-warmup window."""
    deadline = sim.now + duration_ns
    measure_from = sim.now + warmup_ns
    procs = [sim.process(client.run(deadline)) for client in clients]
    sim.run(until=AllOf(sim, procs))
    total = sum(
        client.meter.bytes_in(measure_from, sim.now) for client in clients
    )
    elapsed = sim.now - measure_from
    if elapsed <= 0:
        return 0.0
    return total / 1e6 / (elapsed / 1e9)

"""Timed patch-storage adapters for storage-server nodes.

A node storage adapter turns LSM work items into timed device I/O:

* ``store_patch`` -- persist one <= 8 MB patch (one SDF write unit);
* ``read_value`` -- fetch one value with a single device read of just
  the pages covering it (the paper's one-read guarantee);
* ``read_patch`` -- fetch a whole patch (compaction and scans);
* ``free_patch`` -- release the space (background erase on SDF; LBA
  reuse on the conventional SSD).

Patches are kept as Python objects: every page of a stored patch holds
a reference to the same :class:`~repro.kv.patch.Patch`, so any page read
can resolve values while the simulator charges time for exactly the
pages a real system would touch.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.block_layer import UserSpaceBlockLayer
from repro.devices.conventional import ConventionalSSD
from repro.kv.lsm import Lookup
from repro.kv.patch import Patch


class SDFNodeStorage:
    """Patches on an SDF through the user-space block layer."""

    def __init__(self, block_layer: UserSpaceBlockLayer):
        self.block_layer = block_layer
        self.sim = block_layer.sim

    @property
    def patch_capacity_bytes(self) -> int:
        """Largest patch this storage accepts."""
        return self.block_layer.block_bytes

    def store_patch(self, patch: Patch):
        """Generator -> handle (a block ID)."""
        if patch.nbytes > self.patch_capacity_bytes:
            raise ValueError("patch exceeds the 8 MB write unit")
        handle = self.block_layer.allocate_id()
        pages = [patch] * self.block_layer.pages_per_block
        yield from self.block_layer.write(handle, pages)
        return handle

    def store_patches(self, patches):
        """Generator -> list of handles, persisting patches concurrently.

        One block-layer ``write_batch``: the writes land on distinct
        channels (round-robin placement) and overlap, which is what the
        compaction output fan-out wants.
        """
        patches = list(patches)
        for patch in patches:
            if patch.nbytes > self.patch_capacity_bytes:
                raise ValueError("patch exceeds the 8 MB write unit")
        handles = [self.block_layer.allocate_id() for _ in patches]
        items = [
            (handle, [patch] * self.block_layer.pages_per_block)
            for handle, patch in zip(handles, patches)
        ]
        yield from self.block_layer.write_batch(items)
        return handles

    def read_value(self, lookup: Lookup, key):
        """Generator -> value, reading only the pages covering it."""
        nbytes = max(lookup.size, 1)
        payloads = yield from self.block_layer.read(
            lookup.handle, lookup.offset, nbytes
        )
        patch: Patch = payloads[0]
        found, value = patch.get(key)
        if not found:
            raise KeyError(f"{key!r} missing from stored patch")
        return value

    def read_patch(self, handle) -> Patch:
        """Generator -> the whole patch (a full 8 MB sequential read)."""
        payloads = yield from self.block_layer.read(handle, 0, None)
        return payloads[0]

    def free_patch(self, handle):
        """Generator: release the block (erased in the background)."""
        yield from self.block_layer.free(handle)

    # -- functional (zero-time) preloading --------------------------------------
    def functional_store(self, patch: Patch):
        """Store a patch with no simulated time (preloading)."""
        handle = self.block_layer.allocate_id()
        pages = [patch] * self.block_layer.pages_per_block
        self.block_layer.functional_write(handle, pages)
        return handle

    def functional_load(self, handle) -> Patch:
        """Load a patch with no simulated time."""
        return self.block_layer.functional_read(handle)[0]

    def functional_free(self, handle) -> None:
        """Release a patch with no simulated time."""
        self.block_layer.functional_free(handle)


class ConventionalNodeStorage:
    """Patches on a conventional SSD, one 8 MB LBA extent per patch.

    Extents are recycled: rewriting a previously-used extent invalidates
    its old flash pages inside the device, which is what feeds the FTL's
    garbage collector under sustained write load.
    """

    def __init__(self, device: ConventionalSSD, patch_bytes: int = 8 << 20):
        self.device = device
        self.sim = device.sim
        self.patch_bytes = patch_bytes
        self.pages_per_patch = patch_bytes // device.page_size
        if self.pages_per_patch < 1:
            raise ValueError("patch smaller than one page")
        n_extents = device.user_pages // self.pages_per_patch
        if n_extents < 1:
            raise ValueError("device too small for a single patch extent")
        self._free_extents = deque(
            extent * self.pages_per_patch for extent in range(n_extents)
        )

    @property
    def patch_capacity_bytes(self) -> int:
        """Largest patch this storage accepts."""
        return self.patch_bytes

    def store_patch(self, patch: Patch):
        """Generator: persist one patch; returns its handle."""
        if patch.nbytes > self.patch_bytes:
            raise ValueError("patch exceeds the patch extent")
        if not self._free_extents:
            raise RuntimeError("no free patch extents on the device")
        lpn = self._free_extents.popleft()
        yield from self.device.write(lpn, self.pages_per_patch, data=patch)
        return lpn

    def store_patches(self, patches):
        """Generator -> list of handles, persisting patches concurrently."""
        patches = list(patches)
        processes = [
            self.sim.process(self.store_patch(patch)) for patch in patches
        ]
        if not processes:
            return []
        results = yield self.sim.all_of(processes)
        return results

    def read_value(self, lookup: Lookup, key):
        """Generator: fetch one value with a single device read."""
        page = self.device.page_size
        first_page = lookup.offset // page
        last_page = (lookup.offset + max(lookup.size, 1) - 1) // page
        payloads = yield from self.device.read(
            lookup.handle + first_page, last_page - first_page + 1
        )
        patch: Optional[Patch] = payloads[0]
        if patch is None:
            raise KeyError(f"extent at lpn {lookup.handle} holds no data")
        found, value = patch.get(key)
        if not found:
            raise KeyError(f"{key!r} missing from stored patch")
        return value

    def read_patch(self, handle) -> Patch:
        """Generator: fetch a whole patch."""
        payloads = yield from self.device.read(handle, self.pages_per_patch)
        return payloads[0]

    def free_patch(self, handle):
        """Return the extent for reuse (invalidated on next overwrite)."""
        self._free_extents.append(handle)
        return
        yield  # pragma: no cover - keeps this a generator

    # -- functional (zero-time) preloading --------------------------------------
    def functional_store(self, patch: Patch):
        """Store a patch with no simulated time (preloading)."""
        if not self._free_extents:
            raise RuntimeError("no free patch extents on the device")
        lpn = self._free_extents.popleft()
        for index in range(self.pages_per_patch):
            self.device.ftl.write(lpn + index, patch)
        return lpn

    def functional_load(self, handle) -> Patch:
        """Load a patch with no simulated time."""
        data, _ = self.device.ftl.read(handle)
        if data is None:
            raise KeyError(f"extent at lpn {handle} holds no data")
        return data

    def functional_free(self, handle) -> None:
        """Release a patch with no simulated time."""
        self._free_extents.append(handle)


class ZonedNodeStorage:
    """Patches on a :class:`~repro.devices.zoned.ZonedDevice`, one zone
    per patch.

    The 8 MB KV patch is exactly one zone, so the mapping is the
    host-FTL identity the SDF argues for: ``store_patch`` fills a free
    zone, ``free_patch`` returns it to the free list, and the required
    ZNS reset is paid lazily by the *next* writer of that zone (the
    moral equivalent of the SDF's pre-write erase discipline).
    """

    def __init__(self, device, patch_bytes: int = 8 << 20):
        self.device = device
        self.sim = device.sim
        self.patch_bytes = patch_bytes
        if patch_bytes > device.zone_bytes:
            raise ValueError("patch exceeds the zone size")
        self._free_zones = deque(range(device.n_zones))

    @property
    def patch_capacity_bytes(self) -> int:
        """Largest patch this storage accepts."""
        return min(self.patch_bytes, self.device.zone_bytes)

    def _claim_zone(self) -> int:
        if not self._free_zones:
            raise RuntimeError("no free zones on the device")
        return self._free_zones.popleft()

    def store_patch(self, patch: Patch):
        """Generator: persist one patch; returns its handle (a zone)."""
        if patch.nbytes > self.patch_capacity_bytes:
            raise ValueError("patch exceeds the zone size")
        zone = self._claim_zone()
        yield from self.device.reset_zone(zone)
        pages = [patch] * self.device.pages_per_zone
        yield from self.device.write_zone(zone, pages)
        return zone

    def store_patches(self, patches):
        """Generator -> list of handles, persisting patches concurrently."""
        patches = list(patches)
        processes = [
            self.sim.process(self.store_patch(patch)) for patch in patches
        ]
        if not processes:
            return []
        results = yield self.sim.all_of(processes)
        return results

    def read_value(self, lookup: Lookup, key):
        """Generator: fetch one value with a single zone read."""
        page = self.device.page_size
        first_page = lookup.offset // page
        last_page = (lookup.offset + max(lookup.size, 1) - 1) // page
        payloads = yield from self.device.read_zone(
            lookup.handle, first_page, last_page - first_page + 1
        )
        patch: Optional[Patch] = payloads[0]
        if patch is None:
            raise KeyError(f"zone {lookup.handle} holds no data")
        found, value = patch.get(key)
        if not found:
            raise KeyError(f"{key!r} missing from stored patch")
        return value

    def read_patch(self, handle) -> Patch:
        """Generator: fetch a whole patch (full-zone sequential read)."""
        payloads = yield from self.device.read_zone(
            handle, 0, self.device.pages_per_zone
        )
        return payloads[0]

    def free_patch(self, handle):
        """Return the zone for reuse (reset lazily before rewrite)."""
        self._free_zones.append(handle)
        return
        yield  # pragma: no cover - keeps this a generator

    # -- functional (zero-time) preloading --------------------------------------
    def functional_store(self, patch: Patch):
        """Store a patch with no simulated time (preloading)."""
        zone = self._claim_zone()
        self.device.functional_reset_zone(zone)
        pages = [patch] * self.device.pages_per_zone
        self.device.functional_write_zone(zone, pages)
        return zone

    def functional_load(self, handle) -> Patch:
        """Load a patch with no simulated time."""
        data = self.device.functional_read_zone(handle)
        if data is None:
            raise KeyError(f"zone {handle} holds no data")
        return data

    def functional_free(self, handle) -> None:
        """Release a patch with no simulated time."""
        self._free_zones.append(handle)

"""The cluster control plane: routing, elasticity and online slice
migration (paper S2.2, S5).

The paper's deployment story -- "web-scale internet storage systems"
spanning thousands of nodes -- implies a layer the paper itself treats
as given: something must decide which node owns which slice, move
slices when nodes join or leave, and keep clients pointed at the right
owner while data is in flight.  :class:`ClusterController` is that
layer, scaled to the simulator:

* **Versioned routing** -- a :class:`RoutingTable` maps each slice to
  its replica set and an *epoch* (bumped on every ownership change).
  Clients cache a :class:`RoutingView` snapshot and stamp requests with
  the epoch they routed by; a server that has moved on rejects the
  stale stamp with :class:`~repro.errors.WrongEpochError`, and the
  client refreshes and retries.
* **Online migration** -- :meth:`ClusterController.migrate_slice` moves
  one replica of a slice between nodes while it keeps serving:
  snapshot transfer of the registered runs, iterative catch-up of runs
  flushed during the copy, then a brief write-blocked cutover that
  ships the WAL-protected tail (pending patches + memtable) and
  commits atomically by bumping the epoch.  An acknowledged write is
  durable on the source until the commit point and durable on the
  target after it, so a crash at *any* phase boundary loses nothing
  (``tests/cluster/test_migration_faults.py``).
* **Elastic membership** -- :meth:`add_node` / :meth:`drain_node` /
  :meth:`remove_node`, plus a :meth:`rebalance` step driven by
  per-slice load (bytes served since the last look).
* **Split / merge** -- :meth:`split_slice` divides a hot slice's
  key range in two; :meth:`merge_slices` recombines adjacent cold ones.

Fault points: each migration phase consults the ``migration`` fault
site, so a :class:`~repro.faults.plan.FaultPlan` can abort a transfer
at any boundary (kind :data:`MIGRATION_ABORT`, ``where={"phase": ...}``).
Node crashes mid-migration surface as
:class:`~repro.cluster.node.NodeDownError` from the transfer itself.
Either way the migration aborts cleanly: routing is unchanged, the
source keeps serving, and a later retry starts over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.network import Network
from repro.cluster.node import StorageServer
from repro.errors import ClusterError, TransientFault
from repro.faults.injector import NULL_INJECTOR
from repro.kv.lsm import LSMTree
from repro.kv.slice import KeyRange, Slice
from repro.sim import MS, Simulator
from repro.sim.stats import Counter

#: Fault site consulted at every migration phase boundary.
MIGRATION_SITE = "migration"
#: Fault kind that aborts a migration at a phase boundary.
MIGRATION_ABORT = "migration_abort"

#: Migration phases, in protocol order.  ``commit`` is the atomic
#: routing-table flip inside cutover; everything before it leaves the
#: source authoritative, everything after leaves the target.
MIGRATION_PHASES = ("prepare", "copy", "catchup", "cutover", "cleanup")


class MigrationError(ClusterError):
    """A migration could not run (bad arguments, not a mid-flight fault)."""


@dataclass(frozen=True)
class SliceLocation:
    """One immutable routing-table entry."""

    slice_id: int
    key_range: KeyRange
    epoch: int
    replicas: Tuple[str, ...]  #: node names, primary first

    def __contains__(self, key) -> bool:
        return key in self.key_range


class RoutingTable:
    """The authoritative, versioned slice -> replica-set map.

    Only the :class:`ClusterController` writes it; everyone else reads
    through a :class:`RoutingView` snapshot.  ``version`` bumps on every
    publish/drop, so views can cheaply detect staleness.
    """

    def __init__(self):
        self.version = 0
        self._entries: Dict[int, SliceLocation] = {}

    def publish(self, entry: SliceLocation) -> None:
        self._entries[entry.slice_id] = entry
        self.version += 1

    def drop(self, slice_id: int) -> None:
        del self._entries[slice_id]
        self.version += 1

    def entry(self, slice_id: int) -> SliceLocation:
        return self._entries[slice_id]

    def entries(self) -> List[SliceLocation]:
        return sorted(self._entries.values(), key=lambda e: e.slice_id)

    def lookup(self, key) -> SliceLocation:
        """The entry owning ``key`` (KeyError when no slice does)."""
        for entry in self._entries.values():
            if key in entry:
                return entry
        raise KeyError(f"no slice owns key {key!r}")

    def __repr__(self):
        return (
            f"RoutingTable(v{self.version}, {len(self._entries)} slices)"
        )


class RoutingView:
    """A client's cached snapshot of the routing table.

    ``lookup`` resolves against the *cached* entries -- the client only
    learns of ownership changes when a server rejects its stale epoch
    stamp and it calls :meth:`refresh` (exactly the redirect-and-retry
    dance of real routed stores).
    """

    def __init__(self, controller: "ClusterController"):
        self._controller = controller
        self.version: int = -1
        self._entries: List[SliceLocation] = []
        self.refreshes = 0
        self.refresh()

    @property
    def stale(self) -> bool:
        """True when the authoritative table has moved past this view."""
        return self.version != self._controller.table.version

    def refresh(self) -> None:
        """Re-snapshot the authoritative table."""
        table = self._controller.table
        self._entries = table.entries()
        self.version = table.version
        self.refreshes += 1

    def lookup(self, key) -> Tuple[StorageServer, SliceLocation]:
        """The cached primary server + entry for ``key``."""
        for entry in self._entries:
            if key in entry:
                return self._controller.node(entry.replicas[0]), entry
        raise KeyError(f"no cached slice owns key {key!r}")

    def replicas(self, entry: SliceLocation) -> List[StorageServer]:
        """The cached replica servers for one entry, primary first."""
        return [self._controller.node(name) for name in entry.replicas]


class ClusterController:
    """The deterministic, simulator-driven cluster control plane."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        faults=None,
        qos=None,
    ):
        self.sim = sim
        self.network = network
        self.table = RoutingTable()
        self.nodes: Dict[str, StorageServer] = {}
        self.draining: set = set()
        #: slice_id -> {node name -> that replica's live Slice object}
        self._replicas: Dict[int, Dict[str, Slice]] = {}
        self._next_slice_id = 0
        # Epoch 0 is the birth epoch of every slice; ownership changes
        # draw from this cluster-wide counter so no two changes ever
        # reuse a stamp.
        self._next_epoch = 1
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.migration_budget = (
            qos.migration if qos is not None else None
        )
        self._migrations_inflight = 0
        #: Pacing horizon for the migration copy budget: the simulated
        #: time at which the next paced byte may enter the network.
        self._budget_free_ns = 0
        #: Optional :class:`~repro.cluster.membership.ControllerGroup`
        #: (set by an *active* group's constructor).  ``None`` keeps the
        #: historical immortal-singleton behaviour: no leases, no phase
        #: barriers, no fencing -- byte-identical event sequences.
        self.group = None
        self.obs = None
        self.migrations_started = Counter("cluster.migrations_started")
        self.migrations_completed = Counter("cluster.migrations_completed")
        self.migrations_aborted = Counter("cluster.migrations_aborted")
        self.bytes_migrated = Counter("cluster.bytes_migrated")
        self.splits = Counter("cluster.splits")
        self.merges = Counter("cluster.merges")
        self.rebalance_moves = Counter("cluster.rebalance_moves")
        #: Per-slice bytes-served watermarks for :meth:`rebalance`.
        self._load_marks: Dict[int, int] = {}
        #: Passes to sit out after a move (cutover backlog drains as a
        #: burst that would otherwise read as fresh load skew).
        self._rebalance_cooldown = 0

    # -- plane wiring ------------------------------------------------------------------
    def attach(self, plane) -> "ClusterController":
        """Wire one plane into the controller itself.

        * ``Observability`` -- migration/routing counters become
          snapshot metrics; migrations emit phase spans;
        * ``FaultPlan`` -- the plan's ``migration`` site drives the
          phase-boundary abort points;
        * ``QosPlan`` -- its :class:`~repro.qos.config.MigrationConfig`
          becomes the copy budget;
        * ``PolicyPlan`` -- the controller becomes the plan's
          control-plane actuator (rebalance, split, migration pacing).

        Node-level planes are attached per node via
        :meth:`StorageServer.attach`, not here.
        """
        from repro.faults.plan import FaultPlan
        from repro.obs.attach import Observability
        from repro.policy.engine import PolicyPlan
        from repro.qos.config import QosPlan

        if isinstance(plane, Observability):
            self.obs = plane
            registry = plane.metrics
            for counter in (
                self.migrations_started,
                self.migrations_completed,
                self.migrations_aborted,
                self.bytes_migrated,
                self.splits,
                self.merges,
                self.rebalance_moves,
            ):
                registry.register_counter(counter.name, counter)
            registry.register_callback(
                "cluster.routing_version", lambda _now: self.table.version
            )
            registry.register_callback(
                "cluster.nodes", lambda _now: len(self.nodes)
            )
        elif isinstance(plane, FaultPlan):
            self.faults = plane.injector(MIGRATION_SITE)
        elif isinstance(plane, QosPlan):
            self.migration_budget = plane.migration
        elif isinstance(plane, PolicyPlan):
            plane._bind_controller(self)
        else:
            raise TypeError(
                f"don't know how to attach {type(plane).__name__}; expected "
                "Observability, FaultPlan, QosPlan or PolicyPlan"
            )
        return self

    # -- membership --------------------------------------------------------------------
    def add_node(self, name: str, server: StorageServer) -> None:
        """Enroll a (possibly slice-less) server under ``name``.

        Any slices the server already hosts are published to the
        routing table, so an existing single-node deployment can be
        adopted wholesale before scaling out.
        """
        if name in self.nodes:
            raise ValueError(f"node {name!r} already enrolled")
        self.nodes[name] = server
        for slice_ in server.slices:
            if slice_.slice_id in self._replicas:
                self._replicas[slice_.slice_id][name] = slice_
                entry = self.table.entry(slice_.slice_id)
                self.table.publish(
                    SliceLocation(
                        slice_id=entry.slice_id,
                        key_range=entry.key_range,
                        epoch=entry.epoch,
                        replicas=entry.replicas + (name,),
                    )
                )
            else:
                self._replicas[slice_.slice_id] = {name: slice_}
                self.table.publish(
                    SliceLocation(
                        slice_id=slice_.slice_id,
                        key_range=slice_.key_range,
                        epoch=slice_.epoch,
                        replicas=(name,),
                    )
                )
                self._next_slice_id = max(
                    self._next_slice_id, slice_.slice_id + 1
                )

    def node(self, name: str) -> StorageServer:
        return self.nodes[name]

    def drain_node(self, name: str):
        """Generator: migrate every replica off ``name``.

        The node is marked draining first so the rebalancer stops
        routing new slices to it; each hosted replica then migrates to
        the least-loaded other node not already holding one.  Returns
        the number of slices moved.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        self.draining.add(name)
        moved = 0
        for slice_id in sorted(
            sid for sid, hosts in self._replicas.items() if name in hosts
        ):
            target = self._placement_target(exclude_slice=slice_id)
            if target is None:
                raise MigrationError(
                    f"no node can absorb slice {slice_id} from {name!r}"
                )
            yield from self.migrate_slice(slice_id, name, target)
            moved += 1
        return moved

    def remove_node(self, name: str) -> StorageServer:
        """Retire a node that no longer hosts any replica."""
        hosted = [
            sid for sid, hosts in self._replicas.items() if name in hosts
        ]
        if hosted:
            raise MigrationError(
                f"node {name!r} still hosts slices {hosted}; drain it first"
            )
        self.draining.discard(name)
        return self.nodes.pop(name)

    def _placement_target(
        self, exclude_slice: Optional[int] = None
    ) -> Optional[str]:
        """The least-loaded live node eligible for a new replica."""
        best = None
        best_load = None
        for name in sorted(self.nodes):
            if name in self.draining:
                continue
            if not self.nodes[name].up:
                continue
            if (
                exclude_slice is not None
                and name in self._replicas.get(exclude_slice, ())
            ):
                continue
            load = sum(
                self._slice_bytes(s) for s in self.nodes[name].slices
            )
            if best_load is None or load < best_load:
                best, best_load = name, load
        return best

    # -- slice lifecycle -----------------------------------------------------------------
    def create_slice(
        self, key_range: KeyRange, on: List[str], **lsm_kwargs
    ) -> int:
        """Create a fresh slice replicated on the named nodes; returns
        its slice id.  The primary is ``on[0]``."""
        if not on:
            raise ValueError("need at least one hosting node")
        for entry in self.table.entries():
            if (
                entry.key_range.lo < key_range.hi
                and key_range.lo < entry.key_range.hi
            ):
                raise ValueError(
                    f"key range overlaps slice {entry.slice_id}"
                )
        slice_id = self._next_slice_id
        self._next_slice_id += 1
        hosts: Dict[str, Slice] = {}
        for name in on:
            slice_ = Slice(slice_id, key_range, lsm=LSMTree(**lsm_kwargs))
            self.nodes[name].add_slice(slice_)
            hosts[name] = slice_
        self._replicas[slice_id] = hosts
        self.table.publish(
            SliceLocation(
                slice_id=slice_id,
                key_range=key_range,
                epoch=0,
                replicas=tuple(on),
            )
        )
        return slice_id

    def replica(self, slice_id: int, name: str) -> Slice:
        """The live Slice object of one replica."""
        return self._replicas[slice_id][name]

    def replica_router(
        self, slice_id: int
    ) -> Callable[[], List[StorageServer]]:
        """A router for :class:`~repro.cluster.replication.ReplicatedKV`:
        resolves the slice's *current* replica servers on every call, so
        membership changes take effect without rebuilding the KV."""

        def _route() -> List[StorageServer]:
            entry = self.table.entry(slice_id)
            return [self.nodes[name] for name in entry.replicas]

        return _route

    def view(self) -> RoutingView:
        """A fresh client-side routing snapshot."""
        return RoutingView(self)

    # -- migration ---------------------------------------------------------------------
    def migrate_slice(self, slice_id: int, src_name: str, dst_name: str):
        """Generator: move one replica of a slice from ``src_name`` to
        ``dst_name`` while the slice keeps serving.

        Protocol (see the module docstring):

        1. **prepare** -- create an importing (non-routable) twin on the
           target; pause source compaction so the run inventory is
           stable.
        2. **copy** -- ship every registered run: read on the source
           (charged to the ``scan`` admission class), transfer, store on
           the target, adopt with the source freeze token.
        3. **catchup** -- repeat for runs flushed during the copy until
           a pass moves nothing.
        4. **cutover** -- block writes on the source, ship the
           WAL-protected tail (pending patches + frozen memtable), then
           *atomically* bump the epoch, flip the routing entry, make the
           target live and detach the source.  Blocked writers retry
           and are redirected by the new table.
        5. **cleanup** -- free the source's now-orphaned patches.

        A :class:`TransientFault` anywhere before the commit aborts the
        migration: the importing twin is discarded, the source unfreezes
        and routing is untouched.  Faults after the commit only delay
        cleanup (the target is already authoritative and durable).
        """
        if src_name not in self.nodes or dst_name not in self.nodes:
            raise KeyError(f"unknown node in {src_name!r} -> {dst_name!r}")
        if src_name == dst_name:
            raise MigrationError("source and target are the same node")
        hosts = self._replicas.get(slice_id)
        if hosts is None or src_name not in hosts:
            raise MigrationError(
                f"slice {slice_id} has no replica on {src_name!r}"
            )
        if dst_name in hosts:
            raise MigrationError(
                f"slice {slice_id} already has a replica on {dst_name!r}"
            )
        budget = self.migration_budget
        if (
            budget is not None
            and budget.max_concurrent is not None
            and self._migrations_inflight >= budget.max_concurrent
        ):
            raise MigrationError(
                f"migration budget allows {budget.max_concurrent} "
                "concurrent migrations"
            )
        src = self.nodes[src_name]
        dst = self.nodes[dst_name]
        source_slice = hosts[src_name]
        source_lsm = source_slice.lsm
        target_slice = Slice(
            slice_id,
            source_slice.key_range,
            lsm=LSMTree(
                memtable_bytes=source_lsm.memtable.capacity_bytes,
                enable_wal=source_lsm.wal is not None,
                durable_wal=source_lsm.durable_wal,
            ),
        )
        target_slice.epoch = source_slice.epoch
        # Under a replicated control plane the migration runs under a
        # leadership lease, checked at every transfer and replicated at
        # every phase boundary; ``None`` (no group) skips all of it.
        lease = (
            self.group.open_lease(slice_id)
            if self.group is not None
            else None
        )
        self.migrations_started.add()
        self._migrations_inflight += 1
        start_ns = self.sim.now
        committed = False
        try:
            # -- prepare --
            self._fault_point("prepare", slice_id)
            yield from self._phase_barrier(
                "prepare", lease, src_name, dst_name
            )
            self._check_nodes(src, dst, lease)
            source_slice.migration_hold = True
            yield from self._quiesce_compaction(source_slice)
            dst.add_slice(target_slice, importing=True)
            copied: set = set()
            # -- copy: snapshot of the registered runs --
            self._fault_point("copy", slice_id)
            yield from self._phase_barrier(
                "copy", lease, src_name, dst_name
            )
            yield from self._copy_runs(
                src, dst, source_slice, target_slice, copied, lease
            )
            # -- catch-up: runs flushed while we were copying.  Under a
            # steady write stream each pass finds the runs that landed
            # during the previous one, so chasing to zero may never
            # terminate; once a pass moves <= 1 run the delta is small
            # enough for the stop-and-copy cutover to absorb.
            self._fault_point("catchup", slice_id)
            yield from self._phase_barrier(
                "catchup", lease, src_name, dst_name
            )
            while True:
                moved = yield from self._copy_runs(
                    src, dst, source_slice, target_slice, copied, lease
                )
                if moved <= 1:
                    break
            # -- cutover --
            self._fault_point("cutover", slice_id)
            yield from self._phase_barrier(
                "cutover", lease, src_name, dst_name
            )
            # Pre-ship the WAL tail (pending patches + force-frozen
            # memtable) while writes still flow, so the write-blocked
            # window below only has to move the last few milliseconds
            # of traffic -- short enough that blocked writers ride it
            # out inside their redirect-retry budget.
            source_lsm.flush()
            yield from self._copy_tail(
                src, dst, source_lsm, target_slice, copied, lease
            )
            yield from self._copy_runs(
                src, dst, source_slice, target_slice, copied, lease
            )
            source_slice.write_blocked = True
            # Final delta: whatever landed between the pre-ship and the
            # write block.  These are the acked writes whose durability
            # still rests on the source WAL; adopting them as stored
            # runs on the target makes them durable there before the
            # commit.
            yield from self._copy_runs(
                src, dst, source_slice, target_slice, copied, lease
            )
            source_lsm.flush()
            yield from self._copy_tail(
                src, dst, source_lsm, target_slice, copied, lease
            )
            # -- commit: atomic (no yields between here and publish) --
            self._check_nodes(src, dst, lease)
            if self.group is not None:
                # Exactly-one-cutover guard: only the current leader at
                # the quorum-agreed term may flip routing.
                self.group.fence_publish(lease)
            epoch = self._next_epoch
            self._next_epoch += 1
            source_slice.epoch = epoch  # stale stamps die on the source
            target_slice.epoch = epoch
            dst.finish_import(target_slice)
            src.remove_slice(source_slice)
            del hosts[src_name]
            hosts[dst_name] = target_slice
            old = self.table.entry(slice_id)
            self.table.publish(
                SliceLocation(
                    slice_id=slice_id,
                    key_range=old.key_range,
                    epoch=epoch,
                    replicas=tuple(
                        dst_name if name == src_name else name
                        for name in old.replicas
                    ),
                )
            )
            committed = True
            if self.group is not None:
                self.group.note_commit(lease)
            self._load_marks.pop(slice_id, None)
            source_slice.write_blocked = False
            # -- cleanup: the source copy is garbage now --
            self._fault_point("cleanup", slice_id)
            yield from self._phase_barrier(
                "cleanup", lease, src_name, dst_name
            )
            for run in source_lsm.runs_snapshot():
                yield from src.storage.free_patch(run.handle)
            self.migrations_completed.add()
            if self.obs is not None and self.obs.trace.enabled:
                self.obs.trace.span(
                    "cluster/migration",
                    f"slice{slice_id}:{src_name}->{dst_name}",
                    start_ns,
                    self.sim.now,
                    epoch=epoch,
                )
        except TransientFault:
            if committed:
                # Only cleanup was interrupted: the target is already
                # authoritative; the source copy leaks until a retry of
                # cleanup (harmless -- space, not correctness).
                self.migrations_completed.add()
                return target_slice
            # Roll back: discard the importing twin, unfreeze the
            # source.  Routing never changed, so clients were never
            # redirected; every acked write is still durable on the
            # source (its runs, WAL and ledgered state are untouched).
            # A fenced driver whose slice a *newer* leadership has
            # since taken over must leave the shared migration flags
            # alone -- the new migration owns them now.
            if self.group is None or self.group.lease_current(lease):
                source_slice.write_blocked = False
            if target_slice in dst.slices:
                dst.remove_slice(target_slice)
            if self.group is not None:
                self.group.note_abort(lease)
            self.migrations_aborted.add()
            if self.obs is not None:
                self.obs.metrics.counter("cluster.migration_aborts").add(1)
                if self.obs.trace.enabled:
                    self.obs.trace.instant(
                        "cluster/migration",
                        f"abort:slice{slice_id}",
                        self.sim.now,
                    )
            raise
        finally:
            self._migrations_inflight -= 1
            if self.group is None or self.group.lease_current(lease):
                source_slice.migration_hold = False
            if not committed:
                # Wake the source compactor in case holds piled up.
                poke = src._compaction_pokes.get(source_slice.slice_id)
                if poke is not None:
                    poke.put(True)
        return target_slice

    def _copy_runs(
        self, src, dst, source_slice, target_slice, copied, lease=None
    ):
        """One snapshot pass: ship every not-yet-copied registered run.

        Dedup is by freeze token, which survives the pending-patch ->
        registered-run transition: a patch pre-shipped from the WAL
        tail is not re-copied when the source's background flush later
        registers it as a run.  (Compaction, which would coalesce
        tokens, is paused for the whole migration.)
        """
        moved = 0
        for run in source_slice.lsm.runs_snapshot():
            if run.freeze_token in copied:
                continue
            self._check_nodes(src, dst, lease)
            patch = yield from src.handle_patch_read(
                run.handle, slice_=source_slice
            )
            yield from self._paced_send(src, dst, patch.nbytes)
            handle = yield from dst.storage.store_patch(patch)
            target_slice.lsm.adopt_run(
                patch, handle, run.level, run.freeze_token
            )
            copied.add(run.freeze_token)
            self.bytes_migrated.add(patch.nbytes)
            moved += 1
        return moved

    def _quiesce_compaction(self, slice_: Slice):
        """Wait out a merge that was already in flight when the
        migration hold landed -- it would otherwise free run handles
        under the copy pass.  The hold stops new merges from starting,
        so this terminates."""
        while slice_.compaction_active:
            yield self.sim.timeout(MS)

    def _copy_tail(
        self, src, dst, source_lsm, target_slice, copied, lease=None
    ):
        """Ship the frozen-but-unstored pending patches."""
        for frozen in list(source_lsm._pending):
            if frozen.token in copied:
                continue
            self._check_nodes(src, dst, lease)
            yield from self._paced_send(src, dst, frozen.patch.nbytes)
            handle = yield from dst.storage.store_patch(frozen.patch)
            target_slice.lsm.adopt_run(frozen.patch, handle, 0, frozen.token)
            copied.add(frozen.token)
            self.bytes_migrated.add(frozen.patch.nbytes)

    def _paced_send(self, src, dst, nbytes: int):
        """Network transfer, throttled under the migration copy budget."""
        budget = self.migration_budget
        if budget is not None and budget.copy_mb_per_s is not None:
            from repro.sim.units import transfer_ns

            now = self.sim.now
            if self._budget_free_ns > now:
                yield self.sim.timeout(self._budget_free_ns - now)
            self._budget_free_ns = max(self._budget_free_ns, self.sim.now) + (
                transfer_ns(nbytes, budget.copy_mb_per_s)
            )
        yield from self.network.send(src.nic, dst.nic, nbytes)

    def _check_nodes(self, src, dst, lease=None) -> None:
        src._check_up()
        dst._check_up()
        if lease is not None:
            # Leadership fencing on the data path: the driving replica
            # must still be up and both nodes must accept its term.
            self.group.check_lease(lease, src, dst)

    def _phase_barrier(self, phase, lease, src_name, dst_name):
        """Generator: the replicated-control-plane hook at one phase
        boundary -- leadership fencing, fenced command round-trips and
        quorum record replication.  A no-op (no events, no yields)
        without a :class:`~repro.cluster.membership.ControllerGroup`.
        """
        if lease is None:
            return
        yield from self.group.phase_barrier(
            phase, lease, src_name, dst_name
        )

    def _fault_point(self, phase: str, slice_id: int) -> None:
        """Abort-here hook consulted at each phase boundary."""
        event = self.faults.fires(
            MIGRATION_ABORT, phase=phase, slice_id=slice_id
        )
        if event is not None:
            raise TransientFault(
                f"injected migration abort at {phase} for slice {slice_id}"
            )

    # -- split / merge -----------------------------------------------------------------
    def split_slice(self, slice_id: int, at):
        """Generator: split one slice into two at key ``at``.

        Every replica rewrites its runs: each patch is read, its items
        partitioned by the split point, and the halves stored and
        adopted into the two child slices (the one rewrite pays for
        permanently smaller compactions on both children).  The
        memtables split synchronously.  Children get fresh slice ids
        and a fresh epoch, so stale-routed requests are redirected.
        Returns ``(low_id, high_id)``.
        """
        entry = self.table.entry(slice_id)
        low_range, high_range = entry.key_range.split(at)
        low_id = self._next_slice_id
        high_id = self._next_slice_id + 1
        self._next_slice_id += 2
        epoch = self._next_epoch
        self._next_epoch += 1
        low_hosts: Dict[str, Slice] = {}
        high_hosts: Dict[str, Slice] = {}
        for name in entry.replicas:
            server = self.nodes[name]
            parent = self._replicas[slice_id][name]
            lsm = parent.lsm
            parent.migration_hold = True
            yield from self._quiesce_compaction(parent)
            try:
                children = []
                for child_id, child_range in (
                    (low_id, low_range),
                    (high_id, high_range),
                ):
                    child = Slice(
                        child_id,
                        child_range,
                        lsm=LSMTree(
                            memtable_bytes=lsm.memtable.capacity_bytes,
                            enable_wal=lsm.wal is not None,
                            durable_wal=lsm.durable_wal,
                        ),
                    )
                    child.epoch = epoch
                    children.append(child)
                low, high = children
                # Rewrite runs: one read per parent patch, one store per
                # non-empty half.
                parent.write_blocked = True
                lsm.flush()
                sources = [
                    (run.handle, run.level, run.freeze_token, None)
                    for run in lsm.runs_snapshot()
                ] + [
                    (None, 0, frozen.token, frozen.patch)
                    for frozen in lsm._pending
                ]
                freed = [run.handle for run in lsm.runs_snapshot()]
                for handle, level, token, patch in sources:
                    if patch is None:
                        patch = yield from server.handle_patch_read(
                            handle, slice_=parent
                        )
                    for child in (low, high):
                        part = patch.restricted_to(child.key_range)
                        if part is None:
                            continue
                        new_handle = yield from server.storage.store_patch(
                            part
                        )
                        child.lsm.adopt_run(part, new_handle, level, token)
                # Commit for this replica (synchronous).
                server.add_slice(low)
                server.add_slice(high)
                server.remove_slice(parent)
                low_hosts[name] = low
                high_hosts[name] = high
                for handle in freed:
                    yield from server.storage.free_patch(handle)
            finally:
                parent.migration_hold = False
                parent.write_blocked = False
        self._replicas[low_id] = low_hosts
        self._replicas[high_id] = high_hosts
        del self._replicas[slice_id]
        self._load_marks.pop(slice_id, None)
        self.table.drop(slice_id)
        self.table.publish(
            SliceLocation(low_id, low_range, epoch, entry.replicas)
        )
        self.table.publish(
            SliceLocation(high_id, high_range, epoch, entry.replicas)
        )
        self.splits.add()
        if self.obs is not None and self.obs.trace.enabled:
            self.obs.trace.instant(
                "cluster/topology",
                f"split:slice{slice_id}->({low_id},{high_id})",
                self.sim.now,
            )
        return low_id, high_id

    def merge_slices(self, low_id: int, high_id: int):
        """Generator: merge two adjacent slices into one.

        Cheap compared to a split: every registered run of both parents
        is adopted as-is into the merged child (runs are range-disjoint,
        so no rewrite is needed); only the memtables are frozen and
        re-stored.  Both parents must live on the same replica set.
        Returns the merged slice id.
        """
        low_entry = self.table.entry(low_id)
        high_entry = self.table.entry(high_id)
        if low_entry.replicas != high_entry.replicas:
            raise MigrationError(
                "merge needs both slices on the same replica set; got "
                f"{low_entry.replicas} vs {high_entry.replicas}"
            )
        merged_range = low_entry.key_range.merged_with(high_entry.key_range)
        merged_id = self._next_slice_id
        self._next_slice_id += 1
        epoch = self._next_epoch
        self._next_epoch += 1
        merged_hosts: Dict[str, Slice] = {}
        for name in low_entry.replicas:
            server = self.nodes[name]
            parents = [
                self._replicas[low_id][name],
                self._replicas[high_id][name],
            ]
            lsm0 = parents[0].lsm
            merged = Slice(
                merged_id,
                merged_range,
                lsm=LSMTree(
                    memtable_bytes=lsm0.memtable.capacity_bytes,
                    enable_wal=lsm0.wal is not None,
                    durable_wal=lsm0.durable_wal,
                ),
            )
            merged.epoch = epoch
            try:
                # Both parents of a split share their ancestor's freeze
                # tokens, so the merged LSM must re-sequence: gather all
                # runs + pending patches, order them by original token
                # (ties broken by range -- disjoint, so shadowing is
                # unaffected) and adopt with fresh consecutive tokens.
                sources = []
                for parent in parents:
                    parent.migration_hold = True
                    yield from self._quiesce_compaction(parent)
                    parent.write_blocked = True
                    parent.lsm.flush()
                    for run in parent.lsm.runs_snapshot():
                        sources.append(
                            (run.freeze_token, parent, run, None)
                        )
                    for frozen in parent.lsm._pending:
                        sources.append(
                            (frozen.token, parent, None, frozen.patch)
                        )
                sources.sort(key=lambda s: (s[0], s[1].key_range.lo))
                for token, (_, parent, run, pending) in enumerate(sources):
                    if run is not None:
                        patch = yield from server.handle_patch_read(
                            run.handle, slice_=parent
                        )
                        merged.lsm.adopt_run(
                            patch, run.handle, run.level, token
                        )
                    else:
                        handle = yield from server.storage.store_patch(
                            pending
                        )
                        merged.lsm.adopt_run(pending, handle, 0, token)
                server.add_slice(merged)
                for parent in parents:
                    server.remove_slice(parent)
                merged_hosts[name] = merged
            finally:
                for parent in parents:
                    parent.migration_hold = False
                    parent.write_blocked = False
        self._replicas[merged_id] = merged_hosts
        del self._replicas[low_id]
        del self._replicas[high_id]
        self._load_marks.pop(low_id, None)
        self._load_marks.pop(high_id, None)
        self.table.drop(low_id)
        self.table.drop(high_id)
        self.table.publish(
            SliceLocation(merged_id, merged_range, epoch, low_entry.replicas)
        )
        self.merges.add()
        if self.obs is not None and self.obs.trace.enabled:
            self.obs.trace.instant(
                "cluster/topology",
                f"merge:({low_id},{high_id})->slice{merged_id}",
                self.sim.now,
            )
        return merged_id

    # -- rebalancing -------------------------------------------------------------------
    @staticmethod
    def _slice_bytes(slice_: Slice) -> int:
        return slice_.bytes_read.value + slice_.bytes_written.value

    def slice_load(self, slice_id: int) -> int:
        """Bytes served by one slice since the last :meth:`rebalance`
        consumed its counters (summed across replicas)."""
        total = sum(
            self._slice_bytes(s) for s in self._replicas[slice_id].values()
        )
        return total - self._load_marks.get(slice_id, 0)

    def node_load(self, name: str) -> int:
        """Bytes served by one node since the last rebalance pass."""
        return sum(
            self.slice_load(sid)
            for sid, hosts in self._replicas.items()
            if name in hosts
        )

    def rebalance(self, imbalance: float = 2.0):
        """Generator: one load-driven move, if the cluster is skewed.

        Compares per-node bytes served since the previous pass.  When
        the hottest node carries more than ``imbalance`` times the
        coldest (and has more than one slice to give), its hottest
        slice migrates to the coldest node.  Returns a
        ``(slice_id, src, dst)`` tuple for the move made, or ``None``
        when the cluster is balanced.  Load watermarks reset either
        way, so each pass looks at fresh traffic.

        A pass that moves a slice puts the rebalancer on a one-pass
        cooldown: requests queued behind the cutover drain as a burst
        at the new replica, and acting on that burst would read it as
        load skew and thrash the slice straight back.
        """
        eligible = [
            name
            for name in sorted(self.nodes)
            if name not in self.draining and self.nodes[name].up
        ]
        move = None
        if self._rebalance_cooldown > 0:
            self._rebalance_cooldown -= 1
            eligible = []
        if len(eligible) >= 2:
            loads = {name: self.node_load(name) for name in eligible}
            hot = max(eligible, key=lambda n: (loads[n], n))
            cold = min(eligible, key=lambda n: (loads[n], n))
            hot_slices = [
                sid
                for sid, hosts in self._replicas.items()
                if hot in hosts and cold not in hosts
            ]
            if (
                hot != cold
                and hot_slices
                and len(self.nodes[hot].slices) > 1
                and loads[hot] > imbalance * max(loads[cold], 1)
            ):
                victim = max(
                    hot_slices, key=lambda sid: (self.slice_load(sid), sid)
                )
                yield from self.migrate_slice(victim, hot, cold)
                self.rebalance_moves.add()
                self._rebalance_cooldown = 1
                move = (victim, hot, cold)
        # Reset watermarks so the next pass sees fresh deltas.
        for sid, hosts in self._replicas.items():
            self._load_marks[sid] = sum(
                self._slice_bytes(s) for s in hosts.values()
            )
        return move

    def __repr__(self):
        return (
            f"ClusterController({len(self.nodes)} nodes, "
            f"{len(self._replicas)} slices, table v{self.table.version})"
        )

"""Fault-tolerant replicated control plane: SWIM membership, leader
election and leadership fencing.

The paper's host-side control software is a single point of failure the
moment it runs on real machines; this module makes the control plane
itself a fault domain.  A :class:`ControllerGroup` wraps the existing
:class:`~repro.cluster.control.ClusterController` state machine with a
set of :class:`ControllerReplica` processes:

* **SWIM failure detection** (:class:`SwimDetector`) -- every live
  replica probes one random member per period (direct ping, then
  ping-req through ``ping_req_fanout`` proxies), marks a silent member
  *suspect*, and confirms it *dead* after ``suspect_timeout_ns``.  All
  probing runs on simulated time with one RNG stream per member derived
  from ``(seed, crc32(member))``, so a run replays byte-identically.  A
  confirmed-dead member that answers again must stay reachable for
  ``rejoin_stable_ns`` before it is readmitted -- a link flapping faster
  than the suspicion window cannot oscillate membership.
* **Bully-with-quorum leader election** -- the lowest-rank live replica
  whose view has confirmed the leader dead campaigns with a fresh term
  (monotonic, ``max(term, voted_term) + 1``); each voter grants at most
  one vote per term, and winning requires a majority quorum, so a
  minority partition can never elect a second leader.
* **Leadership fencing** -- the winner installs its term on every
  reachable storage node (:meth:`~repro.cluster.node.StorageServer.
  fence_controller`, the controller-traffic extension of
  :class:`~repro.errors.WrongEpochError`), and every migration runs
  under a :class:`ControllerLease` checked on each data transfer and
  phase boundary: a deposed leader's commands die at the nodes, and its
  routing-table publish is rejected by :meth:`ControllerGroup.
  fence_publish` before the commit point.
* **Record replication** -- each migration phase boundary replicates a
  :class:`MigrationRecord` to the follower replicas and requires a
  majority of acks before the phase may proceed, so a leader that dies
  (or is partitioned) mid-migration leaves a quorum that knows exactly
  how far it got; the next leader resumes the bookkeeping via
  :meth:`ControllerGroup.resolve_inflight` -- adopting the migration if
  the routing table shows the cutover committed, safely aborting it
  (discard the importing twin, unfreeze the source) otherwise.

**No-drift contract**: the group is opt-in like every other plane.  A
group with ``n_replicas=1`` wires nothing -- no processes, no RNG
draws, no network traffic -- and the controller behaves exactly as the
historical immortal singleton.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.network import (
    MessageDroppedError,
    Network,
    Nic,
    TEN_GBE_MB_S,
)
from repro.errors import ClusterError, TransientFault, WrongEpochError
from repro.faults.retry import race_with_timeout
from repro.sim import MS, Simulator
from repro.sim.stats import Counter

#: Wire sizes of the control-plane message types (headers + payload).
PING_BYTES = 128
ACK_BYTES = 128
VOTE_BYTES = 256
ANNOUNCE_BYTES = 256
COMMAND_BYTES = 256
RECORD_BYTES = 1024
FENCE_BYTES = 128

#: Per-observer member states.
MEMBER_ALIVE = "alive"
MEMBER_SUSPECT = "suspect"
MEMBER_DEAD = "dead"

#: Terminal phases a replicated migration record can reach.
RECORD_COMMITTED = "committed"
RECORD_ABORTED = "aborted"


class ControllerUnavailableError(TransientFault, ClusterError):
    """No live controller leader can accept the operation right now."""


class ControllerFencedError(WrongEpochError):
    """A deposed (or dead) controller leader tried to act.

    Subclasses :class:`~repro.errors.WrongEpochError`: leadership terms
    are routing epochs for controller traffic, and the same transient
    abort-and-retry machinery absorbs both.
    """


class ControllerReplicationError(TransientFault, ClusterError):
    """A migration record failed to reach a quorum of replicas."""


@dataclass(frozen=True)
class SwimConfig:
    """Timing knobs of the SWIM failure detector (all simulated ns)."""

    #: Probe period: each live replica pings one member per period.
    period_ns: int = 20 * MS
    #: Patience per ping round-trip before it counts as a miss.
    ping_timeout_ns: int = 5 * MS
    #: Indirect probes sent through other replicas after a direct miss.
    ping_req_fanout: int = 1
    #: Suspect -> confirmed-dead patience.
    suspect_timeout_ns: int = 100 * MS
    #: How long a confirmed-dead member must answer probes again before
    #: it is readmitted; ``None`` = one full suspicion window.  This is
    #: the anti-flap gate: a partition healing and re-cutting inside the
    #: window cannot toggle membership.
    rejoin_stable_ns: Optional[int] = None

    def __post_init__(self):
        if self.period_ns <= 0:
            raise ValueError("period_ns must be > 0")
        if self.ping_timeout_ns <= 0:
            raise ValueError("ping_timeout_ns must be > 0")
        if self.ping_req_fanout < 0:
            raise ValueError("ping_req_fanout must be >= 0")
        if self.suspect_timeout_ns <= 0:
            raise ValueError("suspect_timeout_ns must be > 0")

    def stable_ns(self) -> int:
        if self.rejoin_stable_ns is not None:
            return self.rejoin_stable_ns
        return self.suspect_timeout_ns


class ControllerReplica:
    """One member of the replicated controller group.

    Carries the fault-domain state (liveness, NIC, persistent term and
    vote) -- the *logic* lives in :class:`ControllerGroup`, which drives
    whichever replica currently leads.  ``crash()``/``restart()`` follow
    the :class:`~repro.faults.runner.FaultRunner` scheduled-crash
    protocol, so a plan can kill a controller like any storage node.
    """

    def __init__(self, sim: Simulator, name: str, rank: int):
        self.sim = sim
        self.name = name
        self.rank = rank
        self.nic = Nic(sim, TEN_GBE_MB_S, lanes=1, name=name)
        self.up = True
        #: Highest leadership term this replica has adopted (persistent:
        #: survives crashes, like a Raft term on disk).
        self.term = 0
        #: Highest term this replica has granted a vote in.
        self.voted_term = 0
        self.crashes = 0
        self.restarts = 0

    def crash(self) -> None:
        """Fail-stop this replica (synchronous)."""
        if not self.up:
            raise RuntimeError(f"crash() on {self.name}, already down")
        self.up = False
        self.crashes += 1

    def restart(self):
        """Generator: bring the replica back (term and vote persist)."""
        if self.up:
            raise RuntimeError(f"restart() on {self.name}, already up")
        self.up = True
        self.restarts += 1
        return
        yield  # pragma: no cover -- keeps this a generator

    def __repr__(self):
        return (
            f"ControllerReplica({self.name}, rank={self.rank}, "
            f"term={self.term}, {'up' if self.up else 'DOWN'})"
        )


@dataclass(frozen=True)
class ControllerLease:
    """The leadership under which one migration runs.

    Captured at migration start and threaded through every transfer and
    phase barrier; the checks compare the lease against the *current*
    group state, so a leader crash or deposition mid-flight surfaces as
    a :class:`ControllerFencedError` at the next checkpoint.
    """

    slice_id: int
    replica: ControllerReplica
    term: int


@dataclass(frozen=True)
class MigrationRecord:
    """One replicated in-flight-migration bookkeeping entry."""

    slice_id: int
    phase: str
    src: str
    dst: str
    term: int


class _MemberView:
    """One observer's belief about one subject."""

    __slots__ = ("state", "since_ns", "rejoin_since_ns")

    def __init__(self):
        self.state = MEMBER_ALIVE
        self.since_ns = 0
        self.rejoin_since_ns: Optional[int] = None


class SwimDetector:
    """Deterministic SWIM-style failure detector over simulated time.

    Each live replica runs one probe loop: every ``period_ns`` it picks
    one random member (controller peers + watched storage nodes), sends
    a direct ping, and on a miss asks ``ping_req_fanout`` other live
    replicas to probe on its behalf.  State is per-observer (no gossip
    merge -- the simulator's shared clock makes dissemination timing a
    non-goal); transitions are alive -> suspect -> dead with refutation
    on any successful probe and stability-gated rejoin after death.
    """

    def __init__(self, sim: Simulator, group: "ControllerGroup",
                 config: SwimConfig, seed: int):
        self.sim = sim
        self.group = group
        self.config = config
        self.seed = seed
        #: observer name -> subject name -> view
        self._views: Dict[str, Dict[str, _MemberView]] = {}
        self._rngs: Dict[str, np.random.Generator] = {}

    # -- state access ------------------------------------------------------------------
    def _rng(self, member_name: str) -> np.random.Generator:
        rng = self._rngs.get(member_name)
        if rng is None:
            rng = np.random.default_rng(
                [self.seed, zlib.crc32(member_name.encode())]
            )
            self._rngs[member_name] = rng
        return rng

    def view(self, observer: str, subject: str) -> _MemberView:
        views = self._views.setdefault(observer, {})
        v = views.get(subject)
        if v is None:
            v = _MemberView()
            views[subject] = v
        return v

    def state(self, observer: str, subject: str) -> str:
        views = self._views.get(observer)
        if views is None or subject not in views:
            return MEMBER_ALIVE
        return views[subject].state

    # -- probe machinery ---------------------------------------------------------------
    def _probe_loop(self, replica: ControllerReplica,
                    until_ns: Optional[int]):
        cfg = self.config
        # Stagger the replicas' probe ticks across the period so the
        # group's probes interleave instead of bursting.
        offset = (replica.rank * cfg.period_ns) // max(
            1, len(self.group.replicas)
        )
        if offset > 0:
            yield self.sim.timeout(offset)
        while until_ns is None or self.sim.now < until_ns:
            yield self.sim.timeout(cfg.period_ns)
            if not replica.up:
                continue
            target_name = self._pick_target(replica)
            if target_name is not None:
                ok = yield from self._probe(replica, target_name)
                self._observe(replica.name, target_name, ok)
            self._sweep(replica)

    def _pick_target(self, replica: ControllerReplica) -> Optional[str]:
        # Recovery verification: while a confirmed-dead member is
        # inside its rejoin stability window, probe *it* every period
        # instead of sampling randomly.  The gate clock only keeps
        # running while every one of those probes succeeds, so a link
        # that re-cuts mid-window is observed (and resets the clock)
        # within one period -- without this, an unlucky random-sample
        # streak could miss a whole cut and readmit a flapping member.
        views = self._views.get(replica.name)
        if views:
            for subject in sorted(views):
                view = views[subject]
                if (
                    view.state == MEMBER_DEAD
                    and view.rejoin_since_ns is not None
                ):
                    return subject
        candidates = [
            name for name in self.group.member_names()
            if name != replica.name
        ]
        if not candidates:
            return None
        pick = int(self._rng(replica.name).integers(0, len(candidates)))
        return candidates[pick]

    def _endpoint(self, name: str):
        return self.group.endpoint(name)

    def _ping_once(self, src_nic: Nic, subject) -> bool:
        """Generator -> bool: one ping round-trip, raced with the ping
        timeout; a cut link or a dead subject reads as a miss."""

        def _rpc():
            yield from self.group.network.send(src_nic, subject.nic,
                                               PING_BYTES)
            if not subject.up:
                return False
            yield from self.group.network.send(subject.nic, src_nic,
                                               ACK_BYTES)
            return True

        def _safe():
            try:
                return (yield from _rpc())
            except MessageDroppedError:
                return False

        proc = self.sim.process(_safe())
        done, value = yield from race_with_timeout(
            self.sim, proc, self.config.ping_timeout_ns
        )
        return bool(value) if done else False

    def _probe(self, replica: ControllerReplica, target_name: str):
        """Generator -> bool: direct ping, then ping-req via proxies."""
        self.group.pings.add()
        subject = self._endpoint(target_name)
        ok = yield from self._ping_once(replica.nic, subject)
        if ok:
            return True
        proxies = [
            peer for peer in self.group.replicas
            if peer is not replica and peer.name != target_name and peer.up
        ]
        fanout = min(self.config.ping_req_fanout, len(proxies))
        for _ in range(fanout):
            pick = int(self._rng(replica.name).integers(0, len(proxies)))
            proxy = proxies.pop(pick)
            self.group.ping_reqs.add()
            try:
                # ping-req leg: observer -> proxy, proxy probes, answer
                # back.  Any cut link on the way reads as a miss.
                yield from self.group.network.send(
                    replica.nic, proxy.nic, PING_BYTES
                )
                if not proxy.up:
                    continue
                ok = yield from self._ping_once(proxy.nic, subject)
                yield from self.group.network.send(
                    proxy.nic, replica.nic, ACK_BYTES
                )
            except MessageDroppedError:
                continue
            if ok:
                return True
            if not proxies:
                break
        return False

    # -- state transitions -------------------------------------------------------------
    def _observe(self, observer: str, subject: str, ok: bool) -> None:
        view = self.view(observer, subject)
        now = self.sim.now
        if ok:
            if view.state == MEMBER_SUSPECT:
                view.state = MEMBER_ALIVE
                view.since_ns = now
                self.group._note_membership(observer, subject, "refute")
            elif view.state == MEMBER_DEAD:
                # Stability gate: a dead member must keep answering for
                # a full window before readmission, so heal/re-cut flaps
                # inside the suspicion window cannot oscillate.
                if view.rejoin_since_ns is None:
                    view.rejoin_since_ns = now
                elif now - view.rejoin_since_ns >= self.config.stable_ns():
                    view.state = MEMBER_ALIVE
                    view.since_ns = now
                    view.rejoin_since_ns = None
                    self.group._note_membership(observer, subject, "rejoin")
        else:
            if view.state == MEMBER_ALIVE:
                view.state = MEMBER_SUSPECT
                view.since_ns = now
                self.group._note_membership(observer, subject, "suspect")
            elif view.state == MEMBER_DEAD:
                view.rejoin_since_ns = None

    def _sweep(self, replica: ControllerReplica) -> None:
        """Confirm long-suspected members dead (observer-local)."""
        views = self._views.get(replica.name)
        if not views:
            return
        now = self.sim.now
        for subject in sorted(views):
            view = views[subject]
            if (
                view.state == MEMBER_SUSPECT
                and now - view.since_ns >= self.config.suspect_timeout_ns
            ):
                view.state = MEMBER_DEAD
                view.since_ns = now
                view.rejoin_since_ns = None
                self.group._on_confirm(replica.name, subject)


class ControllerGroup:
    """A replicated controller: N replicas fronting one shared
    :class:`~repro.cluster.control.ClusterController` state machine.

    ``replicas[0]`` (rank 0, name ``ctl0``) leads at term 1 out of the
    box -- matching the historical world where the controller simply
    exists.  :meth:`start` spawns the failure-detector processes; an
    inactive group (``n_replicas=1``) spawns nothing and changes
    nothing (the no-drift contract).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        controller,
        n_replicas: int = 3,
        swim: Optional[SwimConfig] = None,
        seed: int = 0,
        quorum: Optional[int] = None,
    ):
        if n_replicas < 1:
            raise ValueError("need at least one controller replica")
        self.sim = sim
        self.network = network
        self.controller = controller
        self.swim = swim if swim is not None else SwimConfig()
        self.seed = seed
        self.replicas: List[ControllerReplica] = [
            ControllerReplica(sim, f"ctl{i}", i) for i in range(n_replicas)
        ]
        self._by_name = {r.name: r for r in self.replicas}
        self.quorum = quorum if quorum is not None else n_replicas // 2 + 1
        if not 1 <= self.quorum <= n_replicas:
            raise ValueError(
                f"quorum {self.quorum} outside [1, {n_replicas}]"
            )
        self.leader: ControllerReplica = self.replicas[0]
        self.term = 1
        for member in self.replicas:
            member.term = 1  # everyone knows the founding leadership
        #: Storage nodes the detector also probes (name -> server).
        self.watched: Dict[str, object] = {}
        #: slice_id -> latest replicated MigrationRecord.
        self.records: Dict[int, MigrationRecord] = {}
        self.detector = SwimDetector(sim, self, self.swim, seed)
        self._started = False
        self._until_ns: Optional[int] = None
        self._electing: Dict[str, bool] = {}
        self.obs = None
        # -- counters ------------------------------------------------------------------
        self.pings = Counter("cluster.membership.pings")
        self.ping_reqs = Counter("cluster.membership.ping_reqs")
        self.suspicions = Counter("cluster.membership.suspicions")
        self.refutes = Counter("cluster.membership.refutes")
        self.confirms = Counter("cluster.membership.confirms")
        self.rejoins = Counter("cluster.membership.rejoins")
        self.elections = Counter("cluster.election.elections")
        self.election_rounds = Counter("cluster.election.rounds")
        self.fences = Counter("cluster.election.fences")
        self.replications = Counter("cluster.replication.records")
        self.replication_failures = Counter("cluster.replication.failures")
        self.migrations_resolved = Counter(
            "cluster.election.migrations_resolved"
        )
        #: Audit log of (at_ns, observer, subject, event) tuples --
        #: suspect/refute/confirm/rejoin/elect -- for determinism tests.
        self.events: List[Tuple[int, str, str, str]] = []
        if self.active:
            controller.group = self

    # -- basic shape -------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """False for the degenerate single-replica group, which must
        leave runs byte-identical to no group at all."""
        return len(self.replicas) > 1

    def replica(self, name: str) -> ControllerReplica:
        return self._by_name[name]

    def member_names(self) -> List[str]:
        """Every probe subject, in deterministic sorted order."""
        return sorted(self._by_name) + sorted(self.watched)

    def endpoint(self, name: str):
        got = self._by_name.get(name)
        if got is not None:
            return got
        return self.watched[name]

    def watch(self, name: str, server) -> None:
        """Add a storage node to the probed membership (probe-only:
        nodes hold no controller state and cast no votes)."""
        if name in self._by_name or name in self.watched:
            raise ValueError(f"member {name!r} already tracked")
        self.watched[name] = server

    def watch_nodes(self) -> None:
        """Watch every node currently enrolled in the controller."""
        for name in sorted(self.controller.nodes):
            if name not in self.watched:
                self.watch(name, self.controller.nodes[name])

    # -- plane wiring ------------------------------------------------------------------
    def attach(self, plane) -> "ControllerGroup":
        """Wire a plane into the group (currently: ``Observability``)."""
        from repro.obs.attach import Observability

        if not isinstance(plane, Observability):
            raise TypeError(
                f"don't know how to attach {type(plane).__name__}; "
                "expected Observability"
            )
        self.obs = plane
        registry = plane.metrics
        for counter in (
            self.pings,
            self.ping_reqs,
            self.suspicions,
            self.refutes,
            self.confirms,
            self.rejoins,
            self.elections,
            self.election_rounds,
            self.fences,
            self.replications,
            self.replication_failures,
            self.migrations_resolved,
        ):
            registry.register_counter(counter.name, counter)
        registry.register_callback(
            "cluster.membership.alive",
            lambda _now: self.membership_counts()[0],
        )
        registry.register_callback(
            "cluster.membership.suspects",
            lambda _now: self.membership_counts()[1],
        )
        registry.register_callback(
            "cluster.membership.dead",
            lambda _now: self.membership_counts()[2],
        )
        registry.register_callback(
            "cluster.election.term", lambda _now: self.term
        )
        return self

    def membership_counts(self) -> Tuple[int, int, int]:
        """(alive, suspect, dead) from the authoritative observer --
        the lowest-rank live replica (the leader's own view wherever
        possible, matching what its policy decisions would act on)."""
        observer = None
        if self.leader is not None and self.leader.up:
            observer = self.leader
        else:
            for candidate in self.replicas:
                if candidate.up:
                    observer = candidate
                    break
        if observer is None:
            return (0, 0, len(self.member_names()) - len(self.replicas))
        alive = suspect = dead = 0
        for subject in self.member_names():
            if subject == observer.name:
                alive += 1
                continue
            state = self.detector.state(observer.name, subject)
            if state == MEMBER_ALIVE:
                alive += 1
            elif state == MEMBER_SUSPECT:
                suspect += 1
            else:
                dead += 1
        return (alive, suspect, dead)

    # -- lifecycle ---------------------------------------------------------------------
    def start(self, until_ns: Optional[int] = None) -> None:
        """Spawn the failure-detector probe loops (one per replica).

        No-op for an inactive group.  ``until_ns`` bounds the loops so
        tests can run the simulator dry.
        """
        if self._started:
            raise RuntimeError("ControllerGroup.start() called twice")
        self._started = True
        self._until_ns = until_ns
        if not self.active:
            return
        for replica in self.replicas:
            self.sim.process(self.detector._probe_loop(replica, until_ns))

    # -- membership events -------------------------------------------------------------
    def _note_membership(self, observer: str, subject: str,
                         event: str) -> None:
        counter = {
            "suspect": self.suspicions,
            "refute": self.refutes,
            "rejoin": self.rejoins,
        }[event]
        counter.add()
        self.events.append((self.sim.now, observer, subject, event))
        if self.obs is not None and self.obs.trace.enabled:
            self.obs.trace.instant(
                "cluster/membership",
                f"{event}:{subject}",
                self.sim.now,
                observer=observer,
            )

    def _on_confirm(self, observer: str, subject: str) -> None:
        self.confirms.add()
        self.events.append((self.sim.now, observer, subject, "confirm"))
        if self.obs is not None and self.obs.trace.enabled:
            self.obs.trace.instant(
                "cluster/membership",
                f"confirm:{subject}",
                self.sim.now,
                observer=observer,
            )
        watcher = self._by_name.get(observer)
        leader = self.leader
        if (
            watcher is not None
            and watcher.up
            and leader is not None
            and subject == leader.name
        ):
            self._campaign(watcher)

    # -- election ----------------------------------------------------------------------
    def _campaign(self, candidate: ControllerReplica) -> None:
        if self._electing.get(candidate.name):
            return
        self._electing[candidate.name] = True
        self.sim.process(self._election_loop(candidate))

    def _election_loop(self, candidate: ControllerReplica):
        try:
            while candidate.up and (
                self._until_ns is None or self.sim.now < self._until_ns
            ):
                leader = self.leader
                if leader is candidate:
                    return
                if (
                    leader is not None
                    and leader.up
                    and self.detector.state(candidate.name, leader.name)
                    == MEMBER_ALIVE
                ):
                    return  # leadership recovered (new leader, or heal)
                # Pre-vote guard: a candidate whose own view shows
                # fewer than a quorum of live replicas (itself
                # included) cannot win -- campaigning anyway would only
                # inflate its term, and a partitioned minority replica
                # would then depose a healthy leader the moment the
                # link heals (Raft's "disruptive server" problem).  It
                # stands by until its view recovers.
                live = 1 + sum(
                    1 for peer in self.replicas
                    if peer is not candidate
                    and self.detector.state(candidate.name, peer.name)
                    == MEMBER_ALIVE
                )
                if live >= self.quorum:
                    # Bully: defer to any better-ranked replica this
                    # candidate still believes alive -- it will campaign.
                    better = [
                        peer for peer in self.replicas
                        if peer.rank < candidate.rank
                        and peer is not leader
                        and self.detector.state(candidate.name, peer.name)
                        == MEMBER_ALIVE
                    ]
                    if not better:
                        won = yield from self._election_round(candidate)
                        if won:
                            return
                yield self.sim.timeout(self.swim.period_ns)
        finally:
            self._electing[candidate.name] = False

    def _request_vote(self, candidate: ControllerReplica,
                      voter: ControllerReplica, term: int):
        """Generator -> (granted, voter_term); unreachable = (False, 0)."""

        def _rpc():
            yield from self.network.send(candidate.nic, voter.nic,
                                         VOTE_BYTES)
            if not voter.up:
                return (False, 0)
            granted = term > voter.voted_term and term > voter.term
            if granted:
                voter.voted_term = term
            yield from self.network.send(voter.nic, candidate.nic,
                                         VOTE_BYTES)
            return (granted, voter.term)

        def _safe():
            try:
                return (yield from _rpc())
            except MessageDroppedError:
                return (False, 0)

        proc = self.sim.process(_safe())
        done, value = yield from race_with_timeout(
            self.sim, proc, self.swim.ping_timeout_ns
        )
        return value if done else (False, 0)

    def _election_round(self, candidate: ControllerReplica):
        """Generator -> bool: one campaign round at a fresh term."""
        self.election_rounds.add()
        proposed = max(candidate.term, candidate.voted_term) + 1
        candidate.voted_term = proposed  # votes for itself
        votes = 1
        highest_seen = 0
        for voter in self.replicas:
            if voter is candidate:
                continue
            granted, seen = yield from self._request_vote(
                candidate, voter, proposed
            )
            if granted:
                votes += 1
            highest_seen = max(highest_seen, seen)
        if highest_seen >= proposed:
            # Another leader already holds this term or later: adopt
            # and stand down for this round.
            candidate.term = max(candidate.term, highest_seen)
            return False
        if votes < self.quorum or not candidate.up:
            return False
        yield from self._install_leader(candidate, proposed)
        return True

    def _install_leader(self, candidate: ControllerReplica, term: int):
        """Generator: adopt leadership, fence the cluster, resolve any
        replicated in-flight migrations."""
        candidate.term = term
        self.leader = candidate
        self.term = term
        self.elections.add()
        self.events.append(
            (self.sim.now, candidate.name, candidate.name, "elect")
        )
        if self.obs is not None and self.obs.trace.enabled:
            self.obs.trace.instant(
                "cluster/election",
                f"elect:{candidate.name}",
                self.sim.now,
                term=term,
            )
        # Announce to every reachable peer so followers adopt the term.
        for peer in self.replicas:
            if peer is candidate:
                continue
            try:
                yield from self.network.send(
                    candidate.nic, peer.nic, ANNOUNCE_BYTES
                )
                if peer.up:
                    peer.term = max(peer.term, term)
                    yield from self.network.send(
                        peer.nic, candidate.nic, ACK_BYTES
                    )
            except MessageDroppedError:
                continue
        # Fence every reachable storage node: the deposed leader's
        # commands die there from now on.
        for name in sorted(self.controller.nodes):
            node = self.controller.nodes[name]
            try:
                yield from self.network.send(
                    candidate.nic, node.nic, FENCE_BYTES
                )
                if node.up:
                    if term > node.controller_term:
                        node.controller_term = term
                    self.fences.add()
                    yield from self.network.send(
                        node.nic, candidate.nic, ACK_BYTES
                    )
            except MessageDroppedError:
                continue
        self.resolve_inflight()

    # -- replicated migration records --------------------------------------------------
    def open_lease(self, slice_id: int) -> ControllerLease:
        """Start a migration under the current leadership."""
        leader = self.leader
        if leader is None or not leader.up:
            raise ControllerUnavailableError(
                "no live controller leader to drive the migration"
            )
        return ControllerLease(slice_id, leader, self.term)

    def lease_current(self, lease: ControllerLease) -> bool:
        """Does this lease still own its slice's migration flags?

        False once a *newer* leadership has replicated a record for the
        slice -- the old driver must then leave the slice's shared
        migration flags (write block, compaction hold) alone, because
        the new migration owns them now.
        """
        record = self.records.get(lease.slice_id)
        return record is None or record.term <= lease.term

    def check_lease(self, lease: ControllerLease, *nodes) -> None:
        """Fencing checkpoint on the migration data path (synchronous).

        The driver must still be alive, and every involved node must
        accept the lease's term -- a node already fenced by a newer
        leader rejects it with :class:`~repro.errors.WrongEpochError`.
        """
        if not lease.replica.up:
            raise ControllerFencedError(
                f"controller {lease.replica.name} died mid-migration "
                f"of slice {lease.slice_id}"
            )
        for node in nodes:
            node.fence_controller(lease.term)

    def phase_barrier(self, phase: str, lease: ControllerLease,
                      src_name: str, dst_name: str):
        """Generator: one replicated phase boundary.

        The driver round-trips a fenced command to both involved nodes,
        then replicates the :class:`MigrationRecord` to its follower
        replicas; a majority (driver included) must ack before the
        phase proceeds.  Any of: driver dead, either node fenced by a
        newer term, a follower holding a newer term, or quorum
        unreachable -- aborts the migration here, *before* any
        irreversible step of the phase.
        """
        driver = lease.replica
        self.check_lease(lease)
        ctrl = self.controller
        for node_name in (src_name, dst_name):
            node = ctrl.nodes[node_name]
            try:
                yield from self.network.send(
                    driver.nic, node.nic, COMMAND_BYTES
                )
                if node.up:
                    node.fence_controller(lease.term)
                    yield from self.network.send(
                        node.nic, driver.nic, ACK_BYTES
                    )
                # A down node is left for the migration's own liveness
                # checks, which raise the historical NodeDownError.
            except MessageDroppedError as exc:
                raise ControllerFencedError(
                    f"leader {driver.name} cut off from {node_name} "
                    f"at {phase} of slice {lease.slice_id}"
                ) from exc
        record = MigrationRecord(
            lease.slice_id, phase, src_name, dst_name, lease.term
        )
        acks = 1  # the driver's own copy
        stale = False
        for peer in self.replicas:
            if peer is driver:
                continue
            try:
                yield from self.network.send(
                    driver.nic, peer.nic, RECORD_BYTES
                )
                if not peer.up:
                    continue
                if peer.term > lease.term:
                    stale = True  # follower already serves a new leader
                    yield from self.network.send(
                        peer.nic, driver.nic, ACK_BYTES
                    )
                    continue
                peer.term = max(peer.term, lease.term)
                yield from self.network.send(
                    peer.nic, driver.nic, ACK_BYTES
                )
                acks += 1
            except MessageDroppedError:
                continue
        if stale:
            raise ControllerFencedError(
                f"a follower holds a term newer than {lease.term}; "
                f"leader {driver.name} is deposed"
            )
        if acks < self.quorum:
            self.replication_failures.add()
            raise ControllerReplicationError(
                f"{phase} record for slice {lease.slice_id} reached "
                f"{acks}/{self.quorum} replicas"
            )
        if not driver.up:
            raise ControllerFencedError(
                f"controller {driver.name} died replicating {phase} "
                f"of slice {lease.slice_id}"
            )
        existing = self.records.get(lease.slice_id)
        if not (
            existing is not None
            and existing.term == lease.term
            and existing.phase in (RECORD_COMMITTED, RECORD_ABORTED)
        ):
            # Never demote a terminal record (the cleanup barrier runs
            # *after* the commit has already been noted).
            self.records[lease.slice_id] = record
        self.replications.add()
        return record

    def fence_publish(self, lease: ControllerLease) -> None:
        """The synchronous guard immediately before a routing-table
        publish: only the current leader, at the quorum-agreed term,
        may flip routing.  This is what makes a double cutover
        impossible -- a deposed leader reaching its commit point dies
        here, inside the no-yield commit block.
        """
        if not lease.replica.up:
            raise ControllerFencedError(
                f"controller {lease.replica.name} died before publish"
            )
        if lease.term < self.term or self.leader is not lease.replica:
            raise ControllerFencedError(
                f"deposed leader {lease.replica.name} (term "
                f"{lease.term} < {self.term}) may not publish routing"
            )

    def note_commit(self, lease: ControllerLease) -> None:
        record = self.records.get(lease.slice_id)
        if record is not None and record.term == lease.term:
            self.records[lease.slice_id] = replace(
                record, phase=RECORD_COMMITTED
            )

    def note_abort(self, lease: ControllerLease) -> None:
        record = self.records.get(lease.slice_id)
        if record is not None and record.term == lease.term:
            self.records[lease.slice_id] = replace(
                record, phase=RECORD_ABORTED
            )

    def resolve_inflight(self) -> List[Tuple[int, str]]:
        """Resume-or-abort every replicated mid-flight migration.

        Called by a freshly installed leader (synchronously -- no
        simulated time passes, so no new fault can interleave).  For
        each non-terminal record: if the routing table already shows
        the cutover (dst owns the slice), the migration committed and
        the record is marked so; otherwise the safe resolution is
        abort -- discard the importing twin on the destination and
        unfreeze the source, leaving it authoritative.  Returns
        ``[(slice_id, resolution), ...]`` for reporting.
        """
        ctrl = self.controller
        resolutions: List[Tuple[int, str]] = []
        for slice_id in sorted(self.records):
            record = self.records[slice_id]
            if record.phase in (RECORD_COMMITTED, RECORD_ABORTED):
                continue
            try:
                entry = ctrl.table.entry(slice_id)
            except KeyError:
                continue
            committed = (
                record.dst in entry.replicas
                and record.src not in entry.replicas
            )
            if committed:
                self.records[slice_id] = replace(
                    record, phase=RECORD_COMMITTED
                )
                resolutions.append((slice_id, "adopted"))
            else:
                dst = ctrl.nodes.get(record.dst)
                if dst is not None:
                    for slice_ in list(dst.slices):
                        if slice_.slice_id == slice_id and slice_.importing:
                            dst.remove_slice(slice_)
                hosts = ctrl._replicas.get(slice_id, {})
                source_slice = hosts.get(record.src)
                if source_slice is not None:
                    source_slice.write_blocked = False
                self.records[slice_id] = replace(
                    record, phase=RECORD_ABORTED
                )
                resolutions.append((slice_id, "aborted"))
            self.migrations_resolved.add()
            if self.obs is not None and self.obs.trace.enabled:
                self.obs.trace.instant(
                    "cluster/election",
                    f"resolve:{resolutions[-1][1]}:slice{slice_id}",
                    self.sim.now,
                    phase=record.phase,
                )
        return resolutions

    def __repr__(self):
        return (
            f"ControllerGroup({len(self.replicas)} replicas, "
            f"leader={self.leader.name if self.leader else None}, "
            f"term={self.term})"
        )

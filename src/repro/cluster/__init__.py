"""The storage-cluster model (paper S3.1 / Table 2).

Client nodes send synchronous, optionally batched KV requests over
10 GbE to a storage server hosting CCDB slices backed by an SDF or a
commodity SSD.  This is the testbed every production-system experiment
(Figures 10-14) runs on.

* :mod:`~repro.cluster.network` -- NIC/switch bandwidth model;
* :mod:`~repro.cluster.storage` -- timed patch-storage adapters binding
  slices to an :class:`~repro.devices.sdf.SDFDevice` (via the block
  layer) or a :class:`~repro.devices.conventional.ConventionalSSD`;
* :mod:`~repro.cluster.node` -- the storage server: request fan-out,
  slice routing, background patch flushing and compaction;
* :mod:`~repro.cluster.client` -- closed-loop clients (one per slice,
  as in the paper's experiments);
* :mod:`~repro.cluster.replication` -- the system-level replication that
  replaces on-device parity (S2.2);
* :mod:`~repro.cluster.control` -- the control plane: versioned
  routing, elastic membership, online slice migration and split/merge;
* :mod:`~repro.cluster.membership` -- the fault-tolerant control
  plane: SWIM failure detection, leader election and leadership
  fencing over replicated controller state.
"""

from repro.cluster.client import (
    BatchSpec,
    KVClient,
    RequestAbandonedError,
    run_clients,
)
from repro.cluster.control import (
    MIGRATION_ABORT,
    MIGRATION_PHASES,
    MIGRATION_SITE,
    ClusterController,
    MigrationError,
    RoutingTable,
    RoutingView,
    SliceLocation,
)
from repro.cluster.membership import (
    ControllerFencedError,
    ControllerGroup,
    ControllerLease,
    ControllerReplica,
    ControllerReplicationError,
    ControllerUnavailableError,
    MigrationRecord,
    SwimConfig,
    SwimDetector,
)
from repro.cluster.network import (
    MessageDroppedError,
    Network,
    NetworkPartitionedError,
    Nic,
    TEN_GBE_MB_S,
)
from repro.cluster.node import (
    NodeDownError,
    SERVER_CONFIG,
    StorageServer,
    build_conventional_server,
    build_sdf_server,
    build_storage_server,
)
from repro.cluster.replication import (
    ReplicatedKV,
    ReplicaReadError,
    ReplicaWriteError,
)
from repro.cluster.storage import (
    ConventionalNodeStorage,
    SDFNodeStorage,
    ZonedNodeStorage,
)

__all__ = [
    "Nic",
    "Network",
    "TEN_GBE_MB_S",
    "MessageDroppedError",
    "NetworkPartitionedError",
    "ControllerFencedError",
    "ControllerGroup",
    "ControllerLease",
    "ControllerReplica",
    "ControllerReplicationError",
    "ControllerUnavailableError",
    "MigrationRecord",
    "SwimConfig",
    "SwimDetector",
    "SDFNodeStorage",
    "ConventionalNodeStorage",
    "ZonedNodeStorage",
    "StorageServer",
    "SERVER_CONFIG",
    "NodeDownError",
    "build_sdf_server",
    "build_conventional_server",
    "build_storage_server",
    "KVClient",
    "BatchSpec",
    "RequestAbandonedError",
    "run_clients",
    "ReplicatedKV",
    "ReplicaReadError",
    "ReplicaWriteError",
    "ClusterController",
    "MigrationError",
    "RoutingTable",
    "RoutingView",
    "SliceLocation",
    "MIGRATION_ABORT",
    "MIGRATION_PHASES",
    "MIGRATION_SITE",
]
